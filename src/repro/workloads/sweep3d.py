"""Sweep3D: the wavefront motif (ASCI Sweep3D [39]).

A 3D domain is decomposed over a 2D ``px x py`` process array.  A sweep
starts at one corner; every rank waits for its upstream neighbours (west
and north for the (+x, +y) sweep), "computes", and forwards to its
downstream neighbours (east and south).  Successive sweeps start from
alternating corners (the octant pattern) and depend on the previous sweep's
completion at each rank.  The dependency chain stresses latency — the
paper's motif where SpectralFly gains ~1.4x over DragonFly.
"""

from __future__ import annotations

from repro.workloads.motif import Message, Motif

# Sweep directions: (dx, dy) of downstream forwarding per corner octant.
_SWEEP_DIRS = [(1, 1), (-1, 1), (1, -1), (-1, -1)]


class Sweep3DMotif(Motif):
    """Wavefront sweeps over a ``px x py`` rank array."""

    name = "sweep3d"

    def __init__(
        self,
        grid: tuple[int, int],
        sweeps: int = 2,
        message_bytes: int = 4096,
        compute_ns: float = 200.0,
    ) -> None:
        px, py = grid
        super().__init__(px * py)
        self.grid = grid
        self.sweeps = sweeps
        self.message_bytes = message_bytes
        self.compute_ns = compute_ns

    def _rank(self, x: int, y: int) -> int:
        return x * self.grid[1] + y

    def generate(self) -> list[Message]:
        px, py = self.grid
        messages: list[Message] = []
        mid = 0
        # last_out[r]: message ids rank r produced in the previous sweep
        # (next sweep's sends at r depend on them).
        last_in: dict[int, list[int]] = {r: [] for r in range(self.n_ranks)}
        for s in range(self.sweeps):
            dx, dy = _SWEEP_DIRS[s % len(_SWEEP_DIRS)]
            xs = range(px) if dx > 0 else range(px - 1, -1, -1)
            ys = range(py) if dy > 0 else range(py - 1, -1, -1)
            incoming: dict[int, list[int]] = {r: [] for r in range(self.n_ranks)}
            outgoing_prev = last_in
            new_in: dict[int, list[int]] = {r: [] for r in range(self.n_ranks)}
            for x in xs:
                for y in ys:
                    src = self._rank(x, y)
                    deps = incoming[src] + outgoing_prev[src]
                    for tx, ty in ((x + dx, y), (x, y + dy)):
                        if not (0 <= tx < px and 0 <= ty < py):
                            continue
                        dst = self._rank(tx, ty)
                        m = Message(
                            mid,
                            src,
                            dst,
                            self.message_bytes,
                            deps=list(deps),
                            compute_ns=self.compute_ns,
                        )
                        messages.append(m)
                        incoming[dst].append(mid)
                        new_in[dst].append(mid)
                        mid += 1
            last_in = new_in
        return messages
