"""Halo3D-26: nearest-neighbour halo exchange on a 3D periodic grid.

Every rank exchanges with its 26 neighbours (6 faces, 12 edges, 8 corners)
each iteration; face messages carry a 2D slab, edge messages a 1D pencil,
corner messages a single cell.  Iteration ``t`` sends depend on all of the
rank's iteration ``t-1`` receives (the bulk-synchronous stencil step).
This is the paper's "relatively low per-node communication" motif where
SpectralFly's low average hop count wins (Fig. 9/10, ~1.2x over DragonFly).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.workloads.motif import Message, Motif


class Halo3D26Motif(Motif):
    """Halo3D-26 on a ``gx x gy x gz`` periodic rank grid."""

    name = "halo3d26"

    def __init__(
        self,
        grid: tuple[int, int, int],
        iterations: int = 2,
        cell_bytes: int = 8,
        block: int = 16,
        compute_ns: float = 0.0,
    ) -> None:
        gx, gy, gz = grid
        super().__init__(gx * gy * gz)
        self.grid = grid
        self.iterations = iterations
        self.cell_bytes = cell_bytes
        self.block = block  # local domain edge length per rank
        self.compute_ns = compute_ns

    def _rank(self, x: int, y: int, z: int) -> int:
        gx, gy, gz = self.grid
        return (x % gx) * gy * gz + (y % gy) * gz + (z % gz)

    def _msg_size(self, offset: tuple[int, int, int]) -> int:
        nz = sum(1 for o in offset if o != 0)
        b, c = self.block, self.cell_bytes
        if nz == 1:  # face: block^2 cells
            return b * b * c
        if nz == 2:  # edge: block cells
            return b * c
        return c  # corner: one cell

    def generate(self) -> list[Message]:
        gx, gy, gz = self.grid
        offsets = [
            o for o in itertools.product((-1, 0, 1), repeat=3) if o != (0, 0, 0)
        ]
        messages: list[Message] = []
        mid = 0
        # received[r] = ids of messages rank r received in the previous iter.
        received_prev: dict[int, list[int]] = {r: [] for r in range(self.n_ranks)}
        for _it in range(self.iterations):
            received_now: dict[int, list[int]] = {
                r: [] for r in range(self.n_ranks)
            }
            for x in range(gx):
                for y in range(gy):
                    for z in range(gz):
                        src = self._rank(x, y, z)
                        deps = received_prev[src]
                        for off in offsets:
                            dst = self._rank(x + off[0], y + off[1], z + off[2])
                            if dst == src:
                                continue  # degenerate tiny grids
                            m = Message(
                                mid,
                                src,
                                dst,
                                self._msg_size(off),
                                deps=list(deps),
                                compute_ns=self.compute_ns,
                            )
                            messages.append(m)
                            received_now[dst].append(mid)
                            mid += 1
            received_prev = received_now
        return messages


def default_halo_grid(n_ranks: int) -> tuple[int, int, int]:
    """Most-cubic 3D factorisation of ``n_ranks``."""
    best = (n_ranks, 1, 1)
    best_score = float("inf")
    for a in range(1, int(round(n_ranks ** (1 / 3))) + 2):
        if n_ranks % a:
            continue
        rest = n_ranks // a
        for b in range(a, int(np.sqrt(rest)) + 2):
            if rest % b:
                continue
            c = rest // b
            score = max(a, b, c) / min(a, b, c)
            if score < best_score:
                best_score = score
                best = (a, b, c)
    return best
