"""Motif = a DAG of messages.

A motif generates the full set of messages an application skeleton would
send, each with explicit dependencies: message ``m`` may enter the network
only after every message in ``m.deps`` has been *delivered*.  This is the
same skeletonisation idea SST/macro's Ember library uses — computation is
abstracted away (optionally a fixed compute delay), communication structure
is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Message:
    """One point-to-point message in a motif DAG."""

    mid: int
    src_rank: int
    dst_rank: int
    size: int
    deps: list[int] = field(default_factory=list)
    compute_ns: float = 0.0  # delay between deps-satisfied and injection


class Motif:
    """Base class: subclasses fill ``self.messages`` in ``generate``."""

    name = "abstract"

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks

    def generate(self) -> list[Message]:
        raise NotImplementedError

    # -- helpers for subclasses --------------------------------------------
    @staticmethod
    def _check_grid(n_ranks: int, dims: tuple[int, ...]) -> None:
        import numpy as np

        if int(np.prod(dims)) != n_ranks:
            raise ValueError(f"grid {dims} does not tile {n_ranks} ranks")
