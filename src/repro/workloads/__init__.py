"""Ember-style communication motifs and the dependency-driven runner."""

from repro.workloads.motif import Message, Motif
from repro.workloads.halo3d import Halo3D26Motif
from repro.workloads.sweep3d import Sweep3DMotif
from repro.workloads.fft import FFTMotif
from repro.workloads.collectives import CollectiveMotif, run_collective
from repro.workloads.runner import run_motif

__all__ = [
    "Message",
    "Motif",
    "Halo3D26Motif",
    "Sweep3DMotif",
    "FFTMotif",
    "CollectiveMotif",
    "run_motif",
    "run_collective",
]
