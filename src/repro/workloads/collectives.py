"""Collective-communication workloads as chunk-level send DAGs.

The payload of a collective over ``p`` ranks is split into ``p`` chunks
(rank ``r`` contributes chunk ``r``).  A schedule generator emits a list
of **policy entries** — the CCL-simulator representation: each entry is
keyed ``(chunk_id, src)``, carries an explicit byte size, and fires only
once ``src`` owns the chunk version it transmits.  Ownership is the
dependency trigger: the entry's ``deps`` name the earlier entries whose
*delivery* established that ownership at ``src`` (fan-in for reductions,
a single predecessor for store-and-forward), so multiple entries per key
express fan-out.

The entry list lowers 1:1 onto the motif DAG representation
(:class:`~repro.workloads.motif.Message`, ids ``0..n-1`` in list order),
so a collective runs unchanged on both engines via
:func:`~repro.workloads.runner.run_motif` — the event engine's delivery
callbacks or the batched engine's ``run_closed_loop`` frontier arrays.

Three collectives × four algorithms:

* ``ring`` — any ``p``; allreduce is the classic 2(p−1)-step
  reduce-scatter + allgather pipeline.
* ``recursive-doubling`` — pairwise exchange over a power-of-two core
  group (log₂ p rounds); allreduce ships the full vector each round,
  reduce-scatter uses recursive halving, allgather doubles the owned
  block each round.
* ``binary-tree`` — any ``p``; reduce/gather up the complete binary tree
  rooted at rank 0, then broadcast/scatter down.
* ``rabenseifner`` — recursive-halving reduce-scatter followed by a
  recursive-doubling allgather (bandwidth-optimal allreduce).  Its
  reduce-scatter/allgather halves coincide with the
  ``recursive-doubling`` schedules for those collectives.

Non-power-of-two ``p`` under the doubling/halving algorithms folds the
``p − core`` extra ranks into a core power-of-two group: a pre-step ships
each extra rank's contribution to its core partner, the core executes the
power-of-two schedule over all ``p`` chunks, and a post-step ships results
back out — two extra schedule steps, any ``p``.

The generator replays every schedule symbolically (per-rank, per-chunk
contribution sets), so chunk conservation — every required rank ends
owning the fully reduced/gathered payload — is *checked*, not assumed,
and per-chunk completion times fall out of the same bookkeeping
(:meth:`CollectiveMotif.chunk_completion_times`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError, SimulationError
from repro.workloads.motif import Message, Motif

COLLECTIVES: tuple[str, ...] = ("allreduce", "allgather", "reduce-scatter")
ALGORITHMS: tuple[str, ...] = (
    "ring", "recursive-doubling", "binary-tree", "rabenseifner"
)


@dataclass(frozen=True)
class ChunkSend:
    """One chunk-level policy entry: ``src`` sends ``chunk_id`` to ``dst``.

    ``deps`` are the entry ids whose delivery established ``src``'s
    ownership of the transmitted chunk version — the dependency trigger.
    ``step`` is the schedule round the entry belongs to (for round-count
    properties and docs; execution is triggered by ``deps`` alone).
    """

    entry_id: int
    chunk_id: int
    src: int
    dst: int
    size: int
    step: int
    deps: tuple[int, ...]

    @property
    def key(self) -> tuple[int, int]:
        """The CCL policy key this entry is installed at."""
        return (self.chunk_id, self.src)


@dataclass(frozen=True)
class _Own:
    """A rank's current version of one chunk.

    ``deps``: entry ids whose delivery established this version locally;
    ``contrib``: the set of ranks whose contributions it incorporates.
    """

    deps: tuple[int, ...]
    contrib: frozenset


def chunk_sizes(total_bytes: int, n_chunks: int) -> list[int]:
    """Split ``total_bytes`` into ``n_chunks`` near-equal chunk sizes.

    The remainder spreads over the leading chunks; every chunk is at
    least one byte so tiny payloads still exercise every entry.
    """
    base, rem = divmod(total_bytes, n_chunks)
    return [max(1, base + (1 if c < rem else 0)) for c in range(n_chunks)]


class _Builder:
    """Accumulates policy entries round by round, replaying ownership."""

    def __init__(self, n_ranks: int, sizes: list[int],
                 collective: str) -> None:
        self.p = n_ranks
        self.sizes = sizes
        self.entries: list[ChunkSend] = []
        self.step = 0
        self.own: dict[tuple[int, int], _Own] = {}
        if collective == "allgather":
            for r in range(n_ranks):
                self.own[(r, r)] = _Own((), frozenset((r,)))
        else:  # reductions: every rank holds a full local input vector
            for r in range(n_ranks):
                for c in range(n_ranks):
                    self.own[(r, c)] = _Own((), frozenset((r,)))

    def round(self, transfers: list[tuple[int, int, int]],
              reduce: bool) -> None:
        """Emit one schedule round of ``(src, dst, chunk)`` transfers.

        All sends capture the *pre-round* ownership at their source (the
        pairwise-exchange algorithms send both directions in one round),
        then all receives apply: reductions merge contribution sets and
        accumulate establishing deps, gathers replace the local copy.
        """
        emitted = []
        for src, dst, chunk in transfers:
            if src == dst:
                raise SimulationError(
                    f"self-send of chunk {chunk} at rank {src} "
                    f"(step {self.step})"
                )
            o = self.own.get((src, chunk))
            if o is None:
                raise SimulationError(
                    f"rank {src} does not own chunk {chunk} at "
                    f"step {self.step}"
                )
            eid = len(self.entries)
            self.entries.append(ChunkSend(
                eid, chunk, src, dst, self.sizes[chunk], self.step, o.deps
            ))
            emitted.append((eid, dst, chunk, o))
        for eid, dst, chunk, o in emitted:
            old = self.own.get((dst, chunk))
            if reduce:
                if old is None:
                    raise SimulationError(
                        f"rank {dst} cannot reduce into missing chunk "
                        f"{chunk} (step {self.step})"
                    )
                if old.contrib & o.contrib:
                    raise SimulationError(
                        f"double-counted contributions {sorted(old.contrib & o.contrib)} "
                        f"for chunk {chunk} at rank {dst} (step {self.step})"
                    )
                self.own[(dst, chunk)] = _Own(
                    tuple(dict.fromkeys(old.deps + (eid,))),
                    old.contrib | o.contrib,
                )
            else:
                self.own[(dst, chunk)] = _Own((eid,), o.contrib)
        self.step += 1


# -- schedule generators ----------------------------------------------------

def _ring(b: _Builder, collective: str, p: int) -> None:
    nxt = [(r + 1) % p for r in range(p)]
    if collective != "allgather":
        # Reduce-scatter pipeline: after p−1 steps rank r fully owns
        # chunk (r+1) mod p.
        for s in range(p - 1):
            b.round([(r, nxt[r], (r - s) % p) for r in range(p)],
                    reduce=True)
    if collective == "allreduce":
        # Allgather pipeline over the fully reduced chunks.
        for s in range(p - 1):
            b.round([(r, nxt[r], (r + 1 - s) % p) for r in range(p)],
                    reduce=False)
    if collective == "allgather":
        for s in range(p - 1):
            b.round([(r, nxt[r], (r - s) % p) for r in range(p)],
                    reduce=False)


def _core_count(p: int) -> int:
    """The largest power of two ≤ ``p`` (the fold's core group size)."""
    return 1 << (p.bit_length() - 1)


def _chunk_owner(p: int, core: int) -> list[int]:
    """Core rank responsible for each chunk under the fold.

    Chunks of folded extra ranks are reduced/gathered by their core
    partner and shipped back out in the post-step.
    """
    return [c if c < core else c - core for c in range(p)]


def _fold_pre(b: _Builder, collective: str, p: int, core: int) -> None:
    if collective == "allgather":
        b.round([(e, e - core, e) for e in range(core, p)], reduce=False)
    else:
        b.round([(e, e - core, c)
                 for e in range(core, p) for c in range(p)], reduce=True)


def _fold_post(b: _Builder, collective: str, p: int, core: int) -> None:
    if collective == "reduce-scatter":
        b.round([(e - core, e, e) for e in range(core, p)], reduce=False)
    else:
        b.round([(e - core, e, c)
                 for e in range(core, p) for c in range(p)], reduce=False)


def _rd_allreduce_core(b: _Builder, core: int, p: int) -> None:
    f = core.bit_length() - 1
    for k in range(f):
        b.round([(r, r ^ (1 << k), c)
                 for r in range(core) for c in range(p)], reduce=True)


def _halving_rs_core(b: _Builder, core: int, p: int) -> None:
    # Recursive halving: exchange with the farthest partner first, each
    # round shipping the half of the chunk space the partner's side will
    # end up owning.
    f = core.bit_length() - 1
    owner = _chunk_owner(p, core)
    for k in range(f):
        sh = f - 1 - k
        b.round([
            (r, r ^ (1 << sh), c)
            for r in range(core)
            for c in range(p)
            if owner[c] >> sh == (r ^ (1 << sh)) >> sh
        ], reduce=True)


def _doubling_ag_core(b: _Builder, core: int, p: int) -> None:
    # Recursive doubling: exchange with the nearest partner first, the
    # fully owned chunk block doubling each round.
    f = core.bit_length() - 1
    owner = _chunk_owner(p, core)
    for k in range(f):
        b.round([
            (r, r ^ (1 << k), c)
            for r in range(core)
            for c in range(p)
            if owner[c] >> k == r >> k
        ], reduce=False)


def _recursive_doubling(b: _Builder, collective: str, p: int) -> None:
    core = _core_count(p)
    if core != p:
        _fold_pre(b, collective, p, core)
    if collective == "allreduce":
        _rd_allreduce_core(b, core, p)
    elif collective == "reduce-scatter":
        _halving_rs_core(b, core, p)
    else:
        _doubling_ag_core(b, core, p)
    if core != p:
        _fold_post(b, collective, p, core)


def _rabenseifner(b: _Builder, collective: str, p: int) -> None:
    core = _core_count(p)
    if core != p:
        _fold_pre(b, collective, p, core)
    if collective != "allgather":
        _halving_rs_core(b, core, p)
    if collective != "reduce-scatter":
        _doubling_ag_core(b, core, p)
    if core != p:
        _fold_post(b, collective, p, core)


def _tree_levels(p: int) -> list[list[int]]:
    """Ranks grouped by depth in the complete binary tree rooted at 0."""
    depth = [0] * p
    levels: list[list[int]] = [[0]]
    for i in range(1, p):
        depth[i] = depth[(i - 1) // 2] + 1
        if depth[i] == len(levels):
            levels.append([])
        levels[depth[i]].append(i)
    return levels


def _subtree_chunks(p: int) -> list[set]:
    sub = [{i} for i in range(p)]
    for i in range(p - 1, 0, -1):
        sub[(i - 1) // 2] |= sub[i]
    return sub


def _binary_tree(b: _Builder, collective: str, p: int) -> None:
    levels = _tree_levels(p)
    sub = _subtree_chunks(p)
    everything = list(range(p))
    # Up: deepest level first; reductions carry the full chunk space,
    # gathers carry the sender's subtree chunks.
    for level in reversed(levels[1:]):
        if collective == "allgather":
            b.round([(i, (i - 1) // 2, c)
                     for i in level for c in sorted(sub[i])], reduce=False)
        else:
            b.round([(i, (i - 1) // 2, c)
                     for i in level for c in everything], reduce=True)
    # Down: root outward; reduce-scatter forwards each child only its
    # subtree's chunks, the all-* collectives broadcast everything.
    for level in levels[1:]:
        if collective == "reduce-scatter":
            b.round([((i - 1) // 2, i, c)
                     for i in level for c in sorted(sub[i])], reduce=False)
        else:
            b.round([((i - 1) // 2, i, c)
                     for i in level for c in everything], reduce=False)


_GENERATORS = {
    "ring": _ring,
    "recursive-doubling": _recursive_doubling,
    "binary-tree": _binary_tree,
    "rabenseifner": _rabenseifner,
}


class CollectiveMotif(Motif):
    """A collective schedule lowered onto the motif DAG representation."""

    def __init__(self, collective: str, algorithm: str, n_ranks: int,
                 total_bytes: int = 1 << 16,
                 compute_ns: float = 0.0) -> None:
        if collective not in COLLECTIVES:
            raise ParameterError(
                f"unknown collective {collective!r}; "
                f"options: {', '.join(COLLECTIVES)}"
            )
        if algorithm not in ALGORITHMS:
            raise ParameterError(
                f"unknown collective algorithm {algorithm!r}; "
                f"options: {', '.join(ALGORITHMS)}"
            )
        if n_ranks < 2:
            raise ParameterError("collectives need at least 2 ranks")
        if total_bytes < 1:
            raise ParameterError("total_bytes must be positive")
        super().__init__(n_ranks)
        self.collective = collective
        self.algorithm = algorithm
        self.total_bytes = total_bytes
        self.compute_ns = compute_ns
        self.name = f"{collective}/{algorithm}"
        self.chunk_sizes = chunk_sizes(total_bytes, n_ranks)
        self._builder: _Builder | None = None

    def _build(self) -> _Builder:
        if self._builder is None:
            b = _Builder(self.n_ranks, self.chunk_sizes, self.collective)
            _GENERATORS[self.algorithm](b, self.collective, self.n_ranks)
            self._builder = b
        return self._builder

    def schedule(self) -> list[ChunkSend]:
        """The chunk-level policy entries, in emission (= id) order."""
        return list(self._build().entries)

    @property
    def n_steps(self) -> int:
        """Schedule rounds emitted (ring allreduce: 2(p−1), ...)."""
        return self._build().step

    def generate(self) -> list[Message]:
        return [
            Message(e.entry_id, e.src, e.dst, e.size, list(e.deps),
                    self.compute_ns)
            for e in self._build().entries
        ]

    # -- terminal-state bookkeeping ------------------------------------

    def final_owners(self) -> list[int]:
        """Designated final owner rank per chunk (reduce-scatter contract).

        For allreduce/allgather every rank owns every chunk and the map
        is the identity.  The ring pipeline parks chunk ``c`` at rank
        ``(c−1) mod p`` (rank ``r`` ends the reduce-scatter phase fully
        owning chunk ``(r+1) mod p``); every other algorithm scatters
        chunk ``c`` to rank ``c``.
        """
        p = self.n_ranks
        if self.collective == "reduce-scatter" and self.algorithm == "ring":
            return [(c - 1) % p for c in range(p)]
        return list(range(p))

    def required_ownership(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """``(rank, chunk) -> establishing entry ids`` for the end state.

        Verifies chunk conservation: raises unless every required rank
        ends owning the complete (fully reduced or origin) version of
        every chunk the collective promises it.
        """
        b = self._build()
        p = self.n_ranks
        full = frozenset(range(p))
        if self.collective == "reduce-scatter":
            need = [(owner, c) for c, owner in enumerate(self.final_owners())]
        else:
            need = [(r, c) for r in range(p) for c in range(p)]
        out = {}
        for r, c in need:
            want = frozenset((c,)) if self.collective == "allgather" else full
            o = b.own.get((r, c))
            if o is None or o.contrib != want:
                raise SimulationError(
                    f"{self.name} over {p} ranks leaves rank {r} without "
                    f"the complete chunk {c}"
                )
            out[(r, c)] = o.deps
        return out

    def completion_deps(self) -> list[tuple[int, ...]]:
        """Per chunk: the entry ids whose delivery completes it everywhere.

        A chunk is complete when every rank the collective promises it to
        holds the final version; the returned ids are the union of those
        ranks' establishing deps.
        """
        per_chunk: list[dict] = [{} for _ in range(self.n_ranks)]
        for (_, c), deps in self.required_ownership().items():
            for d in deps:
                per_chunk[c][d] = None
        return [tuple(d) for d in per_chunk]

    def chunk_completion_times(self, t_delivered) -> list[float]:
        """Per-chunk completion instants from per-message delivery times.

        Inclusive of the run's final delivery: a chunk completed exactly
        at the last delivery cycle still gets a finite completion time
        (the `run(until=)`-style boundary the regression tests pin).
        Raises when any completing delivery is missing.
        """
        t = np.asarray(t_delivered, dtype=float)
        times = []
        for c, deps in enumerate(self.completion_deps()):
            if not deps:
                times.append(0.0)
                continue
            td = t[list(deps)]
            if not np.isfinite(td).all():
                raise SimulationError(
                    f"chunk {c} of {self.name} never completed: a "
                    "completing delivery is missing from the drain"
                )
            times.append(float(td.max()))
        return times


def run_collective(
    topo,
    routing,
    motif: CollectiveMotif,
    config,
    placement_seed: int = 0,
    placement: str = "random-nodes",
    backend: str | None = None,
) -> dict:
    """Run one collective on either engine; summary + per-chunk stats.

    Adds to the :func:`~repro.workloads.runner.run_motif` summary the
    collective identity, the verified chunk-ownership end state, and the
    per-chunk completion-time statistics.  The last chunk completes
    exactly at the run's final delivery (every entry is an ancestor of
    some completing delivery), which doubles as the exact-boundary drain
    check: an engine that dropped or excluded the boundary-cycle delivery
    fails here.
    """
    from repro.sim import capabilities
    from repro.workloads.runner import run_motif

    backend = backend if backend is not None else config.backend
    capabilities.require(backend, capabilities.COLLECTIVES,
                         context="run_collective")
    messages = motif.generate()
    out = run_motif(
        topo, routing, motif, config, placement_seed=placement_seed,
        placement=placement, backend=backend, messages=messages,
        collect_delivery_times=True,
    )
    t_del = out.pop("t_delivered_ns")
    done = motif.chunk_completion_times(t_del)
    if max(done) != out["makespan_ns"]:
        raise SimulationError(
            f"collective drain inconsistency: last chunk completes at "
            f"{max(done)} ns but the run's last delivery is at "
            f"{out['makespan_ns']} ns"
        )
    out["collective"] = motif.collective
    out["algorithm"] = motif.algorithm
    out["n_ranks"] = motif.n_ranks
    out["n_chunks"] = motif.n_ranks
    out["n_steps"] = motif.n_steps
    out["total_bytes"] = motif.total_bytes
    out["final_owners"] = motif.final_owners()
    out["ownership_complete"] = True  # required_ownership() raised otherwise
    out["chunk_done_ns"] = done
    out["chunk_done_mean_ns"] = float(np.mean(done))
    out["chunk_done_p99_ns"] = float(np.percentile(done, 99))
    out["chunk_done_max_ns"] = float(max(done))
    return out
