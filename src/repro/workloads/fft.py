"""FFT: sub-communicator all-to-all (multi-dimensional FFT transposes).

A 3D domain is decomposed along X and Y over an ``nx x ny`` rank grid; 1D
sub-communicators form along the X lines and along the Y lines.  Phase 1 is
an all-to-all inside every X sub-communicator, phase 2 an all-to-all inside
every Y sub-communicator, with phase 2's sends at each rank depending on
all of that rank's phase-1 receives.

``balanced`` uses a square grid (nx = ny); ``unbalanced`` a skewed one
(nx = 4 ny by default), which enlarges the all-to-all groups and — in the
paper's Fig. 9 — flips the winner from DragonFly to SpectralFly.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError
from repro.workloads.motif import Message, Motif


def _grid_with_aspect(n_ranks: int, target_aspect: float) -> tuple[int, int]:
    """Factor pair (nx, ny), nx * ny = n_ranks, with nx/ny closest to target."""
    if n_ranks < 4:
        raise ParameterError("FFT motif needs at least 4 ranks")
    best: tuple[int, int] | None = None
    best_err = float("inf")
    for ny in range(1, int(math.isqrt(n_ranks)) + 1):
        if n_ranks % ny:
            continue
        nx = n_ranks // ny
        if ny < 2 and nx > 2:
            # Degenerate 1-wide grids have an empty phase; avoid unless forced.
            continue
        err = abs(math.log(nx / ny) - math.log(target_aspect))
        if err < best_err:
            best_err = err
            best = (nx, ny)
    if best is None:
        raise ParameterError(f"cannot factor {n_ranks} into a 2D grid")
    return best


class FFTMotif(Motif):
    """Two-phase sub-communicator all-to-all over an ``nx x ny`` grid."""

    name = "fft"

    def __init__(
        self,
        grid: tuple[int, int],
        total_bytes_per_rank: int = 1 << 16,
        compute_ns: float = 0.0,
    ) -> None:
        nx, ny = grid
        super().__init__(nx * ny)
        self.grid = grid
        self.total_bytes_per_rank = total_bytes_per_rank
        self.compute_ns = compute_ns

    @classmethod
    def balanced(cls, n_ranks: int, **kw) -> "FFTMotif":
        """Most-square factorisation ``nx x ny = n_ranks`` (nx >= ny).

        The paper's balanced motif; for non-square counts (8192 ranks) this
        is the aspect-ratio-minimising grid (e.g. 128 x 64).
        """
        return cls(_grid_with_aspect(n_ranks, 1.0), **kw)

    @classmethod
    def unbalanced(cls, n_ranks: int, skew: float = 16.0, **kw) -> "FFTMotif":
        """Skewed grid with aspect ratio closest to ``skew``.

        Enlarges the all-to-all sub-communicators along one axis — the
        configuration where the paper's Fig. 9 flips the winner from
        DragonFly to SpectralFly.
        """
        return cls(_grid_with_aspect(n_ranks, skew), **kw)

    def _rank(self, x: int, y: int) -> int:
        return x * self.grid[1] + y

    def generate(self) -> list[Message]:
        nx, ny = self.grid
        messages: list[Message] = []
        mid = 0
        recv_phase1: dict[int, list[int]] = {r: [] for r in range(self.n_ranks)}
        # Phase 1: all-to-all along X rows (fixed x, varying y).
        size1 = max(1, self.total_bytes_per_rank // max(1, ny - 1))
        for x in range(nx):
            for y in range(ny):
                src = self._rank(x, y)
                for y2 in range(ny):
                    if y2 == y:
                        continue
                    dst = self._rank(x, y2)
                    m = Message(mid, src, dst, size1, deps=[],
                                compute_ns=self.compute_ns)
                    messages.append(m)
                    recv_phase1[dst].append(mid)
                    mid += 1
        # Phase 2: all-to-all along Y columns (fixed y, varying x).
        size2 = max(1, self.total_bytes_per_rank // max(1, nx - 1))
        for x in range(nx):
            for y in range(ny):
                src = self._rank(x, y)
                deps = recv_phase1[src]
                for x2 in range(nx):
                    if x2 == x:
                        continue
                    dst = self._rank(x2, y)
                    messages.append(
                        Message(mid, src, dst, size2, deps=list(deps),
                                compute_ns=self.compute_ns)
                    )
                    mid += 1
        return messages
