"""Dependency-driven motif execution on the network simulator.

Messages whose dependencies are all delivered become eligible and are
injected at their source rank's endpoint (after any per-message compute
delay).  The run finishes when every message has been delivered; the
returned makespan is the motif completion time — the quantity the paper's
Fig. 9/10 speedups are ratios of.

Two engines can execute the DAG, selected by ``backend`` (validated
against the capability matrix, :mod:`repro.sim.capabilities`):

* ``event`` — the reference: per-packet delivery callbacks drive the
  dependency bookkeeping one message at a time;
* ``batched`` — :meth:`repro.sim.batched.BatchedSimulator.run_closed_loop`,
  which vectorizes the same send schedule into per-cycle frontier arrays.
  Statistically equivalent, pinned by ``tests/test_sim_differential.py``.
"""

from __future__ import annotations

import numpy as np

from repro.routing.algorithms import RoutingPolicy
from repro.sim import capabilities
from repro.sim.batched import BatchedSimulator
from repro.sim.network import NetworkSimulator, SimConfig
from repro.sim.placement import place_ranks
from repro.topology.base import Topology
from repro.workloads.motif import Message, Motif


def run_motif(
    topo: Topology,
    routing: RoutingPolicy,
    motif: Motif,
    config: SimConfig,
    placement_seed: int = 0,
    placement: str = "random-nodes",
    backend: str | None = None,
    messages: list[Message] | None = None,
    collect_delivery_times: bool = False,
) -> dict:
    """Run ``motif`` on ``topo`` and return the stats summary + makespan.

    ``backend`` selects the engine (``None`` defers to ``config.backend``,
    whose default is the event reference).  ``messages`` optionally passes
    a pre-generated ``motif.generate()`` list — the benchmark harness uses
    it to keep workload generation out of the timed engine run.
    ``collect_delivery_times`` adds ``t_delivered_ns`` to the summary: the
    per-message delivery instant indexed by mid (the collective runner
    assembles per-chunk completion times from it).
    """
    backend = backend if backend is not None else config.backend
    capabilities.require(backend, capabilities.MOTIFS, context="run_motif")
    if messages is None:
        messages = motif.generate()
    if backend == "batched":
        return _run_batched(topo, routing, motif, messages, config,
                            placement_seed, placement,
                            collect_delivery_times)

    net = NetworkSimulator(topo, routing, config)
    rank_to_ep = place_ranks(
        motif.n_ranks, net.n_endpoints, seed=placement_seed, strategy=placement
    )

    by_id: dict[int, Message] = {m.mid: m for m in messages}
    pending_deps = {m.mid: len(m.deps) for m in messages}
    dependents: dict[int, list[int]] = {}
    for m in messages:
        for d in m.deps:
            dependents.setdefault(d, []).append(m.mid)

    def inject(m: Message, t: float) -> None:
        net.send(
            int(rank_to_ep[m.src_rank]),
            int(rank_to_ep[m.dst_rank]),
            size=m.size,
            tag=m.mid,
            t=t + m.compute_ns,
        )

    delivered_count = 0
    t_deliver = (
        np.full(len(messages), np.inf) if collect_delivery_times else None
    )

    def on_delivery(pkt, t: float) -> None:
        nonlocal delivered_count
        delivered_count += 1
        mid = pkt.tag
        if t_deliver is not None:
            t_deliver[mid] = t
        for dep_mid in dependents.get(mid, ()):
            pending_deps[dep_mid] -= 1
            if pending_deps[dep_mid] == 0:
                inject(by_id[dep_mid], t)

    net.on_delivery = on_delivery
    t0 = 0.0
    roots = [m for m in messages if not m.deps]
    for m in roots:
        inject(m, t0)
    stats = net.run()
    if delivered_count != len(messages):
        raise RuntimeError(
            f"motif deadlocked: {delivered_count}/{len(messages)} delivered "
            "(cyclic dependencies?)"
        )
    out = _summarise(stats, motif, messages,
                     float(net.stats.t_last_delivery))
    if t_deliver is not None:
        out["t_delivered_ns"] = t_deliver
    return out


def _run_batched(
    topo: Topology,
    routing: RoutingPolicy,
    motif: Motif,
    messages: list[Message],
    config: SimConfig,
    placement_seed: int,
    placement: str,
    collect_delivery_times: bool = False,
) -> dict:
    """The vectorized frontier path (see ``BatchedSimulator.run_closed_loop``)."""
    net = BatchedSimulator(topo, routing, config, tables=routing.tables)
    rank_to_ep = place_ranks(
        motif.n_ranks, net.n_endpoints, seed=placement_seed, strategy=placement
    )
    stats = net.run_closed_loop(messages, np.asarray(rank_to_ep))
    if net.closed_loop_delivered != len(messages):
        raise RuntimeError(
            f"motif deadlocked: {net.closed_loop_delivered}/{len(messages)} "
            "delivered (cyclic dependencies?)"
        )
    out = _summarise(stats, motif, messages, float(stats.t_last_delivery))
    if collect_delivery_times:
        out["t_delivered_ns"] = net._t_del.copy()
    return out


def _summarise(stats, motif: Motif, messages: list[Message],
               makespan: float) -> dict:
    out = stats.summary()
    out["motif"] = motif.name
    out["n_messages"] = len(messages)
    out["makespan_ns"] = makespan
    return out
