"""Table I: basic structural properties across five size classes.

Columns: routers, radix, diameter, average distance, girth, mu1 — for the
LPS, SlimFly, BundleFly and DragonFly instance of each class.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    cached_size_class,
    structural_row,
)

#: Paper's Table I values for EXPERIMENTS.md comparison:
#: topology -> (routers, radix, diameter, avg distance, girth, mu1)
PAPER_TABLE1 = {
    "LPS(11,7)": (168, 12, 3, 2.39, 3, 0.50),
    "SF(7)": (98, 11, 2, 1.89, 3, 0.62),
    "BF(13,3)": (234, 11, 3, 2.56, 3, 0.27),
    "DF(12)": (156, 12, 3, 2.70, 3, 0.08),
    "LPS(23,11)": (660, 24, 3, 2.35, 3, 0.65),
    "SF(17)": (578, 25, 2, 1.96, 3, 0.64),
    "BF(37,3)": (666, 23, 3, 2.61, 3, 0.13),
    "DF(24)": (600, 24, 3, 2.84, 3, 0.04),
    "LPS(53,17)": (2448, 54, 3, 2.32, 3, 0.74),
    "SF(37)": (2738, 55, 2, 1.98, 3, 0.65),
    "BF(97,4)": (3104, 54, 3, 2.76, 3, 0.07),
    "DF(53)": (2862, 53, 3, 2.93, 3, 0.02),
    "LPS(71,17)": (4896, 72, 4, 2.61, 4, 0.77),
    "SF(47)": (4418, 71, 2, 1.98, 3, 0.66),
    "BF(137,4)": (4384, 74, 3, 2.76, 3, 0.05),
    "DF(69)": (4830, 69, 3, 2.94, 3, 0.01),
    "LPS(89,19)": (6840, 90, 4, 2.61, 4, 0.80),
    "SF(59)": (6962, 89, 2, 1.99, 3, 0.66),
    "BF(157,5)": (7850, 85, 3, 2.82, 3, 0.06),
    "DF(85)": (7310, 85, 3, 2.95, 3, 0.01),
}


def run(classes: tuple[int, ...] = (1, 2, 3, 4, 5)) -> ExperimentResult:
    """Regenerate Table I for the requested size classes."""
    rows = []
    for cid in classes:
        topos = cached_size_class(cid)
        for fam in ("LPS", "SlimFly", "BundleFly", "DragonFly"):
            topo = topos[fam]
            row = {"class": cid}
            row.update(structural_row(topo))
            paper = PAPER_TABLE1.get(topo.name)
            if paper:
                row["paper_diam"] = paper[2]
                row["paper_avg"] = paper[3]
                row["paper_mu1"] = paper[5]
            rows.append(row)
    return ExperimentResult(
        experiment="Table I — basic structural properties",
        rows=rows,
        notes=(
            "paper_* columns quote the paper's Table I. All columns are "
            "expected to match to the printed precision (see EXPERIMENTS.md "
            "for the full measured-vs-paper record)."
        ),
    )


if __name__ == "__main__":
    import sys

    classes = tuple(int(c) for c in sys.argv[1:]) or (1, 2, 3, 4, 5)
    print(run(classes).to_text())
