"""Figure 4: the LPS design space and bisection bandwidth comparison.

Four panels:

* ``design_space`` (upper left) — feasible (vertices, radix) of LPS for
  p, q < 300.
* ``normalized_bisection`` (upper right) — normalized bisection bandwidth
  (cut / (nk/2)) of LPS instances for p, q < bounds.
* ``feasible_sizes`` (lower left) — feasible sizes per radix for all four
  families.
* ``bisection_comparison`` (lower right) — raw bisection bandwidth (METIS
  stand-in upper estimate + Fiedler lower bound) for the Table I classes.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, cached, cached_size_class
from repro.partition import bisection_bandwidth
from repro.spectral import bisection_lower_bound
from repro.topology import (
    build_lps,
    feasible_sizes_per_radix,
    lps_design_space,
)


def run_design_space(max_pq: int = 300) -> ExperimentResult:
    rows = lps_design_space(max_pq, max_pq)
    return ExperimentResult(
        experiment="Fig 4 (upper left) — LPS design space",
        rows=rows,
        notes=f"{len(rows)} feasible (p,q) pairs below {max_pq}",
    )


def run_normalized_bisection(
    max_p: int = 13, max_q: int = 18, repeats: int = 3
) -> ExperimentResult:
    """Normalized bisection bandwidth of LPS instances.

    Bounds default far below the paper's p,q < 100 sweep (those graphs reach
    ~10^6 vertices); raise them to extend the sweep.
    """
    rows = []
    for spec in lps_design_space(max_p, max_q):
        p, q = spec["p"], spec["q"]
        topo = cached(("LPS", p, q), lambda p=p, q=q: build_lps(p, q), disk=True)
        g = topo.graph
        cut = bisection_bandwidth(g, repeats=repeats)
        norm = cut / (g.n * topo.radix / 2.0)
        rows.append(
            {
                "p": p,
                "q": q,
                "radix": topo.radix,
                "vertices": g.n,
                "bisection": cut,
                "normalized": round(norm, 3),
                "fiedler_lower_norm": round(
                    bisection_lower_bound(g) / (g.n * topo.radix / 2.0), 3
                ),
            }
        )
    return ExperimentResult(
        experiment="Fig 4 (upper right) — normalized bisection bandwidth of LPS",
        rows=rows,
        notes="normalized = cut / (n k / 2); larger radix -> larger values, "
        "no decay with size at fixed radix (Ramanujan property)",
    )


def run_feasible_sizes(max_vertices: int = 10_000) -> ExperimentResult:
    feas = feasible_sizes_per_radix(max_vertices)
    rows = []
    for fam, pairs in feas.items():
        for radix, n in pairs:
            rows.append({"family": fam, "radix": radix, "vertices": n})
    return ExperimentResult(
        experiment="Fig 4 (lower left) — feasible topology sizes per radix",
        rows=rows,
        notes="LPS admits arbitrarily many sizes per radix; SlimFly/DragonFly "
        "have exactly one",
    )


def run_bisection_comparison(
    classes: tuple[int, ...] = (1, 2), repeats: int = 3
) -> ExperimentResult:
    rows = []
    for cid in classes:
        for fam, topo in cached_size_class(cid).items():
            g = topo.graph
            cut = bisection_bandwidth(g, repeats=repeats)
            rows.append(
                {
                    "class": cid,
                    "topology": topo.name,
                    "vertices": g.n,
                    "bisection_upper": cut,
                    "fiedler_lower": round(bisection_lower_bound(g), 1),
                    "normalized": round(cut / (g.n * topo.radix / 2.0), 3),
                }
            )
    return ExperimentResult(
        experiment="Fig 4 (lower right) — bisection bandwidth comparison",
        rows=rows,
        notes="LPS should lead SlimFly (up to ~39% in the paper), both far "
        "above BundleFly/DragonFly",
    )


if __name__ == "__main__":
    print(run_design_space().to_text())
    print()
    print(run_normalized_bisection().to_text())
    print()
    print(run_feasible_sizes().to_text())
    print()
    print(run_bisection_comparison().to_text())
