"""Table II: wire length and energy efficiency of laid-out topologies.

For each of four LPS/SlimFly size pairs: heuristic QAP layout in the
computed machine room, average/max wire length, electrical vs optical link
counts, bisection bandwidth, total power, and power per bisection
bandwidth.  SkyWalk instantiated in the same machine room provides the
wire-length context (parenthesised values in the paper's table).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, cached
from repro.layout import layout_topology, native_layout, power_report
from repro.layout.machine_room import MachineRoom
from repro.partition import bisection_bandwidth
from repro.topology import build_lps, build_skywalk, build_slimfly

#: The paper's Table II instance pairs (LPS vs similarly-sized SlimFly).
TABLE2_PAIRS: list[tuple[tuple[int, int], int]] = [
    ((11, 7), 9),
    ((19, 7), 13),
    ((23, 11), 17),
    ((29, 13), 23),
]


def run(
    pairs: list[tuple[tuple[int, int], int]] | None = None,
    seed: int = 0,
    skywalk_instances: int = 3,
    bisection_repeats: int = 2,
) -> ExperimentResult:
    """Regenerate Table II (default: first two size pairs for speed).

    ``skywalk_instances`` random SkyWalk draws are averaged (paper uses 20).
    """
    if pairs is None:
        pairs = TABLE2_PAIRS[:2]
    rows = []
    for (p, q), sf_q in pairs:
        for topo in (
            cached(("LPS", p, q), lambda p=p, q=q: build_lps(p, q), disk=True),
            cached(("SF", sf_q), lambda sf_q=sf_q: build_slimfly(sf_q), disk=True),
        ):
            layout = layout_topology(topo, seed=seed)
            cut = bisection_bandwidth(topo.graph, repeats=bisection_repeats,
                                      seed=seed)
            row = power_report(layout, cut)
            # SkyWalk wire statistics in the same machine room.
            sky_avgs, sky_maxes = [], []
            for i in range(skywalk_instances):
                sky = build_skywalk(topo.n_routers, topo.radix, seed=seed + i)
                # SkyWalk is generated in the machine room; its wire lengths
                # come from the native placement, not a QAP re-optimisation.
                sky_layout = native_layout(sky, room=MachineRoom(topo.n_routers))
                sky_avgs.append(sky_layout.mean_wire_m)
                sky_maxes.append(sky_layout.max_wire_m)
            row["skywalk_avg_wire_m"] = round(float(np.mean(sky_avgs)), 2)
            row["skywalk_max_wire_m"] = round(float(np.mean(sky_maxes)), 2)
            rows.append(row)
    return ExperimentResult(
        experiment="Table II — wire length and energy efficiency",
        rows=rows,
        notes="expected shape: LPS and SF within ~10% of each other on wire "
        "lengths; SkyWalk needs ~20-30% longer wires; LPS at least as power-"
        "efficient per unit bisection bandwidth (15% better at (29,13))",
    )


if __name__ == "__main__":
    print(run(pairs=TABLE2_PAIRS).to_text())
