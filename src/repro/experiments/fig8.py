"""Figure 8: Valiant vs minimal routing on SpectralFly.

Runs the four micro-benchmarks on the SpectralFly instance only, under both
minimal and Valiant routing, and reports Valiant's time normalised to
minimal.  Paper shape: Valiant helps the structured patterns (shuffle,
reverse, transpose) and *hurts* random traffic, whose minimal paths are
already diverse.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_synthetic_sim, speedup
from repro.topology import SIM_CONFIGS

PATTERNS = ("random", "shuffle", "reverse", "transpose")
LOADS = (0.1, 0.2, 0.3, 0.5, 0.6, 0.7)


def run(
    scale: str = "small",
    patterns: tuple[str, ...] = PATTERNS,
    loads: tuple[float, ...] = LOADS,
    packets_per_rank: int = 20,
    seed: int = 0,
    backend: str = "event",
) -> ExperimentResult:
    cfg = SIM_CONFIGS[scale]
    spec = cfg["topologies"]["SpectralFly"]
    topo = spec["build"]()
    rows = []
    for pattern in patterns:
        for load in loads:
            res_min = run_synthetic_sim(
                topo, "minimal", pattern, load,
                concentration=spec["concentration"],
                n_ranks=cfg["n_ranks"],
                packets_per_rank=packets_per_rank, seed=seed,
                backend=backend,
            )
            res_val = run_synthetic_sim(
                topo, "valiant", pattern, load,
                concentration=spec["concentration"],
                n_ranks=cfg["n_ranks"],
                packets_per_rank=packets_per_rank, seed=seed,
                backend=backend,
            )
            rows.append(
                {
                    "pattern": pattern,
                    "load": load,
                    "minimal_max_ns": round(res_min["max_latency_ns"]),
                    "valiant_max_ns": round(res_val["max_latency_ns"]),
                    "valiant_speedup_vs_minimal": round(
                        speedup(res_min, res_val), 3
                    ),
                }
            )
    return ExperimentResult(
        experiment=f"Fig 8 — Valiant vs minimal on SpectralFly ({scale} scale)",
        rows=rows,
        notes="expected shape: speedup > 1 for structured patterns at high "
        "load, < 1 for random traffic (Valiant doubles path length without "
        "adding useful diversity)",
    )


if __name__ == "__main__":
    import sys

    print(run(scale=sys.argv[1] if len(sys.argv) > 1 else "small").to_text())
