"""Experiment drivers — one module per table/figure of the paper.

Every module exposes ``run(...) -> ExperimentResult`` (rows of the same
quantities the paper reports) and is runnable as a script::

    python -m repro.experiments.table1
    python -m repro.experiments.fig6 --scale small

The pytest-benchmark harness under ``benchmarks/`` calls the same ``run``
functions, so the benchmark suite and the CLI always agree.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
