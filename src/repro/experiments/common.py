"""Shared experiment machinery: results, metric rows, topology caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.graphs.metrics import average_distance, diameter, girth
from repro.partition import bisection_bandwidth
from repro.routing import RoutingTables, make_routing
from repro.sim import capabilities
from repro.sim import (
    BatchedSimulator,
    NetworkSimulator,
    SimConfig,
    make_traffic,
    place_ranks,
)
from repro.sim.traffic import OpenLoopSource
from repro.spectral import mu1
from repro.topology import Topology, build_size_class
from repro.utils.tables import render_table


@dataclass
class ExperimentResult:
    """Rows + metadata for one experiment."""

    experiment: str
    rows: list[dict[str, Any]]
    notes: str = ""
    columns: list[str] | None = None

    def to_text(self) -> str:
        text = render_table(self.rows, columns=self.columns, title=self.experiment)
        if self.notes:
            text += f"\n\n{self.notes}"
        return text


# ---------------------------------------------------------------------------
# Topology construction caching (experiments share instances heavily).
#
# Two tiers: an in-process dict (every call site), and — for deterministic
# constructions — the content-addressed disk cache shared with the runner,
# so repeated CLI invocations and parallel worker processes skip the group
# closures and graph builds entirely.
_TOPO_CACHE: dict[tuple, Any] = {}


def cached(key: tuple, builder: Callable[[], Any], disk: bool = False) -> Any:
    """Memoise expensive constructions across experiments.

    ``disk=True`` additionally persists the value in the process-wide
    :class:`~repro.utils.diskcache.DiskCache`; only pass it for builders
    that are deterministic functions of ``key``.
    """
    if key not in _TOPO_CACHE:
        if disk:
            from repro.utils.diskcache import get_default_cache

            _TOPO_CACHE[key] = get_default_cache().memoize(
                ("experiments.cached",) + key, builder
            )
        else:
            _TOPO_CACHE[key] = builder()
    return _TOPO_CACHE[key]


def cached_size_class(class_id: int) -> dict[str, Topology]:
    return cached(
        ("size-class", class_id), lambda: build_size_class(class_id), disk=True
    )


def cached_tables(topo: Topology, oracle: str | None = None) -> RoutingTables:
    # RoutingTables itself disk-caches its distance matrix (the expensive
    # part) keyed by the graph hash, so the in-process tier suffices here.
    # ``oracle`` selects an on-demand distance oracle instead of the dense
    # matrix ("auto"/"cayley"/"landmark"/"dense"; see repro.routing.oracles)
    # — the only way to route on topologies too large to materialise O(n^2).
    if oracle is None:
        return cached(("tables", topo.name), lambda: RoutingTables(topo.graph))

    def _build() -> RoutingTables:
        from repro.routing.oracles import oracle_for

        return RoutingTables(topo.graph, oracle=oracle_for(topo, kind=oracle))

    return cached(("tables", topo.name, oracle), _build)


# ---------------------------------------------------------------------------
def structural_row(
    topo: Topology,
    with_bisection: bool = False,
    bisection_repeats: int = 3,
    seed: int = 0,
) -> dict[str, Any]:
    """One Table I row for a topology."""
    g = topo.graph
    vt = topo.vertex_transitive
    row = {
        "topology": topo.name,
        "routers": topo.n_routers,
        "radix": topo.radix,
        "diameter": diameter(g, sample=1 if vt else None),
        "avg_distance": round(average_distance(g), 2),
        "girth": girth(g, assume_vertex_transitive=vt, sample=None if vt else 64),
        "mu1": round(mu1(g), 2),
    }
    if with_bisection:
        row["bisection"] = bisection_bandwidth(g, repeats=bisection_repeats, seed=seed)
    return row


# ---------------------------------------------------------------------------
def build_synthetic_sim(
    topo: Topology,
    routing_name: str,
    pattern_name: str,
    offered_load: float,
    concentration: int,
    n_ranks: int,
    packets_per_rank: int = 20,
    seed: int = 0,
    config: SimConfig | None = None,
    faults=None,
    backend: str | None = None,
    oracle: str | None = None,
) -> NetworkSimulator | BatchedSimulator:
    """Assemble (but do not run) one open-loop synthetic-traffic simulation.

    Split out of :func:`run_synthetic_sim` so the perf benchmarks
    (``repro.runner.bench``) can time ``net.run()`` alone, excluding
    topology construction and table building.  ``faults`` optionally
    attaches a :class:`~repro.sim.faults.FaultSchedule` (the
    ``resilience-traffic`` experiments).

    ``backend`` selects the engine: ``"event"`` (the discrete-event
    reference), ``"batched"`` (the numpy cycle-driven engine, see
    docs/performance.md), or ``"sharded"`` (the process-sharded batched
    loop for open-loop runs at scale, see docs/scaling.md); ``None``
    defers to ``config.backend``.  The backend/feature contract lives in
    the capability matrix (:mod:`repro.sim.capabilities`).  ``oracle``
    selects an on-demand routing oracle instead of the dense distance
    matrix (see :func:`cached_tables`).
    """
    cfg = config or SimConfig(concentration=concentration)
    if config is None:
        cfg.concentration = concentration
    backend = backend if backend is not None else cfg.backend
    capabilities.require(backend, capabilities.OPEN_LOOP)
    capabilities.require_routing(backend, routing_name)
    if faults is not None:
        capabilities.require(backend, capabilities.FAULTS)
    if cfg.finite_buffers:
        capabilities.require(backend, capabilities.FINITE_BUFFERS)
    if cfg.channel is not None:
        capabilities.require(backend, capabilities.LOSSY_LINKS)
    tables = cached_tables(topo, oracle=oracle)
    routing = make_routing(routing_name, tables, seed=seed)
    if backend == "sharded":
        from repro.sim import ShardedSimulator

        net = ShardedSimulator(topo, routing, cfg, tables=tables, faults=faults)
    elif backend == "batched":
        net = BatchedSimulator(topo, routing, cfg, tables=tables, faults=faults)
    else:
        net = NetworkSimulator(topo, routing, cfg, tables=tables, faults=faults)
    rank_to_ep = place_ranks(n_ranks, net.n_endpoints, seed=seed + 1)
    pattern = make_traffic(pattern_name, n_ranks)
    for rank in range(n_ranks):
        net.add_open_loop_source(
            OpenLoopSource(
                rank,
                int(rank_to_ep[rank]),
                pattern,
                rank_to_ep,
                offered_load,
                packets_per_rank,
                seed=seed * 1_000_003 + rank,
            )
        )
    return net


def run_synthetic_sim(
    topo: Topology,
    routing_name: str,
    pattern_name: str,
    offered_load: float,
    concentration: int,
    n_ranks: int,
    packets_per_rank: int = 20,
    seed: int = 0,
    config: SimConfig | None = None,
    backend: str | None = None,
) -> dict[str, Any]:
    """One open-loop synthetic-traffic simulation; returns the stats summary.

    This is the engine behind Figs. 6-8: a Poisson source per rank at
    ``offered_load`` of the endpoint bandwidth, the named bit-permutation
    (or random) pattern, and the requested routing policy, on either
    simulation ``backend`` (see :func:`build_synthetic_sim`).
    """
    net = build_synthetic_sim(
        topo,
        routing_name,
        pattern_name,
        offered_load,
        concentration=concentration,
        n_ranks=n_ranks,
        packets_per_rank=packets_per_rank,
        seed=seed,
        config=config,
        backend=backend,
    )
    stats = net.run()
    out = stats.summary()
    out.update(
        topology=topo.name,
        routing=routing_name,
        pattern=pattern_name,
        offered_load=offered_load,
        backend=backend or (config.backend if config else "event"),
    )
    return out


#: The figure-of-merit the paper compares across topologies: "the maximum
#: time taken across all the messages under a particular offered load".
SPEEDUP_METRIC = "max_latency_ns"


def speedup(baseline: dict, other: dict, metric: str = SPEEDUP_METRIC) -> float:
    """Paper-style speedup: baseline time / other time (>1 = other faster)."""
    return baseline[metric] / other[metric]
