"""Inter-job contention: testing the discrepancy-property claim.

Section II argues that because Ramanujan graphs satisfy the discrepancy
inequality — *any* two vertex subsets are bottleneck-free, not just
bisections — "systems designed around Ramanujan graph topologies will be
less susceptible to performance degradation based on job schedule and
inter-job contention" (citing Bhatele et al. [16] for DragonFly's
sensitivity).  The paper does not design an experiment for this; this
module does:

1. run job A (a permutation workload on a random subset of nodes) alone;
2. run it again while job B (another random subset, uniform-random
   traffic) hammers the network;
3. report the interference slowdown = contended / isolated completion time.

Lower slowdown = better isolation.  SpectralFly's slowdown should be at or
below DragonFly's, whose group structure is exactly the kind of bottleneck
discrepancy forbids.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, cached_tables
from repro.routing import make_routing
from repro.sim import NetworkSimulator, SimConfig, make_traffic
from repro.sim.traffic import OpenLoopSource
from repro.topology import SIM_CONFIGS


def _run_jobs_tagged(
    topo,
    concentration: int,
    job_a_ranks: int,
    job_b_ranks: int,
    with_interference: bool,
    routing: str,
    load_a: float,
    load_b: float,
    packets_per_rank: int,
    seed: int,
) -> float:
    """Job A's max packet latency, measured via a tagged delivery hook."""
    tables = cached_tables(topo)
    policy = make_routing(routing, tables, seed=seed)
    net = NetworkSimulator(topo, policy, SimConfig(concentration=concentration),
                           tables=tables)
    rng = np.random.default_rng(seed)
    eps = rng.permutation(net.n_endpoints)
    a_eps = np.sort(eps[:job_a_ranks])
    b_eps = np.sort(eps[job_a_ranks : job_a_ranks + job_b_ranks])
    a_set = {int(e) for e in a_eps}

    worst = [0.0]

    def hook(pkt, t):
        if pkt.src_ep in a_set and pkt.dst_ep in a_set:
            worst[0] = max(worst[0], t - pkt.t_created)

    net.on_delivery = hook
    pat_a = make_traffic("shuffle", job_a_ranks)
    for rank in range(job_a_ranks):
        net.add_open_loop_source(
            OpenLoopSource(rank, int(a_eps[rank]), pat_a, a_eps, load_a,
                           packets_per_rank, seed=seed * 31 + rank)
        )
    if with_interference:
        pat_b = make_traffic("random", job_b_ranks)
        for rank in range(job_b_ranks):
            net.add_open_loop_source(
                OpenLoopSource(rank, int(b_eps[rank]), pat_b, b_eps, load_b,
                               packets_per_rank, seed=seed * 37 + rank)
            )
    net.run()
    return worst[0]


def run(
    scale: str = "small",
    job_fraction: float = 0.25,
    load_a: float = 0.3,
    load_b: float = 0.7,
    routing: str = "ugal",
    packets_per_rank: int = 15,
    seed: int = 0,
) -> ExperimentResult:
    """Interference slowdown per topology (job A shuffled, job B random)."""
    cfg = SIM_CONFIGS[scale]
    rows = []
    for name, spec in cfg["topologies"].items():
        topo = spec["build"]()
        n_eps = topo.n_routers * spec["concentration"]
        # Power-of-two rank counts so the bit-permutation pattern applies.
        a_ranks = 1 << int(np.log2(max(4, n_eps * job_fraction)))
        b_ranks = min(a_ranks * 2, n_eps - a_ranks)
        isolated = _run_jobs_tagged(
            topo, spec["concentration"], a_ranks, b_ranks, False,
            routing, load_a, load_b, packets_per_rank, seed,
        )
        contended = _run_jobs_tagged(
            topo, spec["concentration"], a_ranks, b_ranks, True,
            routing, load_a, load_b, packets_per_rank, seed,
        )
        rows.append(
            {
                "topology": name,
                "job_a_ranks": a_ranks,
                "job_b_ranks": b_ranks,
                "isolated_max_us": round(isolated / 1000, 2),
                "contended_max_us": round(contended / 1000, 2),
                "slowdown": round(contended / isolated, 3),
            }
        )
    return ExperimentResult(
        experiment=f"Inter-job contention (discrepancy property, {scale} scale)",
        rows=rows,
        notes="slowdown = job A max latency with job B running / alone; "
        "the discrepancy property predicts SpectralFly stays at or below "
        "the group-structured topologies",
    )


if __name__ == "__main__":
    print(run().to_text())
