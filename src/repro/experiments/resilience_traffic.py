"""Resilience under live traffic: throughput/latency vs. failed links.

The paper's Section IV-A resilience study (and Aksoy et al.'s spectral-gap
companion) damages graphs *statically* and reports structural metrics.
This experiment family closes the gap dynamically: a fraction of links
fails **mid-simulation** while open-loop traffic is in flight, routing
degrades onto the fault-masked next-hop tables (stale distances,
non-minimal fallback, drops — see ``docs/resilience.md``), and we measure
what the structural curves of Fig. 5 imply but cannot show: delivered
fraction, latency inflation, and throughput retention per topology family
and routing policy.

Timeline of each cell: traffic injects from t=0; at 25% of the nominal
injection horizon the drawn link set fails at once; when ``recover`` is
set, every failed link comes back at 75% of the horizon, so the run ends
on a healed network and the per-epoch stats expose the degraded window.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import (
    ExperimentResult,
    build_synthetic_sim,
    cached,
)
from repro.sim import SimConfig
from repro.sim.faults import FaultSchedule
from repro.topology import SIM_CONFIGS


def _cached_topo(scale: str, family: str):
    spec = SIM_CONFIGS[scale]["topologies"][family]
    return cached(("sim-topo", scale, family), spec["build"]), spec


def _round0(x: float) -> float:
    """``round(x)`` that passes NaN through (total-loss rows carry NaN
    latency aggregates rather than omitting the keys; see SimStats)."""
    return round(x) if x == x else x


def run(
    scale: str = "small",
    families: tuple[str, ...] = ("SpectralFly", "DragonFly", "SlimFly", "BundleFly"),
    routings: tuple[str, ...] = ("minimal", "ugal"),
    fail_fractions: tuple[float, ...] = (0.0, 0.05, 0.15),
    pattern: str = "random",
    offered_load: float = 0.5,
    packets_per_rank: int = 10,
    recover: bool = True,
    seed: int = 0,
    backend: str = "event",
) -> ExperimentResult:
    """Throughput/latency vs. failed-link fraction under live traffic.

    ``fail_fractions`` of the undirected links fail at once mid-run (the
    same sampling primitive as the offline Fig. 5 study, so the damaged
    sets match at equal seeds).  ``fail_fraction = 0.0`` runs the identical
    degraded machinery on a pristine network — the in-family baseline the
    other fractions are normalised against (``max_vs_pristine`` is relative
    to the *first* listed fraction, so keep 0.0 first).  The registry
    splits cells along ``families`` × ``routings`` only, so one cell always
    holds its whole fraction sweep and the normalisation stays inside it.

    Both engines run the full sweep: the event engine applies faults
    per-event on its handler path, the batched engine as epoch boundaries
    that rewrite its masked next-hop arrays (``backend="batched"``,
    statistically equivalent — see the faulted rows of the tolerance
    table in docs/performance.md).
    """
    cfg = SIM_CONFIGS[scale]
    n_ranks = cfg["n_ranks"]
    rows: list[dict[str, Any]] = []
    for family in families:
        topo, spec = _cached_topo(scale, family)
        for routing_name in routings:
            base_max_latency: float | None = None
            for frac in fail_fractions:
                sim_cfg = SimConfig(concentration=spec["concentration"])
                # Nominal injection horizon: packets_per_rank Poisson gaps
                # at the offered load (per source).
                horizon = (
                    packets_per_rank
                    * sim_cfg.packet_bytes
                    / (offered_load * sim_cfg.bytes_per_ns)
                )
                schedule = FaultSchedule.random_link_faults(
                    topo.graph,
                    frac,
                    t_fail=0.25 * horizon,
                    seed=seed * 7_919 + 1,
                    t_recover=0.75 * horizon if recover else None,
                )
                net = build_synthetic_sim(
                    topo,
                    routing_name,
                    pattern,
                    offered_load,
                    concentration=spec["concentration"],
                    n_ranks=n_ranks,
                    packets_per_rank=packets_per_rank,
                    seed=seed,
                    config=sim_cfg,
                    faults=schedule,
                    backend=backend,
                )
                stats = net.run()
                s = stats.summary()
                if frac == fail_fractions[0] and base_max_latency is None:
                    base_max_latency = s.get("max_latency_ns", 0.0)
                rows.append(
                    {
                        "topology": topo.name,
                        "routing": routing_name,
                        "failed": frac,
                        "delivered_frac": round(s["delivered_fraction"], 4),
                        "dropped": s["dropped"],
                        "requeued": s["requeued"],
                        "nonminimal_hops": s["nonminimal_hops"],
                        "mean_latency_ns": _round0(s.get("mean_latency_ns", 0.0)),
                        "p99_latency_ns": _round0(s.get("p99_latency_ns", 0.0)),
                        "max_vs_pristine": round(
                            s.get("max_latency_ns", 0.0) / base_max_latency, 3
                        )
                        if base_max_latency
                        else 0.0,
                        "throughput_gbps": round(s.get("throughput_gbps", 0.0), 2),
                        "fault_epochs": len(stats.epochs),
                    }
                )
    return ExperimentResult(
        experiment=(
            f"Resilience under live traffic — {pattern} pattern at load "
            f"{offered_load} ({scale} scale"
            + (", with recovery)" if recover else ")")
        ),
        rows=rows,
        notes="expected shape: delivered fraction degrades gracefully with "
        "failed links on the expander families (SpectralFly/SlimFly/"
        "BundleFly) and faster on DragonFly, whose minimal paths concentrate "
        "on few global links; UGAL recovers more of the lost throughput "
        "than minimal because Valiant detours start from live queues",
    )


if __name__ == "__main__":
    print(run().to_text())
