"""Spectral survey: how far classical topologies are from Ramanujan.

Not a numbered artifact of the paper, but the quantitative backdrop of its
Section II: the companion survey [10] (same authors) shows hypercubes,
tori and friends have spectral gaps far from optimal, which is the gap
SpectralFly closes.  Reports lambda(G) / (2 sqrt(k-1)) per family, plus an
Xpander instance for the related-work comparison the paper skipped.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.spectral.survey import classical_survey
from repro.topology.xpander import build_xpander, xpander_quality


def run(seed: int = 0, with_xpander: bool = True) -> ExperimentResult:
    rows = classical_survey(seed=seed)
    if with_xpander:
        xp = build_xpander(degree=12, target_routers=168, seed=seed)
        q = xpander_quality(xp)
        rows.append(
            {
                "topology": q["name"] + " (2-lift)",
                "n": q["routers"],
                "radix": 12,
                "lambda": q["lambda"],
                "ramanujan_bound": q["ramanujan_bound"],
                "lambda_over_bound": q["ratio"],
                "mu1": None,
                "ramanujan": q["ratio"] <= 1.0,
            }
        )
    return ExperimentResult(
        experiment="Spectral survey — distance from the Ramanujan bound",
        rows=rows,
        notes="lambda_over_bound <= 1 means optimal expansion; hypercubes/"
        "tori exceed it badly (the [10] observation), Jellyfish and Xpander "
        "sit just above, LPS at or below",
    )


if __name__ == "__main__":
    print(run().to_text())
