"""Saturation analysis: where does each topology stop absorbing load?

Section VI observes that "at or beyond 70% of the network capacity, the
network becomes saturated".  This experiment makes that observation
measurable: sweep the offered load, record mean latency, and report the
saturation knee — the lowest load whose mean latency exceeds
``knee_factor`` x the lowest-load latency.  Topologies with more bisection
bandwidth and path diversity saturate later; SpectralFly's knee should sit
at or above every competitor's under permutation traffic.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_synthetic_sim
from repro.topology import SIM_CONFIGS

DEFAULT_LOADS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def find_knee(latencies: list[tuple[float, float]], knee_factor: float) -> float | None:
    """Lowest load whose latency exceeds knee_factor x the base latency.

    ``latencies`` is a list of (load, mean latency) sorted by load; returns
    None when the sweep never saturates.
    """
    if not latencies:
        return None
    base = latencies[0][1]
    for load, lat in latencies:
        if lat > knee_factor * base:
            return load
    return None


def run(
    scale: str = "small",
    pattern: str = "shuffle",
    loads: tuple[float, ...] = DEFAULT_LOADS,
    routing: str = "ugal",
    packets_per_rank: int = 15,
    knee_factor: float = 1.5,
    seed: int = 0,
    backend: str = "event",
) -> ExperimentResult:
    cfg = SIM_CONFIGS[scale]
    rows = []
    for name, spec in cfg["topologies"].items():
        topo = spec["build"]()
        series = []
        for load in loads:
            res = run_synthetic_sim(
                topo,
                routing,
                pattern,
                load,
                concentration=spec["concentration"],
                n_ranks=cfg["n_ranks"],
                packets_per_rank=packets_per_rank,
                seed=seed,
                backend=backend,
            )
            series.append((load, res["mean_latency_ns"]))
        knee = find_knee(series, knee_factor)
        rows.append(
            {
                "topology": name,
                "pattern": pattern,
                "routing": routing,
                "base_latency_ns": round(series[0][1]),
                "top_latency_ns": round(series[-1][1]),
                "saturation_load": knee if knee is not None else ">max",
                "latency_series": "/".join(f"{int(l)}" for _, l in series),
            }
        )
    return ExperimentResult(
        experiment=f"Saturation sweep — {pattern} traffic, {routing} routing "
        f"({scale} scale)",
        rows=rows,
        notes=f"saturation_load = first load with mean latency > "
        f"{knee_factor}x the {loads[0]:.0%}-load latency; higher is better",
    )


if __name__ == "__main__":
    print(run().to_text())
