"""Collectives vs topology — completion-time ranking (extension).

The procurement question the paper's motif figures approximate: which
topology family finishes the collectives that dominate modern workloads
(allreduce/allgather/reduce-scatter) fastest, and does the answer depend
on the algorithm and job size?  Each sweep cell runs one collective ×
algorithm × rank-count combination across all four families on the same
placement/routing seeds and reports the completion time, per-chunk
completion statistics, the within-cell ranking (1 = fastest), and the
speedup over the DragonFly baseline — the same figure of merit as
Fig. 9/10.

Backend-agnostic: the schedules lower to plain motif DAGs
(:mod:`repro.workloads.collectives`), so ``--set backend=batched`` runs
the whole sweep on the vectorized engine.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, cached, cached_tables
from repro.routing import make_routing
from repro.sim import SimConfig
from repro.topology import SIM_CONFIGS
from repro.workloads import CollectiveMotif, run_collective
from repro.workloads.collectives import ALGORITHMS, COLLECTIVES


def _cached_topo(scale: str, family: str):
    spec = SIM_CONFIGS[scale]["topologies"][family]
    return cached(("sim-topo", scale, family), spec["build"]), spec


def run(
    scale: str = "small",
    collectives: tuple[str, ...] = COLLECTIVES,
    algorithms: tuple[str, ...] = ALGORITHMS,
    n_nodes: tuple[int, ...] = (8, 16),
    total_bytes: int = 1 << 14,
    routing: str = "minimal",
    seed: int = 0,
    baseline: str = "DragonFly",
    backend: str = "event",
) -> ExperimentResult:
    """Sweep topology family × collective × algorithm × node count.

    ``n_nodes`` is the collective's rank count (job size); ranks place
    onto the machine with the paper's random-node under-subscription
    protocol, identically across families within a cell.
    """
    cfg = SIM_CONFIGS[scale]
    rows = []
    for coll in collectives:
        for algo in algorithms:
            for p in n_nodes:
                results = {}
                for family in cfg["topologies"]:
                    topo, spec = _cached_topo(scale, family)
                    tables = cached_tables(topo)
                    policy = make_routing(routing, tables, seed=seed)
                    motif = CollectiveMotif(
                        coll, algo, p, total_bytes=total_bytes
                    )
                    results[family] = run_collective(
                        topo, policy, motif,
                        SimConfig(concentration=spec["concentration"]),
                        placement_seed=seed + 1, backend=backend,
                    )
                base_t = results[baseline]["makespan_ns"]
                order = sorted(
                    results, key=lambda f: results[f]["makespan_ns"]
                )
                for family in cfg["topologies"]:
                    res = results[family]
                    rows.append({
                        "collective": coll,
                        "algorithm": algo,
                        "n_nodes": p,
                        "topology": family,
                        "routing": routing,
                        "completion_us": round(
                            res["makespan_ns"] / 1000.0, 2),
                        "chunk_mean_us": round(
                            res["chunk_done_mean_ns"] / 1000.0, 2),
                        "chunk_p99_us": round(
                            res["chunk_done_p99_ns"] / 1000.0, 2),
                        "speedup_vs_df": round(
                            base_t / res["makespan_ns"], 3),
                        "rank": order.index(family) + 1,
                    })
    return ExperimentResult(
        experiment=(
            f"Collectives — completion-time ranking, {routing} routing "
            f"({scale} scale)"
        ),
        rows=rows,
        notes="rank 1 = fastest family within a (collective, algorithm, "
        "n_nodes) cell; speedups are vs DragonFly on identical seeds; "
        "chunk columns summarize per-chunk completion times "
        "(docs/collectives.md)",
    )


if __name__ == "__main__":
    import sys

    print(run(scale=sys.argv[1] if len(sys.argv) > 1 else "small").to_text())
