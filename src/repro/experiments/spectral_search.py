"""Spectral design-space search — searched candidates vs the catalog.

The paper's families (LPS, SlimFly) hit only a sparse lattice of
``(radix, size)`` points; the ROADMAP's last open item asks whether
*searched* graphs can fill the gaps.  Each sweep cell fixes a
``(seed_family, radix, search_budget)`` combination and

1. builds the search seed (a Jellyfish sample, or a catalog instance —
   Paley / LPS / SlimFly — at that radix),
2. refines it with degree-preserving double-edge-swap annealing
   (:mod:`repro.search.swap`) at equal ``(n, radix)``,
3. doubles it with a signing-searched 2-lift (:mod:`repro.search.lift`)
   to a ``2n`` size the algebraic families can't hit, and
4. ranks every candidate against its seed and fresh Jellyfish references
   on ``lambda(G)``, Ramanujan-bound slack, and simulated latency
   (open-loop random traffic through the same engines as Fig. 6).

Not every family exists at every radix (Paley needs ``q = 2*radix + 1``
a prime power ``= 1 (mod 4)``, etc.); infeasible combinations are skipped
and listed in the notes, so the cross-product presets stay rectangular.

Everything is seeded: the cell seed is a deterministic function of the
experiment seed and the cell axes, so re-runs reproduce candidates (and
their latency figures) bit-identically.
"""

from __future__ import annotations

import zlib

from repro.errors import ParameterError
from repro.experiments.common import ExperimentResult, run_synthetic_sim
from repro.spectral.bounds import ramanujan_bound
from repro.spectral.eigen import is_ramanujan, lambda_g, spectral_gap
from repro.topology import build_jellyfish, build_lps, build_paley, build_slimfly
from repro.topology.base import Topology
from repro.topology.searched import lifted_topology, swap_searched_topology

#: Catalog seeds per (family, radix).  ``jellyfish`` is feasible at any
#: radix (handled separately); the algebraic families only exist where
#: their number theory allows.
_CATALOG_SEEDS = {
    ("paley", 6): lambda: build_paley(13),
    ("paley", 14): lambda: build_paley(29),
    ("lps", 4): lambda: build_lps(3, 5),
    ("slimfly", 7): lambda: build_slimfly(5),
}

SEED_FAMILIES = ("jellyfish", "paley", "lps", "slimfly")


def _cell_seed(seed: int, family: str, radix: int, budget: int) -> int:
    """Deterministic per-cell RNG seed (stable across runs and processes)."""
    key = f"{family}:{radix}:{budget}".encode()
    return (int(seed) * 7_919 + zlib.crc32(key)) % (2**31 - 1)


def _seed_topology(
    family: str, radix: int, n_routers: int, cell_seed: int
) -> Topology | None:
    if family == "jellyfish":
        if radix >= n_routers or (n_routers * radix) % 2:
            return None
        return build_jellyfish(n_routers, radix, seed=cell_seed)
    builder = _CATALOG_SEEDS.get((family, radix))
    return builder() if builder else None


def _latency(topo: Topology, routing, load, concentration, packets_per_rank,
             n_ranks, cell_seed, backend) -> dict:
    ranks = min(n_ranks, topo.endpoints(concentration))
    return run_synthetic_sim(
        topo, routing, "random", load,
        concentration=concentration, n_ranks=ranks,
        packets_per_rank=packets_per_rank, seed=cell_seed, backend=backend,
    )


def run(
    seed_families: tuple[str, ...] = ("jellyfish", "paley"),
    radixes: tuple[int, ...] = (4, 6),
    budgets: tuple[int, ...] = (80, 200),
    n_routers: int = 44,
    schedule: str = "anneal",
    objective: str = "spectral_gap",
    restarts: int = 2,
    passes: int = 2,
    routing: str = "minimal",
    load: float = 0.5,
    concentration: int = 2,
    n_ranks: int = 64,
    packets_per_rank: int = 6,
    seed: int = 0,
    backend: str = "event",
) -> ExperimentResult:
    """Sweep seed-family × radix × search-budget; rank candidates."""
    unknown = set(seed_families) - set(SEED_FAMILIES)
    if unknown:
        raise ParameterError(
            f"unknown seed families {sorted(unknown)}; options: {SEED_FAMILIES}"
        )
    rows: list[dict] = []

    def _blank_row(family, radix, budget):
        """Explicit row for an infeasible (family, radix) — no silent skips."""
        return {
            "seed_family": family, "radix": radix, "budget": budget,
            "role": "skipped", "name": f"no {family} instance at radix {radix}",
            "routers": "", "lambda": "", "spectral_gap": "",
            "ramanujan_slack": "", "is_ramanujan": "", "beats_seed": "",
            "rank": "", "mean_latency_ns": "", "max_latency_ns": "",
        }

    for family in seed_families:
        for radix in radixes:
            for budget in budgets:
                cseed = _cell_seed(seed, family, radix, budget)
                seed_topo = _seed_topology(family, radix, n_routers, cseed)
                if seed_topo is None:
                    rows.append(_blank_row(family, radix, budget))
                    continue

                swapped = swap_searched_topology(
                    seed_topo.n_routers, radix, budget=budget, seed=cseed,
                    schedule=schedule, objective=objective,
                    seed_topology=seed_topo,
                )
                # Lift the strongest n-vertex graph we have: the searched
                # candidate for random seeds, the algebraic graph itself
                # for catalog seeds (its structure is the point of lifting).
                lift_base = swapped if family == "jellyfish" else seed_topo
                lifted = lifted_topology(
                    lift_base, seed=cseed, restarts=restarts, passes=passes,
                )

                candidates = [("seed", seed_topo), ("swap", swapped),
                              ("lift", lifted)]
                if family != "jellyfish":
                    ref = build_jellyfish(
                        seed_topo.n_routers, radix, seed=cseed + 1)
                    candidates.append(("jellyfish-ref", ref))
                ref2n = build_jellyfish(
                    2 * seed_topo.n_routers, radix, seed=cseed + 2)
                candidates.append(("jellyfish-2n-ref", ref2n))

                stats = {}
                for role, topo in candidates:
                    lam = lambda_g(topo.graph)
                    stats[role] = {
                        "lambda": lam,
                        "gap": spectral_gap(topo.graph),
                        "slack": ramanujan_bound(topo.radix) - lam,
                        "ram": is_ramanujan(topo.graph),
                    }
                beats = stats["swap"]["gap"] > stats["seed"]["gap"]

                # Rank on lambda within each size level (n vs 2n).
                for level in ({"seed", "swap", "jellyfish-ref"},
                              {"lift", "jellyfish-2n-ref"}):
                    group = [r for r, _ in candidates if r in level]
                    order = sorted(group, key=lambda r: stats[r]["lambda"])
                    for r in group:
                        stats[r]["rank"] = order.index(r) + 1

                for role, topo in candidates:
                    sim = _latency(topo, routing, load, concentration,
                                   packets_per_rank, n_ranks, cseed, backend)
                    s = stats[role]
                    rows.append({
                        "seed_family": family,
                        "radix": radix,
                        "budget": budget,
                        "role": role,
                        "name": topo.name,
                        "routers": topo.n_routers,
                        "lambda": round(s["lambda"], 4),
                        "spectral_gap": round(s["gap"], 4),
                        "ramanujan_slack": round(s["slack"], 4),
                        "is_ramanujan": s["ram"],
                        "beats_seed": (beats if role == "swap" else ""),
                        "rank": s["rank"],
                        "mean_latency_ns": round(sim["mean_latency_ns"], 1),
                        "max_latency_ns": round(sim["max_latency_ns"], 1),
                    })

    notes = (
        "rank 1 = smallest lambda(G) within a cell's size level (n-vertex "
        "candidates vs each other, 2n-vertex lift vs its Jellyfish "
        "reference); ramanujan_slack = 2*sqrt(k-1) - lambda (positive = "
        "inside the bound); beats_seed marks swap candidates whose "
        "spectral gap strictly exceeds their seed's; latency via open-loop "
        f"random traffic, {routing} routing, load {load} (docs/search.md)."
    )
    return ExperimentResult(
        experiment="Spectral design-space search — swaps + 2-lifts vs the catalog",
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":
    print(run().to_text())
