"""Figure 10: Ember motifs under UGAL routing — speedup vs DragonFly-UGAL."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig9 import run as _run_fig9


def run(scale: str = "small", seed: int = 0,
        motif_names: tuple[str, ...] | None = None,
        backend: str = "event") -> ExperimentResult:
    res = _run_fig9(scale=scale, routing="ugal", seed=seed,
                    motif_names=motif_names, backend=backend)
    res.experiment = f"Fig 10 — Ember motifs, UGAL routing ({scale} scale)"
    res.notes = (
        "expected shape: SpectralFly ahead on Halo3D-26/Sweep3D; DragonFly "
        "ahead on the FFT motifs with SpectralFly second (~90% of DragonFly "
        "on balanced FFT)"
    )
    return res


if __name__ == "__main__":
    import sys

    print(run(scale=sys.argv[1] if len(sys.argv) > 1 else "small").to_text())
