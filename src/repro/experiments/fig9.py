"""Figure 9: Ember motifs under minimal routing — speedup vs DragonFly.

Halo3D-26, Sweep3D, and the balanced/unbalanced FFT motifs run on all four
topologies with minimal routing; the figure of merit is the motif makespan
relative to DragonFly.  Paper shape: SpectralFly ~1.2x on Halo3D-26,
~1.4x on Sweep3D, DragonFly slightly ahead on balanced FFT (group-structure
alignment), SpectralFly ahead again on unbalanced FFT.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.routing import make_routing
from repro.experiments.common import cached_tables
from repro.sim import SimConfig
from repro.topology import SIM_CONFIGS
from repro.workloads import FFTMotif, Halo3D26Motif, Sweep3DMotif, run_motif
from repro.workloads.halo3d import default_halo_grid


def _motifs(n_ranks: int) -> dict:
    import math

    side = int(math.isqrt(n_ranks))
    return {
        "Halo3D-26": Halo3D26Motif(default_halo_grid(n_ranks), iterations=2),
        "Sweep3D": Sweep3DMotif((side, side), sweeps=2),
        "FFT (balanced)": FFTMotif.balanced(n_ranks),
        "FFT (unbalanced)": FFTMotif.unbalanced(n_ranks),
    }


def run(
    scale: str = "small",
    routing: str = "minimal",
    seed: int = 0,
    motif_names: tuple[str, ...] | None = None,
    baseline: str = "DragonFly",
    backend: str = "event",
) -> ExperimentResult:
    """Run the Fig. 9 motif sweep at ``scale``.

    ``backend`` selects the simulation engine for every motif run:
    ``event`` (reference) or ``batched`` (the vectorized frontier runner,
    statistically equivalent — see docs/performance.md).
    """
    cfg = SIM_CONFIGS[scale]
    n_ranks = cfg["n_ranks"]
    motifs = _motifs(n_ranks)
    if motif_names is not None:
        motifs = {k: v for k, v in motifs.items() if k in motif_names}
    rows = []
    for motif_name, motif in motifs.items():
        results = {}
        for name, spec in cfg["topologies"].items():
            topo = spec["build"]()
            tables = cached_tables(topo)
            policy = make_routing(routing, tables, seed=seed)
            sim_cfg = SimConfig(concentration=spec["concentration"])
            results[name] = run_motif(
                topo, policy, motif, sim_cfg, placement_seed=seed + 1,
                backend=backend,
            )
        base_t = results[baseline]["makespan_ns"]
        for name, res in results.items():
            rows.append(
                {
                    "motif": motif_name,
                    "topology": name,
                    "routing": routing,
                    "makespan_us": round(res["makespan_ns"] / 1000.0, 2),
                    "speedup_vs_df": round(base_t / res["makespan_ns"], 3),
                }
            )
    return ExperimentResult(
        experiment=f"Fig 9 — Ember motifs, {routing} routing ({scale} scale)",
        rows=rows,
        notes="expected shape: SpectralFly ahead on Halo3D-26/Sweep3D and "
        "unbalanced FFT; DragonFly competitive on balanced FFT",
    )


if __name__ == "__main__":
    import sys

    print(run(scale=sys.argv[1] if len(sys.argv) > 1 else "small").to_text())
