"""Figure 5: structural properties under random link failures.

For each topology of a size class and each failure proportion, deletes that
share of links uniformly at random and measures diameter, average hop count
and bisection bandwidth, averaged over CV-stopped trials (paper
footnote 1).  The paper plots the ~600-vertex class (failures up to 60%)
and the ~5K class (up to 80%).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, cached_size_class
from repro.graphs.failures import resilience_trials
from repro.graphs.metrics import average_distance, diameter
from repro.partition import bisection_bandwidth


def run(
    class_id: int = 2,
    proportions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    seed: int = 0,
    cv_target: float = 0.10,
    max_trials_per_batch: int = 3,
    families: tuple[str, ...] = ("LPS", "SlimFly", "BundleFly", "DragonFly"),
) -> ExperimentResult:
    """Resilience curves for one size class.

    ``max_trials_per_batch`` bounds the CV-stopping escalation so the
    default run finishes quickly; raise it (the paper effectively uses
    hundreds of trials) for tighter error bars.
    """
    topos = cached_size_class(class_id)
    rows = []
    for fam in families:
        topo = topos[fam]
        for prop in proportions:
            if prop == 0.0:
                g = topo.graph
                rows.append(
                    {
                        "topology": topo.name,
                        "failed": 0.0,
                        "diameter": float(diameter(g, sample=1 if topo.vertex_transitive else None)),
                        "avg_hops": round(average_distance(g), 3),
                        "bisection": float(bisection_bandwidth(g, repeats=2, seed=seed)),
                        "trials": 1,
                    }
                )
                continue
            rng = np.random.default_rng(seed)
            diam_mean, n1 = resilience_trials(
                topo.graph, prop, lambda g: float(diameter(g)),
                seed=rng, cv_target=cv_target,
                max_trials_per_batch=max_trials_per_batch,
            )
            dist_mean, _ = resilience_trials(
                topo.graph, prop, average_distance,
                seed=rng, cv_target=cv_target,
                max_trials_per_batch=max_trials_per_batch,
            )
            bw_mean, _ = resilience_trials(
                topo.graph, prop,
                lambda g: float(bisection_bandwidth(g, repeats=1, seed=0)),
                seed=rng, cv_target=cv_target,
                max_trials_per_batch=max_trials_per_batch,
            )
            rows.append(
                {
                    "topology": topo.name,
                    "failed": prop,
                    "diameter": round(diam_mean, 2),
                    "avg_hops": round(dist_mean, 3),
                    "bisection": round(bw_mean, 1),
                    "trials": n1,
                }
            )
    return ExperimentResult(
        experiment=f"Fig 5 — structural properties under link failures (class {class_id})",
        rows=rows,
        notes="expected shape: SlimFly diameter jumps from 2 to ~4 at 10% "
        "failures while LPS grows more slowly; LPS keeps the bisection lead; "
        "SlimFly keeps the lowest average hop count",
    )


if __name__ == "__main__":
    print(run().to_text())
