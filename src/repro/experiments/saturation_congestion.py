"""Saturation under congestion: does the routing ranking survive realism?

The paper's simulations (and every sweep up to this one) assume ideal
links and unbounded router buffers, where minimal routing wins almost
every benign-traffic cell — shortest paths, no detours, nothing pushes
back.  This experiment re-runs the routing comparison with the two
realism knobs the congestion work added (``docs/congestion.md``):

* **finite buffers** — credit/backpressure flow control with one-packet
  input buffers, where a hot link stalls its whole upstream tree;
* **lossy links** — per-crossing loss with bounded retransmit, which
  taxes long paths more than short ones (more crossings, more draws).

The headline observable is the *routing ranking* per cell — the policies
ordered by mean latency — and whether it differs from the ideal-network
ranking of the same family.  Under tight buffers the ranking inverts on
every paper family: minimal routing concentrates traffic onto few links,
and once those links push back, adaptive spreading (UGAL) overtakes it —
exactly the regime argument for adaptive routing that ideal-network
sweeps cannot show (``tests/test_experiments_congestion.py`` pins one
such inversion).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, build_synthetic_sim
from repro.sim import ChannelConfig, SimConfig
from repro.topology import SIM_CONFIGS

#: (buffer_packets, loss_prob) regimes: ideal baseline first (the ranking
#: reference), then each knob alone, then both stacked.  buffer_packets=0
#: means unbounded buffers; loss_prob=0 means no channel attached.
REGIMES = ((0, 0.0), (1, 0.0), (0, 0.05), (1, 0.05))


def _ranking(latencies: dict[str, float]) -> tuple[str, ...]:
    return tuple(sorted(latencies, key=lambda r: latencies[r]))


def run(
    scale: str = "small",
    families: tuple[str, ...] = (
        "SpectralFly", "DragonFly", "SlimFly", "BundleFly"
    ),
    routings: tuple[str, ...] = ("minimal", "valiant", "ugal"),
    regimes: tuple[tuple[int, float], ...] = REGIMES,
    pattern: str = "tornado",
    load: float = 0.55,
    packets_per_rank: int = 10,
    max_attempts: int = 2,
    seed: int = 0,
    backend: str = "event",
) -> ExperimentResult:
    cfg = SIM_CONFIGS[scale]
    rows = []
    for name in families:
        spec = cfg["topologies"][name]
        topo = spec["build"]()
        baseline_ranking: tuple[str, ...] | None = None
        for buffer_packets, loss_prob in regimes:
            channel = None
            if loss_prob > 0.0:
                channel = ChannelConfig(
                    loss_prob=loss_prob, jitter_ns=10.0,
                    max_attempts=max_attempts, backoff_ns=30.0, seed=seed,
                )
            sim_cfg = SimConfig(
                concentration=spec["concentration"],
                finite_buffers=buffer_packets > 0,
                buffer_bytes=max(buffer_packets, 1) * 4096,
                channel=channel,
            )
            latencies: dict[str, float] = {}
            delivered_min = 1.0
            dropped = 0
            retransmits = 0
            for routing in routings:
                net = build_synthetic_sim(
                    topo, routing, pattern, load,
                    concentration=spec["concentration"],
                    n_ranks=cfg["n_ranks"],
                    packets_per_rank=packets_per_rank, seed=seed,
                    config=sim_cfg, backend=backend,
                )
                stats = net.run()
                out = stats.summary()
                latencies[routing] = out["mean_latency_ns"]
                delivered_min = min(delivered_min, out["delivered_fraction"])
                dropped += stats.n_dropped
                retransmits += stats.n_retransmits
            ranking = _ranking(latencies)
            if baseline_ranking is None:
                # regimes[0] is the ideal network: the ranking reference.
                baseline_ranking = ranking
            rows.append(
                {
                    "topology": name,
                    "buffers": (
                        "unbounded" if buffer_packets == 0
                        else f"{buffer_packets} pkt"
                    ),
                    "loss_prob": loss_prob,
                    "best_routing": ranking[0],
                    "ranking": ">".join(ranking),
                    "ranking_inverted": ranking != baseline_ranking,
                    **{
                        f"{r}_latency_ns": round(latencies[r])
                        for r in routings
                    },
                    "min_delivered_fraction": round(delivered_min, 4),
                    "dropped": dropped,
                    "retransmits": retransmits,
                }
            )
    return ExperimentResult(
        experiment=(
            f"Saturation under congestion — {pattern} traffic at "
            f"{load:.0%} load ({scale} scale)"
        ),
        rows=rows,
        notes=(
            "ranking orders the policies by mean latency (best first); "
            "ranking_inverted compares against the same family's "
            "unbounded/lossless baseline.  Tight buffers reward path "
            "diversity: expect UGAL to overtake minimal at 1-packet "
            "buffers (see docs/congestion.md)."
        ),
    )


if __name__ == "__main__":
    print(run().to_text())
