"""Figure 7: minimal routing, random traffic — speedup vs DragonFly-Min.

Same engine as Fig. 6 with routing pinned to minimal and the random
pattern; the paper notes bit shuffle and transpose show the same shape.
"""

from __future__ import annotations

from repro.experiments.fig6 import LOADS, run as _run_fig6
from repro.experiments.common import ExperimentResult


def run(
    scale: str = "small",
    loads: tuple[float, ...] = LOADS,
    packets_per_rank: int = 20,
    seed: int = 0,
    backend: str = "event",
) -> ExperimentResult:
    res = _run_fig6(
        scale=scale,
        patterns=("random",),
        loads=loads,
        routing="minimal",
        packets_per_rank=packets_per_rank,
        seed=seed,
        backend=backend,
    )
    res.experiment = f"Fig 7 — random traffic, minimal routing ({scale} scale)"
    res.notes = "expected shape: SpectralFly best under minimal routing too"
    return res


if __name__ == "__main__":
    import sys

    print(run(scale=sys.argv[1] if len(sys.argv) > 1 else "small").to_text())
