"""Figure 11: end-to-end latency relative to SkyWalk vs switch latency.

Lays out LPS and SlimFly pairs plus SkyWalk in the same machine room and
sweeps the switch latency 0-250 ns; reports the ratio of average and
maximum end-to-end latency to SkyWalk's.  Paper shape: both LPS and SF beat
SkyWalk at realistic switch latencies (ratio < 1), with SF ~5-10% below
LPS.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, cached
from repro.layout import latency_statistics, layout_topology, native_layout
from repro.layout.machine_room import MachineRoom
from repro.topology import build_lps, build_skywalk, build_slimfly
from repro.experiments.table2 import TABLE2_PAIRS

SWITCH_LATENCIES_NS = (0.0, 50.0, 100.0, 150.0, 200.0, 250.0)


def run(
    pairs=None,
    switch_latencies: tuple[float, ...] = SWITCH_LATENCIES_NS,
    seed: int = 0,
    skywalk_instances: int = 3,
) -> ExperimentResult:
    if pairs is None:
        pairs = TABLE2_PAIRS[:2]
    rows = []
    for (p, q), sf_q in pairs:
        lps = cached(("LPS", p, q), lambda p=p, q=q: build_lps(p, q), disk=True)
        sf = cached(("SF", sf_q), lambda sf_q=sf_q: build_slimfly(sf_q), disk=True)
        for topo in (lps, sf):
            layout = layout_topology(topo, seed=seed)
            room = MachineRoom(topo.n_routers)
            sky_layouts = [
                native_layout(
                    build_skywalk(topo.n_routers, topo.radix, seed=seed + i),
                    room=room,
                )
                for i in range(skywalk_instances)
            ]
            for s in switch_latencies:
                avg, mx = latency_statistics(layout, s)
                sky = [latency_statistics(sl, s) for sl in sky_layouts]
                sky_avg = float(np.mean([a for a, _ in sky]))
                sky_max = float(np.mean([m for _, m in sky]))
                rows.append(
                    {
                        "topology": topo.name,
                        "switch_ns": s,
                        "avg_ratio_vs_skywalk": round(avg / sky_avg, 3),
                        "max_ratio_vs_skywalk": round(mx / sky_max, 3),
                        "avg_latency_ns": round(avg, 1),
                        "max_latency_ns": round(mx, 1),
                    }
                )
    return ExperimentResult(
        experiment="Fig 11 — latency relative to SkyWalk vs switch latency",
        rows=rows,
        notes="expected shape: ratios fall below 1 as switch latency grows "
        "(fewer hops beat shorter cables); SF slightly below LPS",
    )


if __name__ == "__main__":
    print(run().to_text())
