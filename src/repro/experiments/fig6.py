"""Figure 6: speedup over DragonFly under UGAL-L routing.

Four synthetic traffic patterns (random, bit shuffle, bit reverse,
transpose) swept over offered load; each topology's figure of merit is the
maximum message time, reported relative to DragonFly at the same load.
The paper's headline: SpectralFly wins everywhere.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_synthetic_sim, speedup
from repro.topology import SIM_CONFIGS

PATTERNS = ("random", "shuffle", "reverse", "transpose")
LOADS = (0.1, 0.2, 0.3, 0.5, 0.6, 0.7)


def run(
    scale: str = "small",
    patterns: tuple[str, ...] = PATTERNS,
    loads: tuple[float, ...] = LOADS,
    routing: str = "ugal",
    packets_per_rank: int = 20,
    seed: int = 0,
    baseline: str = "DragonFly",
    backend: str = "event",
) -> ExperimentResult:
    """Run the Fig. 6 sweep at ``scale`` ("small" default, "paper" full).

    ``backend`` selects the simulation engine (``event`` reference or the
    vectorized ``batched`` engine — see docs/performance.md).
    """
    cfg = SIM_CONFIGS[scale]
    n_ranks = cfg["n_ranks"]
    rows = []
    for pattern in patterns:
        for load in loads:
            results = {}
            for name, spec in cfg["topologies"].items():
                topo = spec["build"]()
                results[name] = run_synthetic_sim(
                    topo,
                    routing,
                    pattern,
                    load,
                    concentration=spec["concentration"],
                    n_ranks=n_ranks,
                    packets_per_rank=packets_per_rank,
                    seed=seed,
                    backend=backend,
                )
            base = results[baseline]
            for name, res in results.items():
                rows.append(
                    {
                        "pattern": pattern,
                        "load": load,
                        "topology": name,
                        "routing": routing,
                        "max_latency_ns": round(res["max_latency_ns"]),
                        "mean_latency_ns": round(res["mean_latency_ns"]),
                        "speedup_vs_df": round(speedup(base, res), 3),
                    }
                )
    return ExperimentResult(
        experiment=f"Fig 6 — speedup vs {baseline}-{routing.upper()} ({scale} scale)",
        rows=rows,
        notes="expected shape: SpectralFly >= 1 across patterns and loads; "
        "BundleFly generally above SlimFly except bit shuffle",
    )


if __name__ == "__main__":
    import sys

    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(run(scale=scale).to_text())
