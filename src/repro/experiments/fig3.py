"""Figure 3: the shape of LPS neighbourhoods.

The paper visualises LPS(3,7) (whole graph coloured by distance from a
vertex) and the 6-hop neighbourhood of a vertex in LPS(3,17), making two
points: (i) LPS graphs are vertex-transitive, so every k-hop neighbourhood
looks the same, and (ii) low-radix LPS graphs are locally trees — the
shortest cycle of LPS(3,17) only closes at distance 6 from any vertex.

This experiment reports the per-distance vertex counts (the data behind the
colouring) and the tree-likeness: up to half the girth, the BFS layer sizes
match the k(k-1)^(d-1) tree growth exactly.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.graphs.bfs import bfs_distances
from repro.graphs.metrics import girth
from repro.topology import build_lps


def run(instances: tuple[tuple[int, int], ...] = ((3, 7), (3, 17))) -> ExperimentResult:
    rows = []
    for p, q in instances:
        topo = build_lps(p, q)
        g = topo.graph
        k = topo.radix
        dist = bfs_distances(g, 0)
        layer_sizes = np.bincount(dist)
        gir = girth(g, assume_vertex_transitive=True)
        tree_depth = 0
        expect = 1
        for d, size in enumerate(layer_sizes):
            if d == 0:
                continue
            expect = k if d == 1 else expect * (k - 1)
            if size == expect:
                tree_depth = d
            else:
                break
        rows.append(
            {
                "topology": topo.name,
                "radix": k,
                "girth": gir,
                "eccentricity": int(dist.max()),
                "tree_like_depth": tree_depth,
                "layer_sizes": "/".join(str(int(s)) for s in layer_sizes),
            }
        )
    return ExperimentResult(
        experiment="Fig 3 — LPS neighbourhood structure",
        rows=rows,
        notes="tree_like_depth d means BFS layers grow exactly like the "
        "k-regular tree through depth d (= floor((girth-1)/2)); only few "
        "vertices sit at the eccentricity (Sardari [31])",
    )


if __name__ == "__main__":
    print(run().to_text())
