"""Fiduccia--Mattheyses refinement with balance constraint.

One FM pass greedily moves the best-gain movable vertex (respecting the
balance tolerance), locks it, updates neighbour gains, and finally rolls
back to the best prefix seen.  Passes repeat until a pass yields no
improvement.  Gains live in a lazy max-heap, which keeps the implementation
compact while staying O(m log n) per pass.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.weighted import WeightedGraph


def _gains(wg: WeightedGraph, labels: np.ndarray) -> np.ndarray:
    """gain[v] = (external edge weight) - (internal edge weight)."""
    heads = np.repeat(np.arange(wg.n), np.diff(wg.indptr))
    crossing = labels[heads] != labels[wg.indices]
    signed = np.where(crossing, wg.eweights, -wg.eweights)
    return np.bincount(heads, weights=signed, minlength=wg.n).astype(np.int64)


def fm_refine(
    wg: WeightedGraph,
    labels: np.ndarray,
    balance_tol: float = 0.02,
    max_passes: int = 8,
) -> tuple[np.ndarray, int]:
    """Refine a bisection in place; returns (labels, cut value).

    ``balance_tol`` is the allowed relative deviation of each side's vertex
    weight from W/2 (plus one maximum vertex weight of slack, so coarse
    levels with heavy vertices remain feasible).
    """
    labels = labels.astype(np.int8).copy()
    total_w = wg.total_vweight()
    max_vw = int(wg.vweights.max())
    slack = max(int(balance_tol * total_w), max_vw)
    lo_limit = total_w // 2 - slack
    hi_limit = (total_w + 1) // 2 + slack

    cut = wg.cut_value(labels)
    for _ in range(max_passes):
        improved, labels, cut = _fm_pass(wg, labels, cut, lo_limit, hi_limit)
        if not improved:
            break
    return labels, cut


def _fm_pass(
    wg: WeightedGraph,
    labels: np.ndarray,
    cut: int,
    lo_limit: int,
    hi_limit: int,
) -> tuple[bool, np.ndarray, int]:
    n = wg.n
    gains = _gains(wg, labels)
    side_w = np.array(
        [int(wg.vweights[labels == 0].sum()), int(wg.vweights[labels == 1].sum())]
    )
    locked = np.zeros(n, dtype=bool)
    heap: list[tuple[int, int]] = [(-int(gains[v]), v) for v in range(n)]
    heapq.heapify(heap)

    moves: list[int] = []
    cut_trace: list[int] = []
    cur_cut = cut
    while heap:
        neg_gain, v = heapq.heappop(heap)
        if locked[v] or -neg_gain != gains[v]:
            continue  # stale entry
        src = int(labels[v])
        dst = 1 - src
        vw = int(wg.vweights[v])
        # Balance feasibility of moving v from src to dst.
        if side_w[src] - vw < lo_limit or side_w[dst] + vw > hi_limit:
            continue
        # Apply the move.
        locked[v] = True
        labels[v] = dst
        side_w[src] -= vw
        side_w[dst] += vw
        cur_cut -= int(gains[v])
        moves.append(v)
        cut_trace.append(cur_cut)
        # Update neighbour gains.
        nbrs, wts = wg.neighbors(v)
        for u, w in zip(nbrs.tolist(), wts.tolist()):
            if locked[u]:
                continue
            if labels[u] == dst:
                gains[u] -= 2 * w
            else:
                gains[u] += 2 * w
            heapq.heappush(heap, (-int(gains[u]), u))

    if not moves:
        return False, labels, cut
    best_idx = int(np.argmin(cut_trace))
    best_cut = cut_trace[best_idx]
    if best_cut >= cut:
        # Roll back everything.
        for v in moves:
            labels[v] = 1 - labels[v]
        return False, labels, cut
    # Roll back moves after the best prefix.
    for v in moves[best_idx + 1 :]:
        labels[v] = 1 - labels[v]
    return True, labels, best_cut


def rebalance(wg: WeightedGraph, labels: np.ndarray) -> np.ndarray:
    """Force the bisection to exact balance (within one max vertex weight).

    Moves lowest-loss boundary-preferring vertices from the heavy side until
    sides differ by at most the largest vertex weight.  Used as the final
    step so reported cuts always correspond to genuine bisections.
    """
    labels = labels.astype(np.int8).copy()
    gains = _gains(wg, labels)
    total = wg.total_vweight()
    max_vw = int(wg.vweights.max())
    while True:
        w1 = int(wg.vweights[labels == 1].sum())
        w0 = total - w1
        if abs(w0 - w1) <= max_vw:
            return labels
        heavy = 0 if w0 > w1 else 1
        cands = np.flatnonzero(labels == heavy)
        best = cands[np.argmax(gains[cands])]
        labels[best] = 1 - heavy
        nbrs, wts = wg.neighbors(int(best))
        gains[best] = -gains[best]
        for u, w in zip(nbrs.tolist(), wts.tolist()):
            if labels[u] == labels[best]:
                gains[u] -= 2 * w
            else:
                gains[u] += 2 * w
