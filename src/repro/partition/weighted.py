"""Weighted-graph container used internally by the multilevel partitioner.

Coarsening introduces vertex weights (merged vertex counts) and edge weights
(merged parallel edges); the public :class:`~repro.graphs.csr.CSRGraph` stays
unweighted, so the partitioner carries this private structure instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph


@dataclass
class WeightedGraph:
    """CSR graph with int vertex weights and int edge weights."""

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    @classmethod
    def from_csr(cls, g: CSRGraph) -> "WeightedGraph":
        """Unit-weight lift of a simple graph."""
        return cls(
            n=g.n,
            indptr=g.indptr.copy(),
            indices=g.indices.astype(np.int64),
            eweights=np.ones(len(g.indices), dtype=np.int64),
            vweights=np.ones(g.n, dtype=np.int64),
        )

    @classmethod
    def from_arrays(
        cls, n: int, heads: np.ndarray, tails: np.ndarray, weights: np.ndarray,
        vweights: np.ndarray,
    ) -> "WeightedGraph":
        """Build from directed arc arrays (both directions must be present)."""
        order = np.lexsort((tails, heads))
        heads, tails, weights = heads[order], tails[order], weights[order]
        counts = np.bincount(heads, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(n, indptr, tails.astype(np.int64), weights.astype(np.int64),
                   vweights.astype(np.int64))

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (neighbour ids, edge weights) of ``v``."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.eweights[lo:hi]

    def total_vweight(self) -> int:
        return int(self.vweights.sum())

    def cut_value(self, labels: np.ndarray) -> int:
        """Total weight of edges crossing the 0/1 labelling."""
        heads = np.repeat(np.arange(self.n), np.diff(self.indptr))
        crossing = labels[heads] != labels[self.indices]
        return int(self.eweights[crossing].sum()) // 2
