"""Kernighan--Lin bisection baseline.

A flat (non-multilevel) partitioner used to sanity-check the multilevel
implementation in tests; on the paper's topologies the multilevel scheme
should never lose to plain KL by more than noise.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.partition.refine import _gains
from repro.partition.weighted import WeightedGraph
from repro.utils.rng import as_rng


def kernighan_lin_bisection(
    g: CSRGraph,
    seed: int | np.random.Generator | None = 0,
    max_rounds: int = 10,
) -> tuple[np.ndarray, int]:
    """Classic KL: rounds of best pair-swaps with rollback to the best prefix."""
    rng = as_rng(seed)
    wg = WeightedGraph.from_csr(g)
    n = g.n
    labels = np.zeros(n, dtype=np.int8)
    labels[rng.permutation(n)[: n // 2]] = 1

    for _ in range(max_rounds):
        improved = _kl_round(wg, labels)
        if not improved:
            break
    return labels, wg.cut_value(labels)


def _kl_round(wg: WeightedGraph, labels: np.ndarray) -> bool:
    n = wg.n
    gains = _gains(wg, labels)
    locked = np.zeros(n, dtype=bool)
    swaps: list[tuple[int, int]] = []
    cum: list[int] = []
    total = 0
    adj = {v: dict(zip(*map(lambda a: a.tolist(), wg.neighbors(v)))) for v in range(n)}

    for _ in range(n // 2):
        side0 = np.flatnonzero((labels == 0) & ~locked)
        side1 = np.flatnonzero((labels == 1) & ~locked)
        if len(side0) == 0 or len(side1) == 0:
            break
        # Consider the few best candidates from each side (full pairwise scan
        # is O(n^2); the top-g heuristic loses almost nothing).
        top0 = side0[np.argsort(gains[side0])[-8:]]
        top1 = side1[np.argsort(gains[side1])[-8:]]
        best_pair, best_gain = None, None
        for a in top0:
            for b in top1:
                w_ab = adj[int(a)].get(int(b), 0)
                gain = int(gains[a] + gains[b] - 2 * w_ab)
                if best_gain is None or gain > best_gain:
                    best_gain, best_pair = gain, (int(a), int(b))
        if best_pair is None:
            break
        a, b = best_pair
        locked[a] = locked[b] = True
        total += best_gain
        swaps.append((a, b))
        cum.append(total)
        # Update gains for the swap (labels still hold the pre-swap sides).
        for v in (a, b):
            for u, w in adj[v].items():
                if locked[u]:
                    continue
                if labels[u] == labels[v]:
                    gains[u] += 2 * w
                else:
                    gains[u] -= 2 * w
        labels[a], labels[b] = labels[b], labels[a]

    if not cum:
        return False
    best_idx = int(np.argmax(cum))
    if cum[best_idx] <= 0:
        for a, b in swaps:
            labels[a], labels[b] = labels[b], labels[a]
        return False
    for a, b in swaps[best_idx + 1 :]:
        labels[a], labels[b] = labels[b], labels[a]
    return True
