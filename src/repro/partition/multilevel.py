"""Multilevel bisection driver and the public ``bisection_bandwidth``."""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.partition.coarsen import coarsen_to
from repro.partition.refine import fm_refine, rebalance
from repro.partition.weighted import WeightedGraph
from repro.utils.rng import as_rng


def _initial_partition(
    wg: WeightedGraph, rng: np.random.Generator, tries: int = 4
) -> np.ndarray:
    """Initial bisection of the coarsest graph.

    FM-refines a diverse candidate pool (spectral sign, greedy BFS growing,
    random balanced splits) and keeps the best — diversity here is what lets
    the multilevel scheme escape the local optima that trap single-start FM
    on symmetric graphs like hypercubes.
    """
    candidates = [_spectral_labels(wg)]
    for _ in range(tries):
        candidates.append(_greedy_growing_labels(wg, rng))
        candidates.append(_random_balanced_labels(wg, rng))
    best, best_cut = None, None
    for labels in candidates:
        if labels is None:
            continue
        labels = rebalance(wg, labels)
        labels, cut = fm_refine(wg, labels)
        if best_cut is None or cut < best_cut:
            best, best_cut = labels, cut
    assert best is not None
    return best


def _random_balanced_labels(
    wg: WeightedGraph, rng: np.random.Generator
) -> np.ndarray:
    labels = np.zeros(wg.n, dtype=np.int8)
    labels[rng.permutation(wg.n)[: wg.n // 2]] = 1
    return labels


def _spectral_labels(wg: WeightedGraph) -> np.ndarray | None:
    """Sign of the Fiedler vector (weighted Laplacian), balanced by median."""
    n = wg.n
    if n < 4 or n > 4000:
        return None
    lap = np.zeros((n, n))
    heads = np.repeat(np.arange(n), np.diff(wg.indptr))
    lap[heads, wg.indices] = -wg.eweights
    np.fill_diagonal(lap, -lap.sum(axis=1))
    vals, vecs = np.linalg.eigh(lap)
    fiedler = vecs[:, 1]
    # Median split keeps vertex *counts* balanced; rebalance() fixes weights.
    labels = (fiedler > np.median(fiedler)).astype(np.int8)
    return labels


def _greedy_growing_labels(
    wg: WeightedGraph, rng: np.random.Generator
) -> np.ndarray:
    """Grow region 0 by BFS from a random seed until half the vertex weight."""
    target = wg.total_vweight() // 2
    labels = np.ones(wg.n, dtype=np.int8)
    start = int(rng.integers(wg.n))
    labels[start] = 0
    acc = int(wg.vweights[start])
    frontier = [start]
    seen = {start}
    while acc < target and frontier:
        nxt = []
        for v in frontier:
            nbrs, _ = wg.neighbors(v)
            for u in nbrs.tolist():
                if u not in seen:
                    seen.add(u)
                    if acc < target:
                        labels[u] = 0
                        acc += int(wg.vweights[u])
                        nxt.append(u)
        frontier = nxt
    return labels


def bisect(
    g: CSRGraph,
    seed: int | np.random.Generator | None = 0,
    coarsest: int = 80,
    balance_tol: float = 0.02,
) -> tuple[np.ndarray, int]:
    """Multilevel balanced bisection; returns (labels, cut size).

    The final labels form an exact bisection (side sizes differ by at most
    one vertex), matching how the paper reports METIS bisection bandwidth.
    """
    rng = as_rng(seed)
    wg = WeightedGraph.from_csr(g)
    graphs, maps = coarsen_to(wg, coarsest, rng)
    labels = _initial_partition(graphs[-1], rng)
    labels, _ = fm_refine(graphs[-1], labels, balance_tol)
    # Uncoarsen with refinement at every level.
    for level in range(len(maps) - 1, -1, -1):
        labels = labels[maps[level]]
        labels, _ = fm_refine(graphs[level], labels, balance_tol)
    labels = rebalance(wg, labels)
    labels, cut = fm_refine(wg, labels, balance_tol=0.0, max_passes=4)
    labels = rebalance(wg, labels)
    return labels, wg.cut_value(labels)


def bisection_bandwidth(
    g: CSRGraph,
    repeats: int = 3,
    seed: int | np.random.Generator | None = 0,
) -> int:
    """Smallest balanced cut over ``repeats`` randomised multilevel runs.

    This is the METIS stand-in used for Fig. 4 and Tables I/II: an upper
    bound on the true bisection width (the exact value lies between this and
    the Fiedler lower bound, the paper's shaded region).
    """
    rng = as_rng(seed)
    best: int | None = None
    for _ in range(repeats):
        _, cut = bisect(g, rng)
        if best is None or cut < best:
            best = cut
    assert best is not None
    return best
