"""Graph bisection (METIS stand-in).

The paper approximates bisection bandwidth with METIS; this package provides
the same capability from scratch: a multilevel scheme (heavy-edge-matching
coarsening, spectral/greedy initial partitions, Fiduccia--Mattheyses
refinement) plus a Kernighan--Lin baseline.  ``bisection_bandwidth`` returns
the best (smallest) balanced cut over repeated randomised runs — an upper
bound on the true bisection width, exactly as METIS is used in Fig. 4 and
Table II.
"""

import numpy as np

from repro.partition.multilevel import bisect, bisection_bandwidth
from repro.partition.kl import kernighan_lin_bisection
from repro.partition.weighted import WeightedGraph


def contiguous_ranges(n: int, k: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``k`` contiguous, near-equal ``[lo, hi)`` spans.

    The sharded simulation engine (:mod:`repro.sim.sharded`) assigns each
    worker one span of router ids.  Contiguity matters there: a router's
    outgoing directed-edge ids are a contiguous block of the head-major CSR
    edge order, so a contiguous router span owns a contiguous port range.
    Sizes differ by at most one (the first ``n % k`` spans get the extra
    router); empty spans only appear when ``k > n``.
    """
    if k <= 0:
        raise ValueError("need at least one part")
    base, rem = divmod(n, k)
    sizes = np.full(k, base, dtype=np.int64)
    sizes[:rem] += 1
    cuts = np.concatenate([[0], np.cumsum(sizes)])
    return [(int(cuts[i]), int(cuts[i + 1])) for i in range(k)]


__all__ = [
    "bisect",
    "bisection_bandwidth",
    "contiguous_ranges",
    "kernighan_lin_bisection",
    "WeightedGraph",
]
