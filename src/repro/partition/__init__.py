"""Graph bisection (METIS stand-in).

The paper approximates bisection bandwidth with METIS; this package provides
the same capability from scratch: a multilevel scheme (heavy-edge-matching
coarsening, spectral/greedy initial partitions, Fiduccia--Mattheyses
refinement) plus a Kernighan--Lin baseline.  ``bisection_bandwidth`` returns
the best (smallest) balanced cut over repeated randomised runs — an upper
bound on the true bisection width, exactly as METIS is used in Fig. 4 and
Table II.
"""

from repro.partition.multilevel import bisect, bisection_bandwidth
from repro.partition.kl import kernighan_lin_bisection
from repro.partition.weighted import WeightedGraph

__all__ = [
    "bisect",
    "bisection_bandwidth",
    "kernighan_lin_bisection",
    "WeightedGraph",
]
