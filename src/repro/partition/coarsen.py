"""Heavy-edge-matching coarsening for the multilevel partitioner."""

from __future__ import annotations

import numpy as np

from repro.partition.weighted import WeightedGraph
from repro.utils.rng import as_rng


def heavy_edge_matching(
    wg: WeightedGraph, rng: np.random.Generator
) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = matched partner (or v itself).

    Visits vertices in random order; each unmatched vertex grabs its
    unmatched neighbour of maximum edge weight (heavy-edge heuristic, as in
    METIS).  Unmatchable vertices stay self-matched.
    """
    match = np.full(wg.n, -1, dtype=np.int64)
    order = rng.permutation(wg.n)
    for v in order:
        if match[v] != -1:
            continue
        nbrs, wts = wg.neighbors(v)
        free = match[nbrs] == -1
        if not free.any():
            match[v] = v
            continue
        cand_n = nbrs[free]
        cand_w = wts[free]
        partner = int(cand_n[np.argmax(cand_w)])
        if partner == v:
            match[v] = v
        else:
            match[v] = partner
            match[partner] = v
    return match


def contract(
    wg: WeightedGraph, match: np.ndarray
) -> tuple[WeightedGraph, np.ndarray]:
    """Contract matched pairs; returns (coarse graph, fine->coarse map)."""
    n = wg.n
    # Assign coarse ids: pair representative = min(v, match[v]).
    reps = np.minimum(np.arange(n), match)
    uniq, coarse_of = np.unique(reps, return_inverse=True)
    nc = len(uniq)

    heads = np.repeat(np.arange(n), np.diff(wg.indptr))
    ch = coarse_of[heads]
    ct = coarse_of[wg.indices]
    keep = ch != ct  # drop intra-pair edges
    ch, ct, w = ch[keep], ct[keep], wg.eweights[keep]
    # Merge parallel arcs by (head, tail) key.
    keys = ch * nc + ct
    order = np.argsort(keys, kind="stable")
    keys, w = keys[order], w[order]
    uniq_keys, starts = np.unique(keys, return_index=True)
    sums = np.add.reduceat(w, starts)
    heads_c = (uniq_keys // nc).astype(np.int64)
    tails_c = (uniq_keys % nc).astype(np.int64)

    vweights = np.bincount(coarse_of, weights=wg.vweights, minlength=nc).astype(
        np.int64
    )
    coarse = WeightedGraph.from_arrays(nc, heads_c, tails_c, sums, vweights)
    return coarse, coarse_of


def coarsen_to(
    wg: WeightedGraph,
    target: int,
    rng: np.random.Generator,
    min_shrink: float = 0.95,
) -> tuple[list[WeightedGraph], list[np.ndarray]]:
    """Repeatedly match+contract until at most ``target`` vertices remain.

    Returns (graphs, maps): ``graphs[0]`` is the input, ``maps[i]`` maps
    ``graphs[i]`` vertices to ``graphs[i+1]`` vertices.  Stops early if a
    round shrinks the graph by less than ``min_shrink`` (dense graphs stop
    coarsening usefully once contracted).
    """
    graphs = [wg]
    maps: list[np.ndarray] = []
    while graphs[-1].n > target:
        match = heavy_edge_matching(graphs[-1], rng)
        coarse, mapping = contract(graphs[-1], match)
        if coarse.n >= graphs[-1].n * min_shrink:
            break
        graphs.append(coarse)
        maps.append(mapping)
    return graphs, maps
