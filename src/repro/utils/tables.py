"""Plain-text table rendering for experiment output.

The experiment modules print the same rows the paper's tables/figures report;
this renderer keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Iterable[dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` (dicts) as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Missing values render as ``-``.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_cell(r.get(c, "-")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
