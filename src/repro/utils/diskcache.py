"""Content-addressed on-disk cache for expensive intermediates.

The experiment runner (``repro.runner``) and the library's own hot spots
(topology construction, BFS distance matrices) share this store: values are
pickled under ``<root>/<hh>/<hash>.pkl`` where ``hash`` is the SHA-256 of a
canonical-JSON encoding of the key, so identical work is computed once and
reused across processes and across runs.

Environment knobs
-----------------

``REPRO_CACHE_DIR``
    Cache root (default ``~/.cache/repro``).
``REPRO_CACHE=0``
    Disable the cache entirely (every lookup misses, nothing is written).

Writes are atomic (tempfile + rename), so concurrent worker processes of
the parallel executor can share one cache root safely: the worst case under
a race is the same value pickled twice.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable

#: Bump to invalidate every cached artifact after a change to the cached
#: computations themselves (graph generators, BFS, experiment semantics).
CACHE_VERSION = 1

_MISS = object()


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable canonical form.

    Tuples and lists are identified (both become JSON arrays), dict keys are
    stringified and sorted by the JSON encoder, and sets are sorted.  Any
    other type must provide a stable ``repr`` via str() — restricted here to
    primitives to keep hashes trustworthy.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly; avoids JSON locale surprises.
        return {"__f__": repr(obj)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(_canonical(x)) for x in obj)}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, bytes):
        return {"__b__": obj.hex()}
    raise TypeError(f"unhashable cache-key component: {type(obj).__name__}")


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical-JSON form of ``obj``.

    Stable across processes, Python versions, and dict insertion orders —
    the property spec hashes and cache keys rely on.
    """
    payload = json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(payload).hexdigest()


class DiskCache:
    """A content-addressed pickle store with hit/miss accounting."""

    def __init__(self, root: str | os.PathLike, enabled: bool = True) -> None:
        self.root = Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # -- key handling -------------------------------------------------------
    def key_hash(self, key: Any) -> str:
        return stable_hash((CACHE_VERSION, key))

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    # -- store API ----------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the cached value for ``key`` (or ``default`` on a miss)."""
        if not self.enabled:
            self.misses += 1
            return default
        path = self._path(self.key_hash(key))
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return default
        self.hits += 1
        return value

    def contains(self, key: Any) -> bool:
        return self.enabled and self._path(self.key_hash(key)).exists()

    def put(self, key: Any, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic; no-op when disabled)."""
        if not self.enabled:
            return
        path = self._path(self.key_hash(key))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def memoize(self, key: Any, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building and storing on miss."""
        value = self.get(key, _MISS)
        if value is not _MISS:
            return value
        value = builder()
        self.put(key, value)
        return value

    # -- maintenance --------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Entry count / on-disk size / session hit counters."""
        n, size = 0, 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.pkl"):
                n += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": n,
            "bytes": size,
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# ---------------------------------------------------------------------------
# Process-wide default cache (configured from the environment; the CLI and
# the parallel executor's worker initializer override it explicitly).
_default: DiskCache | None = None


def default_cache_dir() -> str:
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro")
    )


def get_default_cache() -> DiskCache:
    global _default
    if _default is None:
        enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        _default = DiskCache(default_cache_dir(), enabled=enabled)
    return _default


def configure_cache(root: str | os.PathLike | None = None, enabled: bool = True) -> DiskCache:
    """Replace the process-wide default cache (CLI / worker entry points)."""
    global _default
    _default = DiskCache(root if root is not None else default_cache_dir(), enabled=enabled)
    return _default
