"""Content-addressed on-disk cache for expensive intermediates.

The experiment runner (``repro.runner``) and the library's own hot spots
(topology construction, BFS distance matrices) share this store: values are
pickled under ``<root>/<hh>/<hash>.pkl`` where ``hash`` is the SHA-256 of a
canonical-JSON encoding of the key, so identical work is computed once and
reused across processes and across runs.

Environment knobs
-----------------

``REPRO_CACHE_DIR``
    Cache root (default ``~/.cache/repro``).
``REPRO_CACHE=0``
    Disable the cache entirely (every lookup misses, nothing is written).

Writes are atomic (tempfile + rename), so concurrent worker processes of
the parallel executor can share one cache root safely: the worst case under
a race is the same value pickled twice.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

#: Bump to invalidate every cached artifact after a change to the cached
#: computations themselves (graph generators, BFS, experiment semantics).
CACHE_VERSION = 1

_MISS = object()


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable canonical form.

    Tuples and lists are identified (both become JSON arrays), dict keys are
    stringified and sorted by the JSON encoder, and sets are sorted.  Any
    other type must provide a stable ``repr`` via str() — restricted here to
    primitives to keep hashes trustworthy.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly; avoids JSON locale surprises.
        return {"__f__": repr(obj)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(_canonical(x)) for x in obj)}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, bytes):
        return {"__b__": obj.hex()}
    raise TypeError(f"unhashable cache-key component: {type(obj).__name__}")


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical-JSON form of ``obj``.

    Stable across processes, Python versions, and dict insertion orders —
    the property spec hashes and cache keys rely on.
    """
    payload = json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(payload).hexdigest()


class DiskCache:
    """A content-addressed pickle store with hit/miss accounting."""

    def __init__(self, root: str | os.PathLike, enabled: bool = True) -> None:
        self.root = Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.corrupt_dropped = 0

    # -- key handling -------------------------------------------------------
    def key_hash(self, key: Any) -> str:
        return stable_hash((CACHE_VERSION, key))

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    # -- store API ----------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the cached value for ``key`` (or ``default`` on a miss).

        A corrupted or truncated entry (a torn write from a crashed
        process, a pickle from an incompatible class layout) is unlinked
        on the spot: leaving it on disk would make ``contains`` keep
        reporting a hit while every lookup re-pays the failed unpickle.
        Removing it lets the next ``put`` repair the entry.
        """
        if not self.enabled:
            self.misses += 1
            return default
        path = self._path(self.key_hash(key))
        try:
            fh = open(path, "rb")
        except OSError:
            self.misses += 1
            return default
        try:
            with fh:
                value = pickle.load(fh)
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.corrupt_dropped += 1
            self.misses += 1
            return default
        self.hits += 1
        self._note_hit(path)
        return value

    def _note_hit(self, path: Path) -> None:
        """Subclass hook: a lookup just read ``path`` (LRU bookkeeping)."""

    def _note_put(self, path: Path) -> None:
        """Subclass hook: a value was just stored at ``path`` (eviction)."""

    def contains(self, key: Any) -> bool:
        return self.enabled and self._path(self.key_hash(key)).exists()

    def put(self, key: Any, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic; no-op when disabled)."""
        if not self.enabled:
            return
        path = self._path(self.key_hash(key))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._note_put(path)

    def memoize(self, key: Any, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building and storing on miss."""
        value = self.get(key, _MISS)
        if value is not _MISS:
            return value
        value = builder()
        self.put(key, value)
        return value

    # -- maintenance --------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Entry count / on-disk size / orphaned tempfiles / session counters."""
        n, size = 0, 0
        tmp_n, tmp_size = 0, 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.pkl"):
                n += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
            # Interrupted put()s leave mkstemp files behind; count them so
            # the store's real footprint (and the need to reap) is visible.
            for path in self.root.glob("*/*.tmp"):
                tmp_n += 1
                try:
                    tmp_size += path.stat().st_size
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": n,
            "bytes": size,
            "tmp_files": tmp_n,
            "tmp_bytes": tmp_size,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_corrupt_dropped": self.corrupt_dropped,
        }

    def clear(self) -> int:
        """Delete every cache entry and orphaned tempfile; returns the count."""
        removed = 0
        if self.root.is_dir():
            for pattern in ("*/*.pkl", "*/*.tmp"):
                for path in self.root.glob(pattern):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def reap_tmp(self, min_age_s: float = 3600.0) -> int:
        """Remove orphaned ``put`` tempfiles at least ``min_age_s`` old.

        An interrupted ``put`` (killed worker, power loss between
        ``mkstemp`` and ``os.replace``) strands a ``*.tmp`` file that no
        lookup will ever read.  Stores call this at startup; the age
        guard keeps a tempfile a *live* concurrent writer is still
        filling safe from the reaper.  Returns the number removed.
        """
        reaped = 0
        if self.root.is_dir():
            cutoff = time.time() - min_age_s
            for path in self.root.glob("*/*.tmp"):
                try:
                    if path.stat().st_mtime <= cutoff:
                        path.unlink()
                        reaped += 1
                except OSError:
                    pass
        return reaped


# ---------------------------------------------------------------------------
# Process-wide default cache (configured from the environment; the CLI and
# the parallel executor's worker initializer override it explicitly).
_default: DiskCache | None = None


def default_cache_dir() -> str:
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro")
    )


def get_default_cache() -> DiskCache:
    global _default
    if _default is None:
        enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        _default = DiskCache(default_cache_dir(), enabled=enabled)
    return _default


def configure_cache(root: str | os.PathLike | None = None, enabled: bool = True) -> DiskCache:
    """Replace the process-wide default cache (CLI / worker entry points)."""
    global _default
    _default = DiskCache(root if root is not None else default_cache_dir(), enabled=enabled)
    return _default


def set_default_cache(cache: DiskCache) -> DiskCache:
    """Install an existing cache instance as the process-wide default.

    The experiment service uses this to make its shared
    :class:`~repro.service.store.ArtifactStore` the cache every library
    hot spot (topology construction, routing tables) memoizes through,
    so concurrent jobs deduplicate intermediates as well as results.
    """
    global _default
    _default = cache
    return _default
