"""Small shared utilities: seeded RNG helpers and text-table rendering."""

from repro.utils.rng import as_rng, spawn_seeds
from repro.utils.tables import render_table

__all__ = ["as_rng", "spawn_seeds", "render_table"]
