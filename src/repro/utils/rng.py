"""Deterministic random-number helpers.

Every stochastic component in the package accepts either an integer seed or a
``numpy.random.Generator``; these helpers normalise the two and derive
independent child streams so that experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Passing an existing generator returns it unchanged; ``None`` produces a
    fixed default seed (0) rather than entropy, so that "unseeded" runs are
    still reproducible.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | np.random.Generator | None, n: int) -> list[int]:
    """Derive ``n`` independent 32-bit child seeds from ``seed``."""
    rng = as_rng(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]
