"""The packet record flowing through the simulator."""

from __future__ import annotations


class Packet:
    """One network packet (coarse-grained message unit, as in SNAPPR).

    Attributes
    ----------
    pid:
        Unique id.
    src_ep / dst_ep:
        Endpoint (NIC) ids.
    size:
        Bytes on the wire.
    t_created:
        Creation (injection-queue entry) time in ns.
    hops:
        Network hops taken so far; doubles as the VC index under the
        hop-increment deadlock-avoidance scheme.
    intermediate / phase:
        Valiant state: the chosen intermediate router and whether the packet
        is still heading to it (phase 0) or onward to the destination.
    dst_router:
        Destination router (dst_ep // concentration), cached.
    tag:
        Opaque caller payload (the motif runner stores message ids here).
    """

    __slots__ = (
        "pid",
        "src_ep",
        "dst_ep",
        "size",
        "t_created",
        "hops",
        "intermediate",
        "phase",
        "dst_router",
        "tag",
        "occupies_edge",
        "occupies_vc",
        "ch_key",
    )

    def __init__(
        self,
        pid: int,
        src_ep: int,
        dst_ep: int,
        size: int,
        t_created: float,
        dst_router: int,
        tag=None,
    ) -> None:
        self.pid = pid
        self.src_ep = src_ep
        self.dst_ep = dst_ep
        self.size = size
        self.t_created = t_created
        self.hops = 0
        self.intermediate = None
        self.phase = 0
        self.dst_router = dst_router
        self.tag = tag
        # Finite-buffer mode: the (directed edge, VC) input buffer this
        # packet currently holds (-1 = none, e.g. fresh from the NIC).
        self.occupies_edge = -1
        self.occupies_vc = 0
        # Lossy-link mode: the cross-engine channel substream key
        # (``repro.sim.channel.packet_key``); -1 when no channel is
        # attached.
        self.ch_key = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet(#{self.pid} ep{self.src_ep}->ep{self.dst_ep} "
            f"{self.size}B hops={self.hops})"
        )
