"""The batch-synchronous (cycle-driven) simulation backend.

Where :class:`~repro.sim.network.NetworkSimulator` processes one heap event
at a time in a Python loop, this engine advances **all in-flight packets one
cycle at a time as numpy array programs** over the same CSR-of-CSR
:class:`~repro.routing.tables.RoutingTables`:

* a *cycle* is one packet-serialization time ``tau = packet_bytes /
  bytes_per_ns`` — the bandwidth quantum.  Every output port (one per
  directed edge) and every ejection port transmits at most one packet per
  cycle, which reproduces the event engine's service rate exactly;
* **injection** comes from the pre-drawn per-source arrays
  (:meth:`~repro.sim.traffic.OpenLoopSource.predraw`): identical Poisson
  gaps and destinations to the event engine at equal seeds, NIC
  serialization resolved by a vectorized max-scan before the cycle loop;
* **routing** is a per-cycle vectorized next-hop lookup: two ``nh_indptr``
  gathers and one ``nh_indices`` gather per arriving batch, uniform
  tie-breaks from one block of uniforms (Valiant/UGAL source decisions are
  vectorized the same way);
* **contention** is resolved per port by a segmented sort: every waiting
  packet carries one packed 64-bit key ``port << 40 | enqueue_cycle << 20
  | random_tiebreak`` and the waiting set is kept sorted by it — new
  arrivals are batch-sorted (segmented argsort) and merged in, and a
  first-of-segment mask picks one winner per port per cycle with no
  per-cycle resort — FIFO with random same-cycle tie-breaks, the batch
  analogue of the event engine's per-VC round-robin;
* **latency** is assembled analytically at drain time: the exact
  uncongested pipeline (NIC + per-hop switch/serialization/cable + eject)
  plus the observed queueing in whole cycles.  An uncontended packet gets
  the event engine's latency to the nanosecond; queueing is quantized to
  the cycle, which is where the two engines statistically diverge (see the
  tolerance table in ``docs/performance.md``).

The two engines are **not** event-for-event identical — equal seeds give
equal injections but different routing tie-break streams and cycle-quantized
queueing.  Their agreement on mean latency, mean hops, throughput, and
delivered counts is pinned statistically by
``tests/test_sim_differential.py``.

Not supported here (use the event engine): fault schedules, finite
(blocking) buffers, ``run(until=...)`` pause/resume, closed-loop ``send()``
traffic and delivery callbacks (the motif DAG runner), and per-epoch
snapshots.  Construction-time errors, not silent fallbacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.routing.algorithms import RoutingPolicy
from repro.routing.tables import RoutingTables
from repro.sim.stats import SimStats
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import SimConfig

# Packed waiting-set sort key layout: port | enqueue cycle | tie-break.
# 23 bits of port (paper-scale topologies top out around ~60K directed
# edges + endpoints), 20 bits of cycle, 20 bits of random tie-break.
_PORT_SHIFT = 40
_ENQ_SHIFT = 20
_ENQ_MASK = (1 << 20) - 1


class BatchedSimulator:
    """Cycle-driven counterpart of :class:`NetworkSimulator`.

    Mirrors the construction API (topology + routing policy + config +
    shared tables) and the open-loop traffic API
    (:meth:`add_open_loop_source` / :meth:`run` -> :class:`SimStats`), so
    :func:`repro.experiments.common.build_synthetic_sim` can return either
    engine behind the ``backend`` selector.
    """

    backend = "batched"

    def __init__(
        self,
        topo: Topology,
        routing: RoutingPolicy,
        config: "SimConfig",
        tables: RoutingTables | None = None,
        faults=None,
    ) -> None:
        if faults is not None:
            raise SimulationError(
                "the batched backend does not support fault schedules; "
                "use backend='event' (see docs/performance.md)"
            )
        if config.finite_buffers:
            raise SimulationError(
                "the batched backend does not support finite buffers; "
                "use backend='event'"
            )
        if routing.name not in ("minimal", "valiant", "ugal", "ugal-g"):
            raise SimulationError(
                f"no vectorized implementation of routing {routing.name!r}; "
                "use backend='event'"
            )
        self.topo = topo
        self.config = config
        self.routing = routing
        self.tables = tables if tables is not None else routing.tables
        g = topo.graph
        self.n_routers = g.n
        self.n_endpoints = g.n * config.concentration
        self.stats = SimStats()
        self._sources: list = []
        self.on_delivery = None

        # Numpy views of the flat fast-path tables (lists on small
        # topologies; the vectorized gathers need ndarrays).
        nh_indptr, nh_indices = self.tables.next_hop_table()
        self._nh_indptr = np.asarray(nh_indptr, dtype=np.int64)
        self._nh_indices = np.asarray(nh_indices, dtype=np.int64)
        self._dist = self.tables.dist  # (n, n) int16
        # Directed-edge id lookup: the flat keys u*n + v are globally sorted
        # (heads ascend, CSR rows are sorted), so one searchsorted resolves
        # a whole batch of (u, v) pairs.
        heads = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.indptr))
        self._edge_keys = heads * g.n + np.asarray(g.indices, dtype=np.int64)
        self._n_dir = len(self._edge_keys)
        if self._n_dir + self.n_endpoints >= (1 << (63 - _PORT_SHIFT)):
            raise SimulationError(  # pragma: no cover - paper scale is ~60K
                "topology too large for the packed contention keys; "
                "use backend='event'"
            )

        self._conc = config.concentration
        self._size = config.packet_bytes
        self._tau = config.packet_bytes / config.bytes_per_ns  # ns per cycle
        self._switch = config.switch_latency_ns
        self._link = config.link_latency_ns
        self.rng = routing.rng  # engine draws: tie-breaks, routing uniforms

    # -- public API (NetworkSimulator parity where meaningful) --------------
    def endpoint_router(self, ep: int) -> int:
        return ep // self._conc

    def add_open_loop_source(self, source) -> None:
        self._sources.append(source)

    def send(self, *args, **kwargs):
        raise SimulationError(
            "the batched backend is open-loop only; use add_open_loop_source "
            "(closed-loop send()/motifs need backend='event')"
        )

    def set_fault_schedule(self, schedule) -> None:
        raise SimulationError(
            "the batched backend does not support fault schedules"
        )

    # -- helpers -------------------------------------------------------------
    def _edge_ids(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._edge_keys, u * self.n_routers + v)

    def _pick_minimal(self, u: np.ndarray, d: np.ndarray) -> np.ndarray:
        """One uniform random minimal next hop per (u, d) pair."""
        k = u * self.n_routers + d
        lo = self._nh_indptr[k]
        width = self._nh_indptr[k + 1] - lo
        if width.size and int(width.min()) <= 0:
            bad = int(np.argmin(width))
            raise SimulationError(
                f"no minimal next hop from {int(u[bad])} to {int(d[bad])}"
            )
        offs = (self.rng.random(len(k)) * width).astype(np.int64)
        return self._nh_indices[lo + offs]

    def _queue_counts(self) -> np.ndarray:
        """Waiting packets per router output port (UGAL's queue signal)."""
        ports = self._w_comb >> _PORT_SHIFT
        return np.bincount(ports[ports < self._n_dir],
                           minlength=self._n_dir)

    def _path_cost(
        self, src: np.ndarray, dst: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized UGAL-G sampled-path cost: (queued bytes, hops)."""
        q = np.zeros(len(src), dtype=np.int64)
        h = np.zeros(len(src), dtype=np.int64)
        at = src.copy()
        active = np.nonzero(at != dst)[0]
        while active.size:
            nxt = self._pick_minimal(at[active], dst[active])
            eid = self._edge_ids(at[active], nxt)
            q[active] += counts[eid] * self._size
            h[active] += 1
            at[active] = nxt
            active = active[at[active] != dst[active]]
        return q, h

    # -- the run -------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> SimStats:
        if until is not None or max_events is not None:
            raise SimulationError(
                "the batched backend has no pause/resume; run() only"
            )
        if self.on_delivery is not None:
            raise SimulationError(
                "the batched backend has no delivery callbacks; "
                "use backend='event'"
            )
        n_pkts = self._inject()
        stats = self.stats
        if n_pkts == 0:
            return stats
        self._cycle_loop()
        self._drain()
        return stats

    def _inject(self) -> int:
        """Pre-draw all sources, filter self-sends, resolve NIC queueing.

        Sets the per-packet state arrays and returns the packet count.
        """
        if not self._sources:
            return 0
        eps = [s.endpoint for s in self._sources]
        if len(set(eps)) != len(eps):
            raise SimulationError(
                "batched backend needs one source per endpoint "
                "(NIC serialization is resolved per source)"
            )
        # Self-sends complete instantly in the event engine (send() returns
        # before touching any counter) and never occupy the NIC: filter
        # them per source *before* the serialization scan.
        kept = []
        for s in self._sources:
            t, d = s.predraw(self.config)
            m = d != s.endpoint
            kept.append((t[m], d[m], s.endpoint))
        counts = np.array([len(t) for t, _, _ in kept], dtype=np.int64)
        n = int(counts.sum())
        if n == 0:
            return 0
        t0 = np.concatenate([t for t, _, _ in kept])
        dst_ep = np.concatenate([d for _, d, _ in kept])
        src_ep = np.repeat(
            np.array([ep for _, _, ep in kept], dtype=np.int64), counts
        )

        # NIC serialization per source: d_i = max(t_i, d_{i-1}) + S, the
        # exact recurrence the event engine's NIC queue realises.  Scatter
        # the (ragged) per-source sequences into an inf-padded 2-D array
        # and iterate over the short per-source packet index with all
        # sources vectorized, using the same float operations as the event
        # path so nic_done is bit-identical.
        S = self._tau
        kmax = int(counts.max())
        rows = np.repeat(np.arange(len(kept), dtype=np.int64), counts)
        cols = np.arange(n, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        t2d = np.full((len(kept), kmax), np.inf)
        t2d[rows, cols] = t0
        nic = np.empty_like(t2d)
        nic[:, 0] = t2d[:, 0] + S
        for j in range(1, kmax):
            nic[:, j] = np.maximum(t2d[:, j], nic[:, j - 1]) + S
        nic_done = nic[rows, cols]

        stats = self.stats
        stats.n_injected = n
        stats.t_first_inject = float(t0.min())

        # Per-packet state.
        self._t0 = t0
        self._nic_done = nic_done
        self._dst_ep = dst_ep
        self._dst_router = dst_ep // self._conc
        self._cur = src_ep // self._conc
        self._hops = np.zeros(n, dtype=np.int64)
        self._inter = np.full(n, -1, dtype=np.int64)
        self._phase = np.zeros(n, dtype=np.int64)
        self._wait = np.zeros(n, dtype=np.int64)  # queueing, in cycles
        self._uncontested = np.zeros(n, dtype=np.int64)  # hops w/o queueing

        # Arrival (first contention) cycle at the source router.
        t_arr = nic_done + self._link
        self._c0 = np.ceil(t_arr / self._tau).astype(np.int64)
        return n

    def _cycle_loop(self) -> None:
        n_dir = self._n_dir
        stats = self.stats
        # Injection buckets: packet ids sorted by arrival cycle.
        order = np.argsort(self._c0, kind="stable")
        c0_sorted = self._c0[order]
        inj_ptr = 0
        n = len(order)

        # The waiting set: one row per queued packet, kept **sorted by the
        # packed key** (port, enqueue cycle, tie-break) at all times, so
        # the per-cycle winner pick is a first-of-segment mask with no
        # resort; only each cycle's new arrivals are sorted (a small
        # batch) and merged in.
        self._w_comb = np.empty(0, dtype=np.int64)  # packed sort key
        self._w_idx = np.empty(0, dtype=np.int64)  # packet id
        self._w_nxt = np.empty(0, dtype=np.int64)  # downstream router

        pending: np.ndarray | None = None  # winners arriving next cycle
        c = int(c0_sorted[0])
        n_moves = 0
        max_q = 0
        while True:
            # a) arrivals: forwarded packets from last cycle + injections.
            hi = int(np.searchsorted(c0_sorted, c, side="right"))
            newly = order[inj_ptr:hi]
            inj_ptr = hi
            grew = bool((pending is not None and pending.size) or newly.size)
            if pending is not None and pending.size:
                self._arrive(pending, c, at_source=False)
            if newly.size:
                self._arrive(newly, c, at_source=True)
            pending = None

            comb = self._w_comb
            if comb.size == 0:
                if inj_ptr >= n:
                    break  # drained
                c = int(c0_sorted[inj_ptr])  # skip idle cycles
                continue

            ports = comb >> _PORT_SHIFT
            if grew and comb.size > max_q:
                # Queue depth can only grow on cycles that enqueued.
                counts = np.bincount(ports[ports < n_dir], minlength=0)
                if counts.size:
                    max_q = max(max_q, int(counts.max()))

            # b) contention: one winner per port — first of each segment
            # of the sorted keys.
            first = np.empty(comb.size, dtype=bool)
            first[0] = True
            np.not_equal(ports[1:], ports[:-1], out=first[1:])

            widx = self._w_idx[first]
            waited = c - ((comb[first] >> _ENQ_SHIFT) & _ENQ_MASK)
            self._wait[widx] += waited
            self._uncontested[widx] += waited == 0

            eject = ports[first] >= n_dir
            moved = widx[~eject]
            if moved.size:
                self._cur[moved] = self._w_nxt[first][~eject]
                self._hops[moved] += 1
                n_moves += int(moved.size)
            pending = moved

            # c) survivors keep their (still sorted) order.
            keep = ~first
            self._w_comb = comb[keep]
            self._w_idx = self._w_idx[keep]
            self._w_nxt = self._w_nxt[keep]
            c += 1
            if c >= _ENQ_MASK:  # pragma: no cover - absurdly long run
                raise SimulationError(
                    "batched run exceeded the cycle budget; use the event "
                    "backend for simulations this long"
                )

        n = len(self._t0)
        # Event-count analogue for events/s reporting: one unit per
        # injection, per hop transmission, and per delivery.
        stats.n_events = 2 * n + n_moves
        stats.max_queue_bytes = max_q * self._size

    def _arrive(self, p: np.ndarray, c: int, at_source: bool) -> None:
        """Route a batch of packets arriving at their current router."""
        cur = self._cur[p]
        dstr = self._dst_router[p]
        # Eject check first, exactly like the event engine's _arrive (a
        # Valiant packet crossing its destination router ejects early).
        at_dst = cur == dstr
        ej = p[at_dst]
        route = p[~at_dst]
        if ej.size:
            self._enqueue(ej, self._n_dir + self._dst_ep[ej], c)
        if not route.size:
            return
        if at_source:
            self._on_source(route)
        # Waypoint (inlined RoutingPolicy._toward, vectorized).
        cur = self._cur[route]
        inter = self._inter[route]
        has = (inter >= 0) & (self._phase[route] == 0)
        reached = has & (cur == inter)
        if reached.any():
            self._phase[route[reached]] = 1
        toward = np.where(has & ~reached, inter, self._dst_router[route])
        nxt = self._pick_minimal(cur, toward)
        self._enqueue(route, self._edge_ids(cur, nxt), c, nxt)

    def _on_source(self, p: np.ndarray) -> None:
        """Vectorized per-policy source decision (Valiant/UGAL adaptivity)."""
        stats = self.stats
        name = self.routing.name
        if name == "minimal":
            stats.minimal_choices += int(p.size)
            return
        cur = self._cur[p]
        dst = self._dst_router[p]
        inter = (self.rng.random(len(p)) * self.n_routers).astype(np.int64)
        degenerate = (inter == cur) | (inter == dst)
        inter[degenerate] = -1
        if name in ("ugal", "ugal-g"):
            good = np.nonzero(inter >= 0)[0]
            if good.size:
                counts = self._queue_counts()
                size = self._size
                bias = getattr(self.routing, "bias_bytes", 0)
                g_cur, g_dst, g_int = cur[good], dst[good], inter[good]
                if name == "ugal":
                    min_hop = self._pick_minimal(g_cur, g_dst)
                    val_hop = self._pick_minimal(g_cur, g_int)
                    q_min = counts[self._edge_ids(g_cur, min_hop)] * size
                    q_val = counts[self._edge_ids(g_cur, val_hop)] * size
                    h_min = self._dist[g_cur, g_dst].astype(np.int64)
                    h_val = self._dist[g_cur, g_int].astype(
                        np.int64
                    ) + self._dist[g_int, g_dst].astype(np.int64)
                    cost_min = (q_min + size) * h_min
                    cost_val = (q_val + size) * h_val + bias
                else:  # ugal-g: sampled whole-path queue sums
                    q_min, h_min = self._path_cost(g_cur, g_dst, counts)
                    q1, h1 = self._path_cost(g_cur, g_int, counts)
                    q2, h2 = self._path_cost(g_int, g_dst, counts)
                    cost_min = (q_min + size * h_min) * h_min
                    cost_val = (q1 + q2 + size * (h1 + h2)) * (h1 + h2) + bias
                inter[good[cost_min <= cost_val]] = -1
        self._inter[p] = inter
        self._phase[p] = 0
        n_val = int((inter >= 0).sum())
        stats.valiant_choices += n_val
        stats.minimal_choices += int(p.size) - n_val

    def _enqueue(
        self, p: np.ndarray, key: np.ndarray, c: int,
        nxt: np.ndarray | None = None,
    ) -> None:
        """Merge a batch into the sorted waiting set.

        The packed key is ``port << 40 | cycle << 20 | tie-break``: new
        entries sort after every already-waiting entry of the same port
        (their cycle is the largest yet), so a sorted insert preserves the
        FIFO discipline and the global order in one pass.
        """
        comb = (
            (key << _PORT_SHIFT)
            | np.int64(c << _ENQ_SHIFT)
            | self.rng.integers(0, _ENQ_MASK, size=len(p))
        )
        o = np.argsort(comb, kind="stable")
        comb = comb[o]
        if nxt is None:
            nxt = np.full(len(p), -1, dtype=np.int64)
        # Manual sorted merge (np.insert x3 costs ~3x as much): new
        # entries land at searchsorted positions offset by their own rank.
        old = self._w_comb
        new_at = np.searchsorted(old, comb) + np.arange(len(comb))
        total = len(old) + len(comb)
        old_at = np.ones(total, dtype=bool)
        old_at[new_at] = False
        merged = np.empty(total, dtype=np.int64)
        merged[new_at] = comb
        merged[old_at] = old
        self._w_comb = merged
        idx = np.empty(total, dtype=np.int64)
        idx[new_at] = p[o]
        idx[old_at] = self._w_idx
        self._w_idx = idx
        nx = np.empty(total, dtype=np.int64)
        nx[new_at] = nxt[o]
        nx[old_at] = self._w_nxt
        self._w_nxt = nx

    def _drain(self) -> None:
        """Assemble per-packet latencies analytically and fill SimStats.

        Pipeline per packet: NIC (exact, including injection queueing) +
        source cable + per-hop and eject stages of (switch + serialization
        + cable) + the observed queueing in whole cycles.  The switch stage
        is charged only at *uncontested* ports: the event engine schedules
        a queued packet straight off the previous transmission with no
        switch delay (see ``NetworkSimulator._port_done``), and this engine
        mirrors that by folding the switch of contested hops into their
        measured wait.
        """
        hops = self._hops
        stages = hops + 1  # inter-router traversals + the ejection port
        S = self._tau
        lat = (
            (self._nic_done - self._t0)
            + self._link
            + stages * (S + self._link)
            + self._uncontested * self._switch
            + self._wait * S
        )
        t_del = self._t0 + lat
        order = np.argsort(t_del, kind="stable")  # event-engine-ish order
        stats = self.stats
        stats.latencies_ns = lat[order].tolist()
        stats.hops = hops[order].tolist()
        stats.bytes_delivered = int(len(lat)) * self._size
        stats.t_last_delivery = float(t_del.max())
