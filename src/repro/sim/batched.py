"""The batch-synchronous (cycle-driven) simulation backend.

Where :class:`~repro.sim.network.NetworkSimulator` processes one heap event
at a time in a Python loop, this engine advances **all in-flight packets one
cycle at a time as numpy array programs** over the same CSR-of-CSR
:class:`~repro.routing.tables.RoutingTables`:

* a *cycle* is one packet-serialization time ``tau = packet_bytes /
  bytes_per_ns`` — the bandwidth quantum.  Every output port (one per
  directed edge) and every ejection port transmits at most one packet per
  cycle, which reproduces the event engine's service rate exactly;
* **injection** comes from the pre-drawn per-source arrays
  (:meth:`~repro.sim.traffic.OpenLoopSource.predraw`): identical Poisson
  gaps and destinations to the event engine at equal seeds, NIC
  serialization resolved by a vectorized max-scan before the cycle loop;
* **routing** is a per-cycle vectorized next-hop lookup: two ``nh_indptr``
  gathers and one ``nh_indices`` gather per arriving batch, uniform
  tie-breaks from one block of uniforms (Valiant/UGAL source decisions are
  vectorized the same way);
* **contention** is resolved per port by a segmented sort: every waiting
  packet carries one packed 64-bit key ``port << 40 | enqueue_cycle << 20
  | random_tiebreak`` and the waiting set is kept sorted by it — new
  arrivals are batch-sorted (segmented argsort) and merged in, and a
  first-of-segment mask picks one winner per port per cycle with no
  per-cycle resort — FIFO with random same-cycle tie-breaks, the batch
  analogue of the event engine's per-VC round-robin;
* **latency** is assembled analytically at drain time: the exact
  uncongested pipeline (NIC + per-hop switch/serialization/cable + eject)
  plus the observed queueing in whole cycles.  An uncontended packet gets
  the event engine's latency to the nanosecond; queueing is quantized to
  the cycle, which is where the two engines statistically diverge (see the
  tolerance table in ``docs/performance.md``).

The two engines are **not** event-for-event identical — equal seeds give
equal injections but different routing tie-break streams and cycle-quantized
queueing.  Their agreement on mean latency, mean hops, throughput, and
delivered counts is pinned statistically by
``tests/test_sim_differential.py``.

Beyond the original open-loop path, this engine covers the two scenario
families the paper's figures need:

* **fault schedules** (:class:`~repro.sim.faults.FaultSchedule`): fault
  events become *epoch boundaries* in the cycle loop.  At a boundary the
  engine mutates a live :class:`~repro.routing.tables.FaultMask` (the same
  failure-count overlay the event engine uses, so recovery is exact) and
  rewrites the **masked CSR-of-CSR next-hop arrays** — a vectorized
  live-candidate filter of the pristine table — in one pass; packets
  queued on newly dead ports are requeued or dropped with the event
  engine's semantics (see ``docs/resilience.md``).  The one semantic
  approximation: the event engine kills exactly the packet mid-flight on
  a failed link, while this engine's cycle-quantized winners have already
  "arrived" downstream — at most one packet per failed port diverges.
* **closed-loop motif workloads** (:meth:`run_closed_loop`): the
  dependency-driven send schedule of ``workloads/runner.py`` vectorized
  into per-cycle frontier arrays — a message's sends become eligible when
  its predecessors' receives land.  Motif messages have *heterogeneous
  sizes*, so this mode keeps exact per-packet times (fractional-cycle
  port clocks; an uncontested packet's latency equals the event engine's
  to float rounding) and uses the cycle grid only to batch contention
  decisions.

The congestion-realism PR added two more scenario families to the
open-loop path (see ``docs/congestion.md``):

* **credit/backpressure finite buffers** (``config.finite_buffers``):
  per-(directed edge, VC) credit counters threaded through the packed-key
  winner pick — a port's FIFO segment is scanned for the *first entry
  whose downstream input buffer has room* (the batch analogue of the
  event engine's round-robin VC skip), winners transfer their credit
  hold-until-departure exactly like ``NetworkSimulator._port_done``, and
  a wedged waiting set with no external work left raises the same
  structured :class:`~repro.errors.BufferDeadlockError` as the event
  engine's drain check;
* **lossy/jittery links** (``config.channel``, :mod:`repro.sim.channel`):
  winners crossing a link evaluate the shared counter-hash channel —
  identical loss/retransmit outcomes to the event engine by construction
  — accumulating exact extra nanoseconds into the drain-time latency and
  deferring congested arrivals by whole cycles when the delay spans them.

Still not supported here (use the event engine): ``run(until=...)``
pause/resume, ad-hoc ``send()`` calls, delivery callbacks, and combining
finite buffers or lossy links with closed-loop motif runs.  Every refusal
goes through the capability matrix (:mod:`repro.sim.capabilities`) and
raises the one canonical :class:`~repro.errors.BackendCapabilityError` —
construction-time errors, not silent fallbacks.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import (
    BackendCapabilityError,
    BufferDeadlockError,
    SimulationError,
)
from repro.routing.algorithms import RoutingPolicy
from repro.routing.tables import RoutingTables
from repro.sim import capabilities
from repro.sim.channel import ChannelModel, packet_key
from repro.sim.stats import SimStats
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import SimConfig

#: Closed-loop (motif) cycle quantum, in units of the open-loop cycle
#: ``tau``.  Closed-loop mode tracks exact per-packet and per-port times,
#: so the cycle grid only batches contention decisions and orders
#: same-cycle arrivals (exactly, via the arrival-time tie-break) — a
#: coarser grid costs ordering fidelity only across concurrent
#: quiescence iterations, while shrinking the Python-loop overhead per
#: simulated nanosecond.  Measured: factors past 1 buy little throughput
#: (the cost is per-iteration numpy overhead, not cycle count) while the
#: halo3d latency differential visibly loosens, so the quantum stays at
#: the open-loop cycle.
CLOSED_LOOP_CYCLE_FACTOR = 1

# Packed waiting-set sort key layout: port | enqueue cycle | tie-break.
# 23 bits of port (paper-scale topologies top out around ~60K directed
# edges + endpoints), 20 bits of cycle, 20 bits of random tie-break.
_PORT_SHIFT = 40
_ENQ_SHIFT = 20
_ENQ_MASK = (1 << 20) - 1


class BatchedSimulator:
    """Cycle-driven counterpart of :class:`NetworkSimulator`.

    Mirrors the construction API (topology + routing policy + config +
    shared tables) and the open-loop traffic API
    (:meth:`add_open_loop_source` / :meth:`run` -> :class:`SimStats`), so
    :func:`repro.experiments.common.build_synthetic_sim` can return either
    engine behind the ``backend`` selector.
    """

    backend = "batched"

    def __init__(
        self,
        topo: Topology,
        routing: RoutingPolicy,
        config: "SimConfig",
        tables: RoutingTables | None = None,
        faults=None,
    ) -> None:
        if config.finite_buffers:
            capabilities.require(self.backend, capabilities.FINITE_BUFFERS)
        if config.channel is not None:
            capabilities.require(self.backend, capabilities.LOSSY_LINKS)
        if routing.name not in ("minimal", "valiant", "ugal", "ugal-g"):
            raise SimulationError(
                f"no vectorized implementation of routing {routing.name!r}; "
                "use backend='event'"
            )
        self.topo = topo
        self.config = config
        self.routing = routing
        self.tables = tables if tables is not None else routing.tables
        g = topo.graph
        self.n_routers = g.n
        self.n_endpoints = g.n * config.concentration
        self.stats = SimStats()
        self._sources: list = []
        self.on_delivery = None

        # Numpy views of the flat fast-path tables (lists on small
        # topologies; the vectorized gathers need ndarrays).  Oracle-backed
        # tables skip the O(n^2) flat table entirely: minimal picks go
        # through the oracle's vectorized pick_minimal and UGAL's distance
        # probes through distance_batch.
        if self.tables.is_lazy:
            self._oracle = self.tables.oracle
            self._nh_indptr = None
            self._nh_indices = None
            self._dist = None
        else:
            self._oracle = None
            nh_indptr, nh_indices = self.tables.next_hop_table()
            self._nh_indptr = np.asarray(nh_indptr, dtype=np.int64)
            self._nh_indices = np.asarray(nh_indices, dtype=np.int64)
            self._dist = self.tables.dist  # (n, n) int16
        # Directed-edge id lookup: the flat keys u*n + v are globally sorted
        # (heads ascend, CSR rows are sorted), so one searchsorted resolves
        # a whole batch of (u, v) pairs.
        heads = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.indptr))
        self._edge_keys = heads * g.n + np.asarray(g.indices, dtype=np.int64)
        self._n_dir = len(self._edge_keys)
        if self._n_dir + self.n_endpoints >= (1 << (63 - _PORT_SHIFT)):
            raise SimulationError(  # pragma: no cover - paper scale is ~60K
                "topology too large for the packed contention keys; "
                "use backend='event'"
            )

        self._conc = config.concentration
        self._size = config.packet_bytes
        self._tau = config.packet_bytes / config.bytes_per_ns  # ns per cycle
        self._switch = config.switch_latency_ns
        self._link = config.link_latency_ns
        self.rng = routing.rng  # engine draws: tie-breaks, routing uniforms

        # Credit/backpressure finite buffers: per-(directed edge, VC)
        # occupancy, same layout as NetworkSimulator._buf_used so the
        # hold-until-departure semantics line up entry for entry.
        self.n_vcs = routing.required_vcs()
        self._buf_used = (
            np.zeros((self._n_dir, self.n_vcs), dtype=np.int64)
            if config.finite_buffers
            else None
        )
        # Lossy-link channel model (None on the pristine path); the extra
        # per-packet nanoseconds it produces accumulate in _ch_delay and
        # join the analytic latency at drain time.
        self._channel = (
            ChannelModel(config.channel, config.link_latency_ns)
            if config.channel is not None
            else None
        )
        self._ch_keys: np.ndarray | None = None
        self._ch_delay: np.ndarray | None = None

        #: Per-packet byte sizes in closed-loop (motif) mode; ``None`` in
        #: open-loop mode, whose packets all weigh ``config.packet_bytes``.
        self._msg_sizes: np.ndarray | None = None
        # The waiting set (sorted packed keys / packet ids / next routers);
        # also read by fault application before the first cycle runs.
        self._w_comb = np.empty(0, dtype=np.int64)
        self._w_idx = np.empty(0, dtype=np.int64)
        self._w_nxt = np.empty(0, dtype=np.int64)
        # Fault-injection state; all None until a schedule is attached and
        # the run starts (the pristine paths never read any of it).
        self._fault_schedule = faults
        self._mask = None
        self._alive_router: np.ndarray | None = None

    # -- public API (NetworkSimulator parity where meaningful) --------------
    def endpoint_router(self, ep: int) -> int:
        return ep // self._conc

    def add_open_loop_source(self, source) -> None:
        self._sources.append(source)

    def send(self, *args, **kwargs):
        # Ad-hoc open-ended send() has no batch analogue; motif DAGs go
        # through run_closed_loop (the vectorized frontier runner) instead.
        capabilities.require(self.backend, capabilities.ADHOC_SEND)

    def set_fault_schedule(self, schedule) -> None:
        """Attach a :class:`~repro.sim.faults.FaultSchedule` before ``run``.

        Fault events become epoch boundaries of the cycle loop; see the
        module docstring for the exact semantics.
        """
        if self._fault_schedule is not None:
            raise SimulationError("a fault schedule is already attached")
        if self._mask is not None or self.stats.n_events:
            raise SimulationError(
                "attach the fault schedule before running"
            )
        self._fault_schedule = schedule

    # -- helpers -------------------------------------------------------------
    def _edge_ids(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._edge_keys, u * self.n_routers + v)

    def _pick_minimal(self, u: np.ndarray, d: np.ndarray) -> np.ndarray:
        """One uniform random minimal next hop per (u, d) pair."""
        if self._oracle is not None:
            # Same draw shape as the flat-table path (one uniform per
            # pair, consumed even at width 1) so the RNG stream — and
            # therefore the whole run — is bit-identical across backends.
            r = self.rng.random(len(u))
            try:
                return self._oracle.pick_minimal(u, d, r)
            except ValueError as e:
                raise SimulationError(str(e)) from None
        k = u * self.n_routers + d
        lo = self._nh_indptr[k]
        width = self._nh_indptr[k + 1] - lo
        if width.size and int(width.min()) <= 0:
            bad = int(np.argmin(width))
            raise SimulationError(
                f"no minimal next hop from {int(u[bad])} to {int(d[bad])}"
            )
        offs = (self.rng.random(len(k)) * width).astype(np.int64)
        return self._nh_indices[lo + offs]

    def _port_queued_bytes(self) -> np.ndarray:
        """Queued bytes per router output port (UGAL's queue signal).

        Open-loop packets all weigh ``packet_bytes`` (a plain bincount
        times the size, bit-identical to the pre-motif implementation);
        closed-loop motif packets carry their own sizes.
        """
        ports = self._w_comb >> _PORT_SHIFT
        m = ports < self._n_dir
        if self._msg_sizes is None:
            return np.bincount(ports[m], minlength=self._n_dir) * self._size
        return np.bincount(
            ports[m],
            weights=self._msg_sizes[self._w_idx[m]],
            minlength=self._n_dir,
        )

    def _sizes_of(self, p: np.ndarray):
        """Byte size per packet in ``p`` (scalar broadcast in open loop)."""
        if self._msg_sizes is None:
            return self._size
        return self._msg_sizes[p]

    def _path_cost(
        self, src: np.ndarray, dst: np.ndarray, qbytes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized UGAL-G sampled-path cost: (queued bytes, hops)."""
        q = np.zeros(len(src), dtype=np.int64)
        h = np.zeros(len(src), dtype=np.int64)
        at = src.copy()
        active = np.nonzero(at != dst)[0]
        while active.size:
            nxt = self._pick_minimal(at[active], dst[active])
            eid = self._edge_ids(at[active], nxt)
            q[active] += qbytes[eid].astype(np.int64)
            h[active] += 1
            at[active] = nxt
            active = active[at[active] != dst[active]]
        return q, h

    # -- the run -------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> SimStats:
        if until is not None or max_events is not None:
            capabilities.require(self.backend, capabilities.PAUSE_RESUME)
        if self.on_delivery is not None:
            capabilities.require(self.backend, capabilities.DELIVERY_CALLBACKS)
        n_pkts = self._inject()
        stats = self.stats
        if self._fault_schedule is not None:
            self._init_faults()
        if n_pkts == 0:
            if self._mask is not None:
                # No traffic, but the schedule's epochs must still record
                # (the event engine drains its _FAULT events regardless).
                for ev in self._fault_schedule.events:
                    self._apply_fault_event(ev)
                self._fill_epochs(np.empty(0), np.empty(0), np.empty(0, bool))
            return stats
        self._cycle_loop()
        self._drain()
        return stats

    def _inject(self) -> int:
        """Pre-draw all sources, filter self-sends, resolve NIC queueing.

        Sets the per-packet state arrays and returns the packet count.
        """
        if not self._sources:
            return 0
        eps = [s.endpoint for s in self._sources]
        if len(set(eps)) != len(eps):
            raise SimulationError(
                "batched backend needs one source per endpoint "
                "(NIC serialization is resolved per source)"
            )
        # Self-sends complete instantly in the event engine (send() returns
        # before touching any counter) and never occupy the NIC: filter
        # them per source *before* the serialization scan.
        kept = []
        for s in self._sources:
            t, d = s.predraw(self.config)
            m = d != s.endpoint
            kept.append((t[m], d[m], s.endpoint))
        counts = np.array([len(t) for t, _, _ in kept], dtype=np.int64)
        n = int(counts.sum())
        if n == 0:
            return 0
        t0 = np.concatenate([t for t, _, _ in kept])
        dst_ep = np.concatenate([d for _, d, _ in kept])
        src_ep = np.repeat(
            np.array([ep for _, _, ep in kept], dtype=np.int64), counts
        )

        # NIC serialization per source: d_i = max(t_i, d_{i-1}) + S, the
        # exact recurrence the event engine's NIC queue realises.  Scatter
        # the (ragged) per-source sequences into an inf-padded 2-D array
        # and iterate over the short per-source packet index with all
        # sources vectorized, using the same float operations as the event
        # path so nic_done is bit-identical.
        S = self._tau
        kmax = int(counts.max())
        rows = np.repeat(np.arange(len(kept), dtype=np.int64), counts)
        cols = np.arange(n, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        t2d = np.full((len(kept), kmax), np.inf)
        t2d[rows, cols] = t0
        nic = np.empty_like(t2d)
        nic[:, 0] = t2d[:, 0] + S
        for j in range(1, kmax):
            nic[:, j] = np.maximum(t2d[:, j], nic[:, j - 1]) + S
        nic_done = nic[rows, cols]

        stats = self.stats
        stats.n_injected = n
        stats.t_first_inject = float(t0.min())

        # Per-packet state.
        self._t0 = t0
        self._nic_done = nic_done
        self._dst_ep = dst_ep
        self._dst_router = dst_ep // self._conc
        self._cur = src_ep // self._conc
        self._hops = np.zeros(n, dtype=np.int64)
        self._inter = np.full(n, -1, dtype=np.int64)
        self._phase = np.zeros(n, dtype=np.int64)
        self._wait = np.zeros(n, dtype=np.int64)  # queueing, in cycles
        self._uncontested = np.zeros(n, dtype=np.int64)  # hops w/o queueing
        self._dropped = np.zeros(n, dtype=bool)  # fault/channel losses
        if self._channel is not None:
            # ``cols`` is each packet's injection index within its source
            # — the same per-endpoint counter the event engine's send()
            # keeps — so the composed keys, and with them every channel
            # draw, coincide across engines.
            self._ch_keys = packet_key(src_ep, cols)
            self._ch_delay = np.zeros(n)

        # Arrival (first contention) cycle at the source router.
        t_arr = nic_done + self._link
        self._c0 = np.ceil(t_arr / self._tau).astype(np.int64)
        return n

    def _cycle_loop(self) -> None:
        n_dir = self._n_dir
        stats = self.stats
        # Injection buckets: packet ids sorted by arrival cycle.
        order = np.argsort(self._c0, kind="stable")
        c0_sorted = self._c0[order]
        inj_ptr = 0
        n = len(order)

        # The waiting set: one row per queued packet, kept **sorted by the
        # packed key** (port, enqueue cycle, tie-break) at all times, so
        # the per-cycle winner pick is a first-of-segment mask with no
        # resort; only each cycle's new arrivals are sorted (a small
        # batch) and merged in.
        self._w_comb = np.empty(0, dtype=np.int64)  # packed sort key
        self._w_idx = np.empty(0, dtype=np.int64)  # packet id
        self._w_nxt = np.empty(0, dtype=np.int64)  # downstream router

        pending: np.ndarray | None = None  # winners arriving next cycle
        faulted = self._mask is not None
        ev_ptr = 0
        n_ev_f = len(self._ev_cycles) if faulted else 0
        events_f = self._fault_schedule.events if faulted else ()
        finite = self._buf_used is not None
        buf = self._buf_used
        B = self.config.buffer_bytes
        size = self._size
        n_vcs = self.n_vcs
        if finite:
            # Hold-until-departure credit state: the (edge, VC) input
            # buffer each packet currently occupies (-1 = none, fresh
            # from its NIC), mirroring Packet.occupies_edge/occupies_vc.
            self._occ_edge = np.full(n, -1, dtype=np.int64)
            self._occ_vc = np.zeros(n, dtype=np.int64)
            self._ejected = np.zeros(n, dtype=bool)
        ch = self._channel
        tau = self._tau
        # Channel-delayed arrivals whose extra nanoseconds span whole
        # cycles: chunks of packet ids filed under their due cycle (the
        # open-loop analogue of the closed-loop arrival heap).
        def_arr: dict[int, list] = {}
        def_heap: list[int] = []
        c = int(c0_sorted[0])
        if n_ev_f:
            c = min(c, int(self._ev_cycles[0]))
        n_moves = 0
        max_q = 0
        while True:
            grew_rq = False
            if faulted and ev_ptr < n_ev_f and self._ev_cycles[ev_ptr] <= c:
                # Epoch boundary: apply every schedule event due at this
                # cycle (mask mutation + waiting-set fix-up per event,
                # matching the event engine's per-event atomicity), then
                # rewrite the masked next-hop arrays once and re-route the
                # requeued packets against them.
                rq_all = []
                while ev_ptr < n_ev_f and self._ev_cycles[ev_ptr] <= c:
                    rq = self._apply_fault_event(events_f[ev_ptr], c)
                    if rq.size:
                        rq_all.append(rq)
                    ev_ptr += 1
                self._rebuild_masked()
                if rq_all:
                    self._arrive(np.concatenate(rq_all), c, at_source=False)
                    grew_rq = True

            # a) arrivals: forwarded packets from last cycle + channel-
            # delayed packets now due + injections.
            hi = int(np.searchsorted(c0_sorted, c, side="right"))
            newly = order[inj_ptr:hi]
            inj_ptr = hi
            grew = bool(
                (pending is not None and pending.size) or newly.size
            ) or grew_rq
            if pending is not None and pending.size:
                self._arrive(pending, c, at_source=False)
            if def_heap and def_heap[0] <= c:
                chunks: list[np.ndarray] = []
                while def_heap and def_heap[0] <= c:
                    chunks.extend(def_arr.pop(heapq.heappop(def_heap)))
                late = (
                    chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                )
                self._arrive(late, c, at_source=False)
                grew = True
            if newly.size:
                self._arrive(newly, c, at_source=True)
            pending = None

            comb = self._w_comb
            if comb.size == 0:
                if inj_ptr >= n and not def_heap:
                    # Drained.  Remaining schedule events still apply (the
                    # event engine processes its _FAULT events regardless),
                    # so recovery bookkeeping and epoch marks stay exact;
                    # one final rewrite leaves the masked arrays reflecting
                    # the mask's end state (pristine after full recovery).
                    if ev_ptr < n_ev_f:
                        while ev_ptr < n_ev_f:
                            self._apply_fault_event(events_f[ev_ptr])
                            ev_ptr += 1
                        self._rebuild_masked()
                    break
                # Skip idle cycles to the next external work: a pending
                # injection, a channel-deferred arrival, or a fault event.
                c = int(c0_sorted[inj_ptr]) if inj_ptr < n else def_heap[0]
                if def_heap:
                    c = min(c, def_heap[0])
                if ev_ptr < n_ev_f:
                    c = min(c, int(self._ev_cycles[ev_ptr]))
                continue

            ports = comb >> _PORT_SHIFT
            if grew and comb.size > max_q:
                # Queue depth can only grow on cycles that enqueued.
                counts = np.bincount(ports[ports < n_dir], minlength=0)
                if counts.size:
                    max_q = max(max_q, int(counts.max()))

            # b) contention: one winner per port.  Unbounded buffers take
            # the first of each segment of the sorted keys; finite buffers
            # take the first entry of the segment whose downstream input
            # buffer has room at the cycle's opening credits (the batch
            # analogue of the event engine's round-robin VC skip) — a
            # port whose whole segment is blocked stays idle this cycle.
            if not finite:
                first = np.empty(comb.size, dtype=bool)
                first[0] = True
                np.not_equal(ports[1:], ports[:-1], out=first[1:])
            else:
                seg_first = np.empty(comb.size, dtype=bool)
                seg_first[0] = True
                np.not_equal(ports[1:], ports[:-1], out=seg_first[1:])
                is_ej = ports >= n_dir
                vc_e = np.minimum(self._hops[self._w_idx], n_vcs - 1)
                used = buf[np.where(is_ej, 0, ports), vc_e]
                # Ejection ports never gate; a buffer always admits at
                # least one packet, even oversized (event-engine parity).
                elig = is_ej | (used == 0) | (used + size <= B)
                pos = np.nonzero(elig)[0]
                first = np.zeros(comb.size, dtype=bool)
                if pos.size:
                    seg_id = np.cumsum(seg_first)[pos]
                    lead = np.empty(pos.size, dtype=bool)
                    lead[0] = True
                    np.not_equal(seg_id[1:], seg_id[:-1], out=lead[1:])
                    first[pos[lead]] = True
                if not first.any():
                    # No port can move.  Credits only change when a winner
                    # departs, so if external work is still due, nothing
                    # happens until it lands — jump straight there.
                    nxt_c = []
                    if inj_ptr < n:
                        nxt_c.append(int(c0_sorted[inj_ptr]))
                    if def_heap:
                        nxt_c.append(def_heap[0])
                    if ev_ptr < n_ev_f:
                        nxt_c.append(int(self._ev_cycles[ev_ptr]))
                    if nxt_c:
                        c = max(c + 1, min(nxt_c))
                        continue
                    self._raise_deadlock(c)

            widx = self._w_idx[first]
            waited = c - ((comb[first] >> _ENQ_SHIFT) & _ENQ_MASK)
            self._wait[widx] += waited
            self._uncontested[widx] += waited == 0

            eject = ports[first] >= n_dir
            moved = widx[~eject]
            moved_nxt = self._w_nxt[first][~eject]
            if finite:
                # Ejecting winners leave the network: release the input
                # buffer each held (hold-until-departure, the batch mirror
                # of NetworkSimulator._eject_done's _release_buffer).
                ej_ids = widx[eject]
                if ej_ids.size:
                    self._ejected[ej_ids] = True
                    held = ej_ids[self._occ_edge[ej_ids] >= 0]
                    if held.size:
                        np.subtract.at(
                            buf,
                            (self._occ_edge[held], self._occ_vc[held]),
                            size,
                        )
                        self._occ_edge[held] = -1
                moved_eid = ports[first][~eject]
                moved_vc = np.minimum(self._hops[moved], n_vcs - 1)
            extra: np.ndarray | None = None
            if ch is not None and moved.size:
                # Evaluate the lossy crossing at the pre-increment hop
                # index — exactly where NetworkSimulator._port_done draws
                # it — so both engines consume identical substreams.
                ok, extra, retr = ch.crossings(
                    self._ch_keys[moved], self._hops[moved]
                )
                rsum = int(retr.sum())
                if rsum:
                    stats.n_retransmits += rsum
                if not ok.all():
                    # _drop_pkts releases any held buffer; the lost packet
                    # never occupies the downstream one.
                    self._drop_pkts(moved[~ok], ch.config.drop_cause)
                    if finite:
                        moved_eid = moved_eid[ok]
                        moved_vc = moved_vc[ok]
                    moved = moved[ok]
                    moved_nxt = moved_nxt[ok]
                    extra = extra[ok]
            if finite and moved.size:
                # Credit transfer: release the buffer held upstream, occupy
                # the one just filled downstream.  One winner per port per
                # cycle means each (edge, VC) cell gains at most one
                # packet's bytes per cycle, so the opening-credit check
                # above can never oversubscribe a buffer.
                held = moved[self._occ_edge[moved] >= 0]
                if held.size:
                    np.subtract.at(
                        buf, (self._occ_edge[held], self._occ_vc[held]), size
                    )
                np.add.at(buf, (moved_eid, moved_vc), size)
                self._occ_edge[moved] = moved_eid
                self._occ_vc[moved] = moved_vc
            if moved.size:
                self._cur[moved] = moved_nxt
                self._hops[moved] += 1
                n_moves += int(moved.size)
            if extra is not None and moved.size:
                # Exact channel nanoseconds join the drain-time latency;
                # arrivals shift by the whole cycles the delay spans.
                self._ch_delay[moved] += extra
                shift = (extra // tau).astype(np.int64)
                near = shift == 0
                pending = moved[near]
                far = moved[~near]
                if far.size:
                    due_all = c + 1 + shift[~near]
                    for cv in np.unique(due_all).tolist():
                        lst = def_arr.get(cv)
                        if lst is None:
                            lst = def_arr[cv] = []
                            heapq.heappush(def_heap, cv)
                        lst.append(far[due_all == cv])
            else:
                pending = moved

            # c) survivors keep their (still sorted) order.
            keep = ~first
            self._w_comb = comb[keep]
            self._w_idx = self._w_idx[keep]
            self._w_nxt = self._w_nxt[keep]
            c += 1
            if c >= _ENQ_MASK:  # pragma: no cover - absurdly long run
                raise SimulationError(
                    "batched run exceeded the cycle budget; use the event "
                    "backend for simulations this long"
                )

        n = len(self._t0)
        # Event-count analogue for events/s reporting: one unit per
        # injection, per hop transmission, and per delivery.
        stats.n_events = 2 * n + n_moves
        stats.max_queue_bytes = max_q * self._size

    def _arrive(self, p: np.ndarray, c: int, at_source: bool) -> None:
        """Route a batch of packets arriving at their current router."""
        cur = self._cur[p]
        dstr = self._dst_router[p]
        # Eject check first, exactly like the event engine's _arrive (a
        # Valiant packet crossing its destination router ejects early).
        at_dst = cur == dstr
        ej = p[at_dst]
        route = p[~at_dst]
        mask_on = self._mask is not None
        if mask_on:
            alive = self._alive_router
            if ej.size:
                dead = ~alive[self._cur[ej]]
                if dead.any():
                    self._drop_pkts(ej[dead], "router-down")
                    ej = ej[~dead]
        if ej.size:
            self._enqueue(ej, self._n_dir + self._dst_ep[ej], c)
        if not route.size:
            return
        if mask_on:
            # Mirror the event engine's degraded _arrive order: current
            # router dead, destination router dead, TTL, then route.
            dead = ~alive[self._cur[route]] | ~alive[self._dst_router[route]]
            if dead.any():
                self._drop_pkts(route[dead], "router-down")
                route = route[~dead]
                if not route.size:
                    return
            over = self._hops[route] >= self._ttl
            if over.any():
                self._drop_pkts(route[over], "ttl")
                route = route[~over]
                if not route.size:
                    return
        if at_source:
            self._on_source(route)
        if mask_on:
            # A dead Valiant intermediate is abandoned (next_hop_degraded
            # semantics): the packet heads straight for its destination.
            inter = self._inter[route]
            dead_int = (inter >= 0) & ~alive[np.maximum(inter, 0)]
            if dead_int.any():
                self._inter[route[dead_int]] = -1
        # Waypoint (inlined RoutingPolicy._toward, vectorized).
        cur = self._cur[route]
        inter = self._inter[route]
        has = (inter >= 0) & (self._phase[route] == 0)
        reached = has & (cur == inter)
        if reached.any():
            self._phase[route[reached]] = 1
        toward = np.where(has & ~reached, inter, self._dst_router[route])
        if mask_on:
            nxt = self._pick_next_live(cur, toward)
            ok = nxt >= 0
            if not ok.all():
                self._drop_pkts(route[~ok], "unreachable")
                route, cur, nxt = route[ok], cur[ok], nxt[ok]
                if not route.size:
                    return
        else:
            nxt = self._pick_minimal(cur, toward)
        self._enqueue(route, self._edge_ids(cur, nxt), c, nxt)

    def _on_source(self, p: np.ndarray) -> None:
        """Vectorized per-policy source decision (Valiant/UGAL adaptivity)."""
        stats = self.stats
        name = self.routing.name
        if name == "minimal":
            stats.minimal_choices += int(p.size)
            return
        cur = self._cur[p]
        dst = self._dst_router[p]
        inter = (self.rng.random(len(p)) * self.n_routers).astype(np.int64)
        degenerate = (inter == cur) | (inter == dst)
        inter[degenerate] = -1
        if name in ("ugal", "ugal-g"):
            good = np.nonzero(inter >= 0)[0]
            if good.size:
                qbytes = self._port_queued_bytes()
                size = self._sizes_of(p[good])
                bias = getattr(self.routing, "bias_bytes", 0)
                g_cur, g_dst, g_int = cur[good], dst[good], inter[good]
                if name == "ugal":
                    min_hop = self._pick_minimal(g_cur, g_dst)
                    val_hop = self._pick_minimal(g_cur, g_int)
                    q_min = qbytes[self._edge_ids(g_cur, min_hop)].astype(
                        np.int64
                    )
                    q_val = qbytes[self._edge_ids(g_cur, val_hop)].astype(
                        np.int64
                    )
                    if self._dist is None:
                        h_min = self._oracle.distance_batch(g_cur, g_dst)
                        h_val = self._oracle.distance_batch(
                            g_cur, g_int
                        ) + self._oracle.distance_batch(g_int, g_dst)
                    else:
                        h_min = self._dist[g_cur, g_dst].astype(np.int64)
                        h_val = self._dist[g_cur, g_int].astype(
                            np.int64
                        ) + self._dist[g_int, g_dst].astype(np.int64)
                    cost_min = (q_min + size) * h_min
                    cost_val = (q_val + size) * h_val + bias
                else:  # ugal-g: sampled whole-path queue sums
                    q_min, h_min = self._path_cost(g_cur, g_dst, qbytes)
                    q1, h1 = self._path_cost(g_cur, g_int, qbytes)
                    q2, h2 = self._path_cost(g_int, g_dst, qbytes)
                    cost_min = (q_min + size * h_min) * h_min
                    cost_val = (q1 + q2 + size * (h1 + h2)) * (h1 + h2) + bias
                inter[good[cost_min <= cost_val]] = -1
        self._inter[p] = inter
        self._phase[p] = 0
        n_val = int((inter >= 0).sum())
        stats.valiant_choices += n_val
        stats.minimal_choices += int(p.size) - n_val

    def _enqueue(
        self, p: np.ndarray, key: np.ndarray, c: int,
        nxt: np.ndarray | None = None,
    ) -> None:
        """Merge a batch into the sorted waiting set.

        The packed key is ``port << 40 | cycle << 20 | tie-break``: new
        entries sort after every already-waiting entry of the same port
        (their cycle is the largest yet), so a sorted insert preserves the
        FIFO discipline and the global order in one pass.

        Open-loop mode breaks same-cycle ties uniformly at random (the
        batch analogue of the event engine's VC round-robin fairness).
        Closed-loop mode tracks exact per-packet times, so the tie-break
        encodes the packet's *arrival time within the cycle* — serving a
        later arrival first would idle the port against the event engine's
        continuous pipeline and systematically inflate latency.
        """
        if self._msg_sizes is None:
            tie = self.rng.integers(0, _ENQ_MASK, size=len(p))
        else:
            frac = self._t_arr[p] / self._cl_tau - (c - 1)
            # Round, don't truncate: truncation turns the one-ulp float
            # error of the fraction round-trip into off-by-one ties, so
            # two packets with distinct quantized arrivals could collide
            # and their order would depend on merge-batch boundaries
            # (pinned by the permutation-invariance property test).
            tie = np.clip(
                np.rint(frac * (_ENQ_MASK - 1)).astype(np.int64),
                0, _ENQ_MASK - 1,
            )
        comb = (
            (key << _PORT_SHIFT)
            | np.int64(c << _ENQ_SHIFT)
            | tie
        )
        o = np.argsort(comb, kind="stable")
        comb = comb[o]
        if nxt is None:
            nxt = np.full(len(p), -1, dtype=np.int64)
        # Manual sorted merge (np.insert x3 costs ~3x as much): new
        # entries land at searchsorted positions offset by their own rank.
        old = self._w_comb
        new_at = np.searchsorted(old, comb) + np.arange(len(comb))
        total = len(old) + len(comb)
        old_at = np.ones(total, dtype=bool)
        old_at[new_at] = False
        merged = np.empty(total, dtype=np.int64)
        merged[new_at] = comb
        merged[old_at] = old
        self._w_comb = merged
        idx = np.empty(total, dtype=np.int64)
        idx[new_at] = p[o]
        idx[old_at] = self._w_idx
        self._w_idx = idx
        nx = np.empty(total, dtype=np.int64)
        nx[new_at] = nxt[o]
        nx[old_at] = self._w_nxt
        self._w_nxt = nx

    # -- fault epochs --------------------------------------------------------
    def _init_faults(self) -> None:
        """Prepare the epoch machinery for the attached schedule.

        Builds the live :class:`FaultMask` (the same failure-count overlay
        the event engine mutates, so recovery composes exactly), the
        per-entry directed-edge ids of the flat next-hop table (one gather
        per epoch rewrite), and the boundary cycle of every schedule event
        (``ceil(t / tau)`` — events at a cycle's opening edge apply before
        any packet of that cycle, the batch analogue of fault events
        sorting below traffic events at equal timestamps).
        """
        if self.tables.is_lazy:
            raise SimulationError(
                "fault schedules on backend='batched' need the dense "
                "next-hop table; construct RoutingTables without an "
                "on-demand oracle (or use backend='event')"
            )
        g = self.topo.graph
        self._mask = self.tables.fault_mask()
        self._edge_head = np.repeat(
            np.arange(g.n, dtype=np.int64), np.diff(g.indptr)
        )
        self._alive_router = np.ones(g.n, dtype=bool)
        # Same non-minimal walk budget as NetworkSimulator.
        self._ttl = 4 * self.tables.diameter + 16
        indptr = self._nh_indptr
        self._entry_cell = np.repeat(
            np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr)
        )
        entry_u = self._entry_cell // self.n_routers
        self._entry_eid = self._edge_ids(entry_u, self._nh_indices)
        self._rebuild_masked()
        tau = self._tau
        self._ev_cycles = np.array(
            [int(np.ceil(ev.t / tau)) for ev in self._fault_schedule.events],
            dtype=np.int64,
        )

    def _rebuild_masked(self) -> None:
        """Rewrite the masked CSR-of-CSR next-hop arrays from the mask.

        A pure function of the mask's failure counts: restoring every
        fault reproduces the pristine arrays bit-for-bit, which is what
        keeps recovery exact.  One boolean gather + bincount + cumsum over
        the flat table per epoch boundary.
        """
        dead = np.asarray(self._mask._dead_edge, dtype=np.int64)
        alive_e = dead[self._entry_eid] == 0
        ncells = len(self._nh_indptr) - 1
        counts = np.bincount(
            self._entry_cell[alive_e], minlength=ncells
        )
        indptr = np.empty(ncells + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        self._m_indptr = indptr
        self._m_indices = self._nh_indices[alive_e]

    def _pick_next_live(self, u: np.ndarray, d: np.ndarray) -> np.ndarray:
        """Masked minimal pick with non-minimal fallback; ``-1`` = drop.

        The masked arrays answer the common case in one vectorized gather;
        pairs whose minimal set is fully severed fall back to the live
        neighbours greedily closest to the destination under the stale
        metric (``FaultMask.fallback_candidates``, counted in
        ``stats.nonminimal_hops``) — rare enough to loop.
        """
        k = u * self.n_routers + d
        lo = self._m_indptr[k]
        width = self._m_indptr[k + 1] - lo
        offs = (self.rng.random(len(k)) * width).astype(np.int64)
        ok = width > 0
        nxt = np.full(len(k), -1, dtype=np.int64)
        if ok.any():
            nxt[ok] = self._m_indices[lo[ok] + offs[ok]]
        fb = np.nonzero(~ok)[0]
        if fb.size:
            mask = self._mask
            rng = self.rng
            stats = self.stats
            for i in fb:
                cands = mask.fallback_candidates(int(u[i]), int(d[i]))
                if cands:
                    stats.nonminimal_hops += 1
                    nxt[i] = cands[int(rng.random() * len(cands))]
        return nxt

    def _drop_pkts(self, p: np.ndarray, reason: str) -> None:
        """Account a batch of lost packets, keyed by cause.

        With finite buffers the doomed packets release the input buffers
        they held (the batch mirror of ``NetworkSimulator._drop`` calling
        ``_release_buffer``) — a leak here would wedge healthy traffic
        behind credits nobody returns.
        """
        k = int(len(p))
        if not k:
            return
        if self._buf_used is not None:
            held = p[self._occ_edge[p] >= 0]
            if held.size:
                np.subtract.at(
                    self._buf_used,
                    (self._occ_edge[held], self._occ_vc[held]),
                    self._size,
                )
                self._occ_edge[held] = -1
        self._dropped[p] = True
        st = self.stats
        st.n_dropped += k
        st.drops[reason] = st.drops.get(reason, 0) + k

    def _raise_deadlock(self, c: int) -> None:
        """The waiting set is wedged with no external work left: raise.

        Mirrors the event engine's drain check — builds the wait-for map
        from the blocked head packets (held (edge, VC) -> wanted
        (edge, VC)), extracts one cycle witness, fills the stats with the
        packets that *did* deliver so the error carries a coherent
        partial picture, and raises :class:`BufferDeadlockError`.
        """
        stats = self.stats
        ports = self._w_comb >> _PORT_SHIFT
        waits_for: dict = {}
        # Every queued packet contributes (buffer-less packets fresh from
        # their NIC can sit ahead of the chain-forming holders).
        for pkt, port in zip(self._w_idx.tolist(), ports.tolist()):
            if self._occ_edge[pkt] >= 0:
                held = (int(self._occ_edge[pkt]), int(self._occ_vc[pkt]))
                wanted = (
                    int(port), int(min(self._hops[pkt], self.n_vcs - 1))
                )
                waits_for[held] = wanted
        cycle = BufferDeadlockError.find_cycle(waits_for)
        blocked = int(self._w_comb.size)
        stats.deadlocked = True
        delivered = self._ejected & ~self._dropped
        undelivered = (
            len(self._t0) - int(delivered.sum()) - int(self._dropped.sum())
        )
        stats.undelivered = undelivered
        self._drain(delivered)
        raise BufferDeadlockError.build(cycle, blocked, undelivered, stats)

    def _apply_fault_event(self, ev, c: int = 0) -> np.ndarray:
        """Apply one schedule event: mutate the mask, fix up the waiting set.

        Returns the packet ids pulled off newly dead ports for requeueing
        (the caller re-routes them after the masked arrays are rebuilt).
        Packets queued on ports *out of* a dead router are lost with it;
        packets on ports *into* it requeue at the still-live upstream
        router; packets crossing the ejection ports of a dead router are
        lost — the event engine's ``_sever_port`` semantics.
        """
        mask = self._mask
        kind = ev.kind
        requeue_eids: np.ndarray | None = None
        drop_eids: np.ndarray | None = None
        dead_router = -1
        if kind == "link-down":
            newly = np.asarray(mask.fail_link(ev.a, ev.b), dtype=np.int64)
            requeue_eids = newly
            label = f"link-down {ev.a}-{ev.b}"
        elif kind == "link-up":
            mask.restore_link(ev.a, ev.b)
            label = f"link-up {ev.a}-{ev.b}"
        elif kind == "router-down":
            newly = np.asarray(mask.fail_router(ev.a), dtype=np.int64)
            self._alive_router[ev.a] = False
            heads = self._edge_head[newly]
            requeue_eids = newly[heads != ev.a]
            drop_eids = newly[heads == ev.a]
            dead_router = ev.a
            label = f"router-down {ev.a}"
        else:  # router-up
            mask.restore_router(ev.a)
            self._alive_router[ev.a] = True
            label = f"router-up {ev.a}"
        rq = np.empty(0, dtype=np.int64)
        if dead_router >= 0 or (requeue_eids is not None and len(requeue_eids)):
            ports = self._w_comb >> _PORT_SHIFT
            bad_rq = (
                np.isin(ports, requeue_eids)
                if requeue_eids is not None and len(requeue_eids)
                else np.zeros(ports.size, dtype=bool)
            )
            bad_dp = (
                np.isin(ports, drop_eids)
                if drop_eids is not None and len(drop_eids)
                else np.zeros(ports.size, dtype=bool)
            )
            if dead_router >= 0:
                ep_lo = self._n_dir + dead_router * self._conc
                bad_dp |= (ports >= ep_lo) & (ports < ep_lo + self._conc)
            if bad_dp.any():
                self._drop_pkts(self._w_idx[bad_dp], "router-down")
            if bad_rq.any():
                rq = self._w_idx[bad_rq]
                self.stats.n_requeued += int(rq.size)
                # Credit the cycles spent queueing on the dead port, which
                # the winner-pick accounting will never see (the packet
                # re-enqueues with a fresh cycle stamp).
                enq = (self._w_comb[bad_rq] >> _ENQ_SHIFT) & _ENQ_MASK
                self._wait[rq] += c - enq
            keep = ~(bad_rq | bad_dp)
            if not keep.all():
                self._w_comb = self._w_comb[keep]
                self._w_idx = self._w_idx[keep]
                self._w_nxt = self._w_nxt[keep]
        # Epoch snapshot; injected/delivered counts are only knowable at
        # drain time (latencies assemble analytically) and are filled in
        # by _fill_epochs.
        self.stats.epochs.append(
            {
                "t": ev.t,
                "label": label,
                "injected": 0,
                "delivered": 0,
                "dropped": self.stats.n_dropped,
                "requeued": self.stats.n_requeued,
                "bytes_delivered": 0,
            }
        )
        return rq

    def _fill_epochs(
        self, t0: np.ndarray, t_del: np.ndarray, delivered: np.ndarray
    ) -> None:
        """Patch the drain-time counters into the recorded epoch snapshots.

        Boundary semantics are strict: the event engine pushes fault
        events into its heap before any traffic exists, so at equal
        timestamps a fault pops first and its epoch snapshot *excludes*
        injections and deliveries landing exactly at the epoch time.  An
        inclusive comparison here diverged from the reference whenever a
        run terminated exactly on an epoch boundary (the last delivery
        cycle coinciding with a recovery event).
        """
        sizes = self._msg_sizes
        for ep in self.stats.epochs:
            t = ep["t"]
            ep["injected"] = int((t0 < t).sum()) if len(t0) else 0
            if len(t_del):
                dm = delivered & (t_del < t)
                ep["delivered"] = int(dm.sum())
                ep["bytes_delivered"] = (
                    int(dm.sum()) * self._size
                    if sizes is None
                    else int(sizes[dm].sum())
                )

    def _drain(self, delivered_mask: np.ndarray | None = None) -> None:
        """Assemble per-packet latencies analytically and fill SimStats.

        Pipeline per packet: NIC (exact, including injection queueing) +
        source cable + per-hop and eject stages of (switch + serialization
        + cable) + the observed queueing in whole cycles.  The switch stage
        is charged only at *uncontested* ports: the event engine schedules
        a queued packet straight off the previous transmission with no
        switch delay (see ``NetworkSimulator._port_done``), and this engine
        mirrors that by folding the switch of contested hops into their
        measured wait.

        ``delivered_mask`` restricts the fill to a subset (the deadlock
        path passes the ejected-and-not-dropped packets); when ``None``
        it is derived from the drop ledger for fault and lossy runs.
        """
        hops = self._hops
        stages = hops + 1  # inter-router traversals + the ejection port
        S = self._tau
        lat = (
            (self._nic_done - self._t0)
            + self._link
            + stages * (S + self._link)
            + self._uncontested * self._switch
            + self._wait * S
        )
        if self._ch_delay is not None:
            # Exact channel nanoseconds (overhead, jitter, retransmit
            # round-trips) on top of the analytic pipeline.
            lat = lat + self._ch_delay
        t_del = self._t0 + lat
        stats = self.stats
        if delivered_mask is None and (
            self._mask is not None
            or (self._channel is not None and self._dropped.any())
        ):
            # Fault/lossy mode: dropped packets never delivered; their
            # lat/t_del entries are meaningless and are excluded here.
            delivered_mask = ~self._dropped
        if delivered_mask is not None:
            keep = delivered_mask
            lat = lat[keep]
            hops = hops[keep]
            t_del_k = t_del[keep]
            order = np.argsort(t_del_k, kind="stable")
            stats.latencies_ns = lat[order].tolist()
            stats.hops = hops[order].tolist()
            stats.bytes_delivered = int(len(lat)) * self._size
            if len(t_del_k):
                stats.t_last_delivery = float(t_del_k.max())
            if self._mask is not None:
                self._fill_epochs(self._t0, t_del, keep)
            return
        order = np.argsort(t_del, kind="stable")  # event-engine-ish order
        stats.latencies_ns = lat[order].tolist()
        stats.hops = hops[order].tolist()
        stats.bytes_delivered = int(len(lat)) * self._size
        stats.t_last_delivery = float(t_del.max())

    # -- closed-loop motif workloads -----------------------------------------
    def run_closed_loop(self, messages, rank_to_ep) -> SimStats:
        """Run a dependency-driven message DAG; returns the filled stats.

        The batch analogue of the event engine's motif runner
        (:func:`repro.workloads.runner.run_motif`): message ``m`` may enter
        the network only after every message in ``m.deps`` is *delivered*,
        plus ``m.compute_ns``.  Instead of delivery callbacks, the engine
        keeps **per-cycle frontier arrays**: each cycle's deliveries
        decrement their dependents' pending-dependency counts in one
        scatter, the newly eligible messages NIC-serialize through the
        exact per-endpoint FIFO recurrence, and their source-router
        arrivals join the packed-key waiting set at the right cycle.

        Motif messages have heterogeneous sizes, so this mode keeps exact
        per-packet times: output ports carry fractional-cycle clocks (a
        port serializes ``size / bandwidth`` exactly, and several small
        messages may cross one port within a single cycle), and the cycle
        grid only batches the contention decisions.  An uncontested
        packet's end-to-end latency therefore equals the event engine's to
        float rounding; under contention the two engines may order
        same-cycle winners differently (FIFO by enqueue cycle with random
        tie-breaks here, exact arrival order + VC round-robin there),
        which is the statistical divergence the differential harness
        bounds (``tests/test_sim_differential.py``).
        """
        if self._sources:
            raise SimulationError(
                "closed-loop runs cannot be mixed with open-loop sources"
            )
        if self._fault_schedule is not None:
            # The matrix covers single features; the motifs+faults *combo*
            # has no API path on either engine (run_motif takes no faults)
            # — this defensive guard still speaks the canonical type.
            raise BackendCapabilityError(
                "the batched backend does not combine 'motifs' with "
                "'faults' in one run; no engine offers faulted motif "
                "runs yet",
                backend="batched",
                feature=capabilities.FAULTS,
            )
        if self._buf_used is not None:
            # Same story for the congestion features: the closed-loop
            # frontier runner has no credit/channel machinery — use the
            # event engine for congested motif studies.
            raise BackendCapabilityError(
                "the batched backend does not combine 'finite-buffers' "
                "with closed-loop motif runs; use backend='event'",
                backend="batched",
                feature=capabilities.FINITE_BUFFERS,
                supported_backends=("event",),
            )
        if self._channel is not None:
            raise BackendCapabilityError(
                "the batched backend does not combine 'lossy-links' "
                "with closed-loop motif runs; use backend='event'",
                backend="batched",
                feature=capabilities.LOSSY_LINKS,
                supported_backends=("event",),
            )
        if self.on_delivery is not None:
            capabilities.require(self.backend, capabilities.DELIVERY_CALLBACKS)
        n_msgs = len(messages)
        stats = self.stats
        self.closed_loop_delivered = 0
        if n_msgs == 0:
            return stats
        mids = np.array([m.mid for m in messages], dtype=np.int64)
        if not np.array_equal(mids, np.arange(n_msgs)):
            raise SimulationError(
                "closed-loop messages must carry ids 0..n-1 in list order"
            )
        r2e = np.asarray(rank_to_ep, dtype=np.int64)
        self._msrc_ep = r2e[[m.src_rank for m in messages]]
        self._dst_ep = r2e[[m.dst_rank for m in messages]]
        self._msg_sizes = np.array([m.size for m in messages], dtype=np.int64)
        self._mcompute = np.array([m.compute_ns for m in messages])
        self._self_send = self._msrc_ep == self._dst_ep

        # Dependents CSR (message d -> the messages waiting on d) and the
        # per-message pending-dependency counters: the frontier arrays.
        n_deps = np.array([len(m.deps) for m in messages], dtype=np.int64)
        dep_from = np.array(
            [d for m in messages for d in m.deps], dtype=np.int64
        )
        dep_to = np.repeat(np.arange(n_msgs, dtype=np.int64), n_deps)
        o = np.argsort(dep_from, kind="stable")
        self._dep_indices = dep_to[o]
        counts = np.bincount(dep_from, minlength=n_msgs)
        self._dep_indptr = np.empty(n_msgs + 1, dtype=np.int64)
        self._dep_indptr[0] = 0
        np.cumsum(counts, out=self._dep_indptr[1:])
        self._pending = n_deps.copy()
        self._released = np.zeros(n_msgs, dtype=bool)

        # Per-message state (same attribute names the shared _arrive /
        # _enqueue / _on_source machinery reads).
        self._t_ready = np.zeros(n_msgs)
        self._t_created = np.zeros(n_msgs)
        self._t_arr = np.zeros(n_msgs)
        self._t_del = np.full(n_msgs, np.inf)
        self._done = np.zeros(n_msgs, dtype=bool)
        self._dst_router = self._dst_ep // self._conc
        self._cur = self._msrc_ep // self._conc
        self._hops = np.zeros(n_msgs, dtype=np.int64)
        self._inter = np.full(n_msgs, -1, dtype=np.int64)
        self._phase = np.zeros(n_msgs, dtype=np.int64)
        self._dropped = np.zeros(n_msgs, dtype=bool)

        # Fractional-cycle clocks: NIC per endpoint, output port per
        # directed edge + ejection port per endpoint.
        self._ns_per_byte = 1.0 / self.config.bytes_per_ns
        self._nic_free = np.zeros(self.n_endpoints)
        self._port_free = np.zeros(self._n_dir + self.n_endpoints)
        self._cl_tau = self._tau * CLOSED_LOOP_CYCLE_FACTOR
        self._arrivals: dict[int, list] = {}
        self._arr_heap: list[int] = []
        self._cl_moves = 0

        self._w_comb = np.empty(0, dtype=np.int64)
        self._w_idx = np.empty(0, dtype=np.int64)
        self._w_nxt = np.empty(0, dtype=np.int64)

        roots = np.nonzero(self._pending == 0)[0]
        self._released[roots] = True
        # Event-runner parity: roots inject in message order, triggered at
        # t = 0 (their compute delay offsets the injection stamp).
        self._send_batch(roots, np.zeros(len(roots)), -1)
        self._cl_cycle_loop()
        self._cl_drain()
        return stats

    def _cl_push(self, ids: np.ndarray, cyc: np.ndarray,
                 at_source: bool) -> None:
        """File a batch of router arrivals under their due cycles."""
        for cv in np.unique(cyc).tolist():
            chunk = ids[cyc == cv]
            lst = self._arrivals.get(cv)
            if lst is None:
                lst = self._arrivals[cv] = []
                heapq.heappush(self._arr_heap, cv)
            lst.append((chunk, at_source))

    def _release_deps(
        self, d_ids: np.ndarray, t_del: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scatter a delivery batch into the frontier arrays.

        Decrements every dependent's pending counter, folds the delivery
        times into ``t_ready`` (the event runner triggers a message at the
        delivery that zeroes its counter — the max over its deps), and
        returns the newly eligible messages with their trigger times.
        """
        indptr = self._dep_indptr
        starts = indptr[d_ids]
        lens = indptr[d_ids + 1] - starts
        total = int(lens.sum())
        empty = np.empty(0, dtype=np.int64)
        if total == 0:
            return empty, np.empty(0)
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        dependents = self._dep_indices[np.repeat(starts, lens) + offs]
        np.maximum.at(self._t_ready, dependents, np.repeat(t_del, lens))
        np.subtract.at(self._pending, dependents, 1)
        cand = np.unique(dependents)
        newly = cand[(self._pending[cand] == 0) & ~self._released[cand]]
        if newly.size:
            self._released[newly] = True
        return newly, self._t_ready[newly]

    def _send_batch(self, ids: np.ndarray, t_call: np.ndarray,
                    c: int) -> None:
        """Inject newly eligible messages (the event runner's ``inject``).

        ``t_call`` is each message's trigger time (the delivery that freed
        it); the injection stamp is ``t_call + compute_ns``.  Self-sends
        complete instantly — exactly like ``NetworkSimulator.send`` — and
        may release further messages, so the loop iterates to the closure.
        NIC serialization follows the event engine's recurrence: a NIC
        busy *at the trigger time* chains the message straight off the
        previous completion (even into the compute window); an idle one
        starts at the stamp.
        """
        stats = self.stats
        nspb = self._ns_per_byte
        link = self._link
        tau = self._cl_tau
        sizes = self._msg_sizes
        nic_free = self._nic_free
        t_arr = self._t_arr
        while ids.size:
            t_stamp = t_call + self._mcompute[ids]
            self._t_created[ids] = t_stamp
            selfm = self._self_send[ids]
            net_ids = ids[~selfm]
            if net_ids.size:
                nt_call = t_call[~selfm]
                nt_stamp = t_stamp[~selfm]
                stats.n_injected += int(net_ids.size)
                first = float(nt_stamp.min())
                if first < stats.t_first_inject:
                    stats.t_first_inject = first
                # Per-endpoint FIFO in trigger order (the event engine's
                # send-call order).  The recurrence — a busy NIC chains the
                # next message straight off the previous completion, an
                # idle one starts at the stamp — runs as the same padded
                # 2-D scan _inject uses: one vector op per message *rank
                # within its endpoint*, not one per message.
                order = np.lexsort((net_ids, nt_call))
                oids = net_ids[order]
                eps = self._msrc_ep[oids]
                g = np.argsort(eps, kind="stable")
                oids = oids[g]
                eps = eps[g]
                tc = nt_call[order][g]
                ts = nt_stamp[order][g]
                S = sizes[oids] * nspb
                uniq, idx0, cnt = np.unique(
                    eps, return_index=True, return_counts=True
                )
                kmax = int(cnt.max())
                rows = np.repeat(
                    np.arange(len(uniq), dtype=np.int64), cnt
                )
                cols = np.arange(len(oids), dtype=np.int64) - np.repeat(
                    idx0, cnt
                )
                tc2 = np.full((len(uniq), kmax), -np.inf)
                ts2 = np.full((len(uniq), kmax), -np.inf)
                S2 = np.zeros((len(uniq), kmax))
                tc2[rows, cols] = tc
                ts2[rows, cols] = ts
                S2[rows, cols] = S
                done2 = np.empty_like(tc2)
                prev = nic_free[uniq]
                for j in range(kmax):
                    start = np.where(prev > tc2[:, j], prev, ts2[:, j])
                    done2[:, j] = start + S2[:, j]
                    prev = done2[:, j]
                nic_free[uniq] = done2[rows, cols][
                    np.concatenate([idx0[1:] - 1, [len(oids) - 1]])
                ]
                t0 = done2[rows, cols] + link
                t_arr[oids] = t0
                cyc = np.ceil(t0 / tau).astype(np.int64)
                np.maximum(cyc, max(c, 0), out=cyc)
                self._cl_push(oids, cyc, at_source=True)
            s_ids = ids[selfm]
            if not s_ids.size:
                break
            # Instant completion; dependents may cascade.
            t_del = t_stamp[selfm]
            self._done[s_ids] = True
            self._t_del[s_ids] = t_del
            ids, t_call = self._release_deps(s_ids, t_del)

    def _cl_cycle_loop(self) -> None:
        tau = self._cl_tau
        switch = self._switch
        link = self._link
        nspb = self._ns_per_byte
        n_dir = self._n_dir
        sizes = self._msg_sizes
        t_arr = self._t_arr
        port_free = self._port_free
        max_q = 0
        if not self._arr_heap:
            return
        c = self._arr_heap[0]
        while True:
            # Work the cycle to quiescence: arrivals merge into the waiting
            # set, winners cross their ports, their downstream arrivals may
            # land back *in this same cycle* (a hop takes switch + S + link
            # ≈ a third of tau at paper parameters, so the event engine
            # routinely moves a packet several hops inside one cycle
            # window), deliveries release frontier messages whose NIC
            # completions may also land here.  Only when no step produces
            # work does the cycle advance — this keeps ports work-
            # conserving and arrival-ordered against the event engine.
            progressed = False
            if self._arr_heap and self._arr_heap[0] <= c:
                # Consolidate every chunk due this cycle into at most two
                # _arrive batches (source vs forwarded): the FIFO order
                # inside the waiting set comes from the arrival-time
                # tie-break, not the merge order, so batching is free —
                # and one 500-packet _arrive costs a fraction of ten
                # 50-packet ones.
                src_chunks: list[np.ndarray] = []
                fwd_chunks: list[np.ndarray] = []
                while self._arr_heap and self._arr_heap[0] <= c:
                    for chunk, at_src in self._arrivals.pop(
                        heapq.heappop(self._arr_heap)
                    ):
                        (src_chunks if at_src else fwd_chunks).append(chunk)
                if fwd_chunks:
                    self._arrive(
                        fwd_chunks[0] if len(fwd_chunks) == 1
                        else np.concatenate(fwd_chunks),
                        c, at_source=False,
                    )
                    progressed = True
                if src_chunks:
                    self._arrive(
                        src_chunks[0] if len(src_chunks) == 1
                        else np.concatenate(src_chunks),
                        c, at_source=True,
                    )
                    progressed = True
            if progressed and self._w_comb.size:
                ports = self._w_comb >> _PORT_SHIFT
                m = ports < n_dir
                if m.any():
                    qb = np.bincount(
                        ports[m], weights=sizes[self._w_idx[m]]
                    )
                    if qb.size and int(qb.max()) > max_q:
                        max_q = int(qb.max())

            # Contention: a port serves head-of-queue packets while its
            # fractional clock stays inside the cycle — several small
            # messages may cross one port per cycle, one large message
            # blocks its port for the cycles its serialization spans.
            limit = (c + 1) * tau
            if self._w_comb.size:
                comb = self._w_comb
                ports = comb >> _PORT_SHIFT
                first = np.empty(comb.size, dtype=bool)
                first[0] = True
                np.not_equal(ports[1:], ports[:-1], out=first[1:])
                fpos = np.nonzero(first)[0]
                fports = ports[fpos]
                elig = port_free[fports] < limit
                if elig.any():
                    progressed = True
                    wpos = fpos[elig]
                    wports = fports[elig]
                    widx = self._w_idx[wpos]
                    tp = t_arr[widx]
                    pf = port_free[wports]
                    S = sizes[widx] * nspb
                    # Port idle at the packet's arrival: the event engine
                    # charges the switch stage and starts at the arrival
                    # time; a queued packet chains straight off the
                    # previous transmission with no switch delay.
                    done = np.where(pf <= tp, tp + switch + S, pf + S)
                    port_free[wports] = done
                    eject = wports >= n_dir
                    ej = widx[eject]
                    mv = ~eject
                    moved = widx[mv]
                    if moved.size:
                        self._cur[moved] = self._w_nxt[wpos][mv]
                        self._hops[moved] += 1
                        ta = done[mv] + link
                        t_arr[moved] = ta
                        cyc = np.maximum(
                            c, np.ceil(ta / tau).astype(np.int64)
                        )
                        self._cl_push(moved, cyc, at_source=False)
                        self._cl_moves += int(moved.size)
                    keep = np.ones(comb.size, dtype=bool)
                    keep[wpos] = False
                    self._w_comb = comb[keep]
                    self._w_idx = self._w_idx[keep]
                    self._w_nxt = self._w_nxt[keep]
                    if ej.size:
                        td = done[eject] + link
                        self._done[ej] = True
                        self._t_del[ej] = td
                        newly, t_call = self._release_deps(ej, td)
                        if newly.size:
                            self._send_batch(newly, t_call, c)
            if progressed:
                continue

            # Advance — skipping cycles in which nothing can happen.
            if self._w_comb.size:
                ports = self._w_comb >> _PORT_SHIFT
                first = np.empty(ports.size, dtype=bool)
                first[0] = True
                np.not_equal(ports[1:], ports[:-1], out=first[1:])
                ready_c = int(port_free[ports[first]].min() // tau)
                nxt = max(c + 1, ready_c)
                if self._arr_heap:
                    nxt = min(nxt, self._arr_heap[0])
                c = max(c + 1, nxt)
            elif self._arr_heap:
                c = max(c + 1, self._arr_heap[0])
            else:
                break
            if c >= _ENQ_MASK:  # pragma: no cover - absurdly long run
                raise SimulationError(
                    "batched run exceeded the cycle budget; use the event "
                    "backend for simulations this long"
                )
        self.stats.max_queue_bytes = max_q

    def _cl_drain(self) -> None:
        """Fill SimStats from the per-message arrays, in delivery order."""
        stats = self.stats
        self.closed_loop_delivered = int(self._done.sum())
        d = np.nonzero(self._done & ~self._self_send)[0]
        if not d.size:
            return
        td = self._t_del[d]
        o = np.argsort(td, kind="stable")
        d = d[o]
        lat = self._t_del[d] - self._t_created[d]
        stats.latencies_ns = lat.tolist()
        stats.hops = self._hops[d].tolist()
        stats.bytes_delivered = int(self._msg_sizes[d].sum())
        stats.t_last_delivery = float(self._t_del[d].max())
        stats.n_events = 2 * int(d.size) + self._cl_moves
