"""The discrete-event network simulator core.

Model (coarse-grained, mirroring SNAPPR's role in the paper):

* **Store-and-forward packet switching.**  A packet occupies an output port
  for ``size / bandwidth`` ns; each router traversal adds a fixed switch
  latency, each cable a fixed propagation latency.
* **Output-queued routers with per-VC FIFOs** served round-robin.  The VC of
  a packet is its hop count (the paper's increment-per-hop deadlock
  avoidance), capped at the policy's VC budget.
* **Endpoint NICs** serialise injections at link bandwidth; ejection ports
  do the same at the destination router.
* **Buffers are measured, not blocking**: congestion appears as queueing
  delay, and UGAL-L reads the same local output-queue occupancies it reads
  in SNAPPR.  ``SimStats.max_queue_bytes`` reports how deep the 64 KB paper
  buffers would have had to be.

The event loop is a ``heapq`` over flat plain tuples
``(time, seq, kind, *payload)`` — one allocation per event, nothing else on
the hot path.

Hot-path notes (see ``docs/performance.md``): per-port scalar state
(``_port_busy``, ``_port_bytes``, ``_port_rr``, ``_nic_busy``, ``_ej_busy``)
lives in plain Python lists — single-element numpy indexing costs ~3x a
list read and allocates a numpy scalar per access.  Event dispatch is a
tuple of bound methods indexed by the event kind, config-derived constants
(``_ns_per_byte``, ``_switch_ns``, ``_link_ns``) are precomputed once, and
the directed-edge lookup is one dict read from
``RoutingTables.edge_index``.  ``_buf_used`` stays a numpy 2-D array: it is
touched only in ``finite_buffers`` mode, off the default hot path.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from heapq import heappush
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.faults import FaultSchedule

from repro.errors import BufferDeadlockError, SimulationError
from repro.routing.algorithms import RoutingPolicy
from repro.routing.tables import RoutingTables
from repro.sim.channel import ChannelConfig, ChannelModel, packet_key
from repro.sim.packet import Packet
from repro.sim.stats import SimStats
from repro.topology.base import Topology

# Event kinds (indexes into the handler tuple built in ``__init__``).
# Events are flat tuples: (time, seq, kind, *payload).
_NIC_DONE = 0  # (t, seq, 0, ep, pkt): NIC finished serialising into router
_ARRIVE = 1  # (t, seq, 1, router, pkt, is_source): packet fully at a router
_PORT_DONE = 2  # (t, seq, 2, eid, pkt, next_router, vc): port finished
_EJECT_DONE = 3  # (t, seq, 3, ep, pkt): delivered to the endpoint
_INJECT = 4  # (t, seq, 4, source): open-loop traffic source fires
_FAULT = 5  # (t, seq, 5, idx): apply fault-schedule event ``idx``


@dataclass
class SimConfig:
    """Hardware parameters (defaults follow the paper's Section VI setup).

    Treated as frozen once a :class:`NetworkSimulator` is constructed — the
    simulator precomputes derived constants at init time.
    """

    concentration: int = 4
    link_bandwidth_gbps: float = 100.0  # EDR-class links
    switch_latency_ns: float = 100.0
    link_latency_ns: float = 10.0  # ~2 m cable at 5 ns/m
    packet_bytes: int = 4096
    buffer_bytes: int = 64 * 1024  # per-(link, VC) input buffer
    #: When True, the per-(link, VC) input buffers actually block: a port
    #: may only start transmitting when the downstream buffer has room, and
    #: a packet holds its buffer until it fully departs the router.  This is
    #: the credit-based mode in which virtual-channel deadlock avoidance
    #: (Section V-A) is load-bearing: cyclic buffer dependencies on a single
    #: VC genuinely deadlock (see tests/test_sim_deadlock.py).  Default off
    #: = measured-but-unbounded buffers (see module docstring).
    finite_buffers: bool = False
    #: Optional lossy/jittery link model (``repro.sim.channel``): per-link
    #: extra latency, jitter, loss probability, and bounded
    #: retransmit-with-backoff, applied to every router-to-router crossing
    #: on both engines (feature ``lossy-links``).  ``None`` — the default —
    #: keeps links ideal and every engine hot path untouched.
    channel: "ChannelConfig | None" = None
    #: Which simulation engine ``build_synthetic_sim`` constructs:
    #: ``"event"`` (this module's discrete-event simulator, the reference)
    #: or ``"batched"`` (the numpy cycle-driven engine in
    #: :mod:`repro.sim.batched`).  The two agree statistically, not
    #: event-for-event — see docs/performance.md for the guarantees and the
    #: tolerance table.  Ignored by :class:`NetworkSimulator` itself.
    backend: str = "event"
    #: Process-pool size for ``backend="sharded"``
    #: (:class:`~repro.sim.sharded.ShardedSimulator`); ``0``/``1`` keeps
    #: the run single-process.  Ignored by every other backend.
    shard_workers: int = 2

    def __post_init__(self) -> None:
        # Consult the capability matrix up front: an unknown backend fails
        # at config construction, not deep inside an engine.
        from repro.sim.capabilities import check_backend

        check_backend(self.backend, context="SimConfig")

    @property
    def bytes_per_ns(self) -> float:
        return self.link_bandwidth_gbps / 8.0


class NetworkSimulator:
    """Simulate one topology + routing policy + traffic workload."""

    def __init__(
        self,
        topo: Topology,
        routing: RoutingPolicy,
        config: SimConfig,
        tables: RoutingTables | None = None,
        faults: "FaultSchedule | None" = None,
    ) -> None:
        self.topo = topo
        self.config = config
        self.routing = routing
        self.tables = tables if tables is not None else routing.tables
        g = topo.graph
        self.n_routers = g.n
        self.n_endpoints = g.n * config.concentration
        self.n_vcs = routing.required_vcs()

        n_dir = len(g.indices)
        # Router output ports (one per directed edge); plain lists — see
        # module docstring.
        self._port_busy: list[bool] = [False] * n_dir
        self._port_bytes: list[int] = [0] * n_dir
        self._port_queues: list[list[deque] | None] = [None] * n_dir
        # Packets waiting in _port_queues[eid] across all VCs; lets
        # _port_done skip the round-robin VC scan for idle ports.
        self._port_queued: list[int] = [0] * n_dir
        self._port_rr: list[int] = [0] * n_dir
        # Downstream input-buffer occupancy per (directed edge, VC); only
        # enforced when config.finite_buffers.
        self._buf_used = (
            np.zeros((n_dir, self.n_vcs), dtype=np.int64)
            if config.finite_buffers
            else None
        )
        # Endpoint NIC injection and ejection ports.
        n_ep = self.n_endpoints
        self._nic_busy: list[bool] = [False] * n_ep
        self._nic_queues: list[deque] = [deque() for _ in range(n_ep)]
        self._ej_busy: list[bool] = [False] * n_ep
        self._ej_queues: list[deque] = [deque() for _ in range(n_ep)]

        # Lossy-link channel model (None on the default pristine path).
        if config.channel is not None:
            from repro.sim import capabilities

            capabilities.require(
                "event", capabilities.LOSSY_LINKS, context="NetworkSimulator"
            )
            self._channel = ChannelModel(config.channel, config.link_latency_ns)
            # Per-endpoint injection counters composing the cross-engine
            # channel keys (see repro.sim.channel.packet_key).
            self._ch_seq: list[int] = [0] * n_ep
        else:
            self._channel = None

        self._events: list[tuple] = []
        self._seq = itertools.count()
        self._pid = itertools.count()
        self.now = 0.0
        self.stats = SimStats()
        self._sources: list = []  # open-loop traffic sources
        self._n_sources_started = 0  # sources already start()ed by run()
        self.on_delivery = None  # optional callback(pkt, t)

        # Hot-path constants and lookups, bound once.
        self._ns_per_byte = 1.0 / config.bytes_per_ns
        self._switch_ns = config.switch_latency_ns
        self._link_ns = config.link_latency_ns
        self._conc = config.concentration
        self._packet_bytes = config.packet_bytes
        self._edge_index = self.tables.edge_index
        # Direct method dispatch, indexed by event kind.
        self._handlers = (
            self._nic_done,
            self._arrive,
            self._port_done,
            self._eject_done,
            self._fire_source,
            self._apply_fault,
        )

        # Fault-injection state; all None/0 until a schedule is attached
        # (the pristine hot path never reads any of it).
        self._fault_schedule = None
        self._fault_mask = None
        self._edge_head: list[int] | None = None  # directed eid -> upstream router
        self._port_kill: list[int] | None = None  # pending mid-flight losses
        self._ttl = 0
        if faults is not None:
            self.set_fault_schedule(faults)

    def set_fault_schedule(self, schedule) -> None:
        """Attach a :class:`~repro.sim.faults.FaultSchedule` to this run.

        Must happen before any traffic is injected: fault events enter the
        queue now, so their sequence numbers sort below every traffic
        event's — all fault events at one timestamp apply before any packet
        event at that timestamp, making multi-link faults atomic with
        respect to traffic.

        Attaching a schedule (even an empty one) switches ``run()`` from
        the inlined fast loop to the handler path and every hop to
        fault-aware forwarding (``RoutingPolicy.next_hop_degraded``); see
        ``docs/resilience.md`` for the exact drop/requeue semantics.
        """
        if self._fault_schedule is not None:
            raise SimulationError("a fault schedule is already attached")
        if self._events or self.now > 0.0 or self.stats.n_events:
            raise SimulationError(
                "attach the fault schedule before injecting traffic or running"
            )
        self._fault_schedule = schedule
        self._fault_mask = self.tables.fault_mask()
        g = self.topo.graph
        self._edge_head = np.repeat(
            np.arange(g.n, dtype=np.int64), np.diff(g.indptr)
        ).tolist()
        self._port_kill = [0] * len(g.indices)
        # Hop budget bounding non-minimal fallback walks: a packet that has
        # wandered this far past any shortest path is livelocked.
        self._ttl = 4 * self.tables.diameter + 16
        for i, ev in enumerate(schedule.events):
            heappush(self._events, (ev.t, next(self._seq), _FAULT, i))

    # -- public API --------------------------------------------------------
    def endpoint_router(self, ep: int) -> int:
        """Router hosting endpoint ``ep`` (standard sequential attachment)."""
        return ep // self._conc

    def output_queue_bytes(self, router: int, next_router: int) -> int:
        """Local queue occupancy of the port router->next_router (UGAL-L)."""
        return self._port_bytes[
            self._edge_index[router * self.n_routers + next_router]
        ]

    def send(self, src_ep: int, dst_ep: int, size: int | None = None, tag=None,
             t: float | None = None) -> Packet | None:
        """Enqueue one message at ``src_ep``'s NIC; returns the packet.

        Self-sends complete instantly (no network traversal) and return None
        after invoking the delivery callback.
        """
        t = self.now if t is None else t
        size = self._packet_bytes if size is None else int(size)
        if src_ep == dst_ep:
            if self.on_delivery is not None:
                self.on_delivery(
                    Packet(-1, src_ep, dst_ep, size, t, dst_ep // self._conc,
                           tag=tag),
                    t,
                )
            return None
        pkt = Packet(
            next(self._pid), src_ep, dst_ep, size, t,
            dst_ep // self._conc, tag=tag,
        )
        if self._channel is not None:
            # Per-source injection index -> cross-engine channel key; the
            # batched engine derives the identical key from the packet's
            # position in its source's predrawn schedule.
            i = self._ch_seq[src_ep]
            self._ch_seq[src_ep] = i + 1
            pkt.ch_key = packet_key(src_ep, i)
        stats = self.stats
        stats.n_injected += 1
        if t < stats.t_first_inject:
            stats.t_first_inject = t
        if self._nic_busy[src_ep]:
            self._nic_queues[src_ep].append(pkt)
        else:
            self._nic_busy[src_ep] = True
            heappush(self._events,
                     (t + pkt.size * self._ns_per_byte, next(self._seq),
                      _NIC_DONE, src_ep, pkt))
        return pkt

    def add_open_loop_source(self, source) -> None:
        """Register an open-loop traffic source (see sim.traffic)."""
        self._sources.append(source)

    def run(self, until: float | None = None, max_events: int | None = None) -> SimStats:
        """Drain the event queue; returns the stats object.

        ``until`` pauses the simulation after the last event at or before
        that time; the first event past it is left in the queue, so a
        subsequent ``run()`` resumes exactly where the paused run stopped.

        With ``finite_buffers``, a run that drains its events while packets
        remain undelivered has genuinely *deadlocked* (cyclic buffer
        dependencies — exactly what Section V-A's VC scheme prevents):
        a structured :class:`~repro.errors.BufferDeadlockError` is raised,
        naming one cyclic (edge, VC) wait-for chain and carrying the
        partial stats (``deadlocked=True``, ``undelivered`` set).
        """
        # Start each source exactly once, even across paused/resumed runs —
        # re-starting would schedule a duplicate injection chain on top of
        # the pending one left in the queue by run(until=...).
        for src in self._sources[self._n_sources_started:]:
            src.start(self)
        self._n_sources_started = len(self._sources)
        events = self._events
        handlers = self._handlers
        pop = heapq.heappop
        n_ev = 0
        if (
            until is None
            and max_events is None
            and self._buf_used is None
            and self._fault_schedule is None
            and self._channel is None
        ):
            # Default configuration: the fully inlined hot loop (one Python
            # frame per *run*, not per event).  tests/test_sim_fastpath.py
            # pins it event-for-event equal to the handler path below.
            n_ev = self._run_fast()
        elif until is None and max_events is None:
            # Finite buffers, a fault schedule, or a lossy channel: handler
            # dispatch, no bound checks.  (These need the handler path's
            # fault-aware/buffer/channel branches; a fault-capable fast
            # loop has not landed — see docs/performance.md.)
            while events:
                item = pop(events)
                t = item[0]
                self.now = t
                handlers[item[2]](item, t)
                n_ev += 1
        else:
            while events:
                item = pop(events)
                t = item[0]
                if until is not None and t > until:
                    # Not ours to process: re-queue it so a resumed run sees
                    # it (popping and dropping would silently lose it).
                    heappush(events, item)
                    break
                self.now = t
                handlers[item[2]](item, t)
                n_ev += 1
                if max_events is not None and n_ev > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
        self.stats.n_events += n_ev
        if until is None and max_events is None:
            undelivered = (
                self.stats.n_injected
                - len(self.stats.latencies_ns)
                - self.stats.n_dropped
            )
            if undelivered > 0 and self.config.finite_buffers:
                self.stats.deadlocked = True
                self.stats.undelivered = undelivered
                cycle, blocked = self._deadlock_witness()
                raise BufferDeadlockError.build(
                    cycle, blocked, undelivered, self.stats
                )
        return self.stats

    def _deadlock_witness(self) -> tuple[tuple, int]:
        """One cyclic (edge, VC) wait-for chain among the blocked packets.

        Each blocked packet holds buffer ``(occupies_edge, occupies_vc)``
        while waiting for credit in ``(eid, vc)`` — the downstream input
        buffer of the port it is queued on.  Following those held->wanted
        arrows yields the deadlock cycle (Dally's channel-dependency
        argument, operationally).  Every queued packet contributes, not
        just queue heads: a buffer-less packet fresh from its NIC can sit
        at the head of a port queue with the chain-forming holders behind
        it.  Returns ``(cycle, n_blocked)``; the cycle is empty when no
        clean witness exists (e.g. after mid-run faults perturbed the
        queues).
        """
        waits_for: dict = {}
        blocked = 0
        for eid, n_q in enumerate(self._port_queued):
            if not n_q:
                continue
            blocked += n_q
            qs = self._port_queues[eid]
            if qs is None:
                continue
            for vc, q in enumerate(qs):
                for pkt, _nxt in q:
                    if pkt.occupies_edge >= 0:
                        waits_for[
                            (pkt.occupies_edge, pkt.occupies_vc)
                        ] = (eid, vc)
        return BufferDeadlockError.find_cycle(waits_for), blocked

    # -- internals ----------------------------------------------------------
    def _run_fast(self) -> int:
        """Drain the queue with every handler body inlined (hot default).

        Semantically identical to dispatching through ``self._handlers``
        (the equivalence is pinned by the differential harness in
        tests/test_sim_fastpath.py) but saves one Python frame per event,
        which is worth ~10% of total runtime.  Only valid for the default
        configuration: no ``until``/``max_events`` bound, unbounded
        buffers (``_buf_used is None``), no fault schedule, and no lossy
        channel — the finite-buffer, fault-aware, and channel branches of
        the handlers are omitted here (see docs/performance.md, "When
        _run_fast is bypassed").
        """
        events = self._events
        pop = heapq.heappop
        push = heappush
        seq = self._seq
        stats = self.stats
        port_bytes = self._port_bytes
        port_busy = self._port_busy
        port_queues = self._port_queues
        port_queued = self._port_queued
        port_rr = self._port_rr
        nic_busy = self._nic_busy
        nic_queues = self._nic_queues
        ej_busy = self._ej_busy
        ej_queues = self._ej_queues
        edge_index = self._edge_index
        routing = self.routing
        next_hop = routing.next_hop
        on_source = routing.on_source
        n_routers = self.n_routers
        n_vcs = self.n_vcs
        ns_per_byte = self._ns_per_byte
        switch_ns = self._switch_ns
        link_ns = self._link_ns
        conc = self._conc
        latencies = stats.latencies_ns
        hop_counts = stats.hops
        n_ev = 0
        while events:
            item = pop(events)
            t = item[0]
            self.now = t
            kind = item[2]
            n_ev += 1
            if kind == 1:  # _ARRIVE
                router = item[3]
                pkt = item[4]
                if router == pkt.dst_router:
                    ep = pkt.dst_ep
                    if ej_busy[ep]:
                        ej_queues[ep].append(pkt)
                    else:
                        ej_busy[ep] = True
                        push(events,
                             (t + switch_ns + pkt.size * ns_per_byte,
                              next(seq), 3, ep, pkt))
                    continue
                if item[5]:  # is_source
                    on_source(self, router, pkt)
                    if pkt.intermediate is not None:
                        stats.valiant_choices += 1
                    else:
                        stats.minimal_choices += 1
                nxt = next_hop(self, router, pkt)
                eid = edge_index[router * n_routers + nxt]
                vc = pkt.hops
                if vc >= n_vcs:
                    vc = n_vcs - 1
                size = pkt.size
                queued = port_bytes[eid] + size
                port_bytes[eid] = queued
                if queued > stats.max_queue_bytes:
                    stats.max_queue_bytes = queued
                if port_busy[eid]:
                    qs = port_queues[eid]
                    if qs is None:
                        qs = port_queues[eid] = [
                            deque() for _ in range(n_vcs)
                        ]
                    qs[vc].append((pkt, nxt))
                    port_queued[eid] += 1
                else:
                    port_busy[eid] = True
                    push(events,
                         (t + switch_ns + size * ns_per_byte, next(seq),
                          2, eid, pkt, nxt, vc))
            elif kind == 2:  # _PORT_DONE
                eid = item[3]
                pkt = item[4]
                port_bytes[eid] -= pkt.size
                pkt.hops += 1
                push(events, (t + link_ns, next(seq), 1, item[5], pkt,
                              False))
                if port_queued[eid]:
                    # RR over VCs, no buffer checks (unbounded mode).
                    qs = port_queues[eid]
                    start = port_rr[eid]
                    for off in range(1, n_vcs + 1):
                        vc = (start + off) % n_vcs
                        q = qs[vc]
                        if q:
                            head_pkt, head_next = q.popleft()
                            port_queued[eid] -= 1
                            port_rr[eid] = vc
                            push(events,
                                 (t + head_pkt.size * ns_per_byte,
                                  next(seq), 2, eid, head_pkt, head_next,
                                  vc))
                            break
                else:
                    port_busy[eid] = False
            elif kind == 4:  # _INJECT
                item[3].fire(self, t)
            elif kind == 0:  # _NIC_DONE
                ep = item[3]
                push(events, (t + link_ns, next(seq), 1, ep // conc,
                              item[4], True))
                q = nic_queues[ep]
                if q:
                    nxt_pkt = q.popleft()
                    push(events, (t + nxt_pkt.size * ns_per_byte,
                                  next(seq), 0, ep, nxt_pkt))
                else:
                    nic_busy[ep] = False
            elif kind == 3:  # _EJECT_DONE
                ep = item[3]
                pkt = item[4]
                t_deliver = t + link_ns
                latencies.append(t_deliver - pkt.t_created)
                hop_counts.append(pkt.hops)
                stats.bytes_delivered += pkt.size
                if t_deliver > stats.t_last_delivery:
                    stats.t_last_delivery = t_deliver
                if self.on_delivery is not None:
                    self.on_delivery(pkt, t_deliver)
                q = ej_queues[ep]
                if q:
                    nxt_pkt = q.popleft()
                    push(events, (t + nxt_pkt.size * ns_per_byte,
                                  next(seq), 3, ep, nxt_pkt))
                else:
                    ej_busy[ep] = False
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind}")
        return n_ev

    # Every handler takes (item, t): the full event tuple plus its time.
    def _fire_source(self, item, t: float) -> None:
        item[3].fire(self, t)

    def _nic_done(self, item, t: float) -> None:
        ep = item[3]
        events = self._events
        mask = self._fault_mask
        if mask is not None and not mask.router_alive(ep // self._conc):
            # Injection router is down: the packet is lost entering it.
            # The NIC keeps (blindly) serialising its queue — packets
            # injected while the router stays down are dropped one by one,
            # and queued ones survive a recovery that beats them out.
            self._drop(item[4], t, "router-down")
        else:
            # Packet reaches its injection router after the cable delay.
            heappush(events, (t + self._link_ns, next(self._seq), _ARRIVE,
                              ep // self._conc, item[4], True))
        q = self._nic_queues[ep]
        if q:
            nxt = q.popleft()
            heappush(events, (t + nxt.size * self._ns_per_byte,
                              next(self._seq), _NIC_DONE, ep, nxt))
        else:
            self._nic_busy[ep] = False

    def _arrive(self, item, t: float) -> None:
        router = item[3]
        pkt = item[4]
        mask = self._fault_mask
        if router == pkt.dst_router:
            if mask is not None and not mask.router_alive(router):
                self._drop(pkt, t, "router-down")
                return
            # -- ejection port (inlined _eject) ----------------------------
            ep = pkt.dst_ep
            if self._ej_busy[ep]:
                self._ej_queues[ep].append(pkt)
            else:
                self._ej_busy[ep] = True
                heappush(self._events,
                         (t + self._switch_ns + pkt.size * self._ns_per_byte,
                          next(self._seq), _EJECT_DONE, ep, pkt))
            return
        routing = self.routing
        if mask is not None:
            # Fault-aware forwarding (handler path only; _run_fast bails
            # out whenever a fault schedule is attached).
            if not mask.router_alive(router):
                # Already on the cable when the router died.
                self._drop(pkt, t, "router-down")
                return
            if not mask.router_alive(pkt.dst_router):
                self._drop(pkt, t, "router-down")
                return
            if pkt.hops >= self._ttl:
                self._drop(pkt, t, "ttl")
                return
            if item[5]:  # is_source
                routing.on_source(self, router, pkt)
                if pkt.intermediate is not None:
                    self.stats.valiant_choices += 1
                else:
                    self.stats.minimal_choices += 1
            nxt = routing.next_hop_degraded(self, router, pkt)
            if nxt < 0:
                self._drop(pkt, t, "unreachable")
                return
        else:
            if item[5]:  # is_source
                routing.on_source(self, router, pkt)
                if pkt.intermediate is not None:
                    self.stats.valiant_choices += 1
                else:
                    self.stats.minimal_choices += 1
            nxt = routing.next_hop(self, router, pkt)
        eid = self._edge_index[router * self.n_routers + nxt]
        vc = pkt.hops
        n_vcs = self.n_vcs
        if vc >= n_vcs:
            vc = n_vcs - 1
        # -- enqueue on the output port (inlined: hottest branch) ----------
        size = pkt.size
        port_bytes = self._port_bytes
        queued = port_bytes[eid] + size
        port_bytes[eid] = queued
        stats = self.stats
        if queued > stats.max_queue_bytes:
            stats.max_queue_bytes = queued
        t_ready = t + self._switch_ns
        if not self._port_busy[eid] and self._buf_used is None:
            # Fast path: idle port, unbounded buffers.
            self._port_busy[eid] = True
            heappush(self._events,
                     (t_ready + size * self._ns_per_byte, next(self._seq),
                      _PORT_DONE, eid, pkt, nxt, vc))
            return
        qs = self._port_queues[eid]
        if qs is None:
            qs = self._port_queues[eid] = [deque() for _ in range(n_vcs)]
        qs[vc].append((pkt, nxt))
        self._port_queued[eid] += 1
        if not self._port_busy[eid]:
            self._try_start(eid, t_ready)

    def _buffer_has_room(self, eid: int, vc: int, size: int) -> bool:
        used = int(self._buf_used[eid, vc])
        # A buffer always admits at least one packet, even an oversized one.
        return used == 0 or used + size <= self.config.buffer_bytes

    def _try_start(self, eid: int, t: float) -> None:
        """Start the next transmittable packet on an idle port (RR over VCs).

        With finite buffers a VC whose downstream input buffer is full is
        skipped; if every queued VC is blocked the port stays idle until a
        buffer-release retries it.
        """
        if self._port_busy[eid]:
            return
        qs = self._port_queues[eid]
        if qs is None:
            return
        n_vcs = self.n_vcs
        start = self._port_rr[eid]
        buf_used = self._buf_used
        for off in range(1, n_vcs + 1):
            vc = (start + off) % n_vcs
            q = qs[vc]
            if not q:
                continue
            head_pkt, head_next = q[0]
            if buf_used is not None and not self._buffer_has_room(
                eid, vc, head_pkt.size
            ):
                continue
            q.popleft()
            self._port_queued[eid] -= 1
            self._port_rr[eid] = vc
            self._port_busy[eid] = True
            if buf_used is not None:
                buf_used[eid, vc] += head_pkt.size
            heappush(self._events,
                     (t + head_pkt.size * self._ns_per_byte,
                      next(self._seq), _PORT_DONE, eid, head_pkt, head_next,
                      vc))
            return

    def _release_buffer(self, pkt: Packet, t: float) -> None:
        """Free the input buffer the packet held and retry its feeder port."""
        if self._buf_used is None or pkt.occupies_edge < 0:
            return
        self._buf_used[pkt.occupies_edge, pkt.occupies_vc] -= pkt.size
        self._try_start(pkt.occupies_edge, t)
        pkt.occupies_edge = -1

    def _port_done(self, item, t: float) -> None:
        eid = item[3]
        pkt = item[4]
        self._port_bytes[eid] -= pkt.size
        kills = self._port_kill
        if kills is not None and kills[eid]:
            # The link died under this packet mid-transmission (its queue
            # was flushed at the fault event; this lazy token is how the
            # already-scheduled completion learns about it).
            kills[eid] -= 1
            self._port_busy[eid] = False
            self._drop(pkt, t, "link-down")
            if self._port_queued[eid]:
                # Only possible if the link recovered before the doomed
                # transmission finished and traffic queued behind it.
                self._try_start(eid, t)
            return
        ch = self._channel
        extra_ns = 0.0
        if ch is not None:
            # Lossy/jittery crossing: one channel evaluation per
            # router-to-router link traversal, keyed on (packet, hop) so
            # the batched engine reaches the identical outcome.
            ok, extra_ns, retrans = ch.crossing(pkt.ch_key, pkt.hops)
            if retrans:
                self.stats.n_retransmits += retrans
            if not ok:
                self._port_busy[eid] = False
                if self._buf_used is not None:
                    # Release both the buffer held at the previous router
                    # and the downstream reservation taken at transmission
                    # start (never transferred to the packet).
                    self._release_buffer(pkt, t)
                    self._buf_used[eid, item[6]] -= pkt.size
                self._drop(pkt, t, ch.config.drop_cause)
                if self._port_queued[eid]:
                    self._try_start(eid, t)
                return
        pkt.hops += 1
        # The packet has fully left the previous router: release the input
        # buffer it was holding there and occupy the one it just filled.
        if self._buf_used is not None:
            self._release_buffer(pkt, t)
            pkt.occupies_edge = eid
            pkt.occupies_vc = item[6]
        heappush(self._events,
                 (t + self._link_ns + extra_ns, next(self._seq), _ARRIVE,
                  item[5], pkt, False))
        self._port_busy[eid] = False
        if self._port_queued[eid]:
            self._try_start(eid, t)

    def _eject_done(self, item, t: float) -> None:
        ep = item[3]
        pkt = item[4]
        if self._buf_used is not None:
            self._release_buffer(pkt, t)
        mask = self._fault_mask
        if mask is not None and not mask.router_alive(ep // self._conc):
            # Router died while the packet was crossing the ejection port.
            self.stats.record_drop("router-down")
        else:
            t_deliver = t + self._link_ns
            stats = self.stats
            stats.latencies_ns.append(t_deliver - pkt.t_created)
            stats.hops.append(pkt.hops)
            stats.bytes_delivered += pkt.size
            if t_deliver > stats.t_last_delivery:
                stats.t_last_delivery = t_deliver
            if self.on_delivery is not None:
                self.on_delivery(pkt, t_deliver)
        q = self._ej_queues[ep]
        if q:
            nxt = q.popleft()
            heappush(self._events,
                     (t + nxt.size * self._ns_per_byte, next(self._seq),
                      _EJECT_DONE, ep, nxt))
        else:
            self._ej_busy[ep] = False

    # -- fault application ---------------------------------------------------
    def _drop(self, pkt: Packet, t: float, reason: str) -> None:
        """Account one fault-lost packet (releasing any held buffer)."""
        if self._buf_used is not None:
            self._release_buffer(pkt, t)
        self.stats.record_drop(reason)

    def _sever_port(self, eid: int, t: float, requeue: bool) -> None:
        """Apply a directed-edge failure to the port's in-flight state.

        The packet mid-transmission (if any) is lost — consumed lazily by a
        kill token at its already-scheduled ``_PORT_DONE``.  Queued packets
        are pulled out and re-routed at the upstream router (``requeue``),
        or lost with it when the upstream router itself died.
        """
        if self._port_busy[eid] and not self._port_kill[eid]:
            # At most one transmission is ever in flight per port, so at
            # most one token may be pending: a re-failure (down/up/down)
            # before the doomed completion fires must not mint a second
            # token, or it would later kill a healthy transmission.
            self._port_kill[eid] = 1
        if not self._port_queued[eid]:
            return
        qs = self._port_queues[eid]
        head = self._edge_head[eid]
        events = self._events
        stats = self.stats
        port_bytes = self._port_bytes
        for q in qs:
            while q:
                pkt, _nxt = q.popleft()
                port_bytes[eid] -= pkt.size
                if requeue:
                    stats.n_requeued += 1
                    heappush(events,
                             (t, next(self._seq), _ARRIVE, head, pkt, False))
                else:
                    self._drop(pkt, t, "router-down")
        self._port_queued[eid] = 0

    def _apply_fault(self, item, t: float) -> None:
        """Handler for ``_FAULT`` events: mutate the mask, fix up the ports."""
        ev = self._fault_schedule[item[3]]
        mask = self._fault_mask
        kind = ev.kind
        if kind == "link-down":
            for eid in mask.fail_link(ev.a, ev.b):
                self._sever_port(eid, t, requeue=True)
            label = f"link-down {ev.a}-{ev.b}"
        elif kind == "link-up":
            mask.restore_link(ev.a, ev.b)
            label = f"link-up {ev.a}-{ev.b}"
        elif kind == "router-down":
            for eid in mask.fail_router(ev.a):
                # Ports out of the dead router lose their queues with it;
                # ports into it requeue at the (still live) upstream router.
                self._sever_port(eid, t, requeue=self._edge_head[eid] != ev.a)
            label = f"router-down {ev.a}"
        else:  # router-up
            mask.restore_router(ev.a)
            label = f"router-up {ev.a}"
        self.stats.mark_epoch(t, label)

    # Used by traffic sources to schedule their own firings.
    def schedule_inject(self, t: float, source) -> None:
        heappush(self._events, (t, next(self._seq), _INJECT, source))
