"""The discrete-event network simulator core.

Model (coarse-grained, mirroring SNAPPR's role in the paper):

* **Store-and-forward packet switching.**  A packet occupies an output port
  for ``size / bandwidth`` ns; each router traversal adds a fixed switch
  latency, each cable a fixed propagation latency.
* **Output-queued routers with per-VC FIFOs** served round-robin.  The VC of
  a packet is its hop count (the paper's increment-per-hop deadlock
  avoidance), capped at the policy's VC budget.
* **Endpoint NICs** serialise injections at link bandwidth; ejection ports
  do the same at the destination router.
* **Buffers are measured, not blocking**: congestion appears as queueing
  delay, and UGAL-L reads the same local output-queue occupancies it reads
  in SNAPPR.  ``SimStats.max_queue_bytes`` reports how deep the 64 KB paper
  buffers would have had to be.

The event loop is a ``heapq`` over plain tuples
``(time, seq, kind, payload)`` — the hot path allocates nothing else.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.routing.algorithms import RoutingPolicy
from repro.routing.tables import RoutingTables
from repro.sim.packet import Packet
from repro.sim.stats import SimStats
from repro.topology.base import Topology

# Event kinds.
_NIC_DONE = 0  # endpoint NIC finished serialising a packet into its router
_ARRIVE = 1  # packet fully arrived at a router
_PORT_DONE = 2  # router output port finished serialising a packet
_EJECT_DONE = 3  # ejection port finished delivering to the endpoint
_INJECT = 4  # open-loop traffic source fires


@dataclass
class SimConfig:
    """Hardware parameters (defaults follow the paper's Section VI setup)."""

    concentration: int = 4
    link_bandwidth_gbps: float = 100.0  # EDR-class links
    switch_latency_ns: float = 100.0
    link_latency_ns: float = 10.0  # ~2 m cable at 5 ns/m
    packet_bytes: int = 4096
    buffer_bytes: int = 64 * 1024  # per-(link, VC) input buffer
    #: When True, the per-(link, VC) input buffers actually block: a port
    #: may only start transmitting when the downstream buffer has room, and
    #: a packet holds its buffer until it fully departs the router.  This is
    #: the credit-based mode in which virtual-channel deadlock avoidance
    #: (Section V-A) is load-bearing: cyclic buffer dependencies on a single
    #: VC genuinely deadlock (see tests/test_sim_deadlock.py).  Default off
    #: = measured-but-unbounded buffers (see module docstring).
    finite_buffers: bool = False

    @property
    def bytes_per_ns(self) -> float:
        return self.link_bandwidth_gbps / 8.0


class NetworkSimulator:
    """Simulate one topology + routing policy + traffic workload."""

    def __init__(
        self,
        topo: Topology,
        routing: RoutingPolicy,
        config: SimConfig,
        tables: RoutingTables | None = None,
    ) -> None:
        self.topo = topo
        self.config = config
        self.routing = routing
        self.tables = tables if tables is not None else routing.tables
        g = topo.graph
        self.n_routers = g.n
        self.n_endpoints = g.n * config.concentration
        self.n_vcs = routing.required_vcs()

        n_dir = len(g.indices)
        # Router output ports (one per directed edge).
        self._port_busy = np.zeros(n_dir, dtype=bool)
        self._port_bytes = np.zeros(n_dir, dtype=np.int64)
        self._port_queues: list[list[deque] | None] = [None] * n_dir
        self._port_rr: np.ndarray = np.zeros(n_dir, dtype=np.int64)
        # Downstream input-buffer occupancy per (directed edge, VC); only
        # enforced when config.finite_buffers.
        self._buf_used = (
            np.zeros((n_dir, self.n_vcs), dtype=np.int64)
            if config.finite_buffers
            else None
        )
        # Endpoint NIC injection and ejection ports.
        n_ep = self.n_endpoints
        self._nic_busy = np.zeros(n_ep, dtype=bool)
        self._nic_queues: list[deque] = [deque() for _ in range(n_ep)]
        self._ej_busy = np.zeros(n_ep, dtype=bool)
        self._ej_queues: list[deque] = [deque() for _ in range(n_ep)]

        self._events: list[tuple] = []
        self._seq = itertools.count()
        self._pid = itertools.count()
        self.now = 0.0
        self.stats = SimStats()
        self._sources: list = []  # open-loop traffic sources
        self.on_delivery = None  # optional callback(pkt, t)

    # -- public API --------------------------------------------------------
    def endpoint_router(self, ep: int) -> int:
        """Router hosting endpoint ``ep`` (standard sequential attachment)."""
        return ep // self.config.concentration

    def output_queue_bytes(self, router: int, next_router: int) -> int:
        """Local queue occupancy of the port router->next_router (UGAL-L)."""
        return int(self._port_bytes[self.tables.directed_edge_id(router, next_router)])

    def send(self, src_ep: int, dst_ep: int, size: int | None = None, tag=None,
             t: float | None = None) -> Packet | None:
        """Enqueue one message at ``src_ep``'s NIC; returns the packet.

        Self-sends complete instantly (no network traversal) and return None
        after invoking the delivery callback.
        """
        t = self.now if t is None else t
        size = self.config.packet_bytes if size is None else int(size)
        if src_ep == dst_ep:
            if self.on_delivery is not None:
                self.on_delivery(
                    Packet(-1, src_ep, dst_ep, size, t, self.endpoint_router(dst_ep),
                           tag=tag),
                    t,
                )
            return None
        pkt = Packet(
            next(self._pid), src_ep, dst_ep, size, t,
            self.endpoint_router(dst_ep), tag=tag,
        )
        self.stats.n_injected += 1
        self.stats.t_first_inject = min(self.stats.t_first_inject, t)
        q = self._nic_queues[src_ep]
        if self._nic_busy[src_ep]:
            q.append(pkt)
        else:
            self._nic_busy[src_ep] = True
            self._push(t + pkt.size / self.config.bytes_per_ns, _NIC_DONE,
                       (src_ep, pkt))
        return pkt

    def add_open_loop_source(self, source) -> None:
        """Register an open-loop traffic source (see sim.traffic)."""
        self._sources.append(source)

    def run(self, until: float | None = None, max_events: int | None = None) -> SimStats:
        """Drain the event queue; returns the stats object.

        With ``finite_buffers``, a run that drains its events while packets
        remain undelivered has genuinely *deadlocked* (cyclic buffer
        dependencies — exactly what Section V-A's VC scheme prevents); the
        returned stats carry ``deadlocked=True`` in that case.
        """
        for src in self._sources:
            src.start(self)
        n_ev = 0
        while self._events:
            t, _, kind, payload = heapq.heappop(self._events)
            if until is not None and t > until:
                break
            self.now = t
            self._dispatch(kind, payload, t)
            n_ev += 1
            if max_events is not None and n_ev > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is None and max_events is None:
            undelivered = self.stats.n_injected - len(self.stats.latencies_ns)
            if undelivered > 0 and self.config.finite_buffers:
                self.stats.deadlocked = True
                self.stats.undelivered = undelivered
        return self.stats

    # -- internals ----------------------------------------------------------
    def _push(self, t: float, kind: int, payload) -> None:
        heapq.heappush(self._events, (t, next(self._seq), kind, payload))

    def _dispatch(self, kind: int, payload, t: float) -> None:
        if kind == _PORT_DONE:
            self._port_done(payload, t)
        elif kind == _ARRIVE:
            self._arrive(payload, t)
        elif kind == _NIC_DONE:
            self._nic_done(payload, t)
        elif kind == _EJECT_DONE:
            self._eject_done(payload, t)
        elif kind == _INJECT:
            source, = payload
            source.fire(self, t)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {kind}")

    def _nic_done(self, payload, t: float) -> None:
        ep, pkt = payload
        # Packet reaches its injection router after the cable delay.
        self._push(t + self.config.link_latency_ns, _ARRIVE,
                   (self.endpoint_router(ep), pkt, True))
        q = self._nic_queues[ep]
        if q:
            nxt = q.popleft()
            self._push(t + nxt.size / self.config.bytes_per_ns, _NIC_DONE,
                       (ep, nxt))
        else:
            self._nic_busy[ep] = False

    def _arrive(self, payload, t: float) -> None:
        router, pkt, is_source = payload
        if router == pkt.dst_router:
            self._eject(router, pkt, t)
            return
        if is_source:
            self.routing.on_source(self, router, pkt)
            if pkt.intermediate is not None:
                self.stats.valiant_choices += 1
            else:
                self.stats.minimal_choices += 1
        nxt = self.routing.next_hop(self, router, pkt)
        eid = self.tables.directed_edge_id(router, nxt)
        t_ready = t + self.config.switch_latency_ns
        vc = min(pkt.hops, self.n_vcs - 1)
        self._enqueue_port(eid, nxt, pkt, vc, t_ready)

    def _enqueue_port(self, eid: int, next_router: int, pkt: Packet, vc: int,
                      t: float) -> None:
        self._port_bytes[eid] += pkt.size
        if self._port_bytes[eid] > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = int(self._port_bytes[eid])
        if not self._port_busy[eid] and self._buf_used is None:
            # Fast path: idle port, unbounded buffers.
            self._port_busy[eid] = True
            self._push(t + pkt.size / self.config.bytes_per_ns, _PORT_DONE,
                       (eid, pkt, next_router, vc))
            return
        qs = self._port_queues[eid]
        if qs is None:
            qs = [deque() for _ in range(self.n_vcs)]
            self._port_queues[eid] = qs
        qs[vc].append((pkt, next_router))
        if not self._port_busy[eid]:
            self._try_start(eid, t)

    def _buffer_has_room(self, eid: int, vc: int, size: int) -> bool:
        used = int(self._buf_used[eid, vc])
        # A buffer always admits at least one packet, even an oversized one.
        return used == 0 or used + size <= self.config.buffer_bytes

    def _try_start(self, eid: int, t: float) -> None:
        """Start the next transmittable packet on an idle port (RR over VCs).

        With finite buffers a VC whose downstream input buffer is full is
        skipped; if every queued VC is blocked the port stays idle until a
        buffer-release retries it.
        """
        if self._port_busy[eid]:
            return
        qs = self._port_queues[eid]
        if qs is None:
            return
        start = int(self._port_rr[eid])
        for off in range(1, self.n_vcs + 1):
            vc = (start + off) % self.n_vcs
            if not qs[vc]:
                continue
            head_pkt, head_next = qs[vc][0]
            if self._buf_used is not None and not self._buffer_has_room(
                eid, vc, head_pkt.size
            ):
                continue
            qs[vc].popleft()
            self._port_rr[eid] = vc
            self._port_busy[eid] = True
            if self._buf_used is not None:
                self._buf_used[eid, vc] += head_pkt.size
            self._push(t + head_pkt.size / self.config.bytes_per_ns,
                       _PORT_DONE, (eid, head_pkt, head_next, vc))
            return

    def _release_buffer(self, pkt: Packet, t: float) -> None:
        """Free the input buffer the packet held and retry its feeder port."""
        if self._buf_used is None or pkt.occupies_edge < 0:
            return
        self._buf_used[pkt.occupies_edge, pkt.occupies_vc] -= pkt.size
        self._try_start(pkt.occupies_edge, t)
        pkt.occupies_edge = -1

    def _port_done(self, payload, t: float) -> None:
        eid, pkt, next_router, vc = payload
        self._port_bytes[eid] -= pkt.size
        pkt.hops += 1
        # The packet has fully left the previous router: release the input
        # buffer it was holding there and occupy the one it just filled.
        self._release_buffer(pkt, t)
        if self._buf_used is not None:
            pkt.occupies_edge = eid
            pkt.occupies_vc = vc
        self._push(t + self.config.link_latency_ns, _ARRIVE,
                   (next_router, pkt, False))
        self._port_busy[eid] = False
        self._try_start(eid, t)

    def _eject(self, router: int, pkt: Packet, t: float) -> None:
        ep = pkt.dst_ep
        t_ready = t + self.config.switch_latency_ns
        if self._ej_busy[ep]:
            self._ej_queues[ep].append(pkt)
        else:
            self._ej_busy[ep] = True
            self._push(t_ready + pkt.size / self.config.bytes_per_ns,
                       _EJECT_DONE, (ep, pkt))

    def _eject_done(self, payload, t: float) -> None:
        ep, pkt = payload
        self._release_buffer(pkt, t)
        t_deliver = t + self.config.link_latency_ns
        self.stats.record_delivery(
            t_deliver - pkt.t_created, pkt.hops, pkt.size, t_deliver
        )
        if self.on_delivery is not None:
            self.on_delivery(pkt, t_deliver)
        q = self._ej_queues[ep]
        if q:
            nxt = q.popleft()
            self._push(t + nxt.size / self.config.bytes_per_ns, _EJECT_DONE,
                       (ep, nxt))
        else:
            self._ej_busy[ep] = False

    # Used by traffic sources to schedule their own firings.
    def schedule_inject(self, t: float, source) -> None:
        self._push(t, _INJECT, (source,))
