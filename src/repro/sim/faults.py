"""Dynamic fault schedules: link/router failures applied mid-simulation.

The paper's Section IV-A resilience study (and the companion spectral-gap
work of Aksoy et al.) measures *structural* metrics on statically damaged
graphs.  This module supplies the missing dynamic half: a
:class:`FaultSchedule` is a time-ordered list of link/router failure and
recovery events that :class:`~repro.sim.network.NetworkSimulator` applies
*while traffic is in flight*.

Semantics (see ``docs/resilience.md`` for the full contract):

* At a fault event's timestamp the simulator updates its
  :class:`~repro.routing.tables.FaultMask` — an incremental, reversible
  overlay on the CSR-of-CSR next-hop table — instead of recomputing BFS.
* Packets queued on a failed output port are **requeued** through routing
  at the upstream router; the packet mid-transmission on the failed link is
  **dropped**.
* Routing falls back to non-minimal live neighbours when every minimal
  next hop is severed, and packets are dropped when the destination router
  is dead, when no live neighbour exists, or when a hop-count TTL expires.

All events at the same timestamp are applied before any packet scheduled at
that timestamp is processed, so a multi-link fault is atomic with respect
to traffic.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph

#: Event kinds.  ``a``/``b`` are the link endpoints for link events;
#: router events use ``a`` and leave ``b`` at -1.
LINK_DOWN = "link-down"
LINK_UP = "link-up"
ROUTER_DOWN = "router-down"
ROUTER_UP = "router-up"

_KINDS = frozenset({LINK_DOWN, LINK_UP, ROUTER_DOWN, ROUTER_UP})


class FaultEvent(NamedTuple):
    """One scheduled topology change at simulation time ``t`` (ns)."""

    t: float
    kind: str
    a: int
    b: int = -1

    def describe(self) -> str:
        if self.kind in (LINK_DOWN, LINK_UP):
            return f"t={self.t:.0f}ns {self.kind} {self.a}-{self.b}"
        return f"t={self.t:.0f}ns {self.kind} {self.a}"


class FaultSchedule:
    """An immutable, time-sorted sequence of :class:`FaultEvent`.

    Accepts ``FaultEvent`` instances or plain ``(t, kind, a[, b])`` tuples.
    Events are stably sorted by time, so same-time events keep their given
    order (failures listed first are applied first).
    """

    def __init__(self, events: Iterable[FaultEvent | tuple] = ()) -> None:
        normalised = []
        for ev in events:
            if not isinstance(ev, FaultEvent):
                ev = FaultEvent(*ev)
            if ev.kind not in _KINDS:
                raise ParameterError(
                    f"unknown fault kind {ev.kind!r}; options {sorted(_KINDS)}"
                )
            if ev.t < 0:
                raise ParameterError(f"fault time must be >= 0, got {ev.t}")
            if ev.kind in (LINK_DOWN, LINK_UP) and ev.b < 0:
                raise ParameterError(f"link event needs both endpoints: {ev}")
            normalised.append(FaultEvent(float(ev.t), ev.kind, int(ev.a), int(ev.b)))
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(normalised, key=lambda e: e.t)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __getitem__(self, i: int) -> FaultEvent:
        return self.events[i]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({len(self.events)} events)"

    def describe(self) -> str:
        return "\n".join(ev.describe() for ev in self.events)

    # -- constructors -------------------------------------------------------
    @classmethod
    def random_link_faults(
        cls,
        graph: CSRGraph,
        fraction: float,
        t_fail: float,
        seed: int | np.random.Generator | None = 0,
        t_recover: float | None = None,
    ) -> "FaultSchedule":
        """Fail ``fraction`` of the undirected links at ``t_fail``.

        The failed set is drawn exactly like the offline resilience study
        (:func:`repro.graphs.failures.sample_edge_failures`), so dynamic
        and static experiments at the same seed damage the same links.
        ``t_recover`` (if given) restores every failed link at that time.
        """
        from repro.graphs.failures import sample_edge_failures

        if t_recover is not None and t_recover <= t_fail:
            raise ParameterError("t_recover must be after t_fail")
        failed = sample_edge_failures(graph, fraction, seed)
        events: list[FaultEvent] = []
        for u, v in failed:
            events.append(FaultEvent(t_fail, LINK_DOWN, int(u), int(v)))
            if t_recover is not None:
                events.append(FaultEvent(t_recover, LINK_UP, int(u), int(v)))
        return cls(events)

    @classmethod
    def router_faults(
        cls,
        routers: Iterable[int],
        t_fail: float,
        t_recover: float | None = None,
    ) -> "FaultSchedule":
        """Fail the given routers at ``t_fail`` (and recover at ``t_recover``)."""
        if t_recover is not None and t_recover <= t_fail:
            raise ParameterError("t_recover must be after t_fail")
        events: list[FaultEvent] = []
        for r in routers:
            events.append(FaultEvent(t_fail, ROUTER_DOWN, int(r)))
            if t_recover is not None:
                events.append(FaultEvent(t_recover, ROUTER_UP, int(r)))
        return cls(events)

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule combining this one's events with ``other``'s."""
        return FaultSchedule(self.events + other.events)
