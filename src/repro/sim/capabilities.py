"""The per-backend capability matrix: which engine implements which feature.

Before this module existed, every backend/feature mismatch was a scattered
guard — a constructor ``raise`` here, a driver-level ``ParameterError``
there, and a raw ``TypeError`` from deep inside an engine when nothing
checked at all.  The matrix below is now the **single source of truth**:

* engine constructors (:class:`~repro.sim.network.NetworkSimulator`,
  :class:`~repro.sim.batched.BatchedSimulator`) consult it at build time;
* :func:`repro.experiments.common.build_synthetic_sim` and
  :func:`repro.workloads.runner.run_motif` validate their ``backend``
  argument through it;
* the experiment registry (:mod:`repro.runner.registry`) validates
  ``--set backend=...`` overrides against each experiment's declared
  feature needs at *spec time*, before any topology is built.

Every violation raises the one canonical error type,
:class:`~repro.errors.BackendCapabilityError`, whose message names the
backends that *do* support the requested feature.  A test parametrized
over the full ``BACKENDS x FEATURES`` product pins the matrix, so a future
backend cannot silently regress a combination
(``tests/test_sim_capabilities.py``).
"""

from __future__ import annotations

from repro.errors import BackendCapabilityError

#: The registered simulation engines, in preference order (the first entry
#: is the reference implementation every other backend is pinned against).
BACKENDS: tuple[str, ...] = ("event", "batched", "sharded")

#: Feature identifiers.  Each is a *scenario family* a simulation run may
#: need, not an implementation detail: experiments declare which features
#: they require and the matrix answers which backends qualify.
OPEN_LOOP = "open-loop"  # Poisson open-loop synthetic traffic
MOTIFS = "motifs"  # closed-loop dependency-driven motif DAGs
COLLECTIVES = "collectives"  # chunk-level collective schedules on motif DAGs
FAULTS = "faults"  # mid-run FaultSchedule (link/router down/up)
FINITE_BUFFERS = "finite-buffers"  # credit-based blocking buffers
LOSSY_LINKS = "lossy-links"  # per-link loss/jitter channel (sim.channel)
PAUSE_RESUME = "pause-resume"  # run(until=...) / max_events bounds
DELIVERY_CALLBACKS = "delivery-callbacks"  # per-packet on_delivery hooks
ADHOC_SEND = "adhoc-send"  # caller-driven send() outside the motif runner
ADAPTIVE_ROUTING = "adaptive-routing"  # UGAL-family policies (global queues)

FEATURES: tuple[str, ...] = (
    OPEN_LOOP,
    MOTIFS,
    COLLECTIVES,
    FAULTS,
    FINITE_BUFFERS,
    LOSSY_LINKS,
    PAUSE_RESUME,
    DELIVERY_CALLBACKS,
    ADHOC_SEND,
    ADAPTIVE_ROUTING,
)

#: The matrix itself.  The event engine is the reference and supports
#: everything; the batched engine covers the scenario families the
#: paper's figures and the workload suite need (open-loop synthetic,
#: motif workloads, collective schedules, fault schedules, and — since
#: the congestion-realism PR — credit/backpressure finite buffers and
#: the lossy-link channel model) and refuses the interactive/debugging
#: features whose semantics are inherently per-event (pause/resume,
#: per-packet callbacks, ad-hoc sends).
CAPABILITIES: dict[str, frozenset[str]] = {
    "event": frozenset(FEATURES),
    "batched": frozenset(
        {OPEN_LOOP, MOTIFS, COLLECTIVES, FAULTS, FINITE_BUFFERS,
         LOSSY_LINKS, ADAPTIVE_ROUTING}
    ),
    # The process-sharded batched engine (repro.sim.sharded) exists for one
    # job: open-loop synthetic sweeps at scales where a single cycle loop
    # is the bottleneck.  Everything stateful-across-shards (fault epochs,
    # UGAL queue signals — hence no "adaptive-routing" — credit chains,
    # channel draws) stays on the other backends.
    "sharded": frozenset({OPEN_LOOP}),
}

assert tuple(CAPABILITIES) == BACKENDS  # keep the two declarations in sync


def is_backend(backend: str) -> bool:
    """True iff ``backend`` names a registered engine."""
    return backend in CAPABILITIES


def supports(backend: str, feature: str) -> bool:
    """True iff ``backend`` implements ``feature`` (False for unknowns)."""
    return feature in CAPABILITIES.get(backend, frozenset())


def supported_backends(*features: str) -> tuple[str, ...]:
    """The backends implementing *all* of ``features``, in registry order."""
    return tuple(
        b for b in BACKENDS if all(supports(b, f) for f in features)
    )


def check_backend(backend: str, context: str = "") -> None:
    """Raise the canonical error when ``backend`` is not a known engine."""
    if backend not in CAPABILITIES:
        where = f" for {context}" if context else ""
        raise BackendCapabilityError(
            f"unknown simulator backend {backend!r}{where}; "
            f"options: {', '.join(BACKENDS)}",
            backend=backend,
            supported_backends=BACKENDS,
        )


def require(backend: str, feature: str, context: str = "") -> None:
    """Raise unless ``backend`` implements ``feature``.

    The error message names the backends that do support the feature, so
    the fix (``backend='event'`` etc.) is always in the message itself.
    ``context`` optionally names the call site ("fig9", "run_motif", ...)
    for sweep-sized error output.
    """
    check_backend(backend, context)
    if feature not in CAPABILITIES[backend]:
        good = supported_backends(feature)
        where = f" (in {context})" if context else ""
        raise BackendCapabilityError(
            f"the {backend!r} backend does not support {feature!r}{where}; "
            f"supported backends: {', '.join(good) if good else 'none'}",
            backend=backend,
            feature=feature,
            supported_backends=good,
        )


def require_all(backend: str, features: tuple[str, ...] | list[str],
                context: str = "") -> None:
    """:func:`require` over a feature list (first failure wins)."""
    check_backend(backend, context)
    for feature in features:
        require(backend, feature, context)


#: Features a routing policy needs from the engine beyond the scenario's
#: own features.  UGAL-family policies read global queue occupancy on every
#: routing decision, which the process-sharded engine cannot provide —
#: before this mapping existed, ``ugal`` on ``sharded`` only failed deep in
#: the engine constructor; now :func:`require_routing` raises the canonical
#: error at assembly time, uniformly for every driver.
ROUTING_FEATURES: dict[str, tuple[str, ...]] = {
    "minimal": (),
    "valiant": (),
    "ugal": (ADAPTIVE_ROUTING,),
    "ugal-g": (ADAPTIVE_ROUTING,),
}


def require_routing(backend: str, routing: str, context: str = "") -> None:
    """Raise unless ``backend`` supports routing policy ``routing``.

    Unknown routing names pass through — the routing factory owns that
    error (with the list of valid policies); this guard only covers the
    backend/feature axis.
    """
    require_all(backend, ROUTING_FEATURES.get(routing, ()), context)
