"""Lossy/jittery link model shared by both simulator backends.

The paper's links are ideal: fixed latency, no loss.  Real cables and
SerDes are not, and the regimes where routing-policy rankings flip only
show up once links can stall and drop (see ``docs/congestion.md``).  This
module adds a per-link *channel* on top of the engines' base link latency:

* ``extra_latency_ns`` — deterministic per-crossing overhead (FEC,
  retimers, longer optics);
* ``jitter_ns`` — uniform per-attempt jitter in ``[0, jitter_ns)``;
* ``loss_prob`` — independent per-attempt corruption/loss probability;
* ``max_attempts``/``backoff_ns`` — bounded link-level retransmit: a lost
  attempt is retried after a linearly growing backoff until the budget is
  exhausted, at which point the packet is dropped and *counted* (cause
  ``retransmit-exhausted``; with ``max_attempts=1`` the cause is the bare
  ``channel-loss``), so lossy runs degrade gracefully instead of silently
  under-delivering.

Every random draw is a **counter-based hash** of ``(seed, packet key,
hop index, attempt, lane)`` — a pure function with no generator state —
so the event and batched engines compute bit-identical loss/jitter
outcomes regardless of their different event orderings.  That is what
makes exact cross-engine drop/retransmit accounting testable (see
``tests/test_sim_differential.py``); it follows the same substream
discipline as ``repro.utils.rng`` uses for the batched engine's
per-source streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError

#: Packet keys compose the source endpoint with a per-source injection
#: index: ``key = src_ep << _KEY_SHIFT | seq``.  Both engines number a
#: source's network packets in injection-time order (the event engine via
#: a per-endpoint counter in ``send``, the batched engine by array
#: position within the source's predrawn schedule), so the key — and with
#: it every channel draw — coincides across engines.
_KEY_SHIFT = 24
_SEQ_MASK = (1 << _KEY_SHIFT) - 1

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_GOLD = np.uint64(0x9E3779B97F4A7C15)
_INV53 = float(2.0 ** -53)


def packet_key(src_ep, seq):
    """Compose the cross-engine channel key (works on ints and arrays)."""
    return (src_ep << _KEY_SHIFT) | (seq & _SEQ_MASK)


def _mix(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer on uint64 arrays (wraps silently, no state)."""
    x = (x ^ (x >> np.uint64(30))) * _M1
    x = (x ^ (x >> np.uint64(27))) * _M2
    return x ^ (x >> np.uint64(31))


def channel_uniforms(
    seed: int, keys: np.ndarray, hops: np.ndarray, attempt: int, lane: int
) -> np.ndarray:
    """Uniforms in [0, 1): pure counter-hash of the five coordinates.

    ``lane`` separates independent decisions at the same (key, hop,
    attempt) coordinate — lane 0 is the loss draw, lane 1 the jitter
    draw.  All inputs are consumed as uint64; arrays and scalars mix
    freely (scalars broadcast).
    """
    keys = np.asarray(keys, dtype=np.uint64)
    hops = np.asarray(hops, dtype=np.uint64)
    with np.errstate(over="ignore"):  # uint64 wraparound is the algorithm
        h = np.uint64(seed) * _GOLD
        h = _mix(h ^ (keys * _M1))
        h = _mix(h ^ (hops * _M2))
        h = _mix(h ^ (np.uint64(attempt) * _GOLD))
        h = _mix(h ^ (np.uint64(lane) + _GOLD))
    return (h >> np.uint64(11)).astype(np.float64) * _INV53


@dataclass(frozen=True)
class ChannelConfig:
    """Per-link transport parameters; the all-defaults config is a no-op.

    Attach one to :class:`~repro.sim.network.SimConfig` via its
    ``channel`` field to enable the model (feature ``lossy-links`` in the
    capability matrix).  Frozen so a config can be shared between the two
    engines of a differential pair without aliasing surprises.
    """

    extra_latency_ns: float = 0.0
    jitter_ns: float = 0.0
    loss_prob: float = 0.0
    max_attempts: int = 1
    backoff_ns: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_prob <= 1.0:
            raise ParameterError(
                f"loss_prob must be in [0, 1], got {self.loss_prob}"
            )
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        for name in ("extra_latency_ns", "jitter_ns", "backoff_ns"):
            if getattr(self, name) < 0.0:
                raise ParameterError(f"{name} must be >= 0")

    @property
    def drop_cause(self) -> str:
        """Stats key for packets the channel kills (see ``SimStats.drops``)."""
        return "channel-loss" if self.max_attempts <= 1 else "retransmit-exhausted"


class ChannelModel:
    """Evaluates link crossings for a batch of packets.

    One *crossing* is a packet traversing one router-to-router link; the
    engines charge their base ``link_latency_ns`` for it and ask the
    channel for everything on top.  Injection and ejection cables are
    deliberately exempt — the channel models the switch fabric, and
    keeping NIC timing pristine keeps the analytic latency assembly of
    the batched engine aligned with the event engine.
    """

    def __init__(self, config: ChannelConfig, link_latency_ns: float) -> None:
        self.config = config
        self.link_ns = float(link_latency_ns)

    def crossings(
        self, keys: np.ndarray, hops: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate one crossing per packet at the given hop indices.

        Returns ``(delivered, extra_ns, retransmits)``:

        * ``delivered`` — bool; False means every attempt was lost and the
          packet must be dropped with cause :attr:`ChannelConfig.drop_cause`;
        * ``extra_ns`` — delay on top of the engine's base link latency:
          the winning attempt's fixed overhead and jitter, plus one full
          wasted wire time and a linear backoff per failed attempt
          (meaningful only where ``delivered``);
        * ``retransmits`` — failed attempts that were actually retried
          (counted even for packets that exhaust the budget).
        """
        cfg = self.config
        keys = np.asarray(keys, dtype=np.uint64)
        hops = np.asarray(hops, dtype=np.uint64)
        n = keys.shape[0]
        delivered = np.zeros(n, dtype=bool)
        extra = np.zeros(n, dtype=np.float64)
        retrans = np.zeros(n, dtype=np.int64)
        pending = np.arange(n)
        for a in range(cfg.max_attempts):
            if pending.size == 0:
                break
            k, h = keys[pending], hops[pending]
            if cfg.loss_prob > 0.0:
                ok = channel_uniforms(cfg.seed, k, h, a, 0) >= cfg.loss_prob
            else:
                ok = np.ones(pending.size, dtype=bool)
            # Per-attempt wire overhead beyond the base link latency.
            w = np.full(pending.size, cfg.extra_latency_ns)
            if cfg.jitter_ns > 0.0:
                w += channel_uniforms(cfg.seed, k, h, a, 1) * cfg.jitter_ns
            succ = pending[ok]
            delivered[succ] = True
            extra[succ] += w[ok]
            fail = pending[~ok]
            if a + 1 < cfg.max_attempts:
                # A retried loss wastes a full crossing (base link + its
                # overhead) and then sits out a linearly growing backoff.
                retrans[fail] += 1
                extra[fail] += self.link_ns + w[~ok] + cfg.backoff_ns * (a + 1)
            pending = fail
        return delivered, extra, retrans

    def crossing(self, key: int, hop: int) -> tuple[bool, float, int]:
        """Scalar convenience for the event engine's per-packet hot path."""
        d, e, r = self.crossings(
            np.asarray([key], dtype=np.uint64), np.asarray([hop], dtype=np.uint64)
        )
        return bool(d[0]), float(e[0]), int(r[0])
