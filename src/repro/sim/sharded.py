"""Process-sharded batched engine for open-loop runs at scale.

At 10^5+ routers a single cycle loop is the wall-clock bottleneck: every
cycle touches the whole waiting set even though contention is embarrassingly
parallel across routers (one winner *per output port*, and every port
belongs to exactly one router).  This module shards the
:class:`~repro.sim.batched.BatchedSimulator` cycle loop across a fork-based
process pool:

* The parent runs ``_inject()`` as usual — all per-packet state arrays
  exist before the fork, so workers inherit them copy-on-write and no
  packet state is ever serialised at startup.
* Worker ``w`` owns the contiguous router span ``[lo, hi)`` from
  :func:`repro.partition.contiguous_ranges`.  Ownership is by *current
  router*: the worker owning a packet's router runs its routing decision,
  queues it on the chosen output port, and arbitrates that port's
  contention.  Contiguity means the span's directed-edge ids are one
  contiguous block of the head-major CSR edge order, and the ejection
  ports of its routers' endpoints are contiguous too — no port is shared.
* The loop is bulk-synchronous: each cycle, every worker picks its port
  winners, advances them one hop, and reports packets whose next router
  lies outside its span to the parent hub (full state: id, router, hops,
  wait, uncontested, Valiant intermediate, phase).  The hub forwards each
  export to its new owner for the next cycle, computes the global next
  cycle (idle-skipping exactly like the single-process loop), and detects
  termination (no queued packets, no pending injections, no in-flight
  exports anywhere).
* On stop, workers return their delivered packets' final counters; the
  parent scatters them into its own arrays and runs the inherited
  analytic ``_drain()``.

Determinism and equivalence: each worker draws from its own
``default_rng((root, wid))`` stream, where ``root`` comes from the parent
policy RNG — a run is exactly reproducible for a fixed ``(seed,
shard_workers)`` pair, and *statistically* equivalent to (not bit-identical
with) the single-process batched engine, the same contract the batched
engine itself has against the event engine (docs/performance.md).

Capability surface: **open-loop only** (see the matrix in
:mod:`repro.sim.capabilities`).  Fault epochs, UGAL's global queue signal,
credit chains and channel draws all couple state across shard boundaries;
those scenarios stay on the ``event``/``batched`` backends.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.errors import SimulationError
from repro.partition import contiguous_ranges
from repro.sim import capabilities
from repro.sim.batched import _ENQ_MASK, _ENQ_SHIFT, _PORT_SHIFT, BatchedSimulator
from repro.sim.stats import SimStats

#: Below this many packets the fork + per-cycle pipe traffic costs more
#: than it saves; the run falls through to the inherited single-process
#: cycle loop (same results contract either way).
MIN_PACKETS_TO_SHARD = 4096

#: Columns of the in-flight export records (one row per migrating packet).
_STATE_COLS = 7  # pid, cur, hops, wait, uncontested, inter, phase


class ShardedSimulator(BatchedSimulator):
    """Open-loop :class:`BatchedSimulator` sharded over a process pool.

    ``config.shard_workers`` sets the pool size; ``0``/``1`` (or too few
    packets to amortise the forks) runs the inherited single-process loop.
    """

    backend = "sharded"

    def __init__(self, topo, routing, config, tables=None, faults=None):
        if routing.name not in ("minimal", "valiant"):
            # UGAL-family policies read global queue state no shard can
            # see; the matrix names the backends that do support them.
            capabilities.require(
                "sharded", capabilities.ADAPTIVE_ROUTING,
                context=f"routing={routing.name!r}",
            )
        if faults is not None:
            capabilities.require("sharded", capabilities.FAULTS)
        super().__init__(topo, routing, config, tables=tables, faults=faults)

    # -- refused features (state couples across shard boundaries) -----------
    def set_fault_schedule(self, schedule) -> None:
        capabilities.require("sharded", capabilities.FAULTS)

    def run_closed_loop(self, messages, rank_to_ep):
        capabilities.require("sharded", capabilities.MOTIFS)

    # -- the sharded run -----------------------------------------------------
    def run(self, until=None, max_events=None) -> SimStats:
        if until is not None or max_events is not None:
            capabilities.require("sharded", capabilities.PAUSE_RESUME)
        if self.on_delivery is not None:
            capabilities.require("sharded", capabilities.DELIVERY_CALLBACKS)
        n_pkts = self._inject()
        if n_pkts == 0:
            return self.stats
        workers = int(getattr(self.config, "shard_workers", 0) or 0)
        if workers <= 1 or n_pkts < MIN_PACKETS_TO_SHARD:
            self._cycle_loop()
        else:
            self._cycle_loop_sharded(min(workers, self.n_routers))
        self._drain()
        return self.stats

    def _cycle_loop_sharded(self, workers: int) -> None:
        spans = contiguous_ranges(self.n_routers, workers)
        owner = np.repeat(
            np.arange(workers, dtype=np.int64),
            np.diff(np.array([lo for lo, _ in spans] + [self.n_routers])),
        )
        # The worker RNG root comes from the parent policy stream so runs
        # are reproducible per (seed, shard_workers).
        root = int(self.rng.integers(np.iinfo(np.int64).max))
        ctx = mp.get_context("fork")
        conns, procs = [], []
        for wid, (lo, hi) in enumerate(spans):
            parent_c, child_c = ctx.Pipe()
            p = ctx.Process(
                target=self._worker_main,
                args=(wid, lo, hi, child_c, root),
                daemon=True,
            )
            p.start()
            child_c.close()
            conns.append(parent_c)
            procs.append(p)

        # next_local[w]: the next cycle at which worker w has work of its
        # own (queued packets or a pending injection); None = idle.
        next_local: list[int | None] = [None] * workers
        for w in range(workers):
            tag, nxt = conns[w].recv()
            assert tag == "ready"
            next_local[w] = nxt
        imports: list[list[np.ndarray]] = [[] for _ in range(workers)]
        c = None
        while True:
            cands = [v for v in next_local if v is not None]
            if any(len(q) for q in imports):
                # Exports produced at cycle c arrive at cycle c + 1; they
                # cap any idle skip.
                cands.append(c + 1)
            if not cands:
                break
            c = min(cands)
            for w in range(workers):
                q = imports[w]
                imp = (
                    np.concatenate(q)
                    if q
                    else np.empty((0, _STATE_COLS), dtype=np.int64)
                )
                imports[w] = []
                conns[w].send((c, imp))
            for w in range(workers):
                nxt, exports = conns[w].recv()
                next_local[w] = nxt
                if len(exports):
                    to = owner[exports[:, 1]]
                    for t in np.unique(to):
                        imports[int(t)].append(exports[to == t])

        # Gather: delivered counters + per-worker stats, then join.
        stats = self.stats
        n_moves = 0
        max_q = 0
        for w in range(workers):
            conns[w].send(None)  # stop
            done, hops, wait, unc, st = conns[w].recv()
            self._hops[done] = hops
            self._wait[done] = wait
            self._uncontested[done] = unc
            n_moves += st["n_moves"]
            max_q = max(max_q, st["max_q"])
            stats.minimal_choices += st["minimal_choices"]
            stats.valiant_choices += st["valiant_choices"]
            conns[w].close()
        for p in procs:
            p.join()
        n = len(self._t0)
        stats.n_events = 2 * n + n_moves
        stats.max_queue_bytes = max_q * self._size

    # -- worker side ---------------------------------------------------------
    def _worker_main(self, wid, lo, hi, conn, root) -> None:
        try:
            self._worker_loop(wid, lo, hi, conn, root)
        except BaseException:  # pragma: no cover - crash diagnostics
            conn.close()  # unblock the hub with EOFError instead of a hang
            raise

    def _worker_loop(self, wid, lo, hi, conn, root) -> None:
        """One shard's cycle loop (runs in a forked child).

        The pristine subset of ``BatchedSimulator._cycle_loop`` (no faults,
        no finite buffers, no channel), restricted to routers ``[lo, hi)``,
        with the hub barrier replacing the global cycle bookkeeping.
        """
        self.rng = np.random.default_rng((root, wid))
        self.routing.rng = self.rng
        n_dir = self._n_dir
        stats = self.stats
        stats.minimal_choices = 0
        stats.valiant_choices = 0

        mine = np.nonzero((self._cur >= lo) & (self._cur < hi))[0]
        order = mine[np.argsort(self._c0[mine], kind="stable")]
        c0_sorted = self._c0[order]
        inj_ptr = 0
        n_inj = len(order)
        self._w_comb = np.empty(0, dtype=np.int64)
        self._w_idx = np.empty(0, dtype=np.int64)
        self._w_nxt = np.empty(0, dtype=np.int64)
        pending: np.ndarray | None = None
        done: list[np.ndarray] = []
        n_moves = 0
        max_q = 0

        conn.send(("ready", int(c0_sorted[0]) if n_inj else None))
        while True:
            msg = conn.recv()
            if msg is None:
                break
            c, imports = msg
            if len(imports):
                pid = imports[:, 0]
                # The exporter's copies of these rows are authoritative;
                # ours went stale the moment the packet left our span.
                self._cur[pid] = imports[:, 1]
                self._hops[pid] = imports[:, 2]
                self._wait[pid] = imports[:, 3]
                self._uncontested[pid] = imports[:, 4]
                self._inter[pid] = imports[:, 5]
                self._phase[pid] = imports[:, 6]
                self._arrive(pid, c, at_source=False)
            if pending is not None and pending.size:
                self._arrive(pending, c, at_source=False)
            hi_p = int(np.searchsorted(c0_sorted, c, side="right"))
            newly = order[inj_ptr:hi_p]
            inj_ptr = hi_p
            if newly.size:
                self._arrive(newly, c, at_source=True)
            pending = None

            exports = np.empty((0, _STATE_COLS), dtype=np.int64)
            comb = self._w_comb
            if comb.size:
                ports = comb >> _PORT_SHIFT
                if comb.size > max_q:
                    counts = np.bincount(ports[ports < n_dir], minlength=0)
                    if counts.size:
                        max_q = max(max_q, int(counts.max()))
                first = np.empty(comb.size, dtype=bool)
                first[0] = True
                np.not_equal(ports[1:], ports[:-1], out=first[1:])
                widx = self._w_idx[first]
                waited = c - ((comb[first] >> _ENQ_SHIFT) & _ENQ_MASK)
                self._wait[widx] += waited
                self._uncontested[widx] += waited == 0
                eject = ports[first] >= n_dir
                if eject.any():
                    done.append(widx[eject])
                moved = widx[~eject]
                if moved.size:
                    nxt_r = self._w_nxt[first][~eject]
                    self._cur[moved] = nxt_r
                    self._hops[moved] += 1
                    n_moves += int(moved.size)
                    away = (nxt_r < lo) | (nxt_r >= hi)
                    pending = moved[~away]
                    exp = moved[away]
                    if exp.size:
                        exports = np.stack(
                            [
                                exp,
                                self._cur[exp],
                                self._hops[exp],
                                self._wait[exp],
                                self._uncontested[exp],
                                self._inter[exp],
                                self._phase[exp],
                            ],
                            axis=1,
                        )
                keep = ~first
                self._w_comb = comb[keep]
                self._w_idx = self._w_idx[keep]
                self._w_nxt = self._w_nxt[keep]
                if c + 1 >= _ENQ_MASK:  # pragma: no cover - absurd run
                    raise SimulationError(
                        "sharded run exceeded the cycle budget; use the "
                        "event backend for simulations this long"
                    )

            if self._w_comb.size or (pending is not None and pending.size):
                nxt_c: int | None = c + 1
            elif inj_ptr < n_inj:
                nxt_c = int(c0_sorted[inj_ptr])
            else:
                nxt_c = None
            conn.send((nxt_c, exports))

        ids = (
            np.concatenate(done) if done else np.empty(0, dtype=np.int64)
        )
        conn.send(
            (
                ids,
                self._hops[ids],
                self._wait[ids],
                self._uncontested[ids],
                {
                    "n_moves": n_moves,
                    "max_q": max_q,
                    "minimal_choices": stats.minimal_choices,
                    "valiant_choices": stats.valiant_choices,
                },
            )
        )
        conn.close()
