"""Synthetic traffic patterns (Section VI-C1).

Each pattern maps a source *rank* to a destination rank by permuting the bit
representation of the source, exactly as the paper describes:

* ``random`` — uniform random destination per packet (irregular/graph apps);
* ``shuffle`` — rotate left by 1 bit (FFT, sorting);
* ``reverse`` — reverse the bits (FFT butterflies);
* ``transpose`` — swap the high and low halves (matrix transpose);
* ``complement`` — flip all bits (worst-case bisection stress, extra).

Open-loop injection draws Poisson interarrivals at ``offered_load`` fraction
of the endpoint link bandwidth, the paper's congestion knob.
"""

from __future__ import annotations

from heapq import heappush

import numpy as np

from repro.errors import ParameterError
from repro.sim.network import _INJECT
from repro.utils.rng import as_rng


def _require_pow2(n_ranks: int) -> int:
    b = n_ranks.bit_length() - 1
    if 1 << b != n_ranks:
        raise ParameterError(f"bit-permutation patterns need 2^b ranks, got {n_ranks}")
    return b


class TrafficPattern:
    """Base: rank-to-rank destination map.

    ``stochastic`` tells :class:`OpenLoopSource` whether :meth:`destination`
    consumes randomness per packet.  It defaults to True — the safe
    assumption for subclasses, which then keep the one-``destination``-call-
    per-packet contract.  Patterns declaring ``stochastic = False`` get
    their single fixed destination resolved once per source; stochastic
    patterns may additionally override :meth:`destination_from_u` to accept
    a pre-drawn uniform instead of paying one generator call per packet
    (see ``docs/performance.md``).
    """

    name = "abstract"
    stochastic = True

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks

    def destination(self, src: int, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def destination_from_u(self, src: int, u: float) -> int:
        """Destination given one pre-drawn uniform in [0, 1).

        Optional fast path: stochastic patterns that override this
        (consistently with :meth:`destination`) let the open-loop source
        batch its destination draws.
        """
        raise NotImplementedError

    @property
    def batches_destinations(self) -> bool:
        """True when this pattern is on the batched destination fast path.

        One definition shared by ``OpenLoopSource.start`` and ``predraw``:
        the two must classify a pattern identically or the event and
        batched engines' RNG draw orders silently desynchronise.
        """
        return (
            self.stochastic
            and type(self).destination_from_u
            is not TrafficPattern.destination_from_u
        )


class UniformRandomTraffic(TrafficPattern):
    name = "random"
    stochastic = True

    def destination(self, src: int, rng: np.random.Generator) -> int:
        dst = int(rng.integers(self.n_ranks - 1))
        return dst if dst < src else dst + 1  # uniform over ranks != src

    def destination_from_u(self, src: int, u: float) -> int:
        dst = int(u * (self.n_ranks - 1))
        return dst if dst < src else dst + 1  # uniform over ranks != src


class BitShuffleTraffic(TrafficPattern):
    name = "shuffle"
    stochastic = False

    def __init__(self, n_ranks: int) -> None:
        super().__init__(n_ranks)
        self.bits = _require_pow2(n_ranks)

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        b = self.bits
        return ((src << 1) | (src >> (b - 1))) & (self.n_ranks - 1)


class BitReverseTraffic(TrafficPattern):
    name = "reverse"
    stochastic = False

    def __init__(self, n_ranks: int) -> None:
        super().__init__(n_ranks)
        self.bits = _require_pow2(n_ranks)
        self._table = np.array(
            [int(format(i, f"0{self.bits}b")[::-1], 2) for i in range(n_ranks)],
            dtype=np.int64,
        )

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        return int(self._table[src])


class TransposeTraffic(TrafficPattern):
    name = "transpose"
    stochastic = False

    def __init__(self, n_ranks: int) -> None:
        super().__init__(n_ranks)
        self.bits = _require_pow2(n_ranks)

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        half = self.bits // 2
        lo = src & ((1 << half) - 1)
        hi = src >> half
        return (lo << (self.bits - half)) | hi


class BitComplementTraffic(TrafficPattern):
    name = "complement"
    stochastic = False

    def __init__(self, n_ranks: int) -> None:
        super().__init__(n_ranks)
        _require_pow2(n_ranks)

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        return ~src & (self.n_ranks - 1)


class TornadoTraffic(TrafficPattern):
    """dst = (src + ceil(N/2) - 1) mod N — the classic adversarial pattern
    for minimal routing on rings/tori; on expanders it is just another
    permutation, which is part of the SpectralFly story."""

    name = "tornado"
    stochastic = False

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        return (src + (self.n_ranks + 1) // 2 - 1) % self.n_ranks


class NearestNeighborTraffic(TrafficPattern):
    """dst = src + 1 (mod N) — the friendliest permutation; useful as the
    low-stress baseline in sweeps."""

    name = "neighbor"
    stochastic = False

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        return (src + 1) % self.n_ranks


_PATTERNS = {
    cls.name: cls
    for cls in (
        UniformRandomTraffic,
        BitShuffleTraffic,
        BitReverseTraffic,
        TransposeTraffic,
        BitComplementTraffic,
        TornadoTraffic,
        NearestNeighborTraffic,
    )
}


def make_traffic(name: str, n_ranks: int) -> TrafficPattern:
    """Factory over the pattern names above."""
    try:
        return _PATTERNS[name](n_ranks)
    except KeyError:
        raise ParameterError(f"unknown pattern {name!r}; options {list(_PATTERNS)}")


class OpenLoopSource:
    """Poisson open-loop injector for one rank.

    Fires ``packets_per_rank`` packets with exponential interarrivals whose
    mean realises ``offered_load`` (fraction of endpoint link bandwidth).
    """

    def __init__(
        self,
        rank: int,
        endpoint: int,
        pattern: TrafficPattern,
        rank_to_endpoint: np.ndarray,
        offered_load: float,
        packets_per_rank: int,
        seed: int,
    ) -> None:
        if not 0.0 < offered_load <= 1.0:
            raise ParameterError("offered_load must be in (0, 1]")
        self.rank = rank
        self.endpoint = endpoint
        self.pattern = pattern
        self.rank_to_endpoint = rank_to_endpoint
        self.offered_load = offered_load
        self.remaining = packets_per_rank
        self.rng = as_rng(seed)

    def predraw(self, config) -> tuple[np.ndarray, np.ndarray]:
        """Draw this source's whole injection schedule up front.

        Returns ``(t_inject, dst_ep)``: absolute injection times (cumsum of
        the Poisson gaps) and destination endpoints for every packet this
        source will ever fire.  The batch-synchronous backend
        (:mod:`repro.sim.batched`) injects from these arrays instead of
        firing ``_INJECT`` events.

        The draw *order* deliberately mirrors :meth:`start` + :meth:`fire`
        exactly — one ``exponential(size=k)`` block, then (for stochastic
        patterns on the batched fast path) one ``random(k)`` block, then
        any legacy per-packet ``destination()`` calls — so for a fixed seed
        the event and batched engines inject the same packets at the same
        times toward the same destinations (pinned by
        ``tests/test_property_traffic.py``).  Consumes this source's RNG:
        call it *instead of* ``start()``, never after.
        """
        mean_gap = config.packet_bytes / (
            self.offered_load * config.bytes_per_ns
        )
        k = self.remaining
        if k <= 0:
            return (np.empty(0), np.empty(0, dtype=np.int64))
        gaps = self.rng.exponential(mean_gap, size=k)
        pattern = self.pattern
        ep_of_rank = np.asarray(self.rank_to_endpoint, dtype=np.int64)
        if not pattern.stochastic:
            dst_rank = np.full(
                k, pattern.destination(self.rank, self.rng), dtype=np.int64
            )
        elif pattern.batches_destinations:
            us = self.rng.random(k)
            dst_rank = np.fromiter(
                (pattern.destination_from_u(self.rank, u) for u in us),
                dtype=np.int64, count=k,
            )
        else:  # legacy contract: one destination() call per packet, in order
            dst_rank = np.fromiter(
                (pattern.destination(self.rank, self.rng) for _ in range(k)),
                dtype=np.int64, count=k,
            )
        # Sequential accumulation, not np.cumsum: the event engine adds one
        # gap at a time, and keeping the same float operations keeps the
        # two engines' injection times bit-identical.
        t = np.empty(k)
        acc = 0.0
        for i, g in enumerate(gaps.tolist()):
            acc += g
            t[i] = acc
        return t, ep_of_rank[dst_rank]

    def start(self, net) -> None:
        mean_gap = net.config.packet_bytes / (
            self.offered_load * net.config.bytes_per_ns
        )
        self._mean_gap = mean_gap
        if self.remaining <= 0:
            return
        # Pre-draw every interarrival gap (and, for stochastic patterns,
        # every destination uniform) in one generator call each: one
        # ``rng.exponential(size=k)`` costs about as much as two scalar
        # draws.  Draw order differs from one-draw-per-fire, statistics
        # do not; runs stay deterministic per seed.
        self._gaps = self.rng.exponential(mean_gap, size=self.remaining).tolist()
        self._gap_i = 0
        pattern = self.pattern
        # Pre-drawn destination uniforms only for stochastic patterns that
        # opted into the batched fast path by overriding destination_from_u;
        # other stochastic subclasses keep the legacy one-destination()-call-
        # per-packet contract.
        self._dst_u = (
            self.rng.random(self.remaining).tolist()
            if pattern.batches_destinations
            else None
        )
        self._ep_of_rank = (
            self.rank_to_endpoint.tolist()
            if isinstance(self.rank_to_endpoint, np.ndarray)
            else list(self.rank_to_endpoint)
        )
        # Deterministic patterns map each rank to one fixed destination:
        # resolve it once instead of once per packet.
        self._fixed_dst_ep = (
            None
            if pattern.stochastic
            else self._ep_of_rank[pattern.destination(self.rank, self.rng)]
        )
        net.schedule_inject(self._gaps[0], self)

    def fire(self, net, t: float) -> None:
        if self.remaining <= 0:
            return
        self.remaining -= 1
        i = self._gap_i
        dst_ep = self._fixed_dst_ep
        if dst_ep is None:
            if self._dst_u is not None:
                dst_rank = self.pattern.destination_from_u(
                    self.rank, self._dst_u[i]
                )
            else:  # stochastic pattern without the batched fast path
                dst_rank = self.pattern.destination(self.rank, self.rng)
            dst_ep = self._ep_of_rank[dst_rank]
        net.send(self.endpoint, dst_ep, t=t)
        if self.remaining > 0:
            self._gap_i = i + 1
            # Inlined net.schedule_inject (one call per packet saved).
            heappush(net._events, (t + self._gaps[i + 1], next(net._seq),
                                   _INJECT, self))
