"""Synthetic traffic patterns (Section VI-C1).

Each pattern maps a source *rank* to a destination rank by permuting the bit
representation of the source, exactly as the paper describes:

* ``random`` — uniform random destination per packet (irregular/graph apps);
* ``shuffle`` — rotate left by 1 bit (FFT, sorting);
* ``reverse`` — reverse the bits (FFT butterflies);
* ``transpose`` — swap the high and low halves (matrix transpose);
* ``complement`` — flip all bits (worst-case bisection stress, extra).

Open-loop injection draws Poisson interarrivals at ``offered_load`` fraction
of the endpoint link bandwidth, the paper's congestion knob.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import as_rng


def _require_pow2(n_ranks: int) -> int:
    b = n_ranks.bit_length() - 1
    if 1 << b != n_ranks:
        raise ParameterError(f"bit-permutation patterns need 2^b ranks, got {n_ranks}")
    return b


class TrafficPattern:
    """Base: rank-to-rank destination map."""

    name = "abstract"

    def __init__(self, n_ranks: int) -> None:
        self.n_ranks = n_ranks

    def destination(self, src: int, rng: np.random.Generator) -> int:
        raise NotImplementedError


class UniformRandomTraffic(TrafficPattern):
    name = "random"

    def destination(self, src: int, rng: np.random.Generator) -> int:
        dst = int(rng.integers(self.n_ranks - 1))
        return dst if dst < src else dst + 1  # uniform over ranks != src


class BitShuffleTraffic(TrafficPattern):
    name = "shuffle"

    def __init__(self, n_ranks: int) -> None:
        super().__init__(n_ranks)
        self.bits = _require_pow2(n_ranks)

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        b = self.bits
        return ((src << 1) | (src >> (b - 1))) & (self.n_ranks - 1)


class BitReverseTraffic(TrafficPattern):
    name = "reverse"

    def __init__(self, n_ranks: int) -> None:
        super().__init__(n_ranks)
        self.bits = _require_pow2(n_ranks)
        self._table = np.array(
            [int(format(i, f"0{self.bits}b")[::-1], 2) for i in range(n_ranks)],
            dtype=np.int64,
        )

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        return int(self._table[src])


class TransposeTraffic(TrafficPattern):
    name = "transpose"

    def __init__(self, n_ranks: int) -> None:
        super().__init__(n_ranks)
        self.bits = _require_pow2(n_ranks)

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        half = self.bits // 2
        lo = src & ((1 << half) - 1)
        hi = src >> half
        return (lo << (self.bits - half)) | hi


class BitComplementTraffic(TrafficPattern):
    name = "complement"

    def __init__(self, n_ranks: int) -> None:
        super().__init__(n_ranks)
        _require_pow2(n_ranks)

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        return ~src & (self.n_ranks - 1)


class TornadoTraffic(TrafficPattern):
    """dst = (src + ceil(N/2) - 1) mod N — the classic adversarial pattern
    for minimal routing on rings/tori; on expanders it is just another
    permutation, which is part of the SpectralFly story."""

    name = "tornado"

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        return (src + (self.n_ranks + 1) // 2 - 1) % self.n_ranks


class NearestNeighborTraffic(TrafficPattern):
    """dst = src + 1 (mod N) — the friendliest permutation; useful as the
    low-stress baseline in sweeps."""

    name = "neighbor"

    def destination(self, src: int, rng: np.random.Generator) -> int:  # noqa: ARG002
        return (src + 1) % self.n_ranks


_PATTERNS = {
    cls.name: cls
    for cls in (
        UniformRandomTraffic,
        BitShuffleTraffic,
        BitReverseTraffic,
        TransposeTraffic,
        BitComplementTraffic,
        TornadoTraffic,
        NearestNeighborTraffic,
    )
}


def make_traffic(name: str, n_ranks: int) -> TrafficPattern:
    """Factory over the pattern names above."""
    try:
        return _PATTERNS[name](n_ranks)
    except KeyError:
        raise ParameterError(f"unknown pattern {name!r}; options {list(_PATTERNS)}")


class OpenLoopSource:
    """Poisson open-loop injector for one rank.

    Fires ``packets_per_rank`` packets with exponential interarrivals whose
    mean realises ``offered_load`` (fraction of endpoint link bandwidth).
    """

    def __init__(
        self,
        rank: int,
        endpoint: int,
        pattern: TrafficPattern,
        rank_to_endpoint: np.ndarray,
        offered_load: float,
        packets_per_rank: int,
        seed: int,
    ) -> None:
        if not 0.0 < offered_load <= 1.0:
            raise ParameterError("offered_load must be in (0, 1]")
        self.rank = rank
        self.endpoint = endpoint
        self.pattern = pattern
        self.rank_to_endpoint = rank_to_endpoint
        self.offered_load = offered_load
        self.remaining = packets_per_rank
        self.rng = as_rng(seed)

    def start(self, net) -> None:
        mean_gap = net.config.packet_bytes / (
            self.offered_load * net.config.bytes_per_ns
        )
        self._mean_gap = mean_gap
        net.schedule_inject(float(self.rng.exponential(mean_gap)), self)

    def fire(self, net, t: float) -> None:
        if self.remaining <= 0:
            return
        self.remaining -= 1
        dst_rank = self.pattern.destination(self.rank, self.rng)
        dst_ep = int(self.rank_to_endpoint[dst_rank])
        net.send(self.endpoint, dst_ep, t=t)
        if self.remaining > 0:
            net.schedule_inject(t + float(self.rng.exponential(self._mean_gap)), self)
