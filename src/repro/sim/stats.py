"""Simulation statistics collection and summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimStats:
    """Per-run accumulators; summarised once the simulation drains."""

    latencies_ns: list[float] = field(default_factory=list)
    hops: list[int] = field(default_factory=list)
    bytes_delivered: int = 0
    t_first_inject: float = float("inf")
    t_last_delivery: float = 0.0
    n_injected: int = 0
    max_queue_bytes: int = 0
    valiant_choices: int = 0
    minimal_choices: int = 0
    deadlocked: bool = False
    undelivered: int = 0
    #: Events processed by ``NetworkSimulator.run`` (perf accounting only;
    #: deliberately kept out of :meth:`summary` so result tables are
    #: unchanged).
    n_events: int = 0

    # Delivery accounting (latencies_ns/hops appends, bytes_delivered,
    # t_last_delivery) is inlined at the simulator's two eject sites —
    # NetworkSimulator._eject_done and the _run_fast eject branch — which
    # must be kept in sync with each other (a test pins their equivalence).

    def summary(self) -> dict:
        """Headline metrics: the paper's 'maximum time taken across all the
        messages' plus mean/median/p99 latency and delivered throughput."""
        lat = np.asarray(self.latencies_ns, dtype=np.float64)
        if len(lat) == 0:
            return {
                "delivered": 0,
                "deadlocked": self.deadlocked,
                "undelivered": self.undelivered,
            }
        makespan = self.t_last_delivery - self.t_first_inject
        return {
            "deadlocked": self.deadlocked,
            "undelivered": self.undelivered,
            "delivered": int(len(lat)),
            "max_latency_ns": float(lat.max()),
            "mean_latency_ns": float(lat.mean()),
            "p50_latency_ns": float(np.percentile(lat, 50)),
            "p99_latency_ns": float(np.percentile(lat, 99)),
            "mean_hops": float(np.mean(self.hops)),
            "makespan_ns": float(makespan),
            "throughput_gbps": float(
                8.0 * self.bytes_delivered / makespan if makespan > 0 else 0.0
            ),
            "max_queue_bytes": int(self.max_queue_bytes),
            "valiant_fraction": (
                self.valiant_choices
                / max(1, self.valiant_choices + self.minimal_choices)
            ),
        }
