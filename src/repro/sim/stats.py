"""Simulation statistics collection and summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimStats:
    """Per-run accumulators; summarised once the simulation drains."""

    latencies_ns: list[float] = field(default_factory=list)
    hops: list[int] = field(default_factory=list)
    bytes_delivered: int = 0
    t_first_inject: float = float("inf")
    t_last_delivery: float = 0.0
    n_injected: int = 0
    max_queue_bytes: int = 0
    valiant_choices: int = 0
    minimal_choices: int = 0
    deadlocked: bool = False
    undelivered: int = 0
    #: Events processed by ``NetworkSimulator.run`` (perf accounting only;
    #: deliberately kept out of :meth:`summary` so result tables are
    #: unchanged).
    n_events: int = 0
    # -- fault-injection accounting (see docs/resilience.md) ---------------
    #: Packets lost to faults, by cause: ``link-down`` (mid-flight on a
    #: failed link), ``router-down`` (at/into a dead router), ``ttl``
    #: (non-minimal walk exceeded the hop budget), ``unreachable`` (no live
    #: outgoing link).
    n_dropped: int = 0
    drops: dict = field(default_factory=dict)
    #: Link-level retransmissions performed by the channel model
    #: (``repro.sim.channel``): failed attempts that were retried.  A
    #: packet that exhausts ``max_attempts`` is additionally counted in
    #: :attr:`drops` under ``retransmit-exhausted`` (or ``channel-loss``
    #: when retransmit is off).
    n_retransmits: int = 0
    #: Packets pulled out of a failed port's queues and re-routed.
    n_requeued: int = 0
    #: Hops taken through the non-minimal fallback (minimal set severed).
    nonminimal_hops: int = 0
    #: Epoch snapshots appended at every applied fault event; see
    #: :meth:`mark_epoch` / :meth:`epoch_rows`.
    epochs: list = field(default_factory=list)

    # Delivery accounting (latencies_ns/hops appends, bytes_delivered,
    # t_last_delivery) is inlined at the simulator's two eject sites —
    # NetworkSimulator._eject_done and the _run_fast eject branch — which
    # must be kept in sync with each other (a test pins their equivalence).

    def record_drop(self, reason: str) -> None:
        """Count one packet lost to a fault, keyed by cause."""
        self.n_dropped += 1
        self.drops[reason] = self.drops.get(reason, 0) + 1

    def mark_epoch(self, t: float, label: str) -> None:
        """Snapshot the cumulative counters at a fault-event boundary.

        The simulator calls this once per applied fault event; consecutive
        snapshots delimit *epochs* of constant topology, and
        :meth:`epoch_rows` differences them into per-epoch rates.
        """
        self.epochs.append(
            {
                "t": t,
                "label": label,
                "injected": self.n_injected,
                "delivered": len(self.latencies_ns),
                "dropped": self.n_dropped,
                "requeued": self.n_requeued,
                "bytes_delivered": self.bytes_delivered,
            }
        )

    def epoch_rows(self) -> list:
        """Per-epoch deltas: one row per constant-topology interval.

        Epoch ``i`` spans from snapshot ``i`` to snapshot ``i + 1`` (the
        final epoch runs to the end of the simulation).  Empty when no
        fault schedule was active.
        """
        if not self.epochs:
            return []
        end = {
            "t": self.t_last_delivery,
            "label": "end",
            "injected": self.n_injected,
            "delivered": len(self.latencies_ns),
            "dropped": self.n_dropped,
            "requeued": self.n_requeued,
            "bytes_delivered": self.bytes_delivered,
        }
        rows = []
        bounds = list(self.epochs) + [end]
        for start, stop in zip(bounds[:-1], bounds[1:]):
            rows.append(
                {
                    "t_start": start["t"],
                    "t_end": stop["t"],
                    "label": start["label"],
                    "injected": stop["injected"] - start["injected"],
                    "delivered": stop["delivered"] - start["delivered"],
                    "dropped": stop["dropped"] - start["dropped"],
                    "requeued": stop["requeued"] - start["requeued"],
                    "bytes_delivered": stop["bytes_delivered"]
                    - start["bytes_delivered"],
                }
            )
        return rows

    def summary(self) -> dict:
        """Headline metrics: the paper's 'maximum time taken across all the
        messages' plus mean/median/p99 latency and delivered throughput."""
        lat = np.asarray(self.latencies_ns, dtype=np.float64)
        if len(lat) == 0:
            # A total-loss cell (every packet killed by faults, channel
            # loss, or retransmit exhaustion) must still produce a
            # *complete* row — every key of the delivered branch, latency
            # aggregates as NaN — plus the per-cause drop itemization, so
            # downstream drivers and tables never KeyError on it.  The
            # delivered branch below is deliberately left byte-identical
            # (the golden corpus pins motif summaries key-for-key).
            nan = float("nan")
            return {
                "deadlocked": self.deadlocked,
                "undelivered": self.undelivered,
                "delivered": 0,
                "max_latency_ns": nan,
                "mean_latency_ns": nan,
                "p50_latency_ns": nan,
                "p99_latency_ns": nan,
                "mean_hops": nan,
                "makespan_ns": nan,
                "throughput_gbps": 0.0,
                "max_queue_bytes": int(self.max_queue_bytes),
                "valiant_fraction": (
                    self.valiant_choices
                    / max(1, self.valiant_choices + self.minimal_choices)
                ),
                "dropped": self.n_dropped,
                "requeued": self.n_requeued,
                "delivered_fraction": 0.0,
                "nonminimal_hops": self.nonminimal_hops,
                "drops": dict(self.drops),
                "retransmits": self.n_retransmits,
            }
        makespan = self.t_last_delivery - self.t_first_inject
        return {
            "deadlocked": self.deadlocked,
            "undelivered": self.undelivered,
            "delivered": int(len(lat)),
            "max_latency_ns": float(lat.max()),
            "mean_latency_ns": float(lat.mean()),
            "p50_latency_ns": float(np.percentile(lat, 50)),
            "p99_latency_ns": float(np.percentile(lat, 99)),
            "mean_hops": float(np.mean(self.hops)),
            "makespan_ns": float(makespan),
            "throughput_gbps": float(
                8.0 * self.bytes_delivered / makespan if makespan > 0 else 0.0
            ),
            "max_queue_bytes": int(self.max_queue_bytes),
            "valiant_fraction": (
                self.valiant_choices
                / max(1, self.valiant_choices + self.minimal_choices)
            ),
            "dropped": self.n_dropped,
            "requeued": self.n_requeued,
            "delivered_fraction": len(lat) / max(1, self.n_injected),
            "nonminimal_hops": self.nonminimal_hops,
        }
