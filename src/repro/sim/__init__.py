"""Packet-level interconnection-network simulator (SST/macro SNAPPR stand-in).

See DESIGN.md for the substitution notes: store-and-forward packet switching
with per-VC output queues and measured (not blocking) buffer occupancy,
which preserves the congestion behaviour the paper's Section VI compares
while staying tractable in Python.
"""

from repro.sim.packet import Packet
from repro.sim.batched import BatchedSimulator
from repro.sim.channel import ChannelConfig
from repro.sim.faults import FaultEvent, FaultSchedule
from repro.sim.network import NetworkSimulator, SimConfig
from repro.sim.traffic import (
    BitComplementTraffic,
    BitReverseTraffic,
    BitShuffleTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic,
)
from repro.sim.placement import place_ranks
from repro.sim.sharded import ShardedSimulator
from repro.sim.stats import SimStats

__all__ = [
    "Packet",
    "BatchedSimulator",
    "ShardedSimulator",
    "NetworkSimulator",
    "SimConfig",
    "SimStats",
    "ChannelConfig",
    "FaultEvent",
    "FaultSchedule",
    "UniformRandomTraffic",
    "BitShuffleTraffic",
    "BitReverseTraffic",
    "TransposeTraffic",
    "BitComplementTraffic",
    "make_traffic",
    "place_ranks",
]
