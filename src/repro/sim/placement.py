"""Rank placement (Section VI-B).

When a job uses fewer ranks than the machine has endpoints
(under-subscription, e.g. 8192 ranks on ~8.7K endpoints), the paper
allocates physical nodes to the job *randomly* and then assigns MPI ranks
sequentially over the chosen nodes in the topology's standard ordering (for
SpectralFly, the unstructured order the Elzinga construction emits — which
is exactly our BFS discovery order).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import as_rng


def place_ranks(
    n_ranks: int,
    n_endpoints: int,
    seed: int | np.random.Generator | None = 0,
    strategy: str = "random-nodes",
) -> np.ndarray:
    """Return ``rank_to_endpoint`` of length ``n_ranks``.

    ``random-nodes``: random endpoint subset, ranks filled in ascending
    endpoint order (the paper's under-subscription protocol).
    ``sequential``: first ``n_ranks`` endpoints in standard order.
    """
    if n_ranks > n_endpoints:
        raise ParameterError(f"{n_ranks} ranks > {n_endpoints} endpoints")
    if strategy == "sequential" or n_ranks == n_endpoints:
        return np.arange(n_ranks, dtype=np.int64)
    if strategy == "random-nodes":
        rng = as_rng(seed)
        chosen = rng.choice(n_endpoints, size=n_ranks, replace=False)
        return np.sort(chosen).astype(np.int64)
    raise ParameterError(f"unknown placement strategy {strategy!r}")
