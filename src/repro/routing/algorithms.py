"""The three routing strategies of Section V.

* **Minimal** — forward along a uniformly random minimal next hop (the
  random tie-break realises the path diversity minimal routing has on LPS
  graphs).
* **Valiant** [34] — route to a random intermediate router minimally, then
  to the destination minimally.
* **UGAL-L** — at the *source router only*, compare the locally observed
  queue of the minimal port against the queue of a random Valiant first-hop
  port, each weighted by its path length in hops; take the cheaper one.
  Only local output-queue state is consulted, as in SST/macro's UGAL-L.

A policy object is stateless across packets; per-packet routing state
(Valiant intermediate, phase) lives on the packet.

Hot-path notes (see ``docs/performance.md``)
--------------------------------------------

Next-hop candidates come from the flat table built by
:meth:`RoutingTables.build_fast_path` — two scalar indptr reads and one
indices read per hop — and random values are drawn from a refillable block
of ``rng.random(_RNG_BLOCK)`` floats instead of one ``rng.integers`` call
per packet/hop.  Runs remain bit-for-bit deterministic for a fixed seed,
but the *draw order* (and hence the exact random stream) differs from the
pre-fast-path implementation, so per-packet outcomes are not comparable
across that boundary; distributions and seeded reproducibility are.
"""

from __future__ import annotations

from repro.routing.tables import RoutingTables
from repro.utils.rng import as_rng

#: Random floats drawn per generator refill.  One block of 8192 costs about
#: as much as ~15 single ``rng.integers`` calls, so amortised per-draw cost
#: drops by two orders of magnitude.
_RNG_BLOCK = 8192


class RoutingPolicy:
    """Interface the simulator drives.

    ``on_source(net, router, pkt)`` runs once when the packet enters its
    first router (sets Valiant state); ``next_hop(net, router, pkt)``
    returns the neighbour to forward to.
    """

    name = "abstract"

    def __init__(self, tables: RoutingTables, seed=0) -> None:
        self.tables = tables
        self.rng = as_rng(seed)
        self._n = tables.n
        self._rand_buf: list[float] = []
        self._rand_pos = 0
        if tables.is_lazy:
            # Oracle-backed tables: no flat n*n arrays exist.  Shadow the
            # per-hop entry points with oracle variants that draw the RNG
            # identically (single-candidate hops skip the draw, ties take
            # one block draw) so lazy runs are bit-identical to dense runs.
            self._oracle = tables.oracle
            self._nh_indptr = None
            self._nh_indices = None
            self._dist_flat = None
            self._random_minimal = self._random_minimal_oracle
            self.next_hop = self._next_hop_oracle
        else:
            self._oracle = None
            self._nh_indptr, self._nh_indices = tables.next_hop_table()
            self._dist_flat = tables.dist_flat
            if type(self._nh_indices) is list:
                # List-backed tables hold Python ints already; shadow the
                # method with the variant that skips the int() wraps.
                self._random_minimal = self._random_minimal_list

    def required_vcs(self) -> int:
        """Virtual channels needed for deadlock freedom (Section V-A)."""
        raise NotImplementedError

    def on_source(self, net, router: int, pkt) -> None:  # noqa: ARG002
        """Hook run at the packet's injection router (default: nothing)."""

    def next_hop(self, net, router: int, pkt) -> int:
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------
    def _rand01(self) -> float:
        """One uniform float in [0, 1) from the refillable block."""
        pos = self._rand_pos
        buf = self._rand_buf
        if pos >= len(buf):
            buf = self._rand_buf = self.rng.random(_RNG_BLOCK).tolist()
            pos = 0
        self._rand_pos = pos + 1
        return buf[pos]

    def _random_minimal(self, router: int, dst: int) -> int:
        """Uniform random minimal next hop, read from the flat table."""
        indptr = self._nh_indptr
        k = router * self._n + dst
        lo = indptr[k]
        width = indptr[k + 1] - lo
        if width == 1:
            return int(self._nh_indices[lo])
        if width <= 0:
            raise ValueError(f"no minimal next hop from {router} to {dst}")
        # Inlined _rand01 (this is the single hottest routing call).
        pos = self._rand_pos
        buf = self._rand_buf
        if pos >= len(buf):
            buf = self._rand_buf = self.rng.random(_RNG_BLOCK).tolist()
            pos = 0
        self._rand_pos = pos + 1
        # buf[pos] < 1.0 strictly, so the offset stays below width.
        return int(self._nh_indices[lo + int(buf[pos] * width)])

    def _random_minimal_list(self, router: int, dst: int) -> int:
        """`_random_minimal` minus the int() wraps (list-backed tables)."""
        indptr = self._nh_indptr
        k = router * self._n + dst
        lo = indptr[k]
        width = indptr[k + 1] - lo
        if width == 1:
            return self._nh_indices[lo]
        if width <= 0:
            raise ValueError(f"no minimal next hop from {router} to {dst}")
        pos = self._rand_pos
        buf = self._rand_buf
        if pos >= len(buf):
            buf = self._rand_buf = self.rng.random(_RNG_BLOCK).tolist()
            pos = 0
        self._rand_pos = pos + 1
        return self._nh_indices[lo + int(buf[pos] * width)]

    def _random_minimal_oracle(self, router: int, dst: int) -> int:
        """`_random_minimal` against the on-demand oracle (lazy tables).

        Same draw discipline as the flat-table variants: no draw when the
        candidate set is a singleton, one block draw otherwise — the RNG
        stream (and hence the whole run) matches the dense path bit for
        bit because the oracle's candidate order and widths do.
        """
        cands = self._oracle.min_next_hops(router, dst)
        width = len(cands)
        if width == 1:
            return int(cands[0])
        if width <= 0:
            raise ValueError(f"no minimal next hop from {router} to {dst}")
        return int(cands[int(self._rand01() * width)])

    def _next_hop_oracle(self, net, router: int, pkt) -> int:  # noqa: ARG002
        """Generic two-phase forwarding for oracle-backed tables.

        Bound onto ``self.next_hop`` in lazy mode; handles the Valiant
        waypoint exactly like the inlined subclass implementations (a
        minimal packet simply never has an intermediate).
        """
        if pkt.intermediate is not None and pkt.phase == 0:
            if router != pkt.intermediate:
                dst = pkt.intermediate
            else:
                pkt.phase = 1
                dst = pkt.dst_router
        else:
            dst = pkt.dst_router
        return self._random_minimal_oracle(router, dst)

    def _random_router(self) -> int:
        """Uniform random router id (Valiant intermediate draws)."""
        return int(self._rand01() * self._n)

    def _toward(self, router: int, pkt) -> int:
        """Current waypoint: Valiant intermediate while in phase 0."""
        if pkt.intermediate is not None and pkt.phase == 0:
            if router == pkt.intermediate:
                pkt.phase = 1
                return pkt.dst_router
            return pkt.intermediate
        return pkt.dst_router

    # -- fault-aware forwarding ---------------------------------------------
    def next_hop_degraded(self, net, router: int, pkt) -> int:
        """``next_hop`` against the simulator's live :class:`FaultMask`.

        Used by the handler path whenever a fault schedule is attached
        (the inlined fast loop bails out in that case).  Differences from
        the pristine path, in order:

        * a dead Valiant intermediate is abandoned — the packet heads
          straight for its destination;
        * minimal candidates are filtered to live links
          (:meth:`FaultMask.live_min_candidates`);
        * when the minimal set is fully severed, forwarding falls back to
          the live neighbour(s) greedily closest to the waypoint under the
          stale distance metric (counted in ``stats.nonminimal_hops``; the
          simulator's hop TTL bounds the walk);
        * returns ``-1`` when the router has no live outgoing link at all —
          the simulator drops the packet.

        Shared by all policies: the adaptive decision (UGAL) already
        happened in ``on_source``; per-hop forwarding only ever needs the
        waypoint and the live candidate set.
        """
        if pkt.intermediate is not None and pkt.phase == 0:
            mask = net._fault_mask
            if not mask.router_alive(pkt.intermediate):
                pkt.intermediate = None
                dst = pkt.dst_router
            elif router == pkt.intermediate:
                pkt.phase = 1
                dst = pkt.dst_router
            else:
                dst = pkt.intermediate
        else:
            mask = net._fault_mask
            dst = pkt.dst_router
        cands = mask.live_min_candidates(router, dst)
        if not cands:
            cands = mask.fallback_candidates(router, dst)
            if not cands:
                return -1
            net.stats.nonminimal_hops += 1
        k = len(cands)
        if k == 1:
            return cands[0]
        return cands[int(self._rand01() * k)]


class MinimalRouting(RoutingPolicy):
    """Shortest-path routing with uniform random tie-breaks."""

    name = "minimal"

    def required_vcs(self) -> int:
        return self.tables.diameter + 1

    def next_hop(self, net, router: int, pkt) -> int:  # noqa: ARG002
        # _random_minimal inlined: the simulator pays one Python call per
        # hop on the hottest policy, not two.  int() is a no-op pass-through
        # on list-backed tables and the numpy-scalar conversion otherwise.
        indptr = self._nh_indptr
        k = router * self._n + pkt.dst_router
        lo = indptr[k]
        width = indptr[k + 1] - lo
        if width == 1:
            return int(self._nh_indices[lo])
        if width <= 0:
            raise ValueError(
                f"no minimal next hop from {router} to {pkt.dst_router}"
            )
        pos = self._rand_pos
        buf = self._rand_buf
        if pos >= len(buf):
            buf = self._rand_buf = self.rng.random(_RNG_BLOCK).tolist()
            pos = 0
        self._rand_pos = pos + 1
        return int(self._nh_indices[lo + int(buf[pos] * width)])


class ValiantRouting(RoutingPolicy):
    """Two-phase Valiant routing via a uniform random intermediate."""

    name = "valiant"

    def required_vcs(self) -> int:
        return 2 * self.tables.diameter + 1

    def on_source(self, net, router: int, pkt) -> None:  # noqa: ARG002
        inter = self._random_router()
        if inter == router or inter == pkt.dst_router:
            pkt.intermediate = None  # degenerate draw: fall back to minimal
        else:
            pkt.intermediate = inter
            pkt.phase = 0

    def next_hop(self, net, router: int, pkt) -> int:  # noqa: ARG002
        # _toward and _random_minimal inlined (see MinimalRouting.next_hop);
        # UGALRouting shares this implementation by class-attribute
        # assignment below.
        if pkt.intermediate is not None and pkt.phase == 0:
            if router != pkt.intermediate:
                dst = pkt.intermediate
            else:
                pkt.phase = 1
                dst = pkt.dst_router
        else:
            dst = pkt.dst_router
        indptr = self._nh_indptr
        k = router * self._n + dst
        lo = indptr[k]
        width = indptr[k + 1] - lo
        if width == 1:
            return int(self._nh_indices[lo])
        if width <= 0:
            raise ValueError(f"no minimal next hop from {router} to {dst}")
        pos = self._rand_pos
        buf = self._rand_buf
        if pos >= len(buf):
            buf = self._rand_buf = self.rng.random(_RNG_BLOCK).tolist()
            pos = 0
        self._rand_pos = pos + 1
        return int(self._nh_indices[lo + int(buf[pos] * width)])


class UGALRouting(RoutingPolicy):
    """UGAL-L: local-queue adaptive choice between minimal and Valiant."""

    name = "ugal"

    def __init__(self, tables: RoutingTables, seed=0, bias_bytes: int = 0) -> None:
        super().__init__(tables, seed)
        #: queue-byte bias added to the Valiant cost (favours minimal when
        #: queues tie, as hardware UGAL implementations do).
        self.bias_bytes = bias_bytes

    def required_vcs(self) -> int:
        return 2 * self.tables.diameter + 1

    def on_source(self, net, router: int, pkt) -> None:
        dst = pkt.dst_router
        if dst == router:
            pkt.intermediate = None
            return
        inter = self._random_router()
        if inter == router or inter == dst:
            pkt.intermediate = None
            return
        min_hop = self._random_minimal(router, dst)
        val_hop = self._random_minimal(router, inter)
        n = self._n
        dist = self._dist_flat
        if dist is None:
            # Oracle-backed tables: three on-demand distances (no draws).
            h = self._oracle.distance_batch(
                [router, router, inter], [dst, inter, dst]
            )
            h_min = int(h[0])
            h_val = int(h[1]) + int(h[2])
        else:
            # int() matters on numpy-backed tables (large topologies):
            # int16 scalars would overflow/wrap in the byte-weighted cost
            # products.
            h_min = int(dist[router * n + dst])
            h_val = int(dist[router * n + inter]) + int(dist[inter * n + dst])
        try:
            # Direct reads of the simulator's port state (same package);
            # stubs without these internals fall back to the public method.
            port_bytes = net._port_bytes
            edge_index = net._edge_index
        except AttributeError:
            q_min = net.output_queue_bytes(router, min_hop)
            q_val = net.output_queue_bytes(router, val_hop)
        else:
            base = router * net.n_routers
            q_min = port_bytes[edge_index[base + min_hop]]
            q_val = port_bytes[edge_index[base + val_hop]]
        cost_min = (q_min + pkt.size) * h_min
        cost_val = (q_val + pkt.size) * h_val + self.bias_bytes
        if cost_min <= cost_val:
            pkt.intermediate = None
        else:
            pkt.intermediate = inter
            pkt.phase = 0

    # Identical two-phase forwarding; share the inlined implementation.
    next_hop = ValiantRouting.next_hop


class UGALGRouting(UGALRouting):
    """UGAL-G: the global-information UGAL variant.

    Where UGAL-L consults only the source router's local output queues,
    UGAL-G scores each candidate by the *sum of queue occupancies along the
    whole path* (an idealisation real hardware approximates with explicit
    congestion telemetry).  Included as an upper bound on what adaptivity
    can buy; the paper evaluates UGAL-L.
    """

    name = "ugal-g"

    def on_source(self, net, router: int, pkt) -> None:
        dst = pkt.dst_router
        if dst == router:
            pkt.intermediate = None
            return
        inter = self._random_router()
        if inter == router or inter == dst:
            pkt.intermediate = None
            return
        q_min, h_min = self._path_cost(net, router, dst)
        q_val1, h_val1 = self._path_cost(net, router, inter)
        q_val2, h_val2 = self._path_cost(net, inter, dst)
        cost_min = (q_min + pkt.size * h_min) * h_min
        cost_val = (q_val1 + q_val2 + pkt.size * (h_val1 + h_val2)) * (
            h_val1 + h_val2
        ) + self.bias_bytes
        if cost_min <= cost_val:
            pkt.intermediate = None
        else:
            pkt.intermediate = inter
            pkt.phase = 0

    def _path_cost(self, net, src: int, dst: int) -> tuple[int, int]:
        """Queued bytes summed along one sampled minimal path + its length."""
        total = 0
        hops = 0
        at = src
        while at != dst:
            nxt = self._random_minimal(at, dst)
            total += net.output_queue_bytes(at, nxt)
            at = nxt
            hops += 1
        return total, hops


_POLICIES = {
    "minimal": MinimalRouting,
    "valiant": ValiantRouting,
    "ugal": UGALRouting,
    "ugal-g": UGALGRouting,
}


def make_routing(name: str, tables: RoutingTables, seed=0) -> RoutingPolicy:
    """Factory: ``minimal`` / ``valiant`` / ``ugal``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown routing {name!r}; options {list(_POLICIES)}")
    return cls(tables, seed=seed)
