"""The three routing strategies of Section V.

* **Minimal** — forward along a uniformly random minimal next hop (the
  random tie-break realises the path diversity minimal routing has on LPS
  graphs).
* **Valiant** [34] — route to a random intermediate router minimally, then
  to the destination minimally.
* **UGAL-L** — at the *source router only*, compare the locally observed
  queue of the minimal port against the queue of a random Valiant first-hop
  port, each weighted by its path length in hops; take the cheaper one.
  Only local output-queue state is consulted, as in SST/macro's UGAL-L.

A policy object is stateless across packets; per-packet routing state
(Valiant intermediate, phase) lives on the packet.
"""

from __future__ import annotations

import numpy as np

from repro.routing.tables import RoutingTables
from repro.utils.rng import as_rng


class RoutingPolicy:
    """Interface the simulator drives.

    ``on_source(net, router, pkt)`` runs once when the packet enters its
    first router (sets Valiant state); ``next_hop(net, router, pkt)``
    returns the neighbour to forward to.
    """

    name = "abstract"

    def __init__(self, tables: RoutingTables, seed=0) -> None:
        self.tables = tables
        self.rng = as_rng(seed)

    def required_vcs(self) -> int:
        """Virtual channels needed for deadlock freedom (Section V-A)."""
        raise NotImplementedError

    def on_source(self, net, router: int, pkt) -> None:  # noqa: ARG002
        """Hook run at the packet's injection router (default: nothing)."""

    def next_hop(self, net, router: int, pkt) -> int:
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------
    def _random_minimal(self, router: int, dst: int) -> int:
        cands = self.tables.min_next_hops(router, dst)
        if len(cands) == 1:
            return int(cands[0])
        return int(cands[self.rng.integers(len(cands))])

    def _toward(self, router: int, pkt) -> int:
        """Current waypoint: Valiant intermediate while in phase 0."""
        if pkt.intermediate is not None and pkt.phase == 0:
            if router == pkt.intermediate:
                pkt.phase = 1
                return pkt.dst_router
            return pkt.intermediate
        return pkt.dst_router


class MinimalRouting(RoutingPolicy):
    """Shortest-path routing with uniform random tie-breaks."""

    name = "minimal"

    def required_vcs(self) -> int:
        return self.tables.diameter + 1

    def next_hop(self, net, router: int, pkt) -> int:  # noqa: ARG002
        return self._random_minimal(router, pkt.dst_router)


class ValiantRouting(RoutingPolicy):
    """Two-phase Valiant routing via a uniform random intermediate."""

    name = "valiant"

    def required_vcs(self) -> int:
        return 2 * self.tables.diameter + 1

    def on_source(self, net, router: int, pkt) -> None:  # noqa: ARG002
        n = self.tables.graph.n
        inter = int(self.rng.integers(n))
        if inter in (router, pkt.dst_router):
            pkt.intermediate = None  # degenerate draw: fall back to minimal
        else:
            pkt.intermediate = inter
            pkt.phase = 0

    def next_hop(self, net, router: int, pkt) -> int:  # noqa: ARG002
        return self._random_minimal(router, self._toward(router, pkt))


class UGALRouting(RoutingPolicy):
    """UGAL-L: local-queue adaptive choice between minimal and Valiant."""

    name = "ugal"

    def __init__(self, tables: RoutingTables, seed=0, bias_bytes: int = 0) -> None:
        super().__init__(tables, seed)
        #: queue-byte bias added to the Valiant cost (favours minimal when
        #: queues tie, as hardware UGAL implementations do).
        self.bias_bytes = bias_bytes

    def required_vcs(self) -> int:
        return 2 * self.tables.diameter + 1

    def on_source(self, net, router: int, pkt) -> None:
        dst = pkt.dst_router
        if dst == router:
            pkt.intermediate = None
            return
        t = self.tables
        n = t.graph.n
        inter = int(self.rng.integers(n))
        if inter in (router, dst):
            pkt.intermediate = None
            return
        min_hop = self._random_minimal(router, dst)
        val_hop = self._random_minimal(router, inter)
        h_min = t.distance(router, dst)
        h_val = t.distance(router, inter) + t.distance(inter, dst)
        q_min = net.output_queue_bytes(router, min_hop)
        q_val = net.output_queue_bytes(router, val_hop)
        cost_min = (q_min + pkt.size) * h_min
        cost_val = (q_val + pkt.size) * h_val + self.bias_bytes
        if cost_min <= cost_val:
            pkt.intermediate = None
        else:
            pkt.intermediate = inter
            pkt.phase = 0

    def next_hop(self, net, router: int, pkt) -> int:  # noqa: ARG002
        return self._random_minimal(router, self._toward(router, pkt))


class UGALGRouting(UGALRouting):
    """UGAL-G: the global-information UGAL variant.

    Where UGAL-L consults only the source router's local output queues,
    UGAL-G scores each candidate by the *sum of queue occupancies along the
    whole path* (an idealisation real hardware approximates with explicit
    congestion telemetry).  Included as an upper bound on what adaptivity
    can buy; the paper evaluates UGAL-L.
    """

    name = "ugal-g"

    def on_source(self, net, router: int, pkt) -> None:
        dst = pkt.dst_router
        if dst == router:
            pkt.intermediate = None
            return
        n = self.tables.graph.n
        inter = int(self.rng.integers(n))
        if inter in (router, dst):
            pkt.intermediate = None
            return
        q_min, h_min = self._path_cost(net, router, dst)
        q_val1, h_val1 = self._path_cost(net, router, inter)
        q_val2, h_val2 = self._path_cost(net, inter, dst)
        cost_min = (q_min + pkt.size * h_min) * h_min
        cost_val = (q_val1 + q_val2 + pkt.size * (h_val1 + h_val2)) * (
            h_val1 + h_val2
        ) + self.bias_bytes
        if cost_min <= cost_val:
            pkt.intermediate = None
        else:
            pkt.intermediate = inter
            pkt.phase = 0

    def _path_cost(self, net, src: int, dst: int) -> tuple[int, int]:
        """Queued bytes summed along one sampled minimal path + its length."""
        total = 0
        hops = 0
        at = src
        while at != dst:
            nxt = self._random_minimal(at, dst)
            total += net.output_queue_bytes(at, nxt)
            at = nxt
            hops += 1
        return total, hops


_POLICIES = {
    "minimal": MinimalRouting,
    "valiant": ValiantRouting,
    "ugal": UGALRouting,
    "ugal-g": UGALGRouting,
}


def make_routing(name: str, tables: RoutingTables, seed=0) -> RoutingPolicy:
    """Factory: ``minimal`` / ``valiant`` / ``ugal``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown routing {name!r}; options {list(_POLICIES)}")
    return cls(tables, seed=seed)
