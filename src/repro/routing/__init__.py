"""Routing algorithms: minimal (multi-path), Valiant, and UGAL-L (Section V)."""

from repro.routing.tables import FaultMask, RoutingTables
from repro.routing.algorithms import (
    MinimalRouting,
    RoutingPolicy,
    UGALRouting,
    ValiantRouting,
    make_routing,
)
from repro.routing.vc import (
    build_channel_dependency_graph,
    is_acyclic,
    required_virtual_channels,
)

__all__ = [
    "RoutingTables",
    "FaultMask",
    "RoutingPolicy",
    "MinimalRouting",
    "ValiantRouting",
    "UGALRouting",
    "make_routing",
    "required_virtual_channels",
    "build_channel_dependency_graph",
    "is_acyclic",
]
