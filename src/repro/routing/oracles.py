"""On-demand routing oracles: distances and minimal next hops without O(n^2).

The dense all-pairs matrix in :mod:`repro.routing.tables` answers every
routing question the simulators ask, but costs ``O(n^2)`` memory and an
all-pairs BFS — which caps experiments at toy node counts.  The paper's
SpectralFly graphs are *Cayley graphs*, so the same questions admit
on-demand answers from group structure.  This module provides the pluggable
oracle layer behind :class:`repro.routing.tables.RoutingTables`:

* :class:`DenseOracle` — today's matrix behind the oracle interface; still
  the default below :data:`DENSE_ORACLE_MAX` routers.
* :class:`CayleyOracle` — for vertex-transitive algebraic families
  (LPS/SpectralFly, Paley, MMS/SlimFly).  A *translator* maps any query
  pair ``(u, d)`` to a canonical source via a graph automorphism
  (``d(u, d) == d(src_f, z)``), so one cached single-source BFS ball per
  canonical form answers every distance query: ``O(forms * n)`` memory
  instead of ``O(n^2)``.
* :class:`LandmarkOracle` — for unstructured families (Jellyfish, Xpander):
  ``k`` landmark BFS trees give fast admissible upper bounds,
  and exact answers come from per-vertex BFS rows computed on miss and
  kept in the same bounded LRU.

All oracles answer ``distance`` / ``min_next_hops`` *bit-identically* to
:class:`DenseOracle` (candidates in sorted neighbour-row order, same
widths), so routing policies driven by an oracle consume their RNG streams
exactly like the dense fast path — the oracle-equivalence and differential
suites pin this.

Every oracle also keeps a bounded LRU of full distance *rows* (``row(u)``:
distances from ``u`` to everybody, ``O(n)`` each).  Rows serve the fault
mask's fallback scans and the landmark oracle's exact path; eviction never
changes answers (property-tested), it only re-costs them.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.graphs.bfs import UNREACHED, bfs_distances, distance_matrix
from repro.graphs.csr import CSRGraph
from repro.utils.diskcache import get_default_cache

#: Router count at or below which ``oracle_for(kind="auto")`` picks the
#: dense matrix: below this the O(n^2) table fits comfortably in memory and
#: its flat fast path is the quickest per-hop answer.  Above it, algebraic
#: families get a :class:`CayleyOracle` and everything else a
#: :class:`LandmarkOracle`.  See docs/scaling.md for how to tune this.
DENSE_ORACLE_MAX = 4096

#: Default bound on the per-oracle LRU of full distance rows.
ROW_CACHE_ROWS = 64

#: Default number of landmark BFS trees for :class:`LandmarkOracle`.
LANDMARKS_DEFAULT = 16


class RoutingOracle:
    """Interface + shared machinery for distance/next-hop oracles.

    Subclasses implement :meth:`_compute_row` (a full distance row, used
    by the LRU) and usually override :meth:`distance_batch` with something
    cheaper than whole rows.  The graph must be undirected (every router
    graph in this repo is), which the row cache exploits via
    ``d(u, v) == d(v, u)``.
    """

    kind = "abstract"

    def __init__(self, graph: CSRGraph, row_cache: int = ROW_CACHE_ROWS) -> None:
        self.graph = graph
        self.n = graph.n
        degs = np.diff(graph.indptr)
        #: Common degree when the graph is regular, else None (regularity
        #: enables the fully vectorised batch next-hop path).
        self._radix = (
            int(degs[0]) if len(degs) and np.all(degs == degs[0]) else None
        )
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._row_cache_max = max(1, int(row_cache))

    # -- required ------------------------------------------------------------
    def _compute_row(self, u: int) -> np.ndarray:
        """Distances from ``u`` to every vertex (int32, no UNREACHED)."""
        raise NotImplementedError

    @property
    def diameter(self) -> int:
        raise NotImplementedError

    # -- row LRU -------------------------------------------------------------
    def row(self, u: int) -> np.ndarray:
        """Full distance row of ``u`` through the bounded LRU."""
        rows = self._rows
        r = rows.get(u)
        if r is not None:
            rows.move_to_end(u)
            return r
        r = self._compute_row(int(u))
        rows[u] = r
        if len(rows) > self._row_cache_max:
            rows.popitem(last=False)
        return r

    def cached_row_ids(self) -> list[int]:
        """Vertices currently holding a cached row (eviction test hook)."""
        return list(self._rows)

    # -- distances -----------------------------------------------------------
    def distance(self, u: int, d: int) -> int:
        """Hop distance from ``u`` to ``d``."""
        r = self._rows.get(u)
        if r is not None:
            return int(r[d])
        r = self._rows.get(d)  # undirected: d(u, d) == d(d, u)
        if r is not None:
            return int(r[u])
        return int(
            self.distance_batch(
                np.array([u], dtype=np.int64), np.array([d], dtype=np.int64)
            )[0]
        )

    def distance_batch(self, us, ds) -> np.ndarray:
        """Vectorised distances for parallel arrays ``us[i] -> ds[i]``.

        Default: group by destination and gather from ``row(d)`` (one row
        per distinct destination, LRU-cached).  Algebraic oracles override
        this with O(1)-per-pair translation.
        """
        us = np.asarray(us, dtype=np.int64)
        ds = np.asarray(ds, dtype=np.int64)
        out = np.empty(len(us), dtype=np.int64)
        for d in np.unique(ds):
            m = ds == d
            out[m] = self.row(int(d))[us[m]]
        return out

    # -- minimal next hops ---------------------------------------------------
    def min_next_hops(self, u: int, d: int) -> np.ndarray:
        """All neighbours of ``u`` on a shortest path to ``d``.

        Same contract as :meth:`RoutingTables.min_next_hops`: candidates in
        sorted neighbour-row order (CSR rows are sorted), bit-identical to
        the dense reference.
        """
        nbrs = self.graph.neighbors(u)
        du = self.distance(u, d)
        nd = self.distance_batch(
            nbrs.astype(np.int64), np.full(len(nbrs), d, dtype=np.int64)
        )
        return nbrs[nd == du - 1]

    def minimal_blocks(
        self, us: np.ndarray, ds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch minimal-candidate matrix for a regular graph.

        Returns ``(nbrs, mask)`` of shape ``(m, radix)``: per query pair the
        (sorted) neighbour row of ``us[i]`` and a boolean mask of which
        neighbours are minimal next hops toward ``ds[i]``.
        """
        if self._radix is None:
            raise ValueError("minimal_blocks requires a regular graph")
        k = self._radix
        g = self.graph
        nbrs = g.indices[g.indptr[us][:, None] + np.arange(k)]
        nd = self.distance_batch(
            nbrs.ravel().astype(np.int64), np.repeat(ds, k)
        ).reshape(-1, k)
        du = self.distance_batch(us, ds)
        mask = nd == (du - 1)[:, None]
        return nbrs, mask

    def pick_minimal(
        self, us: np.ndarray, ds: np.ndarray, r: np.ndarray
    ) -> np.ndarray:
        """Vectorised uniform minimal pick: candidate ``int(r*width)`` per pair.

        ``r`` holds one uniform [0,1) draw per pair; the selected candidate
        matches the dense flat-table pick (same sorted candidate order, same
        width, same draw) bit for bit.
        """
        us = np.asarray(us, dtype=np.int64)
        ds = np.asarray(ds, dtype=np.int64)
        if self._radix is None:
            out = np.empty(len(us), dtype=np.int64)
            for i in range(len(us)):
                c = self.min_next_hops(int(us[i]), int(ds[i]))
                if len(c) == 0:
                    raise ValueError(
                        f"no minimal next hop from {us[i]} to {ds[i]}"
                    )
                out[i] = c[int(r[i] * len(c))]
            return out
        nbrs, mask = self.minimal_blocks(us, ds)
        width = mask.sum(axis=1)
        if len(width) and int(width.min()) <= 0:
            i = int(np.argmin(width))
            raise ValueError(
                f"no minimal next hop from {us[i]} to {ds[i]}"
            )
        pick = (r * width).astype(np.int64)
        cum = np.cumsum(mask, axis=1)
        sel = mask & (cum == (pick + 1)[:, None])
        j = sel.argmax(axis=1)
        return nbrs[np.arange(len(us)), j].astype(np.int64)

    # -- sanity --------------------------------------------------------------
    def _self_check(self, samples: int = 32, seed: int = 0) -> None:
        """Construction-time smoke test of oracle consistency.

        ``d(u, u) == 0`` pins the translation to the canonical source
        exactly (only the source itself is at ball distance 0), and
        ``d(u, nbr) == 1`` pins the neighbour geometry.
        """
        rng = np.random.default_rng(seed)
        us = rng.integers(0, self.n, size=min(samples, self.n))
        us = us.astype(np.int64)
        if np.any(self.distance_batch(us, us) != 0):
            raise ValueError(f"{self.kind} oracle broken: d(u, u) != 0")
        for u in us[: max(4, samples // 8)]:
            nbrs = self.graph.neighbors(int(u)).astype(np.int64)
            nd = self.distance_batch(
                np.full(len(nbrs), u, dtype=np.int64), nbrs
            )
            if np.any(nd != 1):
                raise ValueError(
                    f"{self.kind} oracle broken: d(u, neighbor) != 1"
                )


class DenseOracle(RoutingOracle):
    """The all-pairs matrix behind the oracle interface (reference)."""

    kind = "dense"

    def __init__(
        self,
        graph: CSRGraph,
        dist: np.ndarray | None = None,
        use_cache: bool = True,
    ) -> None:
        super().__init__(graph)
        if dist is None:
            if use_cache:
                key = ("distance-matrix", graph.content_hash())
                dist = get_default_cache().memoize(
                    key, lambda: distance_matrix(graph).astype(np.int16)
                )
            else:
                dist = distance_matrix(graph).astype(np.int16)
        if np.any(dist < 0):
            raise ValueError("router graph is disconnected")
        self.dist = dist
        self._diam = int(dist.max())

    @property
    def diameter(self) -> int:
        return self._diam

    def _compute_row(self, u: int) -> np.ndarray:
        return self.dist[u].astype(np.int32)

    def distance(self, u: int, d: int) -> int:
        return int(self.dist[u, d])

    def distance_batch(self, us, ds) -> np.ndarray:
        return self.dist[np.asarray(us), np.asarray(ds)].astype(np.int64)

    def min_next_hops(self, u: int, d: int) -> np.ndarray:
        row = self.graph.neighbors(u)
        return row[self.dist[row, d] == self.dist[u, d] - 1]


# ---------------------------------------------------------------------------
# Translators: map (u, d) to (canonical form, translated destination)
# ---------------------------------------------------------------------------
class WordTranslator:
    """Group translator from right-multiplication generator permutations.

    For a Cayley graph with edges ``v -> v*s_j`` (vertex 0 = identity,
    ``perms[j][v] = v*s_j``), left translation by any group element is an
    automorphism, so ``d(u, d) == d(e, u^-1 d)``.  ``u^-1 d`` is computed
    by walking the generator word of ``d`` (from the BFS spanning tree of
    the group) starting at the vertex of ``u^-1``:

        ``u^-1 d = ((u^-1 * s_j1) * s_j2) * ... * s_jk``.

    Inverses come from walking reversed words with paired inverse
    generators — everything stays in the right-multiplication tables the
    closure already produced.  Memory: ``O(n * diameter)`` int8 words.
    """

    def __init__(self, perms: np.ndarray) -> None:
        perms = np.ascontiguousarray(np.asarray(perms, dtype=np.int32))
        if perms.ndim != 2:
            raise ValueError("perms must be (n_generators, n_vertices)")
        self.perms = perms
        self.n_gens, self.n = perms.shape
        self.canonical_sources = np.zeros(1, dtype=np.int64)
        self._build_words()
        self._build_inverses()

    def _build_words(self) -> None:
        """BFS the group from the identity; record parent generators."""
        n = self.n
        depth = np.full(n, -1, dtype=np.int32)
        parent = np.full(n, -1, dtype=np.int64)
        pgen = np.full(n, -1, dtype=np.int8)
        depth[0] = 0
        frontier = np.zeros(1, dtype=np.int64)
        d = 0
        while frontier.size:
            nxt = []
            for j in range(self.n_gens):
                w = self.perms[j][frontier]
                m = depth[w] < 0
                cand = w[m]
                csrc = frontier[m]
                if cand.size:
                    uq, first = np.unique(cand, return_index=True)
                    still = depth[uq] < 0
                    uq, first = uq[still], first[still]
                    depth[uq] = d + 1
                    parent[uq] = csrc[first]
                    pgen[uq] = j
                    nxt.append(uq)
            frontier = (
                np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int64)
            )
            d += 1
        if int(depth.min()) < 0:
            raise ValueError("router graph is disconnected")
        self.depth = depth
        maxlen = int(depth.max())
        words = np.zeros((n, max(maxlen, 1)), dtype=np.int8)
        for lvl in range(1, maxlen + 1):
            vs = np.nonzero(depth == lvl)[0]
            if lvl > 1:
                words[vs, : lvl - 1] = words[parent[vs], : lvl - 1]
            words[vs, lvl - 1] = pgen[vs]
        self.words = words

    def _build_inverses(self) -> None:
        """Pair each generator with its inverse; tabulate vertex inverses."""
        inv_pair = np.full(self.n_gens, -1, dtype=np.int64)
        for j in range(self.n_gens):
            v = int(self.perms[j][0])  # the vertex of s_j itself
            for j2 in range(self.n_gens):
                if int(self.perms[j2][v]) == 0:
                    inv_pair[j] = j2
                    break
            if inv_pair[j] < 0:
                raise ValueError("generator set is not closed under inverse")
        self.inv_pair = inv_pair
        # inv[d] = s_jk^-1 * ... * s_j1^-1 for word(d) = [j1 .. jk].
        z = np.zeros(self.n, dtype=np.int64)
        words, depth = self.words, self.depth
        for t in range(words.shape[1] - 1, -1, -1):
            active = depth > t
            z[active] = self.perms[
                inv_pair[words[active, t]], z[active]
            ]
        self.inv = z

    def _apply_words(self, starts: np.ndarray, ds: np.ndarray) -> np.ndarray:
        """Walk ``word(ds[i])`` from ``starts[i]``: returns ``starts*ds``."""
        z = np.array(starts, dtype=np.int64, copy=True)
        wl = self.depth[ds]
        w = self.words[ds]
        for t in range(int(wl.max()) if len(wl) else 0):
            active = wl > t
            z[active] = self.perms[w[active, t], z[active]]
        return z

    def translate(self, us, ds) -> tuple[np.ndarray, np.ndarray]:
        us = np.asarray(us, dtype=np.int64)
        ds = np.asarray(ds, dtype=np.int64)
        z = self._apply_words(self.inv[us], ds)
        return np.zeros(len(z), dtype=np.int64), z

    def left_translate(self, g: int, vs) -> np.ndarray:
        """The automorphism ``v -> g*v`` (walk word(v) from vertex g)."""
        vs = np.asarray(vs, dtype=np.int64)
        return self._apply_words(np.full(len(vs), g, dtype=np.int64), vs)


class PaleyTranslator:
    """Additive translation for Paley graphs: ``d(u, d) == d(0, d - u)``."""

    def __init__(self, q: int) -> None:
        from repro.algebra.gf import GF

        self.field = GF(q)
        self.canonical_sources = np.zeros(1, dtype=np.int64)

    def translate(self, us, ds) -> tuple[np.ndarray, np.ndarray]:
        us = np.asarray(us, dtype=np.int64)
        ds = np.asarray(ds, dtype=np.int64)
        z = np.asarray(self.field.sub(ds, us), dtype=np.int64)
        return np.zeros(len(z), dtype=np.int64), z

    def left_translate(self, g: int, vs) -> np.ndarray:
        """The automorphism ``v -> v + g``."""
        vs = np.asarray(vs, dtype=np.int64)
        return np.asarray(
            self.field.add(vs, np.full(len(vs), g, dtype=np.int64)),
            dtype=np.int64,
        )


class MMSTranslator:
    """Piecewise-affine automorphisms for MMS/SlimFly graphs.

    MMS vertices live in two blocks (block 0: ``(x, y) -> x*q + y``;
    block 1: ``(m, c) -> q^2 + m*q + c``).  The maps

    * block-0 ``u = (x0, y0)`` to the origin:
      ``(x, y) -> (x - x0, y - y0)``, ``(m, c) -> (m, c - y0 + m*x0)``
    * block-1 ``u = (m0, c0)`` to ``(0, 0)`` of block 1:
      ``(x, y) -> (x, y - m0*x - c0)``, ``(m, c) -> (m - m0, c - c0)``

    preserve the intra-block difference sets and the cross condition
    ``y == m*x + c``, so they are graph automorphisms for every delta
    case.  Two canonical forms: vertex 0 and vertex ``q^2``.
    """

    def __init__(self, q: int) -> None:
        from repro.algebra.gf import GF

        self.field = GF(q)
        self.q = q
        self.q2 = q * q
        self.canonical_sources = np.array([0, q * q], dtype=np.int64)

    def translate(self, us, ds) -> tuple[np.ndarray, np.ndarray]:
        us = np.asarray(us, dtype=np.int64)
        ds = np.asarray(ds, dtype=np.int64)
        f, q, q2 = self.field, self.q, self.q2
        ub = us >= q2
        db = ds >= q2
        ux = np.where(ub, us - q2, us) // q
        uy = us % q
        dx = np.where(db, ds - q2, ds) // q
        dy = ds % q
        # u in block 0 -> form 0:
        nx0 = np.where(db, dx, f.sub(dx, ux))
        ny0 = np.where(
            db, f.add(f.sub(dy, uy), f.mul(dx, ux)), f.sub(dy, uy)
        )
        # u in block 1 -> form 1:
        nx1 = np.where(db, f.sub(dx, ux), dx)
        ny1 = np.where(
            db, f.sub(dy, uy), f.sub(f.sub(dy, f.mul(ux, dx)), uy)
        )
        nx = np.where(ub, nx1, nx0).astype(np.int64)
        ny = np.where(ub, ny1, ny0).astype(np.int64)
        z = nx * q + ny + np.where(db, q2, 0)
        return ub.astype(np.int64), z


class CayleyOracle(RoutingOracle):
    """Distances/next hops via vertex-transitivity: translate, then look up.

    One BFS ball per canonical form (``O(forms * n)`` int32), plus the
    translator's own ``O(n * diameter)`` structure for word-walk families.
    Every query ``d(u, d)`` becomes ``ball[form(u)][translate(u, d)]``.
    """

    kind = "cayley"

    def __init__(
        self,
        graph: CSRGraph,
        translator,
        row_cache: int = ROW_CACHE_ROWS,
        self_check: bool = True,
    ) -> None:
        super().__init__(graph, row_cache=row_cache)
        self.translator = translator
        srcs = np.asarray(translator.canonical_sources, dtype=np.int64)
        balls = np.stack([bfs_distances(graph, int(s)) for s in srcs])
        if int(balls.max()) >= UNREACHED:
            raise ValueError("router graph is disconnected")
        self._balls = balls.astype(np.int32)
        # Vertex-transitive: every vertex is automorphic to one of the
        # canonical sources, so the max over the form balls is the true
        # eccentricity maximum.
        self._diam = int(self._balls.max())
        if self_check:
            self._self_check()

    @property
    def diameter(self) -> int:
        return self._diam

    def distance_batch(self, us, ds) -> np.ndarray:
        us = np.asarray(us, dtype=np.int64)
        ds = np.asarray(ds, dtype=np.int64)
        form, z = self.translator.translate(us, ds)
        return self._balls[form, z].astype(np.int64)

    def _compute_row(self, u: int) -> np.ndarray:
        all_d = np.arange(self.n, dtype=np.int64)
        return self.distance_batch(
            np.full(self.n, u, dtype=np.int64), all_d
        ).astype(np.int32)


class LandmarkOracle(RoutingOracle):
    """Landmark BFS trees + exact-on-miss rows for unstructured graphs.

    ``k`` landmarks are chosen greedily farthest-first (deterministic:
    landmark 0 is vertex 0, ties break to the lowest id).  Their BFS rows
    give the classic admissible estimate

        ``d(u, d) <= min_L d(u, L) + d(L, d)``  (:meth:`upper_bound`)

    while *exact* answers — what routing needs — come from full BFS rows
    computed per queried vertex and held in the bounded LRU
    (:meth:`RoutingOracle.row`).  Memory: ``O(k*n + lru*n)``.
    """

    kind = "landmark"

    def __init__(
        self,
        graph: CSRGraph,
        landmarks: int = LANDMARKS_DEFAULT,
        row_cache: int = ROW_CACHE_ROWS,
    ) -> None:
        super().__init__(graph, row_cache=row_cache)
        k = max(1, min(int(landmarks), graph.n))
        first = bfs_distances(graph, 0)
        if int(first.max()) >= UNREACHED:
            raise ValueError("router graph is disconnected")
        lids = [0]
        rows = [first.astype(np.int32)]
        mind = rows[0].copy()
        while len(lids) < k:
            nxt = int(np.argmax(mind))
            if int(mind[nxt]) == 0:
                break  # every vertex is already a landmark
            lids.append(nxt)
            r = bfs_distances(graph, nxt).astype(np.int32)
            rows.append(r)
            np.minimum(mind, r, out=mind)
        self.landmarks = np.asarray(lids, dtype=np.int64)
        self._lrows = np.stack(rows)
        self._diam: int | None = None

    @property
    def diameter(self) -> int:
        if self._diam is None:
            from repro.graphs.bfs import distance_profile

            self._diam = int(distance_profile(self.graph)[1])
        return self._diam

    def _compute_row(self, u: int) -> np.ndarray:
        return bfs_distances(self.graph, u).astype(np.int32)

    def upper_bound(self, us, ds) -> np.ndarray:
        """Admissible (triangle-inequality) distance upper bounds."""
        us = np.asarray(us, dtype=np.int64)
        ds = np.asarray(ds, dtype=np.int64)
        return (
            (self._lrows[:, us] + self._lrows[:, ds]).min(axis=0)
        ).astype(np.int64)


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------
#: Families whose group structure the Cayley translators cover.
CAYLEY_FAMILIES = ("LPS", "Paley", "MMS", "SlimFly")


def translator_for(topo):
    """Build the Cayley translator for ``topo``, or None if unsupported."""
    family = topo.family
    if family == "LPS":
        perms = getattr(topo, "gen_perms", None)
        if perms is None:
            from repro.topology.lps import lps_generator_permutations

            perms = lps_generator_permutations(
                topo.params["p"], topo.params["q"]
            )
        return WordTranslator(perms)
    if family == "Paley":
        return PaleyTranslator(topo.params["q"])
    if family in ("MMS", "SlimFly"):
        return MMSTranslator(topo.params["q"])
    return None


def oracle_for(
    topo,
    kind: str = "auto",
    dense_threshold: int = DENSE_ORACLE_MAX,
    landmarks: int = LANDMARKS_DEFAULT,
    use_cache: bool = True,
) -> RoutingOracle:
    """Pick and build the routing oracle for a topology.

    ``kind``: ``"auto"`` (dense below ``dense_threshold`` routers, then
    Cayley where the family has a translator, else landmark), or one of
    ``"dense"`` / ``"cayley"`` / ``"landmark"`` to force a backend.
    """
    g = topo.graph
    if kind == "auto":
        if g.n <= dense_threshold:
            kind = "dense"
        elif topo.family in CAYLEY_FAMILIES:
            kind = "cayley"
        else:
            kind = "landmark"
    if kind == "dense":
        return DenseOracle(g, use_cache=use_cache)
    if kind == "cayley":
        tr = translator_for(topo)
        if tr is None:
            raise ValueError(
                f"no Cayley translator for family {topo.family!r} "
                f"(supported: {CAYLEY_FAMILIES})"
            )
        return CayleyOracle(g, tr)
    if kind == "landmark":
        return LandmarkOracle(g, landmarks=landmarks)
    raise ValueError(
        f"unknown oracle kind {kind!r}; options auto/dense/cayley/landmark"
    )
