"""Distance tables and minimal next-hop queries.

A single ``n x n`` int16 hop-distance matrix (batched-BFS, computed once per
topology) answers every routing question the simulator asks:

* minimal next hops of ``(router, destination)``: the neighbours ``v`` with
  ``dist[v, d] == dist[u, d] - 1`` (all of them — path diversity is the
  point of the paper's Section VI analysis);
* path lengths for UGAL's minimal-vs-Valiant comparison.

Queries are numpy slices over the CSR row — no per-packet Python search.

The ``n x n`` matrix is the single most expensive intermediate the
simulations share, so it is transparently memoised in the content-addressed
disk cache (:mod:`repro.utils.diskcache`) keyed by the graph's CSR hash:
every simulator run, benchmark, and CLI invocation over the same topology
reuses one BFS.  Set ``REPRO_CACHE=0`` to disable.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bfs import distance_matrix
from repro.graphs.csr import CSRGraph
from repro.utils.diskcache import get_default_cache


class RoutingTables:
    """Hop-distance oracle for one router graph."""

    def __init__(self, graph: CSRGraph, use_cache: bool = True) -> None:
        self.graph = graph
        if use_cache:
            key = ("distance-matrix", graph.content_hash())
            self.dist = get_default_cache().memoize(
                key, lambda: distance_matrix(graph).astype(np.int16)
            )
        else:
            self.dist = distance_matrix(graph).astype(np.int16)
        if np.any(self.dist < 0):
            raise ValueError("router graph is disconnected")
        self.diameter = int(self.dist.max())

    def distance(self, u: int, d: int) -> int:
        """Hop distance from router u to router d."""
        return int(self.dist[u, d])

    def min_next_hops(self, u: int, d: int) -> np.ndarray:
        """All neighbours of ``u`` on a shortest path to ``d``."""
        row = self.graph.neighbors(u)
        return row[self.dist[row, d] == self.dist[u, d] - 1]

    def port_of(self, u: int, v: int) -> int:
        """Local port index of the link u -> v (raises if absent)."""
        row = self.graph.neighbors(u)
        i = int(np.searchsorted(row, v))
        if i >= len(row) or row[i] != v:
            raise KeyError(f"no link {u} -> {v}")
        return i

    def directed_edge_id(self, u: int, v: int) -> int:
        """Global id of the directed edge u -> v (CSR position)."""
        return int(self.graph.indptr[u]) + self.port_of(u, v)
