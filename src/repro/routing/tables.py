"""Distance tables, minimal next-hop queries, and the simulator fast path.

A single ``n x n`` int16 hop-distance matrix (batched-BFS, computed once per
topology) answers every routing question the simulator asks:

* minimal next hops of ``(router, destination)``: the neighbours ``v`` with
  ``dist[v, d] == dist[u, d] - 1`` (all of them — path diversity is the
  point of the paper's Section VI analysis);
* path lengths for UGAL's minimal-vs-Valiant comparison.

Two query paths coexist:

* :meth:`min_next_hops` / :meth:`port_of` — the *reference* implementations,
  numpy slices over the CSR row.  Simple, obviously correct, and what the
  property tests compare the fast path against.
* the **flat next-hop table** — a CSR-of-CSR layout built once per topology
  by :meth:`build_fast_path`: one flat candidate array ``nh_indices`` where
  the candidates of pair ``(u, d)`` live at
  ``nh_indptr[u * n + d] : nh_indptr[u * n + d + 1]``, in neighbour-row
  order.  Together with :attr:`edge_index` (a dict mapping
  ``u * n + v -> directed edge id``) this turns every per-hop query into
  one or two O(1) scalar reads — no per-packet numpy slicing, boolean
  masking, or ``searchsorted``.  On small/medium topologies the flat arrays
  are converted to plain Python lists, whose scalar indexing is ~3x faster
  than numpy's; past :data:`LIST_CELLS_MAX` cells they stay numpy arrays to
  bound memory.

Everything O(n^2) is **lazy** behind a pluggable oracle seam
(:mod:`repro.routing.oracles`): construction costs one connectivity BFS and
the O(E) port structures, so callers that only need
:meth:`port_of`/:meth:`directed_edge_id` never pay for (or allocate) the
matrix.  In the default *dense* mode the matrix materialises transparently
on first use of :attr:`dist`/:meth:`next_hop_table` — bit-identical
behaviour to the eager implementation.  Passing a non-dense oracle
(``CayleyOracle``/``LandmarkOracle`` via
:func:`repro.routing.oracles.oracle_for`) makes the tables answer
``distance``/``min_next_hops``/``diameter`` on demand in ``O(k*n)`` memory;
touching :attr:`dist` or the flat table then raises rather than silently
allocating ``O(n^2)`` — that is the contract the 1e5-router scale cells
rely on (see docs/scaling.md).

The ``n x n`` matrix and the next-hop table are the most expensive
intermediates the simulations share, so both are transparently memoised in
the content-addressed disk cache (:mod:`repro.utils.diskcache`) keyed by the
graph's CSR hash: every simulator run, benchmark, and CLI invocation over
the same topology reuses one BFS and one table build.  Set ``REPRO_CACHE=0``
to disable.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bfs import UNREACHED, bfs_distances, distance_matrix
from repro.graphs.csr import CSRGraph
from repro.utils.diskcache import get_default_cache

#: Above this many ``(router, destination)`` cells the flat next-hop arrays
#: stay numpy (memory-bounded); at or below it they become Python lists,
#: trading memory for the fastest possible scalar indexing.  2**21 cells
#: covers every topology of the small/paper size classes up to ~1.4K
#: routers.
LIST_CELLS_MAX = 1 << 21


class RoutingTables:
    """Hop-distance oracle (+ flat fast-path tables) for one router graph."""

    def __init__(
        self, graph: CSRGraph, use_cache: bool = True, oracle=None
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self._use_cache = use_cache
        # One O(E) single-source BFS keeps the historical contract that a
        # disconnected graph is rejected at construction time — without
        # materialising anything O(n^2).
        if self.n and int(bfs_distances(graph, 0).max()) >= UNREACHED:
            raise ValueError("router graph is disconnected")
        #: The pluggable distance oracle.  ``None`` means dense mode with
        #: on-demand materialisation; a ``DenseOracle`` supplies its matrix
        #: eagerly; any other oracle makes the tables fully lazy.
        self._oracle = oracle
        self._dist: np.ndarray | None = None
        self._diameter: int | None = None
        if oracle is not None and oracle.kind == "dense":
            self._dist = oracle.dist
            self._diameter = oracle.diameter
        self._edge_index: dict[int, int] | None = None
        self._indptr_list: list[int] = graph.indptr.tolist()

        # Flat next-hop table; built lazily (only simulations need it).
        self._nh_indptr = None
        self._nh_indices = None
        #: Row-major flat view of ``dist`` for O(1) scalar reads
        #: (``dist_flat[u * n + d]``); a Python list on small topologies,
        #: a raveled int16 view otherwise.  Populated by
        #: :meth:`build_fast_path`.
        self.dist_flat = None

    # -- oracle seam ---------------------------------------------------------
    @property
    def is_lazy(self) -> bool:
        """True when a non-dense oracle answers queries (no n x n allowed)."""
        return self._oracle is not None and self._oracle.kind != "dense"

    @property
    def oracle(self):
        """The distance oracle (a ``DenseOracle`` is built on demand)."""
        if self._oracle is None:
            from repro.routing.oracles import DenseOracle

            self._oracle = DenseOracle(self.graph, dist=self.dist)
        return self._oracle

    def _lazy_error(self, what: str) -> RuntimeError:
        return RuntimeError(
            f"tables are oracle-backed ({self._oracle.kind}); {what} would "
            "materialise O(n^2) state — use the oracle query API instead "
            "(distance/min_next_hops/diameter)"
        )

    @property
    def dist(self) -> np.ndarray:
        """The dense matrix (materialised on first use in dense mode)."""
        if self._dist is None:
            if self.is_lazy:
                raise self._lazy_error("the dense distance matrix")
            if self._use_cache:
                key = ("distance-matrix", self.graph.content_hash())
                self._dist = get_default_cache().memoize(
                    key, lambda: distance_matrix(self.graph).astype(np.int16)
                )
            else:
                self._dist = distance_matrix(self.graph).astype(np.int16)
            if np.any(self._dist < 0):
                raise ValueError("router graph is disconnected")
        return self._dist

    @property
    def diameter(self) -> int:
        """Graph diameter (from the oracle in lazy mode)."""
        if self._diameter is None:
            if self.is_lazy:
                self._diameter = int(self._oracle.diameter)
            else:
                self._diameter = int(self.dist.max())
        return self._diameter

    @property
    def edge_index(self) -> dict[int, int]:
        """O(1) directed-edge lookup: ``edge_index[u * n + v]`` is the CSR
        position of the directed edge u -> v.  The simulator's event loop
        reads this dict directly.  Built on first use (O(E))."""
        if self._edge_index is None:
            g = self.graph
            heads = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(g.indptr)
            )
            keys = (heads * self.n + g.indices).tolist()
            self._edge_index = dict(zip(keys, range(len(keys))))
        return self._edge_index

    # -- reference queries ---------------------------------------------------
    def distance(self, u: int, d: int) -> int:
        """Hop distance from router u to router d."""
        if self.is_lazy:
            return self._oracle.distance(u, d)
        return int(self.dist[u, d])

    def min_next_hops(self, u: int, d: int) -> np.ndarray:
        """All neighbours of ``u`` on a shortest path to ``d``.

        Reference implementation (numpy slice over the CSR row); the
        simulator hot path reads the flat table from
        :meth:`next_hop_table` instead.  In lazy mode the oracle answers
        bit-identically (same sorted candidate order).
        """
        if self.is_lazy:
            return self._oracle.min_next_hops(u, d)
        row = self.graph.neighbors(u)
        return row[self.dist[row, d] == self.dist[u, d] - 1]

    def port_of(self, u: int, v: int) -> int:
        """Local port index of the link u -> v (raises if absent)."""
        return self.directed_edge_id(u, v) - self._indptr_list[u]

    def directed_edge_id(self, u: int, v: int) -> int:
        """Global id of the directed edge u -> v (CSR position)."""
        eid = self.edge_index.get(u * self.n + v)
        if eid is None:
            raise KeyError(f"no link {u} -> {v}")
        return eid

    # -- flat fast path ------------------------------------------------------
    def _build_next_hop_table(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-of-CSR minimal next hops for every (router, destination).

        Returns ``(indptr, indices)``: the candidates of pair ``(u, d)``
        are ``indices[indptr[u*n + d] : indptr[u*n + d + 1]]``, listed in
        the same (sorted neighbour-row) order as :meth:`min_next_hops`.
        """
        g = self.graph
        n = self.n
        dist = self.dist
        counts = np.empty(n * n, dtype=np.int64)
        chunks = []
        for u in range(n):
            row = g.neighbors(u)
            # mask[d, j]: neighbour row[j] is a minimal next hop toward d.
            mask = (dist[row] == dist[u] - np.int16(1)).T
            d_idx, j_idx = np.nonzero(mask)
            chunks.append(row[j_idx])
            counts[u * n : (u + 1) * n] = mask.sum(axis=1)
        indptr = np.empty(n * n + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        indices = (
            np.concatenate(chunks).astype(np.int32)
            if chunks
            else np.empty(0, dtype=np.int32)
        )
        return indptr, indices

    def build_fast_path(self) -> None:
        """Build (or load from the disk cache) the flat next-hop table."""
        if self._nh_indptr is not None:
            return
        if self.is_lazy:
            raise self._lazy_error("the flat next-hop table")
        if self._use_cache:
            key = ("next-hop-table", self.graph.content_hash())
            indptr, indices = get_default_cache().memoize(
                key, self._build_next_hop_table
            )
        else:
            indptr, indices = self._build_next_hop_table()
        if self.n * self.n <= LIST_CELLS_MAX:
            self._nh_indptr = indptr.tolist()
            self._nh_indices = indices.tolist()
            self.dist_flat = self.dist.ravel().tolist()
        else:
            self._nh_indptr = indptr
            self._nh_indices = indices
            self.dist_flat = self.dist.ravel()

    def next_hop_table(self):
        """The flat ``(nh_indptr, nh_indices)`` pair (built on first use).

        Both are Python lists on small/medium topologies and numpy arrays
        past :data:`LIST_CELLS_MAX` cells; either way
        ``nh_indices[nh_indptr[u*n + d] : nh_indptr[u*n + d + 1]]`` are the
        minimal next hops of ``(u, d)``.
        """
        self.build_fast_path()
        return self._nh_indptr, self._nh_indices

    def table_next_hops(self, u: int, d: int) -> np.ndarray:
        """Candidates of ``(u, d)`` read from the flat table (test hook)."""
        self.build_fast_path()
        k = u * self.n + d
        lo = self._nh_indptr[k]
        hi = self._nh_indptr[k + 1]
        return np.asarray(self._nh_indices[lo:hi], dtype=np.int32)

    def fault_mask(self) -> "FaultMask":
        """A fresh incremental fault overlay on this table (pristine)."""
        return FaultMask(self)


class FaultMask:
    """Reversible link/router fault overlay on a :class:`RoutingTables`.

    Failing a link *masks* its two directed edges out of the flat next-hop
    table at query time instead of recomputing BFS: the underlying arrays
    are never touched, so recovery is exact (bit-for-bit — a property test
    pins ``live_min_candidates`` back to :meth:`RoutingTables.table_next_hops`
    after full restoration) and each fault/recovery is O(1).

    Distances deliberately stay **stale**: like a real network running on
    tables computed before the fault, minimal candidates that survive are
    still truly minimal for mild damage, and when every minimal candidate
    of a ``(router, destination)`` pair is severed,
    :meth:`fallback_candidates` offers the live neighbours greedily closest
    to the destination under the stale metric (the simulator bounds the
    resulting non-minimal walks with a hop TTL).

    On oracle-backed (lazy) tables the overlay composes with lazily
    materialised rows instead of the flat table: candidates come from
    ``oracle.min_next_hops`` and fallback scans read the destination's
    distance row through the oracle's bounded LRU.  The oracle always
    reports *pristine* distances, which is exactly the stale-metric
    semantics above — the equivalence suite pins the two paths together.

    Failure counts per directed edge (not booleans) make independently
    failed links compose with router failures: failing a router increments
    every incident directed edge, so restoring the router cannot resurrect
    a link that was also failed on its own.
    """

    def __init__(self, tables: RoutingTables) -> None:
        self.tables = tables
        g = tables.graph
        self._n = tables.n
        if tables.is_lazy:
            self._oracle = tables.oracle
            self._nh_indptr = None
            self._nh_indices = None
            self._dist_flat = None
        else:
            tables.build_fast_path()
            self._oracle = None
            self._nh_indptr = tables._nh_indptr
            self._nh_indices = tables._nh_indices
            self._dist_flat = tables.dist_flat
        self._edge_index = tables.edge_index
        self._indptr = tables._indptr_list
        self._neighbors: list[list[int]] = [
            g.neighbors(u).tolist() for u in range(self._n)
        ]
        #: failure multiplicity per directed edge id; alive iff 0.
        self._dead_edge: list[int] = [0] * len(g.indices)
        self._dead_router: list[bool] = [False] * self._n
        self._n_dead = 0  # total failure multiplicity + dead routers

    # -- state ---------------------------------------------------------------
    @property
    def pristine(self) -> bool:
        """True iff no link or router is currently failed."""
        return self._n_dead == 0

    def router_alive(self, r: int) -> bool:
        return not self._dead_router[r]

    def edge_alive(self, u: int, v: int) -> bool:
        return not self._dead_edge[self._edge_index[u * self._n + v]]

    def _directed_ids(self, u: int, v: int) -> tuple[int, int]:
        n = self._n
        ei = self._edge_index
        try:
            return ei[u * n + v], ei[v * n + u]
        except KeyError:
            raise KeyError(f"no link {u} <-> {v}") from None

    # -- mutation ------------------------------------------------------------
    def fail_link(self, u: int, v: int) -> list[int]:
        """Fail the undirected link u-v; returns the newly dead directed ids."""
        newly = []
        for eid in self._directed_ids(u, v):
            self._dead_edge[eid] += 1
            self._n_dead += 1
            if self._dead_edge[eid] == 1:
                newly.append(eid)
        return newly

    def restore_link(self, u: int, v: int) -> list[int]:
        """Undo one failure of link u-v; returns the newly live directed ids."""
        newly = []
        for eid in self._directed_ids(u, v):
            if self._dead_edge[eid] == 0:
                raise ValueError(f"link {u}-{v} is not failed")
            self._dead_edge[eid] -= 1
            self._n_dead -= 1
            if self._dead_edge[eid] == 0:
                newly.append(eid)
        return newly

    def fail_router(self, r: int) -> list[int]:
        """Fail router ``r`` and every incident link (both directions).

        Returns the newly dead directed edge ids (for queue flushing).
        """
        if self._dead_router[r]:
            raise ValueError(f"router {r} is already failed")
        self._dead_router[r] = True
        self._n_dead += 1
        newly = []
        for v in self._neighbors[r]:
            newly.extend(self.fail_link(r, v))
        return newly

    def restore_router(self, r: int) -> list[int]:
        """Undo a router failure; returns the newly live directed edge ids."""
        if not self._dead_router[r]:
            raise ValueError(f"router {r} is not failed")
        self._dead_router[r] = False
        self._n_dead -= 1
        newly = []
        for v in self._neighbors[r]:
            newly.extend(self.restore_link(r, v))
        return newly

    # -- queries -------------------------------------------------------------
    def live_min_candidates(self, u: int, d: int) -> list[int]:
        """The minimal next hops of ``(u, d)`` whose outgoing link is live.

        Router death implies incident-edge death (see :meth:`fail_router`),
        so the edge check subsumes the router check.  Empty when the
        minimal set is fully severed.
        """
        dead = self._dead_edge
        ei = self._edge_index
        base = u * self._n
        if self._nh_indptr is None:
            cands = self._oracle.min_next_hops(u, d)
            return [
                int(v) for v in cands if not dead[ei[base + int(v)]]
            ]
        indptr = self._nh_indptr
        k = base + d
        lo = indptr[k]
        hi = indptr[k + 1]
        nh = self._nh_indices
        return [
            int(v) for v in nh[lo:hi] if not dead[ei[base + int(v)]]
        ]

    def fallback_candidates(self, u: int, d: int) -> list[int]:
        """Live neighbours of ``u`` closest to ``d`` under the stale metric.

        The non-minimal escape hatch when :meth:`live_min_candidates` comes
        back empty.  Empty iff ``u`` has no live outgoing link at all.
        """
        dead = self._dead_edge
        if self._dist_flat is None:
            # Lazy mode: the destination's distance row (undirected, so
            # row(d)[v] == d(v, d)) through the oracle's bounded LRU —
            # pristine distances, i.e. exactly the stale metric.
            dist_row = self._oracle.row(d)
            eid = self._indptr[u]
            best = None
            out: list[int] = []
            for v in self._neighbors[u]:
                if not dead[eid]:
                    d_v = int(dist_row[v])
                    if best is None or d_v < best:
                        best = d_v
                        out = [v]
                    elif d_v == best:
                        out.append(v)
                eid += 1
            return out
        dist = self._dist_flat
        n = self._n
        eid = self._indptr[u]
        best = None
        out = []
        for v in self._neighbors[u]:
            if not dead[eid]:
                d_v = int(dist[v * n + d])
                if best is None or d_v < best:
                    best = d_v
                    out = [v]
                elif d_v == best:
                    out.append(v)
            eid += 1
        return out

    def live_next_hops(self, u: int, d: int) -> np.ndarray:
        """Array view of :meth:`live_min_candidates` (test hook)."""
        return np.asarray(self.live_min_candidates(u, d), dtype=np.int32)
