"""Virtual channels and deadlock avoidance (Section V-A).

The paper avoids routing deadlock by *incrementing the virtual channel on
every network hop*: a packet on hop ``i`` occupies VC ``i``, so the channel
dependency graph (CDG) is layered by VC index and trivially acyclic.
Minimal routing therefore needs ``diameter + 1`` VCs and Valiant
``2 * diameter + 1`` — the figures the paper quotes and configures in
SST/macro.

:func:`build_channel_dependency_graph` constructs the CDG for an explicit
path set under a VC policy so tests can *prove* the acyclicity claim (and
show that single-VC minimal routing on a cycle-containing topology is NOT
deadlock-free).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def required_virtual_channels(scheme: str, diameter: int) -> int:
    """VC count used by the paper per routing scheme."""
    if scheme in ("minimal", "ugal-min"):
        return diameter + 1
    if scheme in ("valiant", "ugal"):
        return 2 * diameter + 1
    raise ValueError(f"unknown scheme {scheme!r}")


def build_channel_dependency_graph(
    graph: CSRGraph,
    paths: list[list[int]],
    vc_increment: bool = True,
    n_vcs: int | None = None,
) -> tuple[dict[tuple[int, int, int], int], np.ndarray]:
    """CDG over (u, v, vc) channel nodes for a set of router paths.

    A packet traversing ``... -> u -> v -> w ...`` on VCs ``c, c'`` adds the
    dependency (u, v, c) -> (v, w, c').  With ``vc_increment`` the VC is the
    hop index (capped at ``n_vcs - 1`` if given); without it everything uses
    VC 0, modelling a single-buffer router.

    Returns (channel->index map, edge list of the CDG).
    """
    chan_index: dict[tuple[int, int, int], int] = {}
    deps = set()

    def chan(u: int, v: int, c: int) -> int:
        key = (u, v, c)
        if key not in chan_index:
            chan_index[key] = len(chan_index)
        return chan_index[key]

    for path in paths:
        for hop in range(len(path) - 2):
            c1 = hop if vc_increment else 0
            c2 = hop + 1 if vc_increment else 0
            if n_vcs is not None:
                c1 = min(c1, n_vcs - 1)
                c2 = min(c2, n_vcs - 1)
            a = chan(path[hop], path[hop + 1], c1)
            b = chan(path[hop + 1], path[hop + 2], c2)
            deps.add((a, b))
    edges = np.array(sorted(deps), dtype=np.int64).reshape(-1, 2)
    return chan_index, edges


def is_acyclic(n_nodes: int, edges: np.ndarray) -> bool:
    """Kahn's algorithm over the dependency edge list."""
    indeg = np.zeros(n_nodes, dtype=np.int64)
    adj: dict[int, list[int]] = {}
    for a, b in edges:
        indeg[b] += 1
        adj.setdefault(int(a), []).append(int(b))
    stack = [i for i in range(n_nodes) if indeg[i] == 0]
    seen = 0
    while stack:
        v = stack.pop()
        seen += 1
        for w in adj.get(v, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                stack.append(w)
    return seen == n_nodes
