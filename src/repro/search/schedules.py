"""Acceptance schedules for the edge-swap local search.

A schedule decides whether a proposed fitness change ``delta`` (positive =
improvement) is accepted at step ``step``.  Two schedules cover the paper
reproduction's needs:

* :class:`HillClimb` — accept strictly improving moves only.  Monotone,
  cheap, and sufficient when the seed is far from the Ramanujan bound.
* :class:`Annealing` — classic simulated annealing with a geometric
  temperature schedule ``T(step) = t0 * alpha**step``; worsening moves are
  accepted with probability ``exp(delta / T)``.  This is the schedule of
  Donetti et al.'s entangled-network search (PAPERS.md) and escapes the
  shallow local optima hill-climbing stalls in.

Schedules are frozen dataclasses so a search configuration is hashable and
printable, and all randomness comes from the caller's generator — the
schedule itself holds no state, which keeps trajectories bit-deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError


@dataclass(frozen=True)
class HillClimb:
    """Accept strictly improving moves only (zero-temperature annealing)."""

    name: str = "hill"

    def accept(self, delta: float, step: int, rng: np.random.Generator) -> bool:
        return delta > 0.0


@dataclass(frozen=True)
class Annealing:
    """Geometric-temperature simulated annealing.

    ``t0`` is the starting temperature in fitness units (spectral-gap
    deltas live in roughly ``[-0.5, 0.5]`` for the sizes this repo
    searches, so the default accepts mild regressions early and almost
    none after a few hundred steps); ``alpha`` is the per-step decay.
    """

    t0: float = 0.05
    alpha: float = 0.995
    name: str = "anneal"

    def __post_init__(self) -> None:
        if self.t0 <= 0.0 or not (0.0 < self.alpha <= 1.0):
            raise ParameterError(
                f"annealing needs t0 > 0 and 0 < alpha <= 1, got "
                f"t0={self.t0}, alpha={self.alpha}"
            )

    def temperature(self, step: int) -> float:
        return self.t0 * self.alpha**step

    def accept(self, delta: float, step: int, rng: np.random.Generator) -> bool:
        if delta > 0.0:
            return True
        t = self.temperature(step)
        # exp underflows harmlessly to 0 for very negative delta / cold t.
        return bool(rng.random() < math.exp(max(delta / t, -700.0)))


def make_schedule(spec: str | HillClimb | Annealing, **overrides) -> HillClimb | Annealing:
    """Resolve a schedule spec: ``"hill"``, ``"anneal"``, or an instance.

    Keyword overrides (``t0=...``, ``alpha=...``) apply to ``"anneal"``.
    """
    if isinstance(spec, (HillClimb, Annealing)):
        if overrides:
            raise ParameterError("overrides only apply to string schedule specs")
        return spec
    if spec == "hill":
        if overrides:
            raise ParameterError("hill-climbing takes no parameters")
        return HillClimb()
    if spec == "anneal":
        return Annealing(**overrides)
    raise ParameterError(f"unknown schedule {spec!r}; options: hill, anneal")
