"""2-lifts with signing search, after Marcus–Spielman–Srivastava.

A 2-lift of a graph ``G = (V, E)`` doubles every vertex (``v`` becomes
``v`` and ``v' = v + n``) and replaces each edge ``(u, v)`` by a pair of
edges chosen by a sign ``s(u,v) in {+1, -1}``:

* ``+1`` (parallel):  ``(u, v)`` and ``(u', v')``
* ``-1`` (crossed):   ``(u, v')`` and ``(u', v)``

The lift is 2n-vertex and degree-preserving, and its adjacency spectrum
is exactly ``spec(A) ∪ spec(A_s)`` where ``A_s`` is the *signed*
adjacency matrix (``A`` with each edge entry multiplied by its sign) —
the "old" eigenvalues survive on symmetric vectors, the "new" ones live
on antisymmetric vectors.  MSS's interlacing-families theorem (PAPERS.md)
proves some signing keeps every new eigenvalue within the Ramanujan bound
``2 sqrt(k-1)``; this module *searches* for such signings by greedy
single-edge sign flips from randomized restarts, scoring the extremal
signed-adjacency eigenvalue.

The all-(+1) signing is the trivial lift — two disjoint copies of ``G``
(``A_s = A``, so the spectrum simply doubles); the property suite pins
this identity along with the spectrum-union decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.spectral.eigen import _DENSE_THRESHOLD, _EIG_TOL
from repro.utils.rng import as_rng


def _check_signs(graph: CSRGraph, signs: np.ndarray) -> np.ndarray:
    signs = np.asarray(signs)
    if signs.shape != (graph.num_edges,):
        raise ParameterError(
            f"need one sign per undirected edge: expected shape "
            f"({graph.num_edges},), got {signs.shape}"
        )
    if not np.all(np.abs(signs) == 1):
        raise ParameterError("signs must be +1 or -1")
    return signs.astype(np.int8)


def two_lift(graph: CSRGraph, signs: np.ndarray) -> CSRGraph:
    """The 2-lift of ``graph`` under ``signs`` (aligned with ``edge_array()``)."""
    signs = _check_signs(graph, signs)
    edges = graph.edge_array().astype(np.int64)
    n = graph.n
    u, v = edges[:, 0], edges[:, 1]
    plus = signs > 0
    top = np.stack([u, np.where(plus, v, v + n)], axis=1)
    bottom = np.stack([u + n, np.where(plus, v + n, v)], axis=1)
    return CSRGraph.from_edges(2 * n, np.concatenate([top, bottom]))


def signed_adjacency(graph: CSRGraph, signs: np.ndarray) -> sp.csr_matrix:
    """The signed adjacency matrix ``A_s`` as a sparse CSR matrix."""
    signs = _check_signs(graph, signs)
    edges = graph.edge_array().astype(np.int64)
    u, v = edges[:, 0], edges[:, 1]
    data = np.concatenate([signs, signs]).astype(np.float64)
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    return sp.coo_matrix((data, (rows, cols)), shape=(graph.n, graph.n)).tocsr()


def signed_adjacency_extreme(graph: CSRGraph, signs: np.ndarray) -> float:
    """``max |eigenvalue|`` of the signed adjacency ``A_s``.

    This is exactly the largest magnitude among the "new" eigenvalues the
    2-lift introduces, i.e. the quantity a good signing minimises.  Dense
    below the spectral module's size threshold, Lanczos on both spectrum
    ends above it.
    """
    a_s = signed_adjacency(graph, signs)
    if graph.n <= _DENSE_THRESHOLD:
        vals = np.linalg.eigvalsh(a_s.toarray())
        return float(max(abs(vals[0]), abs(vals[-1])))
    v0 = as_rng(0).standard_normal(graph.n)
    hi = spla.eigsh(a_s, k=1, which="LA", return_eigenvectors=False,
                    tol=_EIG_TOL, v0=v0)
    lo = spla.eigsh(a_s, k=1, which="SA", return_eigenvectors=False,
                    tol=_EIG_TOL, v0=v0)
    return float(max(abs(float(lo[0])), abs(float(hi[0]))))


@dataclass
class LiftResult:
    """Best signing found by :func:`search_signing` and its 2-lift."""

    graph: CSRGraph  # the lifted graph (2n vertices)
    signs: np.ndarray  # best signing, aligned with the base edge_array()
    score: float  # max |eigenvalue| of the signed adjacency
    base_n: int
    restarts: int
    passes: int
    seed: int
    restart_scores: np.ndarray  # best score reached by each restart


def search_signing(
    graph: CSRGraph,
    seed: int = 0,
    restarts: int = 3,
    passes: int = 2,
) -> LiftResult:
    """Greedy single-flip signing search with randomized restarts.

    Each restart draws a uniform random signing and then makes up to
    ``passes`` sweeps over the edges in a seeded random order, keeping any
    flip that strictly lowers the signed spectral radius; a sweep with no
    improving flip ends the restart early.  Deterministic for fixed
    ``(seed, restarts, passes)``.
    """
    if restarts < 1 or passes < 1:
        raise ParameterError("search_signing needs restarts >= 1 and passes >= 1")
    m = graph.num_edges
    if m == 0:
        raise ParameterError("cannot sign an empty edge set")
    rng = as_rng(seed)

    best_signs: np.ndarray | None = None
    best_score = np.inf
    restart_scores = np.empty(restarts, dtype=np.float64)

    for r in range(restarts):
        signs = np.where(rng.random(m) < 0.5, -1, 1).astype(np.int8)
        score = signed_adjacency_extreme(graph, signs)
        for _ in range(passes):
            improved = False
            for e in rng.permutation(m):
                signs[e] = -signs[e]
                trial = signed_adjacency_extreme(graph, signs)
                if trial < score:
                    score = trial
                    improved = True
                else:
                    signs[e] = -signs[e]
            if not improved:
                break
        restart_scores[r] = score
        if score < best_score:
            best_score = score
            best_signs = signs.copy()

    assert best_signs is not None
    return LiftResult(
        graph=two_lift(graph, best_signs),
        signs=best_signs,
        score=float(best_score),
        base_n=graph.n,
        restarts=restarts,
        passes=passes,
        seed=int(seed),
        restart_scores=restart_scores,
    )
