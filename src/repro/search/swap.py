"""Degree-preserving double-edge-swap local search over regular graphs.

The move (Donetti et al., PAPERS.md): pick two edges ``(u,v)`` and
``(x,y)`` with four distinct endpoints and rewire them to ``(u,x)`` and
``(v,y)``.  Every vertex keeps its degree, so the search walks the space
of k-regular simple graphs on n vertices — exactly the design space
Jellyfish samples uniformly, but steered by a spectral objective instead
of sampled blindly.

Connectivity is maintained *incrementally*: after the swap, the rewired
graph ``G'`` is connected iff ``v`` is reachable from ``u`` and ``y`` is
reachable from ``x`` in ``G'``.  (Any path of ``G`` that used a removed
edge can be rerouted: a traversal of ``(u,v)`` via a ``u ~> v`` path in
``G'``, a traversal of ``(x,y)`` via ``x ~> y``; every other edge is
untouched, so the two targeted reachability checks imply all of ``G``'s
connectivity survives.  Conversely a disconnected ``G'`` must separate one
of those pairs, since joining both endpoints of both removed edges
reconnects everything.)  Two early-exit BFS runs therefore replace a full
connectivity scan per proposal.

Determinism: one ``numpy`` generator seeded by the caller drives edge
selection, orientation flips, and annealing acceptance.  The trajectory —
accepted swap list, fitness curve, candidate edge list — is bit-identical
for identical ``(seed, budget, schedule)`` (pinned in
``tests/test_search.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.metrics import is_connected
from repro.search.schedules import Annealing, HillClimb, make_schedule
from repro.spectral.eigen import lambda_g, spectral_gap
from repro.utils.rng import as_rng

#: Search objectives as "higher is better" fitness functions.
#: ``spectral_gap`` maximises ``k - lambda_2``; ``lambda`` minimises the
#: paper's lambda(G) (largest-magnitude non-trivial eigenvalue).
OBJECTIVES: dict[str, Callable[[CSRGraph], float]] = {
    "spectral_gap": spectral_gap,
    "lambda": lambda g: -lambda_g(g),
}


@dataclass
class SwapSearchResult:
    """Outcome of one :func:`edge_swap_search` run.

    ``graph`` is the best state visited (never worse than the seed, since
    the seed is the initial state).  ``accepted_swaps`` holds tuples
    ``(u, v, x, y)`` meaning edges ``(u,v),(x,y)`` were replaced by
    ``(u,x),(v,y)``; replaying them from the seed with
    :func:`replay_swaps` reproduces every accepted state.  The
    ``fitness_curve`` records the *current* fitness after each of the
    ``budget`` proposals (accepted or not), so curves from identical
    configurations compare elementwise-equal.
    """

    graph: CSRGraph
    best_fitness: float
    seed_fitness: float
    objective: str
    schedule: str
    budget: int
    seed: int
    fitness_curve: np.ndarray
    accepted_swaps: list[tuple[int, int, int, int]]
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        """Fitness gained over the seed (>= 0 by construction)."""
        return self.best_fitness - self.seed_fitness


def _reaches(adj: list[set[int]], src: int, dst: int) -> bool:
    """Early-exit DFS: is ``dst`` reachable from ``src``?"""
    if src == dst:
        return True
    seen = {src}
    stack = [src]
    while stack:
        at = stack.pop()
        for nxt in adj[at]:
            if nxt == dst:
                return True
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return False


def _canon(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def edge_swap_search(
    graph: CSRGraph,
    budget: int,
    seed: int = 0,
    schedule: str | HillClimb | Annealing = "anneal",
    objective: str = "spectral_gap",
    **schedule_params,
) -> SwapSearchResult:
    """Run ``budget`` double-edge-swap proposals from ``graph``.

    ``graph`` must be simple, connected, and have at least two edges.
    Returns the best state visited together with the full deterministic
    trajectory (see :class:`SwapSearchResult`).
    """
    if budget < 0:
        raise ParameterError(f"budget must be >= 0, got {budget}")
    if objective not in OBJECTIVES:
        raise ParameterError(
            f"unknown objective {objective!r}; options: {sorted(OBJECTIVES)}"
        )
    if graph.num_edges < 2:
        raise ParameterError("edge-swap search needs at least two edges")
    if not is_connected(graph):
        raise ParameterError("edge-swap search requires a connected seed")

    sched = make_schedule(schedule, **schedule_params)
    fitness = OBJECTIVES[objective]
    rng = as_rng(seed)

    n = graph.n
    edges: list[tuple[int, int]] = [
        (int(u), int(v)) for u, v in graph.edge_array()
    ]
    m = len(edges)
    edge_set = set(edges)
    adj: list[set[int]] = [set(map(int, graph.neighbors(v))) for v in range(n)]

    cur_f = float(fitness(graph))
    seed_f = cur_f
    best_f = cur_f
    best_edges = list(edges)

    curve = np.empty(budget, dtype=np.float64)
    accepted_swaps: list[tuple[int, int, int, int]] = []
    counters = {
        "proposed": 0,
        "accepted": 0,
        "rejected_invalid": 0,
        "rejected_connectivity": 0,
        "rejected_fitness": 0,
    }

    for step in range(budget):
        counters["proposed"] += 1
        i = int(rng.integers(m))
        j = int(rng.integers(m))
        u, v = edges[i]
        x, y = edges[j]
        if rng.random() < 0.5:
            x, y = y, x

        if i == j or len({u, v, x, y}) < 4 or x in adj[u] or y in adj[v]:
            counters["rejected_invalid"] += 1
            curve[step] = cur_f
            continue

        # Tentatively rewire (u,v),(x,y) -> (u,x),(v,y) in the set views.
        adj[u].remove(v); adj[v].remove(u)
        adj[x].remove(y); adj[y].remove(x)
        adj[u].add(x); adj[x].add(u)
        adj[v].add(y); adj[y].add(v)

        def rollback() -> None:
            adj[u].remove(x); adj[x].remove(u)
            adj[v].remove(y); adj[y].remove(v)
            adj[u].add(v); adj[v].add(u)
            adj[x].add(y); adj[y].add(x)

        if not (_reaches(adj, u, v) and _reaches(adj, x, y)):
            rollback()
            counters["rejected_connectivity"] += 1
            curve[step] = cur_f
            continue

        new_i, new_j = _canon(u, x), _canon(v, y)
        old_i, old_j = edges[i], edges[j]
        edges[i], edges[j] = new_i, new_j
        candidate = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64))
        new_f = float(fitness(candidate))

        if sched.accept(new_f - cur_f, step, rng):
            edge_set.discard(old_i); edge_set.discard(old_j)
            edge_set.add(new_i); edge_set.add(new_j)
            cur_f = new_f
            accepted_swaps.append((u, v, x, y))
            counters["accepted"] += 1
            if new_f > best_f:
                best_f = new_f
                best_edges = list(edges)
        else:
            edges[i], edges[j] = old_i, old_j
            rollback()
            counters["rejected_fitness"] += 1
        curve[step] = cur_f

    best_graph = CSRGraph.from_edges(n, np.asarray(best_edges, dtype=np.int64))
    return SwapSearchResult(
        graph=best_graph,
        best_fitness=best_f,
        seed_fitness=seed_f,
        objective=objective,
        schedule=sched.name,
        budget=budget,
        seed=int(seed),
        fitness_curve=curve,
        accepted_swaps=accepted_swaps,
        counters=counters,
    )


def replay_swaps(
    graph: CSRGraph, swaps: list[tuple[int, int, int, int]]
) -> Iterator[CSRGraph]:
    """Yield the graph after each accepted swap, starting from ``graph``.

    Validates applicability of every swap (both removed edges present,
    neither added edge present), so a corrupted trajectory fails loudly.
    Used by the property suite to check invariants of *every* accepted
    state, not just the final candidate.
    """
    n = graph.n
    edge_set = {(int(u), int(v)) for u, v in graph.edge_array()}
    for u, v, x, y in swaps:
        if len({u, v, x, y}) < 4:
            raise ParameterError(
                f"degenerate swap ({u},{v},{x},{y}): endpoints not distinct"
            )
        removed = (_canon(u, v), _canon(x, y))
        added = (_canon(u, x), _canon(v, y))
        for e in removed:
            if e not in edge_set:
                raise ParameterError(f"swap removes absent edge {e}")
        for e in added:
            if e in edge_set:
                raise ParameterError(f"swap adds existing edge {e}")
        edge_set.difference_update(removed)
        edge_set.update(added)
        yield CSRGraph.from_edges(n, np.asarray(sorted(edge_set), dtype=np.int64))
