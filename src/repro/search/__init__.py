"""Spectral design-space search: generate topologies, don't just catalog them.

The paper's constructions (LPS, MMS/SlimFly, Paley bundles) are fixed
algebraic families — each radix admits only a sparse lattice of sizes.
This package searches the design space *between* those lattice points,
using the spectral machinery of :mod:`repro.spectral` as the fitness
function:

* :mod:`repro.search.swap` — degree-preserving double-edge-swap local
  search (hill-climbing or simulated annealing) that refines a random
  regular seed (Jellyfish) toward the Ramanujan bound, after Donetti
  et al.'s entangled networks.
* :mod:`repro.search.lift` — the 2-lift move of Marcus–Spielman–
  Srivastava: double any topology to ``2n`` vertices at equal degree by
  searching edge signings for a small signed-adjacency spectral radius.
* :mod:`repro.search.schedules` — deterministic acceptance schedules
  shared by the local search.

Everything is seeded and bit-deterministic: the same ``(seed, budget,
schedule)`` triple reproduces the same trajectory, candidate edge list,
and fitness curve on every run (pinned by ``tests/test_search.py`` and
the golden corpus).  Candidates are wrapped as
:class:`repro.topology.searched.SearchedTopology` and flow unchanged
into routing tables, both simulator engines, and the figure pipelines.
"""

from repro.search.lift import (
    LiftResult,
    search_signing,
    signed_adjacency_extreme,
    two_lift,
)
from repro.search.schedules import Annealing, HillClimb, make_schedule
from repro.search.swap import (
    OBJECTIVES,
    SwapSearchResult,
    edge_swap_search,
    replay_swaps,
)

__all__ = [
    "Annealing",
    "HillClimb",
    "LiftResult",
    "OBJECTIVES",
    "SwapSearchResult",
    "edge_swap_search",
    "make_schedule",
    "replay_swaps",
    "search_signing",
    "signed_adjacency_extreme",
    "two_lift",
]
