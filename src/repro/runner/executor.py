"""Cell-parallel, cache-aware execution of experiment specs.

``run_experiment`` is the one entry point: it resolves a registry name (or
:class:`ExperimentDef`) into fully-parameterized specs, serves previously
computed results straight from the content-addressed disk cache, splits
cache misses into independent cells along the experiment's declared axes,
fans the cells across a process pool, and writes every cell *and* the
merged result back to the cache.  Overlapping sweeps therefore only pay for
the cells they have not seen before.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable

from repro.errors import CellExecutionError, JobCancelledError, ParameterError
from repro.experiments.common import ExperimentResult
from repro.runner.registry import ExperimentDef, get_experiment
from repro.runner.spec import CellOutcome, ExperimentSpec, RunReport
from repro.utils.diskcache import DiskCache, configure_cache, get_default_cache

_RESULT_KEY = "experiment-result"

Progress = Callable[[str], None] | None

#: An event sink receives one dict per execution event (``type`` keys:
#: ``cell-start``, ``cell-result``, ``experiment-cached``).  ``cell-result``
#: events carry the cell's rows, so a sink sees results incrementally as
#: cells finish instead of waiting for the merged :class:`RunReport` — the
#: streaming channel the experiment service exposes per job.
EventSink = Callable[[dict[str, Any]], None] | None


class CancelToken:
    """Cooperative cancellation flag threaded through ``run_experiment``.

    The submitter keeps a reference and calls :meth:`cancel`; the executor
    checks :attr:`cancelled` at every cell boundary (and while waiting on
    the process pool) and raises :class:`JobCancelledError`.  Cells that
    already completed stay cached — they are valid results — so nothing
    partial or poisoned is ever written.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


def _result_key(spec: ExperimentSpec) -> tuple[str, str]:
    return (_RESULT_KEY, spec.spec_hash())


# ---------------------------------------------------------------------------
# Worker-side entry points (must be importable, hence module top level).
def _worker_init(cache_root: str, cache_enabled: bool, extra_path: list[str]) -> None:
    for p in reversed(extra_path):
        if p not in sys.path:
            sys.path.insert(0, p)
    configure_cache(cache_root, enabled=cache_enabled)


def _execute_payload(payload: tuple[str, str, tuple]) -> tuple[ExperimentResult, float]:
    """Run one cell in a worker process; returns (result, seconds)."""
    name, fn, params = payload
    spec = ExperimentSpec(name=name, fn=fn, params=params)
    t0 = time.perf_counter()
    result = spec.execute()
    return result, time.perf_counter() - t0


# ---------------------------------------------------------------------------
def _merge_cells(spec: ExperimentSpec, results: list[ExperimentResult]) -> ExperimentResult:
    """Concatenate cell rows back into one result (deterministic order).

    Notes from *every* cell are kept, de-duplicated in cell order — a cell
    that observed something (a deadlock warning, a fallback) must not have
    its note silently dropped because it was not the first cell.  Columns
    must agree across cells; a disagreement means the cells did not come
    from the same driver configuration and concatenating their rows under
    the first cell's header would mislabel data, so it raises instead.
    """
    first = results[0]
    columns = first.columns
    for res in results[1:]:
        if res.columns != columns:
            raise ValueError(
                f"cannot merge cells of {spec.name}: column disagreement "
                f"({columns!r} vs {res.columns!r})"
            )
    rows: list[dict[str, Any]] = []
    notes: list[str] = []
    for res in results:
        rows.extend(res.rows)
        if res.notes and res.notes not in notes:
            notes.append(res.notes)
    return ExperimentResult(
        experiment=first.experiment,
        rows=rows,
        notes="\n".join(notes),
        columns=columns,
    )


def _run_cells(
    cells: list[ExperimentSpec],
    jobs: int,
    cache: DiskCache,
    force: bool,
    progress: Progress,
    events: EventSink = None,
    cancel: CancelToken | None = None,
) -> tuple[list[ExperimentResult], list[CellOutcome]]:
    """Execute the cell list, serving cached cells and pooling the misses."""
    results: list[ExperimentResult | None] = [None] * len(cells)
    outcomes: list[CellOutcome | None] = [None] * len(cells)
    n = len(cells)
    done_cells = 0

    def emit(event: dict[str, Any]) -> None:
        if events is not None:
            events(event)

    def check_cancel() -> None:
        if cancel is not None and cancel.cancelled:
            raise JobCancelledError(
                f"cancelled with {done_cells}/{n} cells complete"
            )

    def serve(i: int, result: ExperimentResult, from_cache: bool, seconds: float) -> None:
        nonlocal done_cells
        results[i] = result
        outcomes[i] = CellOutcome(cells[i], from_cache=from_cache, seconds=seconds)
        done_cells += 1
        emit(
            {
                "type": "cell-result",
                "cell": cells[i].name,
                "index": i,
                "total": n,
                "from_cache": from_cache,
                "seconds": round(seconds, 3),
                "rows": result.rows,
                "notes": result.notes,
            }
        )
        if progress:
            label = "cached" if from_cache else f"{seconds:.1f}s"
            progress(f"  [{i + 1}/{n}] {cells[i].name}: {label}")

    misses: list[int] = []
    check_cancel()
    for i, cell in enumerate(cells):
        hit = None if force else cache.get(_result_key(cell))
        if hit is not None:
            serve(i, hit, from_cache=True, seconds=0.0)
        else:
            misses.append(i)

    def record(i: int, result: ExperimentResult, seconds: float) -> None:
        cache.put(_result_key(cells[i]), result)
        serve(i, result, from_cache=False, seconds=seconds)

    # Failure contract (tests/test_runner_executor.py): a cell whose driver
    # raises must never reach cache.put (a poisoned entry would be served as
    # a result forever), must not leave the pool hanging (pending cells are
    # cancelled; in-flight ones finish with the context manager), and must
    # surface as a CellExecutionError carrying the failing cell's spec.
    # Cancellation follows the same no-poisoning rule: it is honoured at
    # cell boundaries (and while waiting on the pool), so every entry that
    # does reach the cache is a complete, valid cell result.
    def fail(i: int, exc: BaseException) -> CellExecutionError:
        return CellExecutionError(
            f"cell {cells[i].name} failed: {exc!r}", spec=cells[i]
        )

    if misses and jobs > 1:
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(misses)),
            initializer=_worker_init,
            initargs=(str(cache.root), cache.enabled, [src_root]),
        ) as pool:
            futures = {
                pool.submit(
                    _execute_payload, (cells[i].name, cells[i].fn, cells[i].params)
                ): i
                for i in misses
            }
            for i in misses:
                emit({"type": "cell-start", "cell": cells[i].name,
                      "index": i, "total": n})
            pending = set(futures)
            try:
                while pending:
                    check_cancel()
                    done, pending = wait(
                        pending,
                        timeout=0.2 if cancel is not None else None,
                        return_when=FIRST_COMPLETED,
                    )
                    for fut in done:
                        try:
                            result, seconds = fut.result()
                        except Exception as exc:
                            raise fail(futures[fut], exc) from exc
                        record(futures[fut], result, seconds)
            except BaseException:
                # Cell failure or cancellation: drop queued cells; the
                # context manager waits out in-flight ones, whose results
                # are discarded unrecorded (nothing reaches the cache).
                for p in pending:
                    p.cancel()
                raise
    else:
        for i in misses:
            check_cancel()
            emit({"type": "cell-start", "cell": cells[i].name,
                  "index": i, "total": n})
            t0 = time.perf_counter()
            try:
                result = cells[i].execute()
            except Exception as exc:
                raise fail(i, exc) from exc
            record(i, result, time.perf_counter() - t0)

    return list(results), list(outcomes)  # type: ignore[arg-type]


def _run_single(
    exp: ExperimentDef,
    spec: ExperimentSpec,
    jobs: int,
    cache: DiskCache,
    force: bool,
    progress: Progress,
    events: EventSink = None,
    cancel: CancelToken | None = None,
) -> RunReport:
    t0 = time.perf_counter()
    if not force:
        hit = cache.get(_result_key(spec))
        if hit is not None:
            if events is not None:
                events(
                    {
                        "type": "experiment-cached",
                        "experiment": spec.name,
                        "rows": len(hit.rows),
                    }
                )
            return RunReport(
                name=spec.name,
                result=hit,
                seconds=time.perf_counter() - t0,
                from_cache=True,
            )
    cells = exp.cells(spec)
    cell_results, outcomes = _run_cells(
        cells, jobs, cache, force, progress, events=events, cancel=cancel
    )
    merged = _merge_cells(spec, cell_results)
    if len(cells) > 1:
        # Unsplit specs share their spec hash with their single cell, which
        # _run_cells already stored — don't write the same pickle twice.
        cache.put(_result_key(spec), merged)
    return RunReport(
        name=spec.name,
        result=merged,
        seconds=time.perf_counter() - t0,
        cells=outcomes,
    )


def run_experiment(
    experiment: str | ExperimentDef,
    preset: str = "small",
    overrides: dict[str, Any] | None = None,
    jobs: int = 1,
    cache: DiskCache | None = None,
    force: bool = False,
    progress: Progress = None,
    events: EventSink = None,
    cancel: CancelToken | None = None,
) -> list[RunReport]:
    """Run one registered experiment (or composite) and return its reports.

    Parameters
    ----------
    experiment:
        Registry name (``"fig6"``) or an :class:`ExperimentDef`.
    preset:
        ``"small"`` (laptop-scale defaults) or ``"full"`` (paper-scale).
    overrides:
        Parameter overrides applied on top of the preset (CLI ``--set``).
    jobs:
        Worker processes for independent cells; 1 runs everything inline.
    cache:
        Result cache; defaults to the process-wide disk cache.
    force:
        Recompute even when cached results exist (results are re-stored).
    progress:
        Optional callable receiving one human-readable line per cell.
    events:
        Optional :data:`EventSink` receiving structured execution events —
        one ``cell-result`` per finished cell, rows included, so callers
        (the experiment service) can stream results incrementally.
    cancel:
        Optional :class:`CancelToken`; once cancelled, execution stops at
        the next cell boundary with :class:`JobCancelledError`.  Finished
        cells stay cached; nothing partial is written.

    Returns one :class:`RunReport` per driver — a single report for plain
    experiments, one per part for composites like ``fig4``.
    """
    exp = get_experiment(experiment) if isinstance(experiment, str) else experiment
    cache = cache if cache is not None else get_default_cache()
    if exp.is_composite:
        # Parts have different signatures; forward only the overrides each
        # driver actually accepts.  A key no part accepts is a user error
        # (a typo would otherwise be silently ignored here, while plain
        # experiments reject it) — raise before running anything.
        parts = [get_experiment(p) for p in exp.parts]
        accepted_by_part = {p.name: p.accepted_params() for p in parts}
        all_accepted = set().union(*accepted_by_part.values())
        unknown = sorted(set(overrides or {}) - all_accepted)
        if unknown:
            raise ParameterError(
                f"composite {exp.name!r}: override key(s) "
                f"{', '.join(unknown)} accepted by none of its parts "
                f"({', '.join(exp.parts)}); accepted keys: "
                f"{', '.join(sorted(all_accepted))}"
            )
        reports = []
        for part in parts:
            part_overrides = {
                k: v
                for k, v in (overrides or {}).items()
                if k in accepted_by_part[part.name]
            }
            spec = part.spec(preset, part_overrides)
            reports.append(
                _run_single(
                    part, spec, jobs, cache, force, progress,
                    events=events, cancel=cancel,
                )
            )
        return reports
    spec = exp.spec(preset, overrides)
    return [
        _run_single(
            exp, spec, jobs, cache, force, progress, events=events, cancel=cancel
        )
    ]
