"""Cell-parallel, cache-aware execution of experiment specs.

``run_experiment`` is the one entry point: it resolves a registry name (or
:class:`ExperimentDef`) into fully-parameterized specs, serves previously
computed results straight from the content-addressed disk cache, splits
cache misses into independent cells along the experiment's declared axes,
fans the cells across a process pool, and writes every cell *and* the
merged result back to the cache.  Overlapping sweeps therefore only pay for
the cells they have not seen before.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable

from repro.errors import CellExecutionError
from repro.experiments.common import ExperimentResult
from repro.runner.registry import ExperimentDef, get_experiment
from repro.runner.spec import CellOutcome, ExperimentSpec, RunReport
from repro.utils.diskcache import DiskCache, configure_cache, get_default_cache

_RESULT_KEY = "experiment-result"

Progress = Callable[[str], None] | None


def _result_key(spec: ExperimentSpec) -> tuple[str, str]:
    return (_RESULT_KEY, spec.spec_hash())


# ---------------------------------------------------------------------------
# Worker-side entry points (must be importable, hence module top level).
def _worker_init(cache_root: str, cache_enabled: bool, extra_path: list[str]) -> None:
    for p in reversed(extra_path):
        if p not in sys.path:
            sys.path.insert(0, p)
    configure_cache(cache_root, enabled=cache_enabled)


def _execute_payload(payload: tuple[str, str, tuple]) -> tuple[ExperimentResult, float]:
    """Run one cell in a worker process; returns (result, seconds)."""
    name, fn, params = payload
    spec = ExperimentSpec(name=name, fn=fn, params=params)
    t0 = time.perf_counter()
    result = spec.execute()
    return result, time.perf_counter() - t0


# ---------------------------------------------------------------------------
def _merge_cells(spec: ExperimentSpec, results: list[ExperimentResult]) -> ExperimentResult:
    """Concatenate cell rows back into one result (deterministic order)."""
    if len(results) == 1:
        merged = results[0]
        return ExperimentResult(
            experiment=merged.experiment,
            rows=list(merged.rows),
            notes=merged.notes,
            columns=merged.columns,
        )
    rows: list[dict[str, Any]] = []
    for res in results:
        rows.extend(res.rows)
    first = results[0]
    return ExperimentResult(
        experiment=first.experiment,
        rows=rows,
        notes=first.notes,
        columns=first.columns,
    )


def _run_cells(
    cells: list[ExperimentSpec],
    jobs: int,
    cache: DiskCache,
    force: bool,
    progress: Progress,
) -> tuple[list[ExperimentResult], list[CellOutcome]]:
    """Execute the cell list, serving cached cells and pooling the misses."""
    results: list[ExperimentResult | None] = [None] * len(cells)
    outcomes: list[CellOutcome | None] = [None] * len(cells)
    misses: list[int] = []
    for i, cell in enumerate(cells):
        hit = None if force else cache.get(_result_key(cell))
        if hit is not None:
            results[i] = hit
            outcomes[i] = CellOutcome(cell, from_cache=True, seconds=0.0)
            if progress:
                progress(f"  [{i + 1}/{len(cells)}] {cell.name}: cached")
        else:
            misses.append(i)

    def record(i: int, result: ExperimentResult, seconds: float) -> None:
        cache.put(_result_key(cells[i]), result)
        results[i] = result
        outcomes[i] = CellOutcome(cells[i], from_cache=False, seconds=seconds)
        if progress:
            progress(f"  [{i + 1}/{len(cells)}] {cells[i].name}: {seconds:.1f}s")

    # Failure contract (tests/test_runner_executor.py): a cell whose driver
    # raises must never reach cache.put (a poisoned entry would be served as
    # a result forever), must not leave the pool hanging (pending cells are
    # cancelled; in-flight ones finish with the context manager), and must
    # surface as a CellExecutionError carrying the failing cell's spec.
    def fail(i: int, exc: BaseException) -> CellExecutionError:
        return CellExecutionError(
            f"cell {cells[i].name} failed: {exc!r}", spec=cells[i]
        )

    if misses and jobs > 1:
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(misses)),
            initializer=_worker_init,
            initargs=(str(cache.root), cache.enabled, [src_root]),
        ) as pool:
            futures = {
                pool.submit(
                    _execute_payload, (cells[i].name, cells[i].fn, cells[i].params)
                ): i
                for i in misses
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    try:
                        result, seconds = fut.result()
                    except Exception as exc:
                        for p in pending:
                            p.cancel()
                        raise fail(futures[fut], exc) from exc
                    record(futures[fut], result, seconds)
    else:
        for i in misses:
            t0 = time.perf_counter()
            try:
                result = cells[i].execute()
            except Exception as exc:
                raise fail(i, exc) from exc
            record(i, result, time.perf_counter() - t0)

    return list(results), list(outcomes)  # type: ignore[arg-type]


def _run_single(
    exp: ExperimentDef,
    spec: ExperimentSpec,
    jobs: int,
    cache: DiskCache,
    force: bool,
    progress: Progress,
) -> RunReport:
    t0 = time.perf_counter()
    if not force:
        hit = cache.get(_result_key(spec))
        if hit is not None:
            return RunReport(
                name=spec.name,
                result=hit,
                seconds=time.perf_counter() - t0,
                from_cache=True,
            )
    cells = exp.cells(spec)
    cell_results, outcomes = _run_cells(cells, jobs, cache, force, progress)
    merged = _merge_cells(spec, cell_results)
    if len(cells) > 1:
        # Unsplit specs share their spec hash with their single cell, which
        # _run_cells already stored — don't write the same pickle twice.
        cache.put(_result_key(spec), merged)
    return RunReport(
        name=spec.name,
        result=merged,
        seconds=time.perf_counter() - t0,
        cells=outcomes,
    )


def run_experiment(
    experiment: str | ExperimentDef,
    preset: str = "small",
    overrides: dict[str, Any] | None = None,
    jobs: int = 1,
    cache: DiskCache | None = None,
    force: bool = False,
    progress: Progress = None,
) -> list[RunReport]:
    """Run one registered experiment (or composite) and return its reports.

    Parameters
    ----------
    experiment:
        Registry name (``"fig6"``) or an :class:`ExperimentDef`.
    preset:
        ``"small"`` (laptop-scale defaults) or ``"full"`` (paper-scale).
    overrides:
        Parameter overrides applied on top of the preset (CLI ``--set``).
    jobs:
        Worker processes for independent cells; 1 runs everything inline.
    cache:
        Result cache; defaults to the process-wide disk cache.
    force:
        Recompute even when cached results exist (results are re-stored).
    progress:
        Optional callable receiving one human-readable line per cell.

    Returns one :class:`RunReport` per driver — a single report for plain
    experiments, one per part for composites like ``fig4``.
    """
    exp = get_experiment(experiment) if isinstance(experiment, str) else experiment
    cache = cache if cache is not None else get_default_cache()
    if exp.is_composite:
        import inspect

        reports = []
        for part_name in exp.parts:
            part = get_experiment(part_name)
            # Parts have different signatures; forward only the overrides
            # each driver actually accepts.
            accepted = set(inspect.signature(part.resolve()).parameters)
            part_overrides = {
                k: v for k, v in (overrides or {}).items() if k in accepted
            }
            spec = part.spec(preset, part_overrides)
            reports.append(_run_single(part, spec, jobs, cache, force, progress))
        return reports
    spec = exp.spec(preset, overrides)
    return [_run_single(exp, spec, jobs, cache, force, progress)]
