"""Experiment specs: the declarative unit the runner executes and caches.

An :class:`ExperimentSpec` is a fully-resolved, hashable description of one
experiment invocation — the dotted path of the driver function plus the
exact keyword arguments.  Everything the runner does (cell splitting,
parallel dispatch, result caching) operates on specs, never on ad-hoc
function calls, so two invocations that would compute the same thing always
share one cache entry.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.utils.diskcache import stable_hash

#: Bump when experiment semantics change in a way that should invalidate
#: previously cached results (the disk cache also versions itself; this one
#: scopes to result entries specifically).
SPEC_VERSION = 1


def resolve_callable(dotted: str) -> Callable[..., Any]:
    """Resolve ``"package.module:function"`` to the callable itself."""
    module_name, _, attr = dotted.partition(":")
    if not attr:
        raise ValueError(f"expected 'module:callable', got {dotted!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"{module_name} has no callable {attr!r}") from exc


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-parameterized experiment invocation.

    Attributes
    ----------
    name:
        Registry name (``"fig6"``) or cell-qualified name
        (``"fig6[patterns=shuffle,loads=0.3]"``).
    fn:
        Dotted path of the driver, e.g. ``"repro.experiments.fig6:run"``.
    params:
        Exact keyword arguments passed to the driver.  Stored as a sorted
        tuple of pairs so the spec itself is hashable and order-insensitive.
    """

    name: str
    fn: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, name: str, fn: str, params: dict[str, Any]) -> "ExperimentSpec":
        return cls(name=name, fn=fn, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)

    def spec_hash(self) -> str:
        """Content hash identifying this spec's result in the cache.

        Deliberately excludes ``name``: a cell of a sweep and a directly
        requested run with identical fn+params share one cache entry.
        """
        return stable_hash(
            {"v": SPEC_VERSION, "fn": self.fn, "params": self.params}
        )

    def execute(self) -> Any:
        """Run the driver in-process and return its ExperimentResult."""
        return resolve_callable(self.fn)(**self.kwargs)

    def describe(self) -> str:
        kv = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}: {self.fn}({kv})"


@dataclass
class CellOutcome:
    """Bookkeeping for one executed (or cache-served) cell."""

    spec: ExperimentSpec
    from_cache: bool
    seconds: float


@dataclass
class RunReport:
    """What ``run_experiment`` did: the result plus cache/parallelism facts."""

    name: str
    result: Any  # ExperimentResult
    seconds: float
    cells: list[CellOutcome] = field(default_factory=list)
    from_cache: bool = False  # the merged result itself was served from cache

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_cached_cells(self) -> int:
        return sum(1 for c in self.cells if c.from_cache)

    def summary_line(self) -> str:
        if self.from_cache:
            return f"{self.name}: cached ({self.seconds:.2f}s)"
        return (
            f"{self.name}: done in {self.seconds:.1f}s "
            f"({self.n_cells} cells, {self.n_cached_cells} from cache)"
        )
