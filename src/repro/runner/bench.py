"""Tracked performance benchmarks: ``python -m repro bench``.

Simulated packets/second is the binding constraint on how many
loads x patterns x topologies x sizes the reproduction can sweep, so the
simulator's speed is a tracked artifact rather than folklore.  This module
measures

* **end-to-end cells** — the small-preset saturation driver's engine
  (:func:`repro.experiments.common.build_synthetic_sim`) across
  topology x routing x pattern cells, timing ``net.run()`` alone and
  reporting packets/s and events/s per cell;
* **micro benchmarks** — the per-hop primitives the fast path is built
  from: directed-edge-id lookup, minimal-next-hop selection, and
  single-draw vs block-drawn RNG.

Results are written to ``BENCH_sim.json``; the committed copy at the repo
root records the perf trajectory (the pre-optimization baseline is stored
in the same file under ``"baseline"``).  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path
from typing import Any

# Presets: which cells the end-to-end sweep runs.  ``smoke`` is sized for
# CI (seconds); ``small`` is the tracked configuration committed in
# BENCH_sim.json; ``full`` is paper scale (slow, opt-in).
BENCH_PRESETS: dict[str, dict[str, Any]] = {
    "smoke": {
        "scale": "small",
        "topologies": ("SpectralFly",),
        "cells": (("minimal", "shuffle"), ("ugal", "shuffle")),
        "load": 0.5,
        "n_ranks": 256,
        "packets_per_rank": 5,
    },
    "small": {
        "scale": "small",
        "topologies": None,  # all topologies of the small size class
        "cells": (
            ("minimal", "shuffle"),
            ("valiant", "shuffle"),
            ("ugal", "shuffle"),
            ("ugal", "random"),
        ),
        "load": 0.5,
        "n_ranks": 512,
        "packets_per_rank": 15,
    },
    "full": {
        "scale": "paper",
        "topologies": None,
        "cells": (
            ("minimal", "shuffle"),
            ("valiant", "shuffle"),
            ("ugal", "shuffle"),
            ("ugal", "random"),
        ),
        "load": 0.5,
        "n_ranks": 8192,
        "packets_per_rank": 15,
    },
}

#: Seed shared by every cell so before/after runs are comparable.
BENCH_SEED = 0


# ---------------------------------------------------------------------------
# End-to-end cells
# ---------------------------------------------------------------------------
def run_cell(
    topo,
    routing: str,
    pattern: str,
    load: float,
    concentration: int,
    n_ranks: int,
    packets_per_rank: int,
    seed: int = BENCH_SEED,
) -> dict[str, Any]:
    """Build one synthetic-traffic sim, time ``net.run()``, summarise."""
    from repro.experiments.common import build_synthetic_sim

    net = build_synthetic_sim(
        topo,
        routing,
        pattern,
        load,
        concentration=concentration,
        n_ranks=n_ranks,
        packets_per_rank=packets_per_rank,
        seed=seed,
    )
    t0 = time.perf_counter()
    stats = net.run()
    wall = time.perf_counter() - t0
    summary = stats.summary()
    delivered = int(summary.get("delivered", 0))
    n_events = int(getattr(stats, "n_events", 0))
    return {
        "topology": topo.name,
        "routing": routing,
        "pattern": pattern,
        "load": load,
        "n_ranks": n_ranks,
        "packets_per_rank": packets_per_rank,
        "delivered": delivered,
        "events": n_events,
        "wall_s": round(wall, 4),
        "packets_per_s": round(delivered / wall, 1) if wall > 0 else 0.0,
        "events_per_s": round(n_events / wall, 1) if wall > 0 else 0.0,
        "mean_latency_ns": round(float(summary.get("mean_latency_ns", 0.0)), 2),
        "mean_hops": round(float(summary.get("mean_hops", 0.0)), 4),
    }


def run_end_to_end(preset: str, repeats: int = 1, progress=None) -> list[dict[str, Any]]:
    """Run every cell of ``preset`` ``repeats`` times; keep the best wall."""
    from repro.topology import SIM_CONFIGS

    spec = BENCH_PRESETS[preset]
    cfg = SIM_CONFIGS[spec["scale"]]
    names = spec["topologies"] or tuple(cfg["topologies"])
    rows = []
    for name in names:
        topo_spec = cfg["topologies"][name]
        topo = topo_spec["build"]()
        for routing, pattern in spec["cells"]:
            best: dict[str, Any] | None = None
            for _ in range(max(1, repeats)):
                row = run_cell(
                    topo,
                    routing,
                    pattern,
                    spec["load"],
                    concentration=topo_spec["concentration"],
                    n_ranks=spec["n_ranks"],
                    packets_per_rank=spec["packets_per_rank"],
                )
                if best is None or row["wall_s"] < best["wall_s"]:
                    best = row
            rows.append(best)
            if progress is not None:
                progress(
                    f"  {best['topology']:>12} {best['routing']:>8} "
                    f"{best['pattern']:>8}: {best['packets_per_s']:>10,.0f} pkt/s "
                    f"({best['wall_s']:.2f}s)"
                )
    return rows


def summarize(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate cells into the headline packets/s (total work / total wall)."""
    total_pkts = sum(r["delivered"] for r in rows)
    total_events = sum(r["events"] for r in rows)
    total_wall = sum(r["wall_s"] for r in rows)
    return {
        "cells": len(rows),
        "total_packets": total_pkts,
        "total_events": total_events,
        "total_wall_s": round(total_wall, 3),
        "packets_per_s": round(total_pkts / total_wall, 1) if total_wall else 0.0,
        "events_per_s": round(total_events / total_wall, 1) if total_wall else 0.0,
        "median_cell_packets_per_s": round(
            statistics.median(r["packets_per_s"] for r in rows), 1
        )
        if rows
        else 0.0,
    }


# ---------------------------------------------------------------------------
# Micro benchmarks
# ---------------------------------------------------------------------------
def _time_loop(fn, n: int) -> float:
    """Ops/second of ``fn(i)`` over ``n`` iterations."""
    t0 = time.perf_counter()
    for i in range(n):
        fn(i)
    dt = time.perf_counter() - t0
    return n / dt if dt > 0 else 0.0


def run_micro(n_ops: int = 50_000) -> dict[str, float]:
    """Per-hop primitive rates on the small SpectralFly topology."""
    import numpy as np

    from repro.routing import RoutingTables, make_routing
    from repro.topology import build_lps
    from repro.utils.rng import as_rng

    topo = build_lps(11, 7)
    g = topo.graph
    tables = RoutingTables(g)
    policy = make_routing("minimal", tables, seed=0)

    rng = np.random.default_rng(12345)
    n = g.n
    # Pre-draw query operands so the timed loops measure lookups only.
    us = rng.integers(0, n, size=n_ops).tolist()
    heads = np.repeat(np.arange(n), np.diff(g.indptr))
    pick = rng.integers(0, len(g.indices), size=n_ops)
    edge_u = heads[pick].tolist()
    edge_v = g.indices[pick].tolist()
    ds = rng.integers(0, n, size=n_ops).tolist()
    pairs = [(u, d) for u, d in zip(us, ds) if u != d]

    out = {
        "edge_id_lookups_per_s": _time_loop(
            lambda i: tables.directed_edge_id(edge_u[i], edge_v[i]), n_ops
        ),
        "min_next_hop_draws_per_s": _time_loop(
            lambda i: policy._random_minimal(*pairs[i % len(pairs)]), n_ops
        ),
    }

    # RNG: one generator call per value vs one refilled block per 2^13 values.
    single = as_rng(7)
    out["rng_single_draws_per_s"] = _time_loop(
        lambda i: int(single.integers(8)), n_ops
    )
    block_rng = as_rng(7)
    state = {"buf": [], "pos": 0}

    def batched(i):
        pos = state["pos"]
        buf = state["buf"]
        if pos >= len(buf):
            buf = state["buf"] = block_rng.random(8192).tolist()
            pos = 0
        state["pos"] = pos + 1
        return int(buf[pos] * 8)

    out["rng_batched_draws_per_s"] = _time_loop(batched, n_ops)
    return {k: round(v, 1) for k, v in out.items()}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def run_bench(
    preset: str = "small",
    out_path: str | Path | None = "BENCH_sim.json",
    repeats: int = 1,
    baseline: dict[str, Any] | None = None,
    micro: bool = True,
    progress=print,
) -> dict[str, Any]:
    """Run the benchmark suite and (optionally) write ``BENCH_sim.json``."""
    import numpy as np

    if preset not in BENCH_PRESETS:
        raise ValueError(
            f"unknown bench preset {preset!r}; options {list(BENCH_PRESETS)}"
        )
    if progress is not None:
        progress(f"== repro bench — preset {preset!r}, repeats {repeats}")
    t0 = time.perf_counter()
    rows = run_end_to_end(preset, repeats=repeats, progress=progress)
    summary = summarize(rows)
    result: dict[str, Any] = {
        "schema": 1,
        "kind": "repro-sim-perf",
        "preset": preset,
        "seed": BENCH_SEED,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "cells": rows,
        "summary": summary,
    }
    if micro:
        if progress is not None:
            progress("  micro benchmarks...")
        result["micro"] = run_micro()
    if baseline:
        result["baseline"] = baseline
        base = float(baseline.get("packets_per_s", 0.0))
        if base > 0:
            result["summary"]["speedup_vs_baseline"] = round(
                summary["packets_per_s"] / base, 2
            )
    result["bench_wall_s"] = round(time.perf_counter() - t0, 2)
    if progress is not None:
        progress(
            f"== {summary['total_packets']:,} packets in "
            f"{summary['total_wall_s']:.2f}s of simulation -> "
            f"{summary['packets_per_s']:,.0f} pkt/s, "
            f"{summary['events_per_s']:,.0f} events/s"
        )
        if "speedup_vs_baseline" in result["summary"]:
            progress(
                f"== speedup vs recorded baseline: "
                f"{result['summary']['speedup_vs_baseline']:.2f}x"
            )
    if out_path is not None:
        path = Path(out_path)
        path.write_text(json.dumps(result, indent=2) + "\n")
        if progress is not None:
            progress(f"== wrote {path}")
    return result
