"""Tracked performance benchmarks: ``python -m repro bench``.

Simulated packets/second is the binding constraint on how many
loads x patterns x topologies x sizes the reproduction can sweep, so the
simulator's speed is a tracked artifact rather than folklore.  This module
measures

* **end-to-end cells** — the small-preset saturation driver's engine
  (:func:`repro.experiments.common.build_synthetic_sim`) across
  topology x routing x pattern cells, timing ``net.run()`` alone and
  reporting packets/s and events/s per cell;
* **micro benchmarks** — the per-hop primitives the fast path is built
  from: directed-edge-id lookup, minimal-next-hop selection, and
  single-draw vs block-drawn RNG.

Results are written to ``BENCH_sim.json``; the committed copy at the repo
root records the perf trajectory (the pre-optimization baseline is stored
in the same file under ``"baseline"``).  See ``docs/performance.md``.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path
from typing import Any

# Presets: which cells the end-to-end sweep runs.  ``smoke`` is sized for
# CI (seconds); ``small`` is the tracked configuration committed in
# BENCH_sim.json; ``full`` is paper scale (slow, opt-in).  Every cell runs
# once per entry in ``backends`` — the event engine rows carry the headline
# summary (comparable to the recorded baseline), the batched rows feed
# ``summary_batched`` and the batched-vs-event speedup.
#
# ``scenarios`` are the capability-gap cells added when the batched engine
# learnt motifs and fault schedules: one closed-loop motif run, one
# mid-run-faulted open-loop run, one chunk-level collective schedule
# (ring allreduce lowered to a motif DAG), one congested run (finite
# credit/backpressure buffers plus a lossy retransmitting channel), and
# one searched-topology open-loop run (an edge-swap-annealed Jellyfish —
# no algebraic structure, so it keeps the routing hot path honest on
# irregular instances; see docs/search.md), each timed per backend
# (engine run only — workload generation, topology construction, and the
# spectral search itself stay outside the timer).  Their batched-vs-event
# speedups land in ``summary_scenarios``.
BENCH_PRESETS: dict[str, dict[str, Any]] = {
    "smoke": {
        "scale": "small",
        "topologies": ("SpectralFly",),
        "cells": (("minimal", "shuffle"), ("ugal", "shuffle")),
        "load": 0.5,
        "n_ranks": 256,
        "packets_per_rank": 5,
        "backends": ("event", "batched"),
        "scenarios": {
            "motif": {"topology": "SpectralFly", "routing": "minimal",
                      "motif": "fft-unbalanced", "n_ranks": 256},
            "faulted": {"topology": "SpectralFly", "routing": "ugal",
                        "pattern": "random", "load": 0.5, "n_ranks": 256,
                        "packets_per_rank": 10, "fail_fraction": 0.1,
                        "recover": True},
            "collective": {"topology": "SpectralFly", "routing": "minimal",
                           "collective": "allreduce", "algorithm": "ring",
                           "n_ranks": 64, "total_bytes": 1 << 15},
            "congested": {"topology": "SpectralFly", "routing": "ugal",
                          "pattern": "random", "load": 0.55, "n_ranks": 256,
                          "packets_per_rank": 8, "buffer_packets": 1,
                          "loss_prob": 0.02, "max_attempts": 2},
            "searched": {"n_routers": 48, "radix": 4, "budget": 40,
                         "routing": "ugal", "pattern": "random",
                         "load": 0.5, "concentration": 2, "n_ranks": 64,
                         "packets_per_rank": 8},
        },
        "scale_cells": (
            {"name": "LPS(5,23)-sharded2-cayley", "p": 5, "q": 23,
             "oracle": "cayley", "routing": "minimal", "pattern": "random",
             "load": 0.3, "concentration": 2, "n_ranks": 4096,
             "packets_per_rank": 4, "shard_workers": 2},
        ),
    },
    "small": {
        "scale": "small",
        "topologies": None,  # all topologies of the small size class
        "cells": (
            ("minimal", "shuffle"),
            ("valiant", "shuffle"),
            ("ugal", "shuffle"),
            ("ugal", "random"),
        ),
        "load": 0.5,
        "n_ranks": 512,
        "packets_per_rank": 15,
        "backends": ("event", "batched"),
        "scenarios": {
            "motif": {"topology": "SpectralFly", "routing": "minimal",
                      "motif": "fft-unbalanced", "n_ranks": 512},
            "faulted": {"topology": "SpectralFly", "routing": "ugal",
                        "pattern": "random", "load": 0.5, "n_ranks": 512,
                        "packets_per_rank": 15, "fail_fraction": 0.1,
                        "recover": True},
            "collective": {"topology": "SpectralFly", "routing": "minimal",
                           "collective": "allreduce", "algorithm": "ring",
                           "n_ranks": 128, "total_bytes": 1 << 16},
            "congested": {"topology": "SpectralFly", "routing": "ugal",
                          "pattern": "random", "load": 0.55, "n_ranks": 512,
                          "packets_per_rank": 15, "buffer_packets": 1,
                          "loss_prob": 0.02, "max_attempts": 2},
            "searched": {"n_routers": 98, "radix": 6, "budget": 120,
                         "routing": "ugal", "pattern": "random",
                         "load": 0.5, "concentration": 2, "n_ranks": 128,
                         "packets_per_rank": 12},
        },
        # Million-node-regime cells: SpectralFly instances far past the
        # dense-table wall (LPS(5,47) has 103,776 routers; its n x n
        # int16 distance matrix alone would be ~21.5 GB), routed through
        # the on-demand Cayley oracle on the process-sharded engine.
        "scale_cells": (
            {"name": "LPS(5,23)-sharded2-cayley", "p": 5, "q": 23,
             "oracle": "cayley", "routing": "minimal", "pattern": "random",
             "load": 0.3, "concentration": 2, "n_ranks": 4096,
             "packets_per_rank": 4, "shard_workers": 2},
            {"name": "LPS(5,47)-sharded4-cayley", "p": 5, "q": 47,
             "oracle": "cayley", "routing": "minimal", "pattern": "random",
             "load": 0.3, "concentration": 2, "n_ranks": 16384,
             "packets_per_rank": 4, "shard_workers": 4},
        ),
    },
    "full": {
        "scale": "paper",
        "topologies": None,
        "cells": (
            ("minimal", "shuffle"),
            ("valiant", "shuffle"),
            ("ugal", "shuffle"),
            ("ugal", "random"),
        ),
        "load": 0.5,
        "n_ranks": 8192,
        "packets_per_rank": 15,
        "backends": ("event", "batched"),
        "scenarios": {
            "motif": {"topology": "SpectralFly", "routing": "minimal",
                      "motif": "fft-unbalanced", "n_ranks": 8192},
            "faulted": {"topology": "SpectralFly", "routing": "ugal",
                        "pattern": "random", "load": 0.5, "n_ranks": 8192,
                        "packets_per_rank": 15, "fail_fraction": 0.1,
                        "recover": True},
            "collective": {"topology": "SpectralFly", "routing": "minimal",
                           "collective": "allreduce", "algorithm": "ring",
                           "n_ranks": 1024, "total_bytes": 1 << 18},
            "congested": {"topology": "SpectralFly", "routing": "ugal",
                          "pattern": "random", "load": 0.55, "n_ranks": 8192,
                          "packets_per_rank": 15, "buffer_packets": 1,
                          "loss_prob": 0.02, "max_attempts": 2},
            "searched": {"n_routers": 512, "radix": 8, "budget": 300,
                         "routing": "ugal", "pattern": "random",
                         "load": 0.5, "concentration": 4, "n_ranks": 2048,
                         "packets_per_rank": 15},
        },
        "scale_cells": (
            {"name": "LPS(5,47)-sharded4-cayley", "p": 5, "q": 47,
             "oracle": "cayley", "routing": "minimal", "pattern": "random",
             "load": 0.3, "concentration": 2, "n_ranks": 65536,
             "packets_per_rank": 8, "shard_workers": 4},
            {"name": "LPS(5,47)-sharded4-valiant", "p": 5, "q": 47,
             "oracle": "cayley", "routing": "valiant", "pattern": "random",
             "load": 0.3, "concentration": 2, "n_ranks": 65536,
             "packets_per_rank": 8, "shard_workers": 4},
        ),
    },
}

#: Seed shared by every cell so before/after runs are comparable.
BENCH_SEED = 0


# ---------------------------------------------------------------------------
# End-to-end cells
# ---------------------------------------------------------------------------
def run_cell(
    topo,
    routing: str,
    pattern: str,
    load: float,
    concentration: int,
    n_ranks: int,
    packets_per_rank: int,
    seed: int = BENCH_SEED,
    backend: str = "event",
    faults=None,
) -> dict[str, Any]:
    """Build one synthetic-traffic sim, time ``net.run()``, summarise.

    ``faults`` optionally attaches a :class:`FaultSchedule` — the faulted
    scenario cell times the full degraded run (epoch boundaries on the
    batched engine, handler-path forwarding on the event engine).
    """
    from repro.experiments.common import build_synthetic_sim

    net = build_synthetic_sim(
        topo,
        routing,
        pattern,
        load,
        concentration=concentration,
        n_ranks=n_ranks,
        packets_per_rank=packets_per_rank,
        seed=seed,
        backend=backend,
        faults=faults,
    )
    t0 = time.perf_counter()
    stats = net.run()
    wall = time.perf_counter() - t0
    summary = stats.summary()
    delivered = int(summary.get("delivered", 0))
    n_events = int(getattr(stats, "n_events", 0))
    return {
        "topology": topo.name,
        "routing": routing,
        "pattern": pattern,
        "load": load,
        "backend": backend,
        "n_ranks": n_ranks,
        "packets_per_rank": packets_per_rank,
        "delivered": delivered,
        "events": n_events,
        "wall_s": round(wall, 4),
        "packets_per_s": round(delivered / wall, 1) if wall > 0 else 0.0,
        "events_per_s": round(n_events / wall, 1) if wall > 0 else 0.0,
        "mean_latency_ns": round(float(summary.get("mean_latency_ns", 0.0)), 2),
        "mean_hops": round(float(summary.get("mean_hops", 0.0)), 4),
    }


def run_end_to_end(
    preset: str,
    repeats: int = 1,
    progress=None,
    backends: tuple[str, ...] | None = None,
) -> list[dict[str, Any]]:
    """Run every cell of ``preset`` ``repeats`` times; keep the best wall.

    Each (topology, routing, pattern) cell runs once per backend in
    ``backends`` (default: the preset's list), so the tracked file carries
    event and batched rows for the same work at the same seed.
    """
    from repro.topology import SIM_CONFIGS

    spec = BENCH_PRESETS[preset]
    cfg = SIM_CONFIGS[spec["scale"]]
    names = spec["topologies"] or tuple(cfg["topologies"])
    if backends is None:
        backends = spec.get("backends", ("event",))
    rows = []
    for name in names:
        topo_spec = cfg["topologies"][name]
        topo = topo_spec["build"]()
        for routing, pattern in spec["cells"]:
            for backend in backends:
                best: dict[str, Any] | None = None
                for _ in range(max(1, repeats)):
                    row = run_cell(
                        topo,
                        routing,
                        pattern,
                        spec["load"],
                        concentration=topo_spec["concentration"],
                        n_ranks=spec["n_ranks"],
                        packets_per_rank=spec["packets_per_rank"],
                        backend=backend,
                    )
                    if best is None or row["wall_s"] < best["wall_s"]:
                        best = row
                rows.append(best)
                if progress is not None:
                    progress(
                        f"  {best['topology']:>12} {best['routing']:>8} "
                        f"{best['pattern']:>8} {best['backend']:>8}: "
                        f"{best['packets_per_s']:>10,.0f} pkt/s "
                        f"({best['wall_s']:.2f}s)"
                    )
    return rows


# ---------------------------------------------------------------------------
# Scenario cells: motif workloads and fault schedules, per backend
# ---------------------------------------------------------------------------
def _make_motif(kind: str, n_ranks: int):
    from repro.workloads import FFTMotif, Halo3D26Motif, Sweep3DMotif
    from repro.workloads.halo3d import default_halo_grid

    if kind == "fft-balanced":
        return FFTMotif.balanced(n_ranks)
    if kind == "fft-unbalanced":
        return FFTMotif.unbalanced(n_ranks)
    if kind == "halo3d":
        return Halo3D26Motif(default_halo_grid(n_ranks), iterations=2)
    if kind == "sweep3d":
        import math

        side = int(math.isqrt(n_ranks))
        return Sweep3DMotif((side, side), sweeps=2)
    raise ValueError(f"unknown bench motif {kind!r}")


def run_motif_cell(
    topo,
    routing: str,
    motif_kind: str,
    concentration: int,
    n_ranks: int,
    seed: int = BENCH_SEED,
    backend: str = "event",
) -> dict[str, Any]:
    """Time one closed-loop motif run (workload generation untimed)."""
    from repro.experiments.common import cached_tables
    from repro.routing import make_routing
    from repro.sim import SimConfig
    from repro.workloads import run_motif

    tables = cached_tables(topo)
    policy = make_routing(routing, tables, seed=seed)
    motif = _make_motif(motif_kind, n_ranks)
    messages = motif.generate()
    cfg = SimConfig(concentration=concentration)
    t0 = time.perf_counter()
    out = run_motif(
        topo, policy, motif, cfg, placement_seed=seed + 1,
        backend=backend, messages=messages,
    )
    wall = time.perf_counter() - t0
    n = int(out["n_messages"])
    return {
        "workload": f"motif:{motif_kind}",
        "topology": topo.name,
        "routing": routing,
        "backend": backend,
        "n_ranks": n_ranks,
        "messages": n,
        "delivered": int(out["delivered"]),
        "wall_s": round(wall, 4),
        "messages_per_s": round(n / wall, 1) if wall > 0 else 0.0,
        "makespan_ns": round(float(out["makespan_ns"]), 2),
        "mean_latency_ns": round(float(out["mean_latency_ns"]), 2),
    }


def run_collective_cell(
    topo,
    routing: str,
    collective: str,
    algorithm: str,
    concentration: int,
    n_ranks: int,
    total_bytes: int,
    seed: int = BENCH_SEED,
    backend: str = "event",
) -> dict[str, Any]:
    """Time one chunk-level collective run (schedule build untimed)."""
    from repro.experiments.common import cached_tables
    from repro.routing import make_routing
    from repro.sim import SimConfig
    from repro.workloads import CollectiveMotif, run_collective

    tables = cached_tables(topo)
    policy = make_routing(routing, tables, seed=seed)
    motif = CollectiveMotif(
        collective, algorithm, n_ranks, total_bytes=total_bytes
    )
    motif.generate()  # build the schedule outside the timer
    cfg = SimConfig(concentration=concentration)
    t0 = time.perf_counter()
    out = run_collective(
        topo, policy, motif, cfg, placement_seed=seed + 1, backend=backend,
    )
    wall = time.perf_counter() - t0
    n = int(out["n_messages"])
    return {
        "workload": f"collective:{collective}-{algorithm}",
        "topology": topo.name,
        "routing": routing,
        "backend": backend,
        "n_ranks": n_ranks,
        "messages": n,
        "delivered": int(out["delivered"]),
        "wall_s": round(wall, 4),
        "messages_per_s": round(n / wall, 1) if wall > 0 else 0.0,
        "makespan_ns": round(float(out["makespan_ns"]), 2),
        "chunk_done_p99_ns": round(float(out["chunk_done_p99_ns"]), 2),
    }


def run_faulted_cell(
    topo,
    routing: str,
    pattern: str,
    load: float,
    concentration: int,
    n_ranks: int,
    packets_per_rank: int,
    fail_fraction: float,
    recover: bool = True,
    seed: int = BENCH_SEED,
    backend: str = "event",
) -> dict[str, Any]:
    """Time one open-loop run with a mid-run link-fault schedule."""
    from repro.sim import SimConfig
    from repro.sim.faults import FaultSchedule

    cfg = SimConfig(concentration=concentration)
    horizon = (
        packets_per_rank * cfg.packet_bytes / (load * cfg.bytes_per_ns)
    )
    schedule = FaultSchedule.random_link_faults(
        topo.graph,
        fail_fraction,
        t_fail=0.25 * horizon,
        seed=seed + 1,
        t_recover=0.75 * horizon if recover else None,
    )
    row = run_cell(
        topo,
        routing,
        pattern,
        load,
        concentration=concentration,
        n_ranks=n_ranks,
        packets_per_rank=packets_per_rank,
        seed=seed,
        backend=backend,
        faults=schedule,
    )
    row["workload"] = f"faulted:{fail_fraction}"
    return row


def run_congested_cell(
    topo,
    routing: str,
    pattern: str,
    load: float,
    concentration: int,
    n_ranks: int,
    packets_per_rank: int,
    buffer_packets: int,
    loss_prob: float,
    max_attempts: int = 2,
    seed: int = BENCH_SEED,
    backend: str = "event",
) -> dict[str, Any]:
    """Time one open-loop run under congestion realism.

    Finite credit/backpressure input buffers of ``buffer_packets``
    packets plus a lossy retransmitting channel — the configuration the
    saturation-congestion experiment sweeps, timed per backend so the
    batched credit loop's speedup is a tracked figure.
    """
    from repro.experiments.common import build_synthetic_sim
    from repro.sim import ChannelConfig, SimConfig

    cfg = SimConfig(
        concentration=concentration,
        finite_buffers=buffer_packets > 0,
        buffer_bytes=max(buffer_packets, 1) * 4096,
        channel=ChannelConfig(
            loss_prob=loss_prob, jitter_ns=10.0,
            max_attempts=max_attempts, backoff_ns=30.0, seed=seed,
        ) if loss_prob > 0.0 else None,
    )
    net = build_synthetic_sim(
        topo, routing, pattern, load, concentration=concentration,
        n_ranks=n_ranks, packets_per_rank=packets_per_rank, seed=seed,
        config=cfg, backend=backend,
    )
    t0 = time.perf_counter()
    stats = net.run()
    wall = time.perf_counter() - t0
    summary = stats.summary()
    delivered = int(summary.get("delivered", 0))
    return {
        "workload": f"congested:b{buffer_packets}-p{loss_prob}",
        "topology": topo.name,
        "routing": routing,
        "pattern": pattern,
        "load": load,
        "backend": backend,
        "n_ranks": n_ranks,
        "packets_per_rank": packets_per_rank,
        "delivered": delivered,
        "dropped": int(stats.n_dropped),
        "retransmits": int(stats.n_retransmits),
        "events": int(getattr(stats, "n_events", 0)),
        "wall_s": round(wall, 4),
        "packets_per_s": round(delivered / wall, 1) if wall > 0 else 0.0,
        "mean_latency_ns": round(
            float(summary.get("mean_latency_ns", 0.0)), 2
        ),
    }


def run_scenarios(
    preset: str,
    repeats: int = 1,
    progress=None,
    backends: tuple[str, ...] | None = None,
) -> list[dict[str, Any]]:
    """Run the preset's scenario cells (motif, collective, faulted,
    congested, searched) per backend."""
    from repro.topology import SIM_CONFIGS

    spec = BENCH_PRESETS[preset]
    scenarios = spec.get("scenarios")
    if not scenarios:
        return []
    cfg = SIM_CONFIGS[spec["scale"]]
    if backends is None:
        backends = spec.get("backends", ("event",))
    rows: list[dict[str, Any]] = []
    for kind, sc in scenarios.items():
        if kind == "searched":
            # The spectral search runs once, outside every timer — the
            # cell measures the engines on its irregular output, not the
            # search itself.
            from repro.topology import swap_searched_topology

            topo = swap_searched_topology(
                sc["n_routers"], sc["radix"], budget=sc["budget"],
                seed=BENCH_SEED,
            )
            conc = sc["concentration"]
        else:
            topo_spec = cfg["topologies"][sc["topology"]]
            topo = topo_spec["build"]()
            conc = topo_spec["concentration"]
        for backend in backends:
            best: dict[str, Any] | None = None
            for _ in range(max(1, repeats)):
                if kind == "motif":
                    row = run_motif_cell(
                        topo, sc["routing"], sc["motif"], conc,
                        n_ranks=sc["n_ranks"], backend=backend,
                    )
                elif kind == "collective":
                    row = run_collective_cell(
                        topo, sc["routing"], sc["collective"],
                        sc["algorithm"], conc, n_ranks=sc["n_ranks"],
                        total_bytes=sc["total_bytes"], backend=backend,
                    )
                elif kind == "searched":
                    row = run_cell(
                        topo, sc["routing"], sc["pattern"], sc["load"],
                        concentration=conc, n_ranks=sc["n_ranks"],
                        packets_per_rank=sc["packets_per_rank"],
                        backend=backend,
                    )
                    row["workload"] = f"searched:b{sc['budget']}"
                elif kind == "congested":
                    row = run_congested_cell(
                        topo, sc["routing"], sc["pattern"], sc["load"],
                        concentration=conc, n_ranks=sc["n_ranks"],
                        packets_per_rank=sc["packets_per_rank"],
                        buffer_packets=sc["buffer_packets"],
                        loss_prob=sc["loss_prob"],
                        max_attempts=sc.get("max_attempts", 2),
                        backend=backend,
                    )
                else:
                    row = run_faulted_cell(
                        topo, sc["routing"], sc["pattern"], sc["load"],
                        concentration=conc, n_ranks=sc["n_ranks"],
                        packets_per_rank=sc["packets_per_rank"],
                        fail_fraction=sc["fail_fraction"],
                        recover=sc.get("recover", True),
                        backend=backend,
                    )
                if best is None or row["wall_s"] < best["wall_s"]:
                    best = row
            rows.append(best)
            if progress is not None:
                rate = best.get("messages_per_s") or best.get("packets_per_s")
                progress(
                    f"  {best['workload']:>20} {best['routing']:>8} "
                    f"{best['backend']:>8}: {rate:>10,.0f} units/s "
                    f"({best['wall_s']:.2f}s)"
                )
    return rows


# ---------------------------------------------------------------------------
# Scale cells: oracle-routed SpectralFly on the sharded engine
# ---------------------------------------------------------------------------
def run_scale_cell(sc: dict[str, Any], seed: int = BENCH_SEED) -> dict[str, Any]:
    """Time one oracle-backed open-loop cell on the sharded engine.

    These cells exist to keep the million-node path honest: an LPS
    instance past the dense-table wall is built, routed through the
    on-demand Cayley oracle (no O(n^2) distance matrix is ever
    materialised — asserted, not assumed), and run on the process-sharded
    batched engine.  The timer covers ``net.run()`` only; topology
    construction and oracle setup (one BFS ball) are reported separately
    in ``setup_wall_s``.
    """
    from repro.experiments.common import build_synthetic_sim
    from repro.sim import SimConfig
    from repro.topology import build_lps

    t0 = time.perf_counter()
    topo = build_lps(sc["p"], sc["q"])
    cfg = SimConfig(
        concentration=sc["concentration"],
        backend="sharded",
        shard_workers=sc["shard_workers"],
    )
    net = build_synthetic_sim(
        topo,
        sc["routing"],
        sc["pattern"],
        sc["load"],
        concentration=sc["concentration"],
        n_ranks=sc["n_ranks"],
        packets_per_rank=sc["packets_per_rank"],
        seed=seed,
        config=cfg,
        backend="sharded",
        oracle=sc["oracle"],
    )
    setup_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    stats = net.run()
    wall = time.perf_counter() - t0
    if net.tables._dist is not None:  # pragma: no cover - the whole point
        raise RuntimeError(
            f"scale cell {sc['name']} materialised the dense distance "
            "matrix; the oracle seam leaked"
        )
    summary = stats.summary()
    delivered = int(summary.get("delivered", 0))
    return {
        "name": sc["name"],
        "topology": topo.name,
        "routers": topo.n_routers,
        "routing": sc["routing"],
        "pattern": sc["pattern"],
        "load": sc["load"],
        "backend": "sharded",
        "shard_workers": sc["shard_workers"],
        "oracle": sc["oracle"],
        "n_ranks": sc["n_ranks"],
        "packets_per_rank": sc["packets_per_rank"],
        "delivered": delivered,
        "setup_wall_s": round(setup_wall, 4),
        "wall_s": round(wall, 4),
        "packets_per_s": round(delivered / wall, 1) if wall > 0 else 0.0,
        "mean_latency_ns": round(float(summary.get("mean_latency_ns", 0.0)), 2),
        "mean_hops": round(float(summary.get("mean_hops", 0.0)), 4),
        "dense_table_bytes_avoided": int(topo.n_routers) ** 2 * 2,
    }


def run_scale_cells(
    preset: str, repeats: int = 1, progress=None
) -> list[dict[str, Any]]:
    """Run the preset's ``scale_cells`` (best wall over ``repeats``)."""
    spec = BENCH_PRESETS[preset]
    cells = spec.get("scale_cells")
    if not cells:
        return []
    rows: list[dict[str, Any]] = []
    for sc in cells:
        best: dict[str, Any] | None = None
        for _ in range(max(1, repeats)):
            row = run_scale_cell(sc)
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        rows.append(best)
        if progress is not None:
            progress(
                f"  {best['name']:>26} ({best['routers']:,} routers): "
                f"{best['packets_per_s']:>10,.0f} pkt/s "
                f"({best['wall_s']:.2f}s)"
            )
    return rows


def summarize_scenarios(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-scenario batched-vs-event speedups (same cell, same seed)."""
    out: dict[str, Any] = {}
    by_workload: dict[str, dict[str, float]] = {}
    for r in rows:
        by_workload.setdefault(r["workload"], {})[r["backend"]] = r["wall_s"]
    for workload, walls in sorted(by_workload.items()):
        if "event" in walls and "batched" in walls and walls["batched"] > 0:
            key = workload.split(":", 1)[0] + "_speedup_vs_event"
            out[key] = round(walls["event"] / walls["batched"], 2)
    return out


def summarize(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate cells into the headline packets/s (total work / total wall)."""
    total_pkts = sum(r["delivered"] for r in rows)
    total_events = sum(r["events"] for r in rows)
    total_wall = sum(r["wall_s"] for r in rows)
    return {
        "cells": len(rows),
        "total_packets": total_pkts,
        "total_events": total_events,
        "total_wall_s": round(total_wall, 3),
        "packets_per_s": round(total_pkts / total_wall, 1) if total_wall else 0.0,
        "events_per_s": round(total_events / total_wall, 1) if total_wall else 0.0,
        "median_cell_packets_per_s": round(
            statistics.median(r["packets_per_s"] for r in rows), 1
        )
        if rows
        else 0.0,
    }


# ---------------------------------------------------------------------------
# Micro benchmarks
# ---------------------------------------------------------------------------
def _time_loop(fn, n: int) -> float:
    """Ops/second of ``fn(i)`` over ``n`` iterations."""
    t0 = time.perf_counter()
    for i in range(n):
        fn(i)
    dt = time.perf_counter() - t0
    return n / dt if dt > 0 else 0.0


def run_micro(n_ops: int = 50_000) -> dict[str, float]:
    """Per-hop primitive rates on the small SpectralFly topology."""
    import numpy as np

    from repro.routing import RoutingTables, make_routing
    from repro.topology import build_lps
    from repro.utils.rng import as_rng

    topo = build_lps(11, 7)
    g = topo.graph
    tables = RoutingTables(g)
    policy = make_routing("minimal", tables, seed=0)

    rng = np.random.default_rng(12345)
    n = g.n
    # Pre-draw query operands so the timed loops measure lookups only.
    us = rng.integers(0, n, size=n_ops).tolist()
    heads = np.repeat(np.arange(n), np.diff(g.indptr))
    pick = rng.integers(0, len(g.indices), size=n_ops)
    edge_u = heads[pick].tolist()
    edge_v = g.indices[pick].tolist()
    ds = rng.integers(0, n, size=n_ops).tolist()
    pairs = [(u, d) for u, d in zip(us, ds) if u != d]

    out = {
        "edge_id_lookups_per_s": _time_loop(
            lambda i: tables.directed_edge_id(edge_u[i], edge_v[i]), n_ops
        ),
        "min_next_hop_draws_per_s": _time_loop(
            lambda i: policy._random_minimal(*pairs[i % len(pairs)]), n_ops
        ),
    }

    # RNG: one generator call per value vs one refilled block per 2^13 values.
    single = as_rng(7)
    out["rng_single_draws_per_s"] = _time_loop(
        lambda i: int(single.integers(8)), n_ops
    )
    block_rng = as_rng(7)
    state = {"buf": [], "pos": 0}

    def batched(i):
        pos = state["pos"]
        buf = state["buf"]
        if pos >= len(buf):
            buf = state["buf"] = block_rng.random(8192).tolist()
            pos = 0
        state["pos"] = pos + 1
        return int(buf[pos] * 8)

    out["rng_batched_draws_per_s"] = _time_loop(batched, n_ops)
    return {k: round(v, 1) for k, v in out.items()}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def run_bench(
    preset: str = "small",
    out_path: str | Path | None = "BENCH_sim.json",
    repeats: int = 1,
    baseline: dict[str, Any] | None = None,
    micro: bool = True,
    progress=print,
    backends: tuple[str, ...] | None = None,
) -> dict[str, Any]:
    """Run the benchmark suite and (optionally) write ``BENCH_sim.json``.

    ``summary`` aggregates the *event* cells (comparable to the recorded
    baseline across PRs); when batched cells ran, ``summary_batched``
    aggregates those and carries ``speedup_vs_event`` (same cells, same
    seed, total-packets / total-wall of each engine).
    """
    import numpy as np

    if preset not in BENCH_PRESETS:
        raise ValueError(
            f"unknown bench preset {preset!r}; options {list(BENCH_PRESETS)}"
        )
    if progress is not None:
        progress(f"== repro bench — preset {preset!r}, repeats {repeats}")
    t0 = time.perf_counter()
    rows = run_end_to_end(
        preset, repeats=repeats, progress=progress, backends=backends
    )
    scenario_rows = run_scenarios(
        preset, repeats=repeats, progress=progress, backends=backends
    )
    scale_rows = run_scale_cells(preset, repeats=repeats, progress=progress)
    event_rows = [r for r in rows if r["backend"] == "event"]
    batched_rows = [r for r in rows if r["backend"] == "batched"]
    # The headline summary always says which engine(s) it aggregates:
    # event cells when any ran (comparable across PRs), otherwise whatever
    # did — a batched-only run must not masquerade as event numbers.
    summary = summarize(event_rows or rows)
    summary["backend"] = (
        "event" if event_rows
        else ",".join(sorted({r["backend"] for r in rows}))
    )
    result: dict[str, Any] = {
        "schema": 3,
        "kind": "repro-sim-perf",
        "preset": preset,
        "seed": BENCH_SEED,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "cells": rows,
        "summary": summary,
    }
    if batched_rows and event_rows:
        # Only alongside event cells — a batched-only run's aggregates are
        # already the (tagged) headline summary, not worth duplicating.
        sb = summarize(batched_rows)
        if summary["packets_per_s"]:
            sb["speedup_vs_event"] = round(
                sb["packets_per_s"] / summary["packets_per_s"], 2
            )
        result["summary_batched"] = sb
    if scenario_rows:
        result["scenario_cells"] = scenario_rows
        ss = summarize_scenarios(scenario_rows)
        if ss:
            result["summary_scenarios"] = ss
    if scale_rows:
        result["scale_cells"] = scale_rows
    if micro:
        if progress is not None:
            progress("  micro benchmarks...")
        result["micro"] = run_micro()
    if baseline:
        result["baseline"] = baseline
        base = float(baseline.get("packets_per_s", 0.0))
        # The recorded baselines are event-engine measurements; comparing
        # a batched-only run against one would fake a ~5x "optimisation".
        if base > 0 and summary["backend"] == "event":
            result["summary"]["speedup_vs_baseline"] = round(
                summary["packets_per_s"] / base, 2
            )
    result["bench_wall_s"] = round(time.perf_counter() - t0, 2)
    if progress is not None:
        progress(
            f"== {summary['backend']}: {summary['total_packets']:,} "
            f"packets in {summary['total_wall_s']:.2f}s of simulation -> "
            f"{summary['packets_per_s']:,.0f} pkt/s, "
            f"{summary['events_per_s']:,.0f} events/s"
        )
        if "summary_batched" in result and event_rows:
            sb = result["summary_batched"]
            progress(
                f"== batched: {sb['total_packets']:,} packets in "
                f"{sb['total_wall_s']:.2f}s -> {sb['packets_per_s']:,.0f} "
                f"pkt/s ({sb.get('speedup_vs_event', 0):.2f}x the event "
                "engine)"
            )
        if "summary_scenarios" in result:
            ss = result["summary_scenarios"]
            progress(
                "== scenarios: "
                + ", ".join(f"{k} {v:.2f}x" for k, v in ss.items())
            )
        if "scale_cells" in result:
            progress(
                "== scale: "
                + ", ".join(
                    f"{r['name']} {r['packets_per_s']:,.0f} pkt/s"
                    for r in result["scale_cells"]
                )
            )
        if "speedup_vs_baseline" in result["summary"]:
            progress(
                f"== speedup vs recorded baseline: "
                f"{result['summary']['speedup_vs_baseline']:.2f}x"
            )
    if out_path is not None:
        path = Path(out_path)
        path.write_text(json.dumps(result, indent=2) + "\n")
        if progress is not None:
            progress(f"== wrote {path}")
    return result


# ---------------------------------------------------------------------------
# Regression check: fresh run vs the committed BENCH_sim.json
# ---------------------------------------------------------------------------
#: ``bench --check`` flags a regression when a fresh throughput figure
#: falls more than this fraction below the committed one.  25% absorbs
#: machine-to-machine and run-to-run noise while still catching a real
#: hot-path regression; being *faster* than the committed file never fails.
CHECK_TOLERANCE = 0.25


def compare_to_committed(
    committed: dict[str, Any], fresh: dict[str, Any],
    tolerance: float = CHECK_TOLERANCE,
) -> list[str]:
    """Regressions of ``fresh`` vs ``committed``; empty list == healthy.

    Compared figures: the event-engine headline packets/s, the batched
    packets/s (when both files carry batched cells), and the batched
    speedup over the event engine — the last one is machine-independent,
    so it is the strongest signal on CI hardware that differs from the
    machine that produced the committed file.
    """
    problems: list[str] = []

    def check(label: str, old: float | None, new: float | None) -> None:
        if not old or new is None:
            return
        if new < (1.0 - tolerance) * old:
            problems.append(
                f"{label}: fresh {new:,.1f} is more than "
                f"{tolerance:.0%} below committed {old:,.1f}"
            )

    old_s = committed.get("summary", {})
    new_s = fresh.get("summary", {})
    # Headline summaries are only comparable when they aggregate the same
    # engine (schema-1 files predate the tag and were event-only).
    if old_s.get("backend", "event") == new_s.get("backend", "event"):
        check(
            f"{old_s.get('backend', 'event')} packets/s",
            old_s.get("packets_per_s"),
            new_s.get("packets_per_s"),
        )
    old_b = committed.get("summary_batched", {})
    new_b = fresh.get("summary_batched", {})
    check(
        "batched packets/s",
        old_b.get("packets_per_s"),
        new_b.get("packets_per_s"),
    )
    check(
        "batched speedup vs event",
        old_b.get("speedup_vs_event"),
        new_b.get("speedup_vs_event"),
    )
    # Scenario speedups (motif + faulted cells) are same-machine ratios
    # like the headline speedup, so they transfer to CI hardware too.
    old_s = committed.get("summary_scenarios", {})
    new_s2 = fresh.get("summary_scenarios", {})
    for key in sorted(set(old_s) & set(new_s2)):
        check(f"scenario {key}", old_s.get(key), new_s2.get(key))
    # Scale cells (oracle + sharded engine past the dense-table wall) are
    # matched by name so presets can gain or drop instances without
    # breaking the check.
    old_sc = {r["name"]: r for r in committed.get("scale_cells", [])}
    new_sc = {r["name"]: r for r in fresh.get("scale_cells", [])}
    for name in sorted(set(old_sc) & set(new_sc)):
        check(
            f"scale cell {name} packets/s",
            old_sc[name].get("packets_per_s"),
            new_sc[name].get("packets_per_s"),
        )
    return problems


def run_check(
    committed_path: str | Path = "BENCH_sim.json",
    repeats: int = 1,
    tolerance: float = CHECK_TOLERANCE,
    progress=print,
) -> int:
    """``python -m repro bench --check``: 0 if healthy, 1 on regression.

    Re-runs the committed file's own preset (never overwriting the file)
    and compares with :func:`compare_to_committed`.  Wired into CI's
    non-gating perf-smoke job.
    """
    path = Path(committed_path)
    if not path.exists():
        if progress is not None:
            progress(f"bench --check: no committed file at {path}")
        return 1
    committed = json.loads(path.read_text())
    preset = committed.get("preset", "small")
    if progress is not None:
        progress(f"== bench --check vs {path} (preset {preset!r})")
    fresh = run_bench(
        preset=preset,
        out_path=None,
        repeats=repeats,
        micro=False,
        progress=progress,
    )
    problems = compare_to_committed(committed, fresh, tolerance=tolerance)
    if progress is not None:
        if problems:
            for p in problems:
                progress(f"REGRESSION {p}")
        else:
            progress(
                f"== check ok: within {tolerance:.0%} of the committed "
                "figures (or faster)"
            )
    return 1 if problems else 0
