"""The experiment registry: every paper figure/table/ablation as a named spec.

Each :class:`ExperimentDef` declares

* the driver function (dotted path into ``repro.experiments``),
* ``small`` and ``full`` parameter presets (laptop-scale vs paper-scale —
  the same configurations the tier-2 benchmark harness uses),
* *cell axes*: tuple-valued parameters along which the experiment factors
  into independent cells.  The executor splits the cross product of the
  axes into single-value cells, runs them in parallel, caches each cell by
  spec hash, and concatenates the rows back in deterministic order — so a
  sweep that overlaps a previous run only computes the new cells.

Composite entries (``parts``) bundle several drivers under one name, e.g.
``fig4`` runs all four panels of Figure 4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import BackendCapabilityError
from repro.runner.spec import ExperimentSpec, resolve_callable
from repro.sim import capabilities

#: The paper's Table II LPS/SlimFly size pairs, duplicated here as literals
#: so registry import does not pull in the experiment modules.
_TABLE2_PAIRS = (((11, 7), 9), ((19, 7), 13), ((23, 11), 17), ((29, 13), 23))
_PATTERNS = ("random", "shuffle", "reverse", "transpose")
_MOTIFS = ("Halo3D-26", "Sweep3D", "FFT (balanced)", "FFT (unbalanced)")


def _nesting_depth(value: Any) -> int:
    """Tuple/list nesting depth (first-element convention for ragged data)."""
    depth = 0
    while isinstance(value, (tuple, list)) and len(value) > 0:
        depth += 1
        value = value[0]
    return depth + (1 if isinstance(value, (tuple, list)) else 0)


@dataclass(frozen=True)
class ExperimentDef:
    """A registered experiment: driver + presets + parallelization axes."""

    name: str
    title: str
    fn: str = ""
    presets: dict[str, dict[str, Any]] = field(default_factory=dict)
    cell_axes: tuple[str, ...] = ()
    parts: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    runtime: str = ""  # human expectation for the small preset
    #: Simulation features (``repro.sim.capabilities``) the driver needs
    #: from its ``backend`` parameter.  Declaring them lets the registry
    #: validate ``--set backend=...`` at spec time — before any topology
    #: is built — with the canonical error naming the backends that work.
    #: Empty for experiments that never touch a simulation engine.
    features: tuple[str, ...] = ()

    @property
    def is_composite(self) -> bool:
        return bool(self.parts)

    @property
    def supported_backends(self) -> tuple[str, ...]:
        """Backends implementing every feature this experiment needs."""
        return capabilities.supported_backends(*self.features)

    def validate_backend(self, backend: Any) -> None:
        """Raise the canonical error unless ``backend`` can run this spec.

        Called from :meth:`params` on every resolved parameter set, so an
        invalid ``--set backend=...`` fails here — at registry/spec time
        with the supported backends in the message — instead of surfacing
        a raw engine error from deep inside a sweep cell.
        """
        if not self.features:
            raise BackendCapabilityError(
                f"experiment {self.name!r} does not take a backend "
                "parameter (it declares no simulation capability "
                "features)",
                backend=backend,
            )
        capabilities.require_all(backend, self.features, context=self.name)

    def params(self, preset: str = "small", overrides: dict[str, Any] | None = None) -> dict[str, Any]:
        """Resolved kwargs for the driver at ``preset`` (+ CLI overrides).

        An override for a tuple-valued preset parameter may be given as one
        element of that tuple (``--set loads=0.5``, a sweep-axis value, or
        ``--set instances=(3,7)`` for a nested parameter); it is wrapped in
        one-element tuples until its nesting depth matches the preset's, so
        drivers that iterate the parameter keep working.
        """
        if preset not in self.presets:
            raise KeyError(
                f"{self.name} has no preset {preset!r} "
                f"(available: {sorted(self.presets)})"
            )
        params = dict(self.presets[preset])
        for key, value in (overrides or {}).items():
            target = _nesting_depth(params[key]) if key in params else 0
            while target > 0 and _nesting_depth(value) < target:
                value = (value,)
            params[key] = value
        if "backend" in params:
            self.validate_backend(params["backend"])
        return params

    def resolve(self) -> Callable[..., Any]:
        """The driver callable itself (for direct/benchmark use)."""
        return resolve_callable(self.fn)

    def accepted_params(self) -> frozenset[str]:
        """Parameter names the driver's signature accepts.

        Composite experiments forward each part only the overrides its
        driver takes; the executor unions these sets to reject override
        keys that *no* part accepts (a silent typo otherwise).
        """
        import inspect

        return frozenset(inspect.signature(self.resolve()).parameters)

    def spec(self, preset: str = "small", overrides: dict[str, Any] | None = None) -> ExperimentSpec:
        if self.is_composite:
            raise ValueError(f"{self.name} is composite; build specs per part")
        return ExperimentSpec.make(self.name, self.fn, self.params(preset, overrides))

    def cells(self, spec: ExperimentSpec) -> list[ExperimentSpec]:
        """Split ``spec`` into independent single-value cells.

        Only axes whose parameter is a tuple/list with more than one value
        are split; everything else passes through unchanged.  The cross
        product iterates the axes in declaration order (first axis
        outermost), matching each driver's own loop nesting so concatenated
        cell rows reproduce the unsplit row order exactly.
        """
        kwargs = spec.kwargs
        split_axes = [
            ax
            for ax in self.cell_axes
            if isinstance(kwargs.get(ax), (tuple, list)) and len(kwargs[ax]) > 1
        ]
        if not split_axes:
            return [spec]
        cells = []
        for combo in itertools.product(*(kwargs[ax] for ax in split_axes)):
            cell_kwargs = dict(kwargs)
            label = []
            for ax, value in zip(split_axes, combo):
                cell_kwargs[ax] = (value,)
                label.append(f"{ax}={value}")
            cells.append(
                ExperimentSpec.make(
                    f"{spec.name}[{','.join(label)}]", spec.fn, cell_kwargs
                )
            )
        return cells


def _exp(*args: ExperimentDef) -> dict[str, ExperimentDef]:
    return {d.name: d for d in args}


EXPERIMENTS: dict[str, ExperimentDef] = _exp(
    ExperimentDef(
        name="table1",
        title="Table I — structural properties across the five size classes",
        fn="repro.experiments.table1:run",
        presets={"small": {"classes": (1, 2, 3)}, "full": {"classes": (1, 2, 3, 4, 5)}},
        cell_axes=("classes",),
        tags=("table", "structural"),
        runtime="~10 s",
    ),
    ExperimentDef(
        name="table2",
        title="Table II — wire length and energy efficiency of laid-out topologies",
        fn="repro.experiments.table2:run",
        presets={
            "small": {"pairs": _TABLE2_PAIRS[:2], "skywalk_instances": 3},
            "full": {"pairs": _TABLE2_PAIRS, "skywalk_instances": 3},
        },
        cell_axes=("pairs",),
        tags=("table", "layout"),
        runtime="~30 s",
    ),
    ExperimentDef(
        name="fig3",
        title="Fig 3 — LPS neighbourhood structure (tree-likeness, girth)",
        fn="repro.experiments.fig3:run",
        presets={"small": {"instances": ((3, 7), (3, 17))}, "full": {"instances": ((3, 7), (3, 17))}},
        cell_axes=("instances",),
        tags=("figure", "structural"),
        runtime="~1 s",
    ),
    ExperimentDef(
        name="fig4.design_space",
        title="Fig 4 (upper left) — feasible LPS (p, q) design space",
        fn="repro.experiments.fig4:run_design_space",
        presets={"small": {"max_pq": 300}, "full": {"max_pq": 300}},
        tags=("figure", "structural"),
        runtime="<1 s",
    ),
    ExperimentDef(
        name="fig4.normalized_bisection",
        title="Fig 4 (upper right) — normalized bisection bandwidth of LPS",
        fn="repro.experiments.fig4:run_normalized_bisection",
        presets={
            "small": {"max_p": 12, "max_q": 14, "repeats": 3},
            "full": {"max_p": 24, "max_q": 20, "repeats": 3},
        },
        tags=("figure", "structural"),
        runtime="~10 s",
    ),
    ExperimentDef(
        name="fig4.feasible_sizes",
        title="Fig 4 (lower left) — feasible topology sizes per radix",
        fn="repro.experiments.fig4:run_feasible_sizes",
        presets={"small": {"max_vertices": 10_000}, "full": {"max_vertices": 10_000}},
        tags=("figure", "structural"),
        runtime="<1 s",
    ),
    ExperimentDef(
        name="fig4.bisection_comparison",
        title="Fig 4 (lower right) — bisection bandwidth across families",
        fn="repro.experiments.fig4:run_bisection_comparison",
        presets={
            "small": {"classes": (1, 2), "repeats": 3},
            "full": {"classes": (1, 2, 3), "repeats": 3},
        },
        cell_axes=("classes",),
        tags=("figure", "structural"),
        runtime="~30 s",
    ),
    ExperimentDef(
        name="fig4",
        title="Fig 4 — all four panels (design space + bisection)",
        parts=(
            "fig4.design_space",
            "fig4.normalized_bisection",
            "fig4.feasible_sizes",
            "fig4.bisection_comparison",
        ),
        tags=("figure", "structural"),
        runtime="~1 min",
    ),
    ExperimentDef(
        name="fig5",
        title="Fig 5 — structural properties under random link failures",
        fn="repro.experiments.fig5:run",
        presets={
            "small": {
                "class_id": 1,
                "proportions": (0.0, 0.1, 0.2, 0.3),
                "max_trials_per_batch": 2,
                "families": ("LPS", "SlimFly", "BundleFly", "DragonFly"),
            },
            "full": {
                "class_id": 2,
                "proportions": (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
                "max_trials_per_batch": 10,
                "families": ("LPS", "SlimFly", "BundleFly", "DragonFly"),
            },
        },
        cell_axes=("families", "proportions"),
        tags=("figure", "structural", "resilience"),
        runtime="~1 min",
    ),
    ExperimentDef(
        name="fig6",
        title="Fig 6 — synthetic traffic speedup vs DragonFly under UGAL-L",
        fn="repro.experiments.fig6:run",
        presets={
            "small": {
                "scale": "small",
                "patterns": _PATTERNS,
                "loads": (0.1, 0.3, 0.5, 0.7),
                "packets_per_rank": 15,
                # Simulation engine: "event" (reference) or "batched" (the
                # vectorized cycle-driven backend; statistically, not
                # event-for-event, equivalent — docs/performance.md).
                # Override with --set backend=batched.
                "backend": "event",
            },
            "full": {
                "scale": "paper",
                "patterns": _PATTERNS,
                "loads": (0.1, 0.2, 0.3, 0.5, 0.6, 0.7),
                "packets_per_rank": 20,
                "backend": "event",
            },
        },
        cell_axes=("patterns", "loads"),
        tags=("figure", "simulation"),
        runtime="~1 min",
        features=(capabilities.OPEN_LOOP, capabilities.ADAPTIVE_ROUTING),
    ),
    ExperimentDef(
        name="fig7",
        title="Fig 7 — random traffic under minimal routing",
        fn="repro.experiments.fig7:run",
        presets={
            "small": {"scale": "small", "loads": (0.1, 0.3, 0.5, 0.7),
                      "packets_per_rank": 15, "backend": "event"},
            "full": {
                "scale": "paper",
                "loads": (0.1, 0.2, 0.3, 0.5, 0.6, 0.7),
                "packets_per_rank": 20,
                "backend": "event",
            },
        },
        cell_axes=("loads",),
        tags=("figure", "simulation"),
        runtime="~30 s",
        features=(capabilities.OPEN_LOOP,),
    ),
    ExperimentDef(
        name="fig8",
        title="Fig 8 — Valiant vs minimal routing on SpectralFly",
        fn="repro.experiments.fig8:run",
        presets={
            "small": {
                "scale": "small",
                "patterns": _PATTERNS,
                "loads": (0.1, 0.3, 0.5, 0.7),
                "packets_per_rank": 15,
                "backend": "event",
            },
            "full": {
                "scale": "paper",
                "patterns": _PATTERNS,
                "loads": (0.1, 0.2, 0.3, 0.5, 0.6, 0.7),
                "packets_per_rank": 20,
                "backend": "event",
            },
        },
        cell_axes=("patterns", "loads"),
        tags=("figure", "simulation"),
        runtime="~1 min",
        features=(capabilities.OPEN_LOOP,),
    ),
    ExperimentDef(
        name="fig9",
        title="Fig 9 — Ember motifs under minimal routing",
        fn="repro.experiments.fig9:run",
        presets={
            # backend: "event" (reference) or "batched" (vectorized
            # frontier runner) — override with --set backend=batched.
            "small": {"scale": "small", "motif_names": _MOTIFS,
                      "backend": "event"},
            "full": {"scale": "paper", "motif_names": _MOTIFS,
                     "backend": "event"},
        },
        cell_axes=("motif_names",),
        tags=("figure", "simulation", "motifs"),
        runtime="~2 min",
        features=(capabilities.MOTIFS,),
    ),
    ExperimentDef(
        name="fig10",
        title="Fig 10 — Ember motifs under UGAL routing",
        fn="repro.experiments.fig10:run",
        presets={
            "small": {"scale": "small", "motif_names": _MOTIFS,
                      "backend": "event"},
            "full": {"scale": "paper", "motif_names": _MOTIFS,
                     "backend": "event"},
        },
        cell_axes=("motif_names",),
        tags=("figure", "simulation", "motifs"),
        runtime="~2 min",
        features=(capabilities.MOTIFS,),
    ),
    ExperimentDef(
        name="fig11",
        title="Fig 11 — end-to-end latency relative to SkyWalk",
        fn="repro.experiments.fig11:run",
        presets={
            "small": {"pairs": _TABLE2_PAIRS[:2], "skywalk_instances": 3},
            "full": {"pairs": _TABLE2_PAIRS, "skywalk_instances": 3},
        },
        cell_axes=("pairs",),
        tags=("figure", "layout"),
        runtime="~30 s",
    ),
    ExperimentDef(
        name="survey",
        title="Spectral survey — distance of classical topologies from Ramanujan",
        fn="repro.experiments.survey:run",
        presets={"small": {"seed": 0, "with_xpander": True}, "full": {"seed": 0, "with_xpander": True}},
        tags=("extension", "structural"),
        runtime="~30 s",
    ),
    ExperimentDef(
        name="saturation",
        title="Saturation sweep — where each topology stops absorbing load",
        fn="repro.experiments.saturation:run",
        presets={
            "small": {"scale": "small", "packets_per_rank": 15,
                      "backend": "event"},
            "full": {"scale": "paper", "packets_per_rank": 20,
                     "backend": "event"},
        },
        tags=("extension", "simulation"),
        runtime="~2 min",
        features=(capabilities.OPEN_LOOP, capabilities.ADAPTIVE_ROUTING),
    ),
    ExperimentDef(
        name="saturation-congestion",
        title="Saturation under congestion — routing rankings with finite buffers and lossy links",
        fn="repro.experiments.saturation_congestion:run",
        presets={
            "small": {
                "scale": "small",
                "families": ("SpectralFly", "DragonFly", "SlimFly",
                             "BundleFly"),
                "routings": ("minimal", "valiant", "ugal"),
                "load": 0.55,
                "packets_per_rank": 10,
                # Both engines implement finite buffers and lossy links;
                # the batched one is the fast path (--set backend=batched,
                # tolerances in docs/performance.md).
                "backend": "event",
            },
            "full": {
                "scale": "paper",
                "families": ("SpectralFly", "DragonFly", "SlimFly",
                             "BundleFly"),
                "routings": ("minimal", "valiant", "ugal"),
                "load": 0.55,
                "packets_per_rank": 20,
                "backend": "event",
            },
        },
        # The ranking and its inversion flag are computed inside a family
        # cell (across routings and regimes), so only families split.
        cell_axes=("families",),
        tags=("extension", "simulation", "congestion"),
        runtime="~2 min",
        features=(capabilities.OPEN_LOOP, capabilities.FINITE_BUFFERS,
                  capabilities.LOSSY_LINKS, capabilities.ADAPTIVE_ROUTING),
    ),
    ExperimentDef(
        name="resilience-traffic",
        title="Resilience under live traffic — mid-run link failures vs throughput/latency",
        fn="repro.experiments.resilience_traffic:run",
        presets={
            "small": {
                "scale": "small",
                "families": ("SpectralFly", "DragonFly", "SlimFly", "BundleFly"),
                "routings": ("minimal", "ugal"),
                "fail_fractions": (0.0, 0.05, 0.15),
                "packets_per_rank": 10,
                "recover": True,
                # Either engine runs the faulted sweep; the batched one
                # applies the schedule as epoch boundaries (--set
                # backend=batched, see docs/performance.md).
                "backend": "event",
            },
            "full": {
                "scale": "paper",
                "families": ("SpectralFly", "DragonFly", "SlimFly", "BundleFly"),
                "routings": ("minimal", "valiant", "ugal"),
                "fail_fractions": (0.0, 0.05, 0.1, 0.2, 0.3),
                "packets_per_rank": 20,
                "recover": True,
                "backend": "event",
            },
        },
        # fail_fractions deliberately stays inside the cell: the driver
        # normalises each (family, routing) group against its first
        # fraction, which a per-fraction split would break.
        cell_axes=("families", "routings"),
        tags=("extension", "simulation", "resilience"),
        runtime="~1 min",
        features=(capabilities.OPEN_LOOP, capabilities.FAULTS,
                  capabilities.ADAPTIVE_ROUTING),
    ),
    ExperimentDef(
        name="collectives",
        title="Collectives — allreduce/allgather/reduce-scatter completion ranking",
        fn="repro.experiments.collectives:run",
        presets={
            "small": {
                "scale": "small",
                "collectives": ("allreduce", "allgather", "reduce-scatter"),
                "algorithms": ("ring", "recursive-doubling",
                               "binary-tree", "rabenseifner"),
                "n_nodes": (8, 16),
                "total_bytes": 1 << 14,
                "routing": "minimal",
                # Chunk DAGs run unchanged on either engine (--set
                # backend=batched, see docs/collectives.md).
                "backend": "event",
            },
            "full": {
                "scale": "paper",
                "collectives": ("allreduce", "allgather", "reduce-scatter"),
                "algorithms": ("ring", "recursive-doubling",
                               "binary-tree", "rabenseifner"),
                "n_nodes": (32, 64),
                "total_bytes": 1 << 16,
                "routing": "minimal",
                "backend": "event",
            },
        },
        # n_nodes splits with the other axes: ranking/normalisation
        # happen inside a (collective, algorithm, n_nodes) cell, across
        # the topology families.
        cell_axes=("collectives", "algorithms", "n_nodes"),
        tags=("extension", "simulation", "motifs", "collectives"),
        runtime="~1 min",
        features=(capabilities.MOTIFS, capabilities.COLLECTIVES),
    ),
    ExperimentDef(
        name="spectral-search",
        title="Spectral design-space search — edge-swap annealing + 2-lifts vs the catalog",
        fn="repro.experiments.spectral_search:run",
        presets={
            "small": {
                "seed_families": ("jellyfish", "paley"),
                "radixes": (4, 6),
                "budgets": (80, 200),
                "n_routers": 44,
                "schedule": "anneal",
                "restarts": 2,
                "passes": 2,
                "routing": "minimal",
                "load": 0.5,
                "packets_per_rank": 6,
                # Candidates run through the same engines as fig6
                # (--set backend=batched works; docs/search.md).
                "backend": "event",
            },
            "full": {
                "seed_families": ("jellyfish", "paley", "lps", "slimfly"),
                "radixes": (4, 6, 7, 14),
                "budgets": (200, 500, 1000),
                "n_routers": 64,
                "schedule": "anneal",
                "restarts": 3,
                "passes": 2,
                "routing": "minimal",
                "load": 0.5,
                "packets_per_rank": 10,
                "backend": "event",
            },
        },
        # Every (seed_family, radix, budget) combination is an independent
        # search; infeasible pairs are skipped inside their cell, keeping
        # the cross product rectangular for the executor/service.
        cell_axes=("seed_families", "radixes", "budgets"),
        tags=("extension", "search", "spectral", "simulation"),
        runtime="~1 min",
        features=(capabilities.OPEN_LOOP,),
    ),
    ExperimentDef(
        name="contention",
        title="Inter-job contention — the discrepancy-property claim",
        fn="repro.experiments.contention:run",
        presets={
            "small": {"scale": "small"},
            "full": {"scale": "paper"},
        },
        tags=("extension", "simulation"),
        runtime="~1 min",
    ),
)


def get_experiment(name: str) -> ExperimentDef:
    """Look up one experiment; raises KeyError with the available names."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None


def list_experiments(tag: str | None = None, include_composite: bool = True) -> list[ExperimentDef]:
    """All registered experiments, optionally filtered by tag."""
    defs = [
        d
        for d in EXPERIMENTS.values()
        if (tag is None or tag in d.tags) and (include_composite or not d.is_composite)
    ]
    return defs
