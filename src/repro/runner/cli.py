"""``python -m repro`` — the unified experiment command line.

Subcommands
-----------

``list``
    Show every registered experiment (name, title, cells, expected runtime).
``run``
    Run one or more experiments (or ``all``) at the small or full preset,
    with ``--jobs N`` parallelism, ``--set key=value`` overrides, and
    transparent result caching (``--force`` recomputes, ``--no-cache``
    bypasses the cache entirely).
``sweep``
    Cross-product parameter sweeps over one experiment: every ``--set``
    with a comma-separated value list becomes a sweep axis, ``--seeds``
    sweeps the seed.  Cells shared between sweep points are computed once.
``report``
    Run every experiment and write the tables + an index to a results
    directory (the successor of ``scripts/collect_results.py``).
``bench``
    Measure simulator throughput (packets/s, events/s) across
    topology x routing x pattern cells — on the event and batched engines
    — plus per-hop micro benchmarks, and write ``BENCH_sim.json``.
    ``--check`` instead compares a fresh run against the committed file
    and exits nonzero on a >25% regression (see ``docs/performance.md``).
``cache``
    Inspect (``cache stats``) or clear (``cache clear``) the on-disk
    result/artifact store, including hit/miss/eviction/reaped-tmp
    metrics persisted by the service.
``serve``
    Run the long-lived experiment service: an HTTP job queue over the
    registry with async submission, per-cell result streaming, and a
    shared multi-tenant artifact store (``docs/service.md``).
``submit`` / ``status`` / ``cancel`` / ``stream``
    Client verbs talking to a running ``serve`` instance.

Examples
--------

::

    python -m repro list
    python -m repro run fig4 --small
    python -m repro run fig6 fig8 --jobs 8
    python -m repro run fig6 --set loads=0.1,0.2 --set routing=minimal
    python -m repro sweep fig7 --seeds 0,1,2 --jobs 4
    python -m repro report -o results
    python -m repro serve --workers 4 --store-budget 2G
    python -m repro submit fig6 --set backend=batched
    python -m repro stream job-1
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import ast
import itertools
import json
import pathlib
import sys
import time
from typing import Any

from repro.errors import BackendCapabilityError, ParameterError
from repro.runner.executor import run_experiment
from repro.runner.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.utils.diskcache import configure_cache, default_cache_dir, get_default_cache
from repro.utils.tables import render_table


# ---------------------------------------------------------------------------
def _parse_value(text: str) -> Any:
    """Parse a ``--set`` value: python literal, comma list, or bare string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        pass
    if "," in text:
        return tuple(_parse_value(part) for part in text.split(",") if part != "")
    return text


def _parse_sets(pairs: list[str]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        out[key.strip()] = _parse_value(value)
    return out


def _select_cache(args: argparse.Namespace):
    if getattr(args, "no_cache", False):
        return configure_cache(default_cache_dir(), enabled=False)
    if getattr(args, "cache_dir", None):
        return configure_cache(args.cache_dir, enabled=True)
    return get_default_cache()


def _resolve_names(names: list[str]) -> list[str]:
    if names == ["all"]:
        return [d.name for d in list_experiments(include_composite=False)]
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}\navailable: "
                + ", ".join(sorted(EXPERIMENTS))
            )
    return names


def _emit(report, args, out_dir: pathlib.Path | None) -> None:
    if not args.quiet:
        print(report.result.to_text())
        print()
    print(report.summary_line())
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        safe = report.name.replace("/", "_")
        (out_dir / f"{safe}.txt").write_text(report.result.to_text() + "\n")


# ---------------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for d in list_experiments(tag=args.tag):
        row = {
            "name": d.name,
            "kind": "composite" if d.is_composite else "experiment",
            "cells": "-" if d.is_composite else len(d.cells(d.spec("small"))),
            "runtime (small)": d.runtime or "?",
            "tags": ",".join(d.tags),
            "title": d.title,
        }
        rows.append(row)
    print(render_table(rows, title="registered experiments"))
    if args.verbose:
        print()
        for d in list_experiments(tag=args.tag, include_composite=False):
            print(f"{d.name}: {d.fn}")
            for preset, params in d.presets.items():
                print(f"  {preset}: {params}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    cache = _select_cache(args)
    overrides = _parse_sets(args.set)
    preset = "full" if args.full else "small"
    out_dir = pathlib.Path(args.out) if args.out else None
    progress = None if args.quiet else print
    t0 = time.time()
    for name in _resolve_names(args.experiments):
        for report in run_experiment(
            name,
            preset=preset,
            overrides=overrides,
            jobs=args.jobs,
            cache=cache,
            force=args.force,
            progress=progress,
        ):
            _emit(report, args, out_dir)
    stats = cache.stats()
    print(
        f"total {time.time() - t0:.1f}s — cache: {stats['session_hits']} hits, "
        f"{stats['session_misses']} misses ({stats['root']})"
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    cache = _select_cache(args)
    if args.experiment == "all":
        raise SystemExit("sweep takes one experiment name, not `all`")
    exp = get_experiment(_resolve_names([args.experiment])[0])
    preset = "full" if args.full else "small"
    out_dir = pathlib.Path(args.out) if args.out else None

    sets = _parse_sets(args.set)
    axes: dict[str, tuple] = {}
    fixed: dict[str, Any] = {}
    for key, value in sets.items():
        if isinstance(value, tuple):
            axes[key] = value
        else:
            fixed[key] = value
    if args.seeds:
        axes["seed"] = _parse_value(args.seeds)
        if not isinstance(axes["seed"], tuple):
            axes["seed"] = (axes["seed"],)
    if not axes:
        raise SystemExit(
            "sweep needs at least one multi-valued axis "
            "(--set key=v1,v2,... or --seeds 0,1,2)"
        )

    names = sorted(axes)
    summary = []
    t0 = time.time()
    for combo in itertools.product(*(axes[k] for k in names)):
        overrides = dict(fixed)
        overrides.update(dict(zip(names, combo)))
        label = ",".join(f"{k}={v}" for k, v in zip(names, combo))
        print(f"== {exp.name} [{label}]")
        for report in run_experiment(
            exp,
            preset=preset,
            overrides=overrides,
            jobs=args.jobs,
            cache=cache,
            force=args.force,
            progress=None if args.quiet else print,
        ):
            if out_dir is not None:
                out_dir.mkdir(parents=True, exist_ok=True)
                safe = f"{report.name}__{label}".replace("/", "_").replace(" ", "")
                (out_dir / f"{safe}.txt").write_text(report.result.to_text() + "\n")
            summary.append(
                {
                    "point": label,
                    "experiment": report.name,
                    "rows": len(report.result.rows),
                    "seconds": round(report.seconds, 2),
                    "cached": "full"
                    if report.from_cache
                    else f"{report.n_cached_cells}/{report.n_cells} cells",
                }
            )
    print(render_table(summary, title=f"sweep of {exp.name} ({len(summary)} points)"))
    print(f"total {time.time() - t0:.1f}s")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    cache = _select_cache(args)
    preset = "full" if args.full else "small"
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    index = []
    t0 = time.time()
    for d in list_experiments(tag=args.tag, include_composite=False):
        print(f"== {d.name}")
        try:
            reports = run_experiment(
                d, preset=preset, jobs=args.jobs, cache=cache, force=args.force
            )
        except Exception as exc:  # keep collecting the rest
            (out_dir / f"{d.name}.txt").write_text(f"FAILED: {exc}\n")
            index.append({"experiment": d.name, "status": f"FAILED: {exc}", "seconds": "-"})
            print(f"   FAILED: {exc}")
            continue
        for report in reports:
            safe = report.name.replace("/", "_")
            (out_dir / f"{safe}.txt").write_text(report.result.to_text() + "\n")
            index.append(
                {
                    "experiment": report.name,
                    "status": "cached" if report.from_cache else "ok",
                    "seconds": round(report.seconds, 2),
                }
            )
            print(f"   {report.summary_line()}")
    lines = [
        f"# Experiment report ({preset} preset)",
        "",
        "| experiment | status | seconds |",
        "|---|---|---|",
    ]
    for row in index:
        lines.append(f"| {row['experiment']} | {row['status']} | {row['seconds']} |")
    (out_dir / "INDEX.md").write_text("\n".join(lines) + "\n")
    print(f"\nwrote {len(index)} tables to {out_dir}/ in {time.time() - t0:.1f}s")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.runner.bench import run_bench, run_check, run_scale_cells

    _select_cache(args)
    if args.scale_smoke:
        # CI's non-gating scale-smoke step: just the smoke preset's
        # oracle-backed sharded cells (10^4-router SpectralFly, 2 workers),
        # no JSON written — a fast end-to-end liveness probe of the
        # million-node path.
        if args.check:
            raise SystemExit("--scale-smoke and --check are exclusive")
        rows = run_scale_cells(
            args.preset or "smoke",
            repeats=args.repeats,
            progress=None if args.quiet else print,
        )
        ok = bool(rows) and all(r["delivered"] > 0 for r in rows)
        if not args.quiet:
            print("scale-smoke:", "ok" if ok else "FAILED")
        return 0 if ok else 1
    if args.check:
        # The check re-runs exactly the committed file's cells (its own
        # preset, both engines) — honouring a different preset or backend
        # list would compare apples to oranges, so explicit flags error
        # instead of being silently discarded.
        if args.preset is not None or args.backends is not None:
            raise SystemExit(
                "bench --check always re-runs the committed file's own "
                "preset and backends; drop --preset/--backends"
            )
        if args.baseline is not None or args.baseline_from:
            raise SystemExit(
                "bench --check compares against the committed file itself; "
                "drop --baseline/--baseline-from"
            )
        return run_check(
            committed_path=args.out,
            repeats=args.repeats,
            progress=None if args.quiet else print,
        )
    baseline = None
    if args.baseline_from:
        prior = json.loads(pathlib.Path(args.baseline_from).read_text())
        # Carry an existing file's baseline forward, or use its own summary
        # as the baseline (first measurement after an optimisation).
        baseline = prior.get("baseline") or {
            "packets_per_s": prior["summary"]["packets_per_s"],
            "events_per_s": prior["summary"].get("events_per_s"),
            "preset": prior.get("preset"),
            "note": args.baseline_note or "previous BENCH_sim.json summary",
        }
    elif args.baseline is not None:
        baseline = {
            "packets_per_s": args.baseline,
            "note": args.baseline_note or "recorded pre-change measurement",
        }
    run_bench(
        preset=args.preset or "small",
        out_path=args.out,
        repeats=args.repeats,
        baseline=baseline,
        micro=not args.no_micro,
        progress=None if args.quiet else print,
        backends=tuple(args.backends.split(",")) if args.backends else None,
    )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.service.store import ArtifactStore

    # The cache command inspects the store the service writes to, so it
    # builds an ArtifactStore (which also reaps stale tempfiles at
    # startup and folds in the persisted hit/miss/eviction metrics).
    store = ArtifactStore(
        args.cache_dir or default_cache_dir(),
        enabled=not getattr(args, "no_cache", False),
    )
    action = "clear" if args.clear else args.action
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached files from {store.root}")
        return 0
    stats = store.stats()
    rows = [{"key": k, "value": v} for k, v in stats.items()]
    print(render_table(rows, title=f"repro artifact store ({store.root})"))
    return 0


# ---------------------------------------------------------------------------
# Experiment service verbs (docs/service.md).
def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ArtifactStore, JobQueue, make_server, parse_budget
    from repro.utils.diskcache import set_default_cache

    budget = parse_budget(args.store_budget) if args.store_budget else None
    store = ArtifactStore(
        args.cache_dir or default_cache_dir(),
        enabled=not args.no_cache,
        budget_bytes=budget,
        reap_age_s=args.reap_age,
    )
    # Library hot spots (topology construction, routing tables) memoize
    # through the process default — point it at the shared store so jobs
    # deduplicate intermediates, not just results.
    set_default_cache(store)
    queue = JobQueue(store, workers=args.workers, jobs_per_run=args.jobs)
    server = make_server(queue, host=args.host, port=args.port,
                         quiet=args.quiet)
    host, port = server.server_address[:2]
    print(f"repro service on http://{host}:{port}")
    print(f"  store: {store.root} (budget "
          f"{budget if budget is not None else 'unbounded'}, "
          f"{store.reaped_tmp} stale tmp reaped)")
    print(f"  workers: {args.workers} x {args.jobs} cell process(es); "
          "Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.server_close()
        queue.shutdown(cancel_running=True)
        totals = store.flush_metrics()
        print(
            f"store totals: {totals['hits']} hits, {totals['misses']} misses, "
            f"{totals['evictions']} evictions, {totals['reaped_tmp']} tmp reaped"
        )
    return 0


def _client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.url)


def _print_job(snap: dict) -> None:
    line = f"{snap['id']}: {snap['experiment']} [{snap['preset']}] {snap['state']}"
    if snap.get("error"):
        line += f" — {snap['error']}"
    print(line)
    for report in snap.get("reports", ()):
        print(
            f"  {report['name']}: {report['rows']} rows in "
            f"{report['seconds']}s ({report['n_cached_cells']}/"
            f"{report['n_cells']} cells cached"
            + (", full-result hit" if report["from_cache"] else "")
            + ")"
        )


def cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    snap = client.submit(
        args.experiment,
        preset="full" if args.full else "small",
        overrides=_parse_sets(args.set),
        force=args.force,
    )
    _print_job(snap)
    if args.wait:
        snap = client.wait(snap["id"])
        _print_job(snap)
        return 0 if snap["state"] == "done" else 1
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.job:
        _print_job(client.job(args.job))
        return 0
    status = client.status()
    for snap in status["jobs"]:
        _print_job(snap)
    if not status["jobs"]:
        print("(no jobs)")
    store = status["store"]
    print(
        f"queued {status['queued']} | store: {store['entries']} entries, "
        f"{store['bytes']} bytes"
        + (f" (budget {store['budget_bytes']})" if store.get("budget_bytes") else "")
        + f", hit rate {store.get('hit_rate')}, "
        f"{store.get('total_evictions', 0)} evictions, "
        f"{store.get('total_reaped_tmp', 0)} tmp reaped"
    )
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    _print_job(_client(args).cancel(args.job))
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    client = _client(args)
    state = None
    for event in client.stream(args.job, since=args.since):
        if args.json:
            print(json.dumps(event), flush=True)
            continue
        kind, data = event["kind"], event.get("data", {})
        if kind == "cell-result":
            src = "cache" if data.get("from_cache") else f"{data.get('seconds')}s"
            print(
                f"[{data.get('index', 0) + 1}/{data.get('total', '?')}] "
                f"{data.get('cell')}: {len(data.get('rows', []))} rows ({src})",
                flush=True,
            )
        elif kind in ("job-done", "job-failed", "job-cancelled"):
            state = kind
            print(f"{kind}: {json.dumps(data)}", flush=True)
        elif kind != "cell-start":
            print(f"{kind}: {json.dumps(data)}", flush=True)
    return 0 if state in (None, "job-done") else 1


# ---------------------------------------------------------------------------
def _add_common_run_args(p: argparse.ArgumentParser) -> None:
    scale = p.add_mutually_exclusive_group()
    scale.add_argument(
        "--small", action="store_true", help="laptop-scale preset (default)"
    )
    scale.add_argument(
        "--full", action="store_true", help="paper-scale preset (slow)"
    )
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for independent cells (default 1)")
    p.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                   help="override an experiment parameter (repeatable)")
    p.add_argument("--force", action="store_true",
                   help="recompute even if a cached result exists")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk cache entirely")
    p.add_argument("--cache-dir", metavar="DIR",
                   help=f"cache root (default {default_cache_dir()})")
    p.add_argument("--quiet", "-q", action="store_true",
                   help="suppress result tables and per-cell progress")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpectralFly reproduction: unified experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list registered experiments")
    p.add_argument("--tag", help="only experiments with this tag")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="also print driver paths and preset parameters")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("run", help="run experiments (cached, parallel)")
    p.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                   help="registry names (see `list`), or `all`")
    _add_common_run_args(p)
    p.add_argument("--out", "-o", metavar="DIR",
                   help="also write each result table to DIR/<name>.txt")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", help="cross-product parameter sweep")
    p.add_argument("experiment", metavar="EXPERIMENT")
    _add_common_run_args(p)
    p.add_argument("--seeds", metavar="S1,S2,...",
                   help="sweep the seed parameter over these values")
    p.add_argument("--out", "-o", metavar="DIR",
                   help="write each sweep point's table to DIR")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("report", help="run everything, write a results directory")
    p.add_argument("--out", "-o", default="results", metavar="DIR",
                   help="output directory (default: results)")
    p.add_argument("--tag", help="only experiments with this tag")
    _add_common_run_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench", help="measure simulator packets/s and write BENCH_sim.json"
    )
    p.add_argument("--preset", choices=("smoke", "small", "full"), default=None,
                   help="cell set: smoke (CI seconds), small (tracked, default), "
                        "full (paper scale); incompatible with --check")
    p.add_argument("--out", "-o", default="BENCH_sim.json", metavar="FILE",
                   help="output JSON path (default BENCH_sim.json)")
    p.add_argument("--repeats", type=int, default=1, metavar="N",
                   help="runs per cell, best wall time kept (default 1)")
    p.add_argument("--backends", metavar="B1,B2",
                   help="simulation engines to bench (default: the preset's "
                        "list, normally event,batched)")
    p.add_argument("--check", action="store_true",
                   help="re-run the committed file's preset and exit nonzero "
                        "if throughput regressed by more than 25%% "
                        "(compares against --out, never overwrites it)")
    p.add_argument("--scale-smoke", action="store_true",
                   help="run only the preset's oracle-backed sharded scale "
                        "cells (default preset: smoke) as a liveness probe; "
                        "writes no JSON")
    p.add_argument("--baseline", type=float, metavar="PKT_PER_S",
                   help="pre-change packets/s to record and compare against")
    p.add_argument("--baseline-from", metavar="FILE",
                   help="carry the baseline (or summary) of an existing "
                        "BENCH_sim.json forward")
    p.add_argument("--baseline-note", metavar="TEXT",
                   help="provenance note stored with the baseline")
    p.add_argument("--no-micro", action="store_true",
                   help="skip the micro benchmarks")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the on-disk cache entirely")
    p.add_argument("--cache-dir", metavar="DIR",
                   help=f"cache root (default {default_cache_dir()})")
    p.add_argument("--quiet", "-q", action="store_true",
                   help="suppress progress output")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("cache", help="inspect or clear the artifact store")
    p.add_argument("action", nargs="?", choices=("stats", "clear"),
                   default="stats",
                   help="show store stats (default) or delete every entry")
    p.add_argument("--clear", action="store_true",
                   help="alias for the `clear` action (kept for scripts)")
    p.add_argument("--no-cache", action="store_true", help=argparse.SUPPRESS)
    p.add_argument("--cache-dir", metavar="DIR",
                   help=f"cache root (default {default_cache_dir()})")
    p.set_defaults(func=cmd_cache)

    # -- experiment service (docs/service.md) -------------------------------
    from repro.service.api import DEFAULT_HOST, DEFAULT_PORT

    default_url = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"

    p = sub.add_parser(
        "serve",
        help="run the experiment service (async jobs, streaming results, "
             "shared artifact store)",
    )
    p.add_argument("--host", default=DEFAULT_HOST,
                   help=f"bind address (default {DEFAULT_HOST})")
    p.add_argument("--port", type=int, default=DEFAULT_PORT, metavar="N",
                   help=f"port (default {DEFAULT_PORT}; 0 picks a free one)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent jobs (worker threads, default 2)")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="cell worker processes per job (default 1)")
    p.add_argument("--store-budget", metavar="BYTES",
                   help="artifact-store byte budget with LRU eviction "
                        "(e.g. 500000, 64K, 256M, 2G; default unbounded)")
    p.add_argument("--reap-age", type=float, default=3600.0, metavar="SEC",
                   help="age after which orphaned *.tmp files are reaped "
                        "at startup (default 3600)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the store (every cell recomputes)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help=f"store root (default {default_cache_dir()})")
    p.add_argument("--quiet", "-q", action="store_true",
                   help="suppress per-request HTTP logging")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit an experiment to a running service")
    p.add_argument("experiment", metavar="EXPERIMENT")
    scale = p.add_mutually_exclusive_group()
    scale.add_argument("--small", action="store_true",
                       help="laptop-scale preset (default)")
    scale.add_argument("--full", action="store_true",
                       help="paper-scale preset (slow)")
    p.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                   help="override an experiment parameter (repeatable)")
    p.add_argument("--force", action="store_true",
                   help="recompute even if cached results exist")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes; exit 1 unless done")
    p.add_argument("--url", default=default_url,
                   help=f"service URL (default {default_url})")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status", help="show service jobs and store metrics")
    p.add_argument("job", nargs="?", metavar="JOB_ID",
                   help="show one job instead of the whole service")
    p.add_argument("--url", default=default_url,
                   help=f"service URL (default {default_url})")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    p.add_argument("job", metavar="JOB_ID")
    p.add_argument("--url", default=default_url,
                   help=f"service URL (default {default_url})")
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser(
        "stream", help="follow a job's per-cell results as they arrive"
    )
    p.add_argument("job", metavar="JOB_ID")
    p.add_argument("--since", type=int, default=0, metavar="SEQ",
                   help="start from this event offset (default 0)")
    p.add_argument("--json", action="store_true",
                   help="print raw NDJSON events instead of summaries")
    p.add_argument("--url", default=default_url,
                   help=f"service URL (default {default_url})")
    p.set_defaults(func=cmd_stream)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.service.api import ServiceError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (BackendCapabilityError, ParameterError) as exc:
        # Spec-time validation (`--set backend=...` on an experiment the
        # backend cannot run, a `--set` key no composite part accepts) is
        # a usage error, not a crash: print the message — it names the
        # supported backends / accepted keys — without a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        # Client verbs against an unreachable service or a rejected
        # submission: the server's message, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
