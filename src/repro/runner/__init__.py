"""Unified experiment runner: registry, parallel executor, result cache.

The package behind ``python -m repro``:

* :mod:`repro.runner.registry` — every paper figure/table/ablation as a
  named, parameterized :class:`ExperimentDef` with ``small``/``full``
  presets and cell axes for parallel execution;
* :mod:`repro.runner.spec` — hashable :class:`ExperimentSpec` invocations
  and :class:`RunReport` bookkeeping;
* :mod:`repro.runner.executor` — :func:`run_experiment`, the cache-aware
  process-pool executor;
* :mod:`repro.runner.cli` — the ``list``/``run``/``sweep``/``report``
  command line.

The tier-2 benchmark harness under ``benchmarks/`` resolves its drivers
through this registry, so the CLI, benchmarks, and cached sweeps always
agree on what each experiment means.
"""

from repro.runner.executor import CancelToken, run_experiment
from repro.runner.registry import (
    EXPERIMENTS,
    ExperimentDef,
    get_experiment,
    list_experiments,
)
from repro.runner.spec import ExperimentSpec, RunReport

__all__ = [
    "EXPERIMENTS",
    "CancelToken",
    "ExperimentDef",
    "ExperimentSpec",
    "RunReport",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
