"""Heuristic QAP solver for cabinet placement (Table II).

Minimising total wire length over cabinet placements is a Quadratic
Assignment Problem.  The paper uses "an expectation minimization approach
combined with a greedy refinement process"; we implement the same two-stage
idea:

1. **EM/softassign stage** — iterate: place every cabinet at the weighted
   barycentre of its neighbours' current positions, then round the soft
   placement back to a permutation with the Hungarian algorithm
   (``scipy.optimize.linear_sum_assignment``).
2. **Greedy refinement** — randomized 2-swap hill climbing with vectorised
   delta evaluation until a budget of non-improving sweeps is exhausted.

The result is a :class:`LayoutResult` with per-link wire lengths, the inputs
for the power and latency models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.graphs.csr import CSRGraph
from repro.layout.machine_room import MachineRoom
from repro.layout.matching import cabinet_pairing
from repro.topology.base import Topology
from repro.utils.rng import as_rng


@dataclass
class LayoutResult:
    """A physical layout of a topology in a machine room.

    Attributes
    ----------
    topology:
        The laid-out topology.
    room:
        Machine-room geometry.
    cabinet_of:
        Cabinet id per router.
    slot_of:
        Grid slot per cabinet (permutation).
    wire_lengths:
        Length in metres of every link, aligned with
        ``topology.graph.edge_array()``.
    """

    topology: Topology
    room: MachineRoom
    cabinet_of: np.ndarray
    slot_of: np.ndarray
    wire_lengths: np.ndarray

    @property
    def total_wire_m(self) -> float:
        return float(self.wire_lengths.sum())

    @property
    def mean_wire_m(self) -> float:
        return float(self.wire_lengths.mean())

    @property
    def max_wire_m(self) -> float:
        return float(self.wire_lengths.max())


def _cabinet_graph(g: CSRGraph, cabinet_of: np.ndarray) -> np.ndarray:
    """Dense inter-cabinet link-count matrix W (diagonal zeroed)."""
    nc = int(cabinet_of.max()) + 1
    edges = g.edge_array()
    cu, cv = cabinet_of[edges[:, 0]], cabinet_of[edges[:, 1]]
    w = np.zeros((nc, nc), dtype=np.float64)
    np.add.at(w, (cu, cv), 1.0)
    np.add.at(w, (cv, cu), 1.0)
    np.fill_diagonal(w, 0.0)
    return w


def _layout_cost(w: np.ndarray, d: np.ndarray, slot_of: np.ndarray) -> float:
    """Total weighted wire length of a placement (each link once)."""
    dd = d[np.ix_(slot_of, slot_of)]
    return float((w * dd).sum() / 2.0)


def _em_stage(
    w: np.ndarray,
    grid_pos: np.ndarray,
    slot_of: np.ndarray,
    iters: int,
) -> np.ndarray:
    """Barycentre + Hungarian rounding iterations."""
    nc = len(slot_of)
    phys = grid_pos.astype(np.float64) * np.array([2.0, 0.6])
    deg = w.sum(axis=1)
    deg[deg == 0] = 1.0
    for _ in range(iters):
        cur = phys[slot_of]
        target = (w @ cur) / deg[:, None]
        # Cost of putting cabinet i at slot s = rectilinear distance from
        # its barycentre target to the slot.
        cost = np.abs(target[:, None, :] - phys[None, :, :]).sum(axis=2)
        _, assign = linear_sum_assignment(cost)
        slot_of = assign
    return slot_of


def _swap_refine(
    w: np.ndarray,
    d: np.ndarray,
    slot_of: np.ndarray,
    rng: np.random.Generator,
    sweeps: int,
) -> np.ndarray:
    """Randomized 2-swap hill climbing with vectorised delta rows."""
    nc = len(slot_of)
    slot_of = slot_of.copy()
    for _sweep in range(sweeps):
        improved = False
        order = rng.permutation(nc)
        dd = d[np.ix_(slot_of, slot_of)]
        for a in order:
            # Delta of swapping cabinet a with every other cabinet b:
            # sum_k W[a,k] (dd[b,k] - dd[a,k]) + W[b,k] (dd[a,k] - dd[b,k]),
            # k != a, b.  Computed for all b at once, then the k in {a, b}
            # terms (which the row sums wrongly include) are subtracted.
            wa = w[a]
            da = dd[a]
            delta = (wa[None, :] * (dd - da[None, :])).sum(axis=1) + (
                w * (da[None, :] - dd)
            ).sum(axis=1)
            delta -= wa * (np.diag(dd) + dd[a, a] - 2.0 * dd[:, a])
            delta[a] = 0.0
            b = int(np.argmin(delta))
            if delta[b] < -1e-9:
                slot_of[[a, b]] = slot_of[[b, a]]
                # Incremental update: only rows/cols a and b of dd change.
                dd[[a, b], :] = d[slot_of[[a, b]]][:, slot_of]
                dd[:, [a, b]] = dd[[a, b], :].T
                improved = True
        if not improved:
            break
    return slot_of


def native_layout(topo: Topology, room: MachineRoom | None = None) -> LayoutResult:
    """Wire lengths under the *generation-order* placement (no optimisation).

    Router ``r`` sits in cabinet ``r // 2`` at grid slot ``r // 2``.  This is
    the layout SkyWalk-style topologies are generated in — they are built
    around the machine room, so re-optimising their placement would
    double-count the short-cable preference (see Table II methodology).
    """
    g = topo.graph
    if room is None:
        room = MachineRoom(g.n)
    cabinet_of = np.arange(g.n, dtype=np.int64) // room.routers_per_cabinet
    nc = int(cabinet_of.max()) + 1
    slot_of = np.arange(nc, dtype=np.int64)
    d = room.cabinet_distance_matrix()[:nc, :nc]
    edges = g.edge_array()
    cu = cabinet_of[edges[:, 0]]
    cv = cabinet_of[edges[:, 1]]
    lengths = d[cu, cv].copy()
    lengths[cu == cv] = 2.0
    return LayoutResult(
        topology=topo,
        room=room,
        cabinet_of=cabinet_of,
        slot_of=slot_of,
        wire_lengths=lengths,
    )


def layout_topology(
    topo: Topology,
    seed: int | np.random.Generator | None = 0,
    em_iters: int = 8,
    refine_sweeps: int = 6,
    room: MachineRoom | None = None,
) -> LayoutResult:
    """Place ``topo`` in a machine room, heuristically minimising wire length.

    Returns per-link wire lengths (matched router pairs share a cabinet, so
    their link is the 2 m intra-cabinet wire).
    """
    rng = as_rng(seed)
    g = topo.graph
    if room is None:
        room = MachineRoom(g.n)
    cabinet_of = cabinet_pairing(g, rng)
    w = _cabinet_graph(g, cabinet_of)
    nc = w.shape[0]
    d = room.cabinet_distance_matrix()[:nc, :nc]
    grid = room.cabinet_grid_positions()[:nc]

    slot_of = rng.permutation(nc)
    slot_of = _em_stage(w, grid, slot_of, em_iters)
    slot_of = _swap_refine(w, d, slot_of, rng, refine_sweeps)

    edges = g.edge_array()
    cu = slot_of[cabinet_of[edges[:, 0]]]
    cv = slot_of[cabinet_of[edges[:, 1]]]
    lengths = d[cu, cv].copy()
    same = cabinet_of[edges[:, 0]] == cabinet_of[edges[:, 1]]
    lengths[same] = 2.0
    return LayoutResult(
        topology=topo,
        room=room,
        cabinet_of=cabinet_of,
        slot_of=slot_of,
        wire_lengths=lengths,
    )
