"""The machine-room geometry of Section VII.

Following the paper (which follows SkyWalk [40]): cabinets form an
``x by y`` grid; each cabinet holds two routers (as on Summit); wires inside
a cabinet are 2 m, and the wire between cabinets ``i`` and ``j`` is
``4 + 2 |x_i - x_j| + 0.6 |y_i - y_j|`` metres (2 m of overhead at each end
plus rectilinear cable tray runs; rows are 2 m apart, columns 0.6 m).  The
room is kept roughly square by ``y = ceil(sqrt(2 c / 0.6))``, ``x =
ceil(c / y)`` for ``c`` cabinets.
"""

from __future__ import annotations

import math

import numpy as np

INTRA_CABINET_M = 2.0
OVERHEAD_M = 4.0
ROW_PITCH_M = 2.0
COL_PITCH_M = 0.6


class MachineRoom:
    """Cabinet grid sized for ``n_routers`` with 2 routers per cabinet."""

    def __init__(self, n_routers: int, routers_per_cabinet: int = 2) -> None:
        self.n_routers = int(n_routers)
        self.routers_per_cabinet = int(routers_per_cabinet)
        self.n_cabinets = math.ceil(n_routers / routers_per_cabinet)
        self.y = math.ceil(math.sqrt(2.0 * self.n_cabinets / 0.6))
        self.x = math.ceil(self.n_cabinets / self.y)

    def cabinet_grid_positions(self) -> np.ndarray:
        """Integer (x, y) grid index per cabinet, row-major."""
        c = self.n_cabinets
        idx = np.arange(c)
        return np.stack([idx // self.y, idx % self.y], axis=1)

    def cabinet_distance_matrix(self) -> np.ndarray:
        """Inter-cabinet wire length matrix in metres (diag = intra 2 m)."""
        pos = self.cabinet_grid_positions()
        dx = np.abs(pos[:, 0][:, None] - pos[:, 0][None, :])
        dy = np.abs(pos[:, 1][:, None] - pos[:, 1][None, :])
        d = OVERHEAD_M + ROW_PITCH_M * dx + COL_PITCH_M * dy
        np.fill_diagonal(d, INTRA_CABINET_M)
        return d

    def router_positions(self) -> np.ndarray:
        """Physical (x, y) metre coordinates per router (router r in cabinet
        r // routers_per_cabinet), used by SkyWalk's cable-length preference."""
        pos = self.cabinet_grid_positions().astype(np.float64)
        pos[:, 0] *= ROW_PITCH_M
        pos[:, 1] *= COL_PITCH_M
        cab = np.arange(self.n_routers) // self.routers_per_cabinet
        return pos[cab]

    def wire_length(self, cab_i: int, cab_j: int) -> float:
        """Wire length between two cabinets (2 m when identical)."""
        if cab_i == cab_j:
            return INTRA_CABINET_M
        pos = self.cabinet_grid_positions()
        dx = abs(int(pos[cab_i, 0]) - int(pos[cab_j, 0]))
        dy = abs(int(pos[cab_i, 1]) - int(pos[cab_j, 1]))
        return OVERHEAD_M + ROW_PITCH_M * dx + COL_PITCH_M * dy
