"""End-to-end latency analysis over physical layouts (Fig. 11).

Per the paper (following SkyWalk [40]): cable delay is 5 ns/m; switches add
a uniform per-hop latency.  For a layout we compute latency-weighted
shortest paths between all router pairs and report the average and maximum
end-to-end latency; Fig. 11 sweeps the switch latency from 0 to 250 ns and
plots LPS/SlimFly latencies relative to SkyWalk instantiated in the same
machine room.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from repro.layout.qap import LayoutResult

CABLE_NS_PER_M = 5.0


def _edge_latency_graph(layout: LayoutResult, switch_latency_ns: float) -> sp.csr_matrix:
    """Weighted adjacency: per-hop latency = cable + one switch traversal."""
    g = layout.topology.graph
    edges = g.edge_array()
    w = CABLE_NS_PER_M * layout.wire_lengths + switch_latency_ns
    n = g.n
    mat = sp.csr_matrix(
        (
            np.concatenate([w, w]),
            (
                np.concatenate([edges[:, 0], edges[:, 1]]),
                np.concatenate([edges[:, 1], edges[:, 0]]),
            ),
        ),
        shape=(n, n),
    )
    return mat


def latency_statistics(
    layout: LayoutResult, switch_latency_ns: float
) -> tuple[float, float]:
    """Return (average, maximum) end-to-end latency in ns over router pairs."""
    mat = _edge_latency_graph(layout, switch_latency_ns)
    dist = shortest_path(mat, method="D", directed=False)
    n = dist.shape[0]
    off_diag = dist[~np.eye(n, dtype=bool)]
    if np.isinf(off_diag).any():
        raise ValueError("layout graph is disconnected")
    return float(off_diag.mean()), float(off_diag.max())


def latency_sweep(
    layout: LayoutResult, switch_latencies_ns: list[float]
) -> list[dict]:
    """Fig. 11 series: average/max latency at each switch latency."""
    rows = []
    for s in switch_latencies_ns:
        avg, mx = latency_statistics(layout, s)
        rows.append(
            {
                "name": layout.topology.name,
                "switch_ns": s,
                "avg_latency_ns": round(avg, 2),
                "max_latency_ns": round(mx, 2),
            }
        )
    return rows
