"""Machine-room layout, wiring cost, power and latency models (Section VII)."""

from repro.layout.machine_room import MachineRoom
from repro.layout.matching import cabinet_pairing
from repro.layout.qap import layout_topology, native_layout, LayoutResult
from repro.layout.power import power_report, PowerModel
from repro.layout.latency import latency_statistics, latency_sweep

__all__ = [
    "MachineRoom",
    "cabinet_pairing",
    "layout_topology",
    "native_layout",
    "LayoutResult",
    "PowerModel",
    "power_report",
    "latency_statistics",
    "latency_sweep",
]
