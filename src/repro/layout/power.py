"""Link power model (Table II).

Methodology of [42] updated to the Mellanox SB7800 EDR 100 Gb/s switch, as
in the paper: a port driving an electrical cable draws ~3.76 W, a port
driving an optical cable 25% more (~4.70 W).  Links short enough for
passive copper are electrical; longer links need optical transceivers.  The
paper's Table II reports link counts, total power, and power per unit of
bisection bandwidth (mW per Gb/s).

Note (see DESIGN.md): the paper's absolute power totals are not
reconstructible from its stated constants; we implement the stated
methodology and compare topologies by *ratio*, which is how the paper draws
its conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.qap import LayoutResult


@dataclass
class PowerModel:
    """Per-port power constants and the electrical-reach threshold."""

    electrical_port_w: float = 3.76
    optical_premium: float = 0.25
    electrical_reach_m: float = 5.0
    link_bandwidth_gbps: float = 100.0

    @property
    def optical_port_w(self) -> float:
        return self.electrical_port_w * (1.0 + self.optical_premium)


def power_report(
    layout: LayoutResult,
    bisection_links: int,
    model: PowerModel | None = None,
) -> dict:
    """Table II row: wire stats, link classes, power, and power/bandwidth.

    ``bisection_links`` is the topology's bisection bandwidth in links (from
    the partitioner); power/bandwidth is reported in mW per Gb/s.
    """
    model = model or PowerModel()
    lengths = layout.wire_lengths
    electrical = int((lengths <= model.electrical_reach_m).sum())
    optical = int(len(lengths) - electrical)
    # Two ports per link.
    total_w = 2.0 * (
        electrical * model.electrical_port_w + optical * model.optical_port_w
    )
    bw_gbps = bisection_links * model.link_bandwidth_gbps
    return {
        "name": layout.topology.name,
        "routers": layout.topology.n_routers,
        "radix": layout.topology.radix,
        "avg_wire_m": round(layout.mean_wire_m, 2),
        "max_wire_m": round(layout.max_wire_m, 2),
        "electrical_links": electrical,
        "optical_links": optical,
        "bisection_links": bisection_links,
        "total_power_w": round(total_w, 1),
        "mw_per_gbps": round(1000.0 * total_w / bw_gbps, 1) if bw_gbps else None,
    }
