"""Cabinet pairing via graph matching.

The paper fixes a maximum matching of the topology and forces matched router
pairs into the same cabinet, so those links ride the cheap 2 m intra-cabinet
wires.  We use a randomized greedy matching (best of several draws) with an
exact blossom fallback for small graphs; unmatched leftovers are paired
arbitrarily (their cabinet-mate link simply may not exist).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_rng


def greedy_matching(g: CSRGraph, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Randomized greedy maximal matching."""
    edges = g.edge_array()
    order = rng.permutation(len(edges))
    used = np.zeros(g.n, dtype=bool)
    out = []
    for i in order:
        u, v = int(edges[i, 0]), int(edges[i, 1])
        if not used[u] and not used[v]:
            used[u] = used[v] = True
            out.append((u, v))
    return out


def cabinet_pairing(
    g: CSRGraph,
    seed: int | np.random.Generator | None = 0,
    tries: int = 5,
    exact_threshold: int = 400,
) -> np.ndarray:
    """Assign routers to cabinets of two; returns ``cabinet_of`` array.

    Maximises the number of cabinet-internal links: exact maximum matching
    (networkx blossom) for small graphs, best-of-``tries`` greedy otherwise.
    """
    rng = as_rng(seed)
    if g.n <= exact_threshold:
        import networkx as nx

        m = nx.max_weight_matching(g.to_networkx(), maxcardinality=True)
        best = [tuple(sorted(e)) for e in m]
    else:
        best = []
        for _ in range(tries):
            cand = greedy_matching(g, rng)
            if len(cand) > len(best):
                best = cand

    cabinet_of = np.full(g.n, -1, dtype=np.int64)
    cab = 0
    for u, v in best:
        cabinet_of[u] = cabinet_of[v] = cab
        cab += 1
    leftovers = np.flatnonzero(cabinet_of == -1)
    for i in range(0, len(leftovers) - 1, 2):
        cabinet_of[leftovers[i]] = cabinet_of[leftovers[i + 1]] = cab
        cab += 1
    if len(leftovers) % 2 == 1:
        cabinet_of[leftovers[-1]] = cab
        cab += 1
    return cabinet_of
