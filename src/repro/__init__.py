"""repro — a from-scratch reproduction of *SpectralFly: Ramanujan Graphs as
Flexible and Efficient Interconnection Networks* (Young et al., IPDPS 2022).

Public API highlights
---------------------

Topologies
    :func:`build_lps` (SpectralFly), :func:`build_slimfly`,
    :func:`build_bundlefly`, :func:`build_canonical_dragonfly`,
    :func:`build_dragonfly`, :func:`build_skywalk`, :func:`build_jellyfish`.

Analysis
    :func:`diameter`, :func:`average_distance`, :func:`girth`,
    :func:`mu1`, :func:`lambda_g`, :func:`is_ramanujan`,
    :func:`bisection_bandwidth`.

Simulation
    :class:`NetworkSimulator`, :class:`SimConfig`, :func:`make_routing`,
    :func:`make_traffic`, :func:`run_motif` and the Ember-style motifs.

Layout / cost
    :func:`layout_topology`, :func:`power_report`, :func:`latency_sweep`.

Experiments reproducing each paper table/figure live under
``repro.experiments`` and run through the unified CLI::

    python -m repro list
    python -m repro run fig6 --jobs 8

(:mod:`repro.runner` holds the registry, the parallel executor, and the
result cache; docs/reproducing.md maps every paper artifact to its
command.)
"""

from repro.topology import (
    Topology,
    build_lps,
    build_slimfly,
    build_bundlefly,
    build_canonical_dragonfly,
    build_dragonfly,
    build_paley,
    build_skywalk,
    build_jellyfish,
    build_xpander,
    feasible_sizes_per_radix,
    lps_design_space,
    lps_feasible,
    lps_num_vertices,
)
from repro.graphs import (
    CSRGraph,
    average_distance,
    cycle_graph,
    delete_random_edges,
    diameter,
    girth,
    is_bipartite,
    is_connected,
)
from repro.spectral import (
    is_ramanujan,
    lambda_g,
    lps_mu1_guarantee,
    mu1,
    ramanujan_bound,
    spectral_gap,
)
from repro.partition import bisection_bandwidth
from repro.routing import RoutingPolicy, RoutingTables, make_routing
from repro.sim import NetworkSimulator, SimConfig, make_traffic, place_ranks
from repro.sim.traffic import OpenLoopSource
from repro.workloads import (
    FFTMotif,
    Halo3D26Motif,
    Sweep3DMotif,
    run_motif,
)
from repro.layout import (
    MachineRoom,
    latency_statistics,
    latency_sweep,
    layout_topology,
    native_layout,
    power_report,
)
from repro.utils.tables import render_table

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "build_lps",
    "build_slimfly",
    "build_bundlefly",
    "build_canonical_dragonfly",
    "build_dragonfly",
    "build_paley",
    "build_skywalk",
    "build_jellyfish",
    "build_xpander",
    "feasible_sizes_per_radix",
    "lps_design_space",
    "lps_feasible",
    "lps_num_vertices",
    "CSRGraph",
    "cycle_graph",
    "delete_random_edges",
    "diameter",
    "average_distance",
    "girth",
    "is_connected",
    "is_bipartite",
    "is_ramanujan",
    "lambda_g",
    "lps_mu1_guarantee",
    "mu1",
    "spectral_gap",
    "ramanujan_bound",
    "bisection_bandwidth",
    "RoutingPolicy",
    "RoutingTables",
    "make_routing",
    "NetworkSimulator",
    "SimConfig",
    "OpenLoopSource",
    "make_traffic",
    "place_ranks",
    "Halo3D26Motif",
    "Sweep3DMotif",
    "FFTMotif",
    "run_motif",
    "MachineRoom",
    "latency_statistics",
    "layout_topology",
    "native_layout",
    "power_report",
    "latency_sweep",
    "render_table",
    "__version__",
]
