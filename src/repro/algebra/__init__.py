"""Finite fields and projective matrix groups.

* :mod:`repro.algebra.gf` — arithmetic in GF(q) for any prime power q
  (polynomial basis for extensions, discrete-log tables for multiplication).
* :mod:`repro.algebra.mat2` — vectorised 2x2 matrix arithmetic over prime
  fields with canonical projective (PGL) representatives.
* :mod:`repro.algebra.cayley` — a generic Cayley-graph builder by orbit
  closure (the Elzinga method the paper cites as [28]).
"""

from repro.algebra.gf import GF
from repro.algebra.mat2 import (
    mat_canonicalize,
    mat_determinant,
    mat_identity,
    mat_multiply,
    pgl2_order,
    psl2_order,
)
from repro.algebra.cayley import cayley_graph_closure

__all__ = [
    "GF",
    "mat_multiply",
    "mat_canonicalize",
    "mat_determinant",
    "mat_identity",
    "pgl2_order",
    "psl2_order",
    "cayley_graph_closure",
]
