"""Vectorised 2x2 matrix arithmetic over prime fields F_q.

Matrices are stored row-major as integer arrays of shape ``(..., 4)``:
``[a, b, c, d]`` represents ``[[a, b], [c, d]]`` with entries in
``{0, ..., q-1}``.  Projective canonicalisation (dividing by the first
non-zero entry) gives a unique representative per PGL(2, q) coset, which is
how LPS vertices are identified during the Cayley-graph closure.
"""

from __future__ import annotations

import numpy as np

from repro.nt.modular import mod_inverse


def mat_identity(q: int) -> np.ndarray:
    """Return the identity matrix as a length-4 array mod q."""
    return np.array([1, 0, 0, 1], dtype=np.int64)


def mat_multiply(lhs: np.ndarray, rhs: np.ndarray, q: int) -> np.ndarray:
    """Multiply batches of 2x2 matrices modulo q.

    ``lhs`` and ``rhs`` broadcast against each other on their leading
    dimensions; the trailing dimension must be 4.
    """
    a1, b1, c1, d1 = (lhs[..., i] for i in range(4))
    a2, b2, c2, d2 = (rhs[..., i] for i in range(4))
    out = np.empty(np.broadcast(a1, a2).shape + (4,), dtype=np.int64)
    out[..., 0] = (a1 * a2 + b1 * c2) % q
    out[..., 1] = (a1 * b2 + b1 * d2) % q
    out[..., 2] = (c1 * a2 + d1 * c2) % q
    out[..., 3] = (c1 * b2 + d1 * d2) % q
    return out


def mat_determinant(mats: np.ndarray, q: int) -> np.ndarray:
    """Return determinants (mod q) of a batch of matrices."""
    return (mats[..., 0] * mats[..., 3] - mats[..., 1] * mats[..., 2]) % q


def _inverse_table(q: int) -> np.ndarray:
    """Table of multiplicative inverses mod prime q (index 0 unused)."""
    table = np.zeros(q, dtype=np.int64)
    for a in range(1, q):
        table[a] = mod_inverse(a, q)
    return table


_INV_CACHE: dict[int, np.ndarray] = {}


def mat_canonicalize(mats: np.ndarray, q: int) -> np.ndarray:
    """Return the canonical projective representative of each matrix.

    Scales each matrix so that its first non-zero entry (scanning
    ``a, b, c, d``) equals 1; two matrices represent the same PGL(2, q)
    element iff their canonical forms are equal.  Fully vectorised.
    """
    if q not in _INV_CACHE:
        _INV_CACHE[q] = _inverse_table(q)
    inv = _INV_CACHE[q]
    mats = np.atleast_2d(np.asarray(mats, dtype=np.int64) % q)
    nonzero = mats != 0
    # Index of the first non-zero entry per matrix.
    first = np.argmax(nonzero, axis=-1)
    lead = np.take_along_axis(mats, first[..., None], axis=-1)[..., 0]
    if np.any(lead == 0):
        raise ValueError("zero matrix cannot be canonicalised projectively")
    scale = inv[lead]
    return (mats * scale[..., None]) % q


def mat_encode(mats: np.ndarray, q: int) -> np.ndarray:
    """Pack canonical matrices into unique int64 keys (base-q digits)."""
    mats = np.atleast_2d(mats)
    return ((mats[..., 0] * q + mats[..., 1]) * q + mats[..., 2]) * q + mats[..., 3]


def mat_decode(keys: np.ndarray, q: int) -> np.ndarray:
    """Inverse of :func:`mat_encode`."""
    keys = np.asarray(keys, dtype=np.int64)
    d = keys % q
    rest = keys // q
    c = rest % q
    rest //= q
    b = rest % q
    a = rest // q
    return np.stack([a, b, c, d], axis=-1)


def pgl2_order(q: int) -> int:
    """|PGL(2, q)| = q^3 - q."""
    return q**3 - q


def psl2_order(q: int) -> int:
    """|PSL(2, q)| = (q^3 - q) / gcd(2, q - 1)."""
    return (q**3 - q) // (2 if q % 2 == 1 else 1)


def pgl2_elements(q: int) -> np.ndarray:
    """Enumerate all canonical PGL(2, q) representatives (small q only).

    Intended for tests; O(q^4) work.
    """
    grid = np.stack(
        np.meshgrid(*(np.arange(q),) * 4, indexing="ij"), axis=-1
    ).reshape(-1, 4)
    dets = mat_determinant(grid, q)
    invertible = grid[dets != 0]
    canon = mat_canonicalize(invertible, q)
    keys = mat_encode(canon, q)
    uniq = np.unique(keys)
    return mat_decode(uniq, q)
