"""Arithmetic in finite fields GF(q), q = p^m a prime power.

Elements are represented as integers ``0 .. q-1``.  For prime fields the
integer *is* the residue; for extension fields the base-``p`` digits of the
integer are the coefficients of the polynomial representative (little
endian: digit ``i`` multiplies ``x^i``).

Multiplication uses exp/log tables built from a primitive element, so all
operations are O(1) and vectorise over numpy arrays.  The topologies that
need extensions are small (GF(4), GF(9), GF(25), GF(27), ...), so table
construction cost is negligible; the class supports any q up to a few
thousand.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.nt.primes import prime_power_decomposition


def _poly_mul_mod(a: list[int], b: list[int], modulus: list[int], p: int) -> list[int]:
    """Multiply coefficient lists a*b mod (modulus, p). Little-endian lists."""
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai:
            for j, bj in enumerate(b):
                out[i + j] = (out[i + j] + ai * bj) % p
    # Reduce modulo the monic modulus polynomial.
    deg_m = len(modulus) - 1
    for i in range(len(out) - 1, deg_m - 1, -1):
        coef = out[i]
        if coef:
            out[i] = 0
            for j in range(deg_m):
                out[i - deg_m + j] = (out[i - deg_m + j] - coef * modulus[j]) % p
    return out[:deg_m] + [0] * max(0, deg_m - len(out))


def _is_irreducible(poly: list[int], p: int) -> bool:
    """Check irreducibility of a monic poly (little-endian, top coeff 1) over F_p.

    Degree is small (<= 4 in practice) so trial division by all monic
    polynomials of degree <= deg/2 is fine.
    """
    deg = len(poly) - 1
    if deg == 1:
        return True
    # No roots in F_p (catches all factors of degree 1).
    for x in range(p):
        acc = 0
        for c in reversed(poly):
            acc = (acc * x + c) % p
        if acc == 0:
            return False
    if deg <= 3:
        return True
    # Trial division by monic irreducibles of degree 2..deg//2 (enumerate all
    # monic polys; reducible divisors are redundant but harmless).
    for d in range(2, deg // 2 + 1):
        for idx in range(p**d):
            divisor = _int_to_digits(idx, p, d) + [1]
            if _poly_divides(divisor, poly, p):
                return False
    return True


def _poly_divides(d: list[int], f: list[int], p: int) -> bool:
    """Return True iff monic poly d divides f over F_p."""
    rem = list(f)
    deg_d = len(d) - 1
    while len(rem) - 1 >= deg_d:
        lead = rem[-1]
        if lead:
            shift = len(rem) - 1 - deg_d
            for j in range(len(d)):
                rem[shift + j] = (rem[shift + j] - lead * d[j]) % p
        rem.pop()
        while len(rem) > 1 and rem[-1] == 0:
            rem.pop()
        if len(rem) - 1 < deg_d:
            break
    return all(c == 0 for c in rem)


def _int_to_digits(value: int, p: int, m: int) -> list[int]:
    digits = []
    for _ in range(m):
        digits.append(value % p)
        value //= p
    return digits


def _digits_to_int(digits: list[int], p: int) -> int:
    out = 0
    for d in reversed(digits):
        out = out * p + d
    return out


class GF:
    """The finite field GF(q) with vectorised arithmetic on integer codes.

    Parameters
    ----------
    q:
        Field order; must be a prime power.

    Attributes
    ----------
    p, m:
        Characteristic and extension degree (``q == p**m``).
    primitive:
        Integer code of a fixed primitive element (generator of GF(q)*).
    """

    def __init__(self, q: int) -> None:
        decomp = prime_power_decomposition(q)
        if decomp is None:
            raise ParameterError(f"q={q} is not a prime power")
        self.q = q
        self.p, self.m = decomp
        if self.m == 1:
            self._modulus = None
        else:
            self._modulus = self._find_irreducible()
        self._build_tables()

    # -- construction -----------------------------------------------------
    def _find_irreducible(self) -> list[int]:
        """Return a monic irreducible polynomial of degree m over F_p."""
        p, m = self.p, self.m
        for idx in range(p**m):
            poly = _int_to_digits(idx, p, m) + [1]
            if _is_irreducible(poly, p):
                return poly
        raise RuntimeError(f"no irreducible polynomial of degree {m} over F_{p}")

    def _raw_add(self, a: int, b: int) -> int:
        if self.m == 1:
            return (a + b) % self.p
        da = _int_to_digits(a, self.p, self.m)
        db = _int_to_digits(b, self.p, self.m)
        return _digits_to_int([(x + y) % self.p for x, y in zip(da, db)], self.p)

    def _raw_mul(self, a: int, b: int) -> int:
        if self.m == 1:
            return (a * b) % self.p
        da = _int_to_digits(a, self.p, self.m)
        db = _int_to_digits(b, self.p, self.m)
        return _digits_to_int(_poly_mul_mod(da, db, self._modulus, self.p), self.p)

    def _build_tables(self) -> None:
        q = self.q
        add = np.empty((q, q), dtype=np.int32)
        mul = np.empty((q, q), dtype=np.int32)
        for a in range(q):
            for b in range(a, q):
                s = self._raw_add(a, b)
                add[a, b] = add[b, a] = s
                prod = self._raw_mul(a, b)
                mul[a, b] = mul[b, a] = prod
        self._add = add
        self._mul = mul
        neg = np.empty(q, dtype=np.int32)
        for a in range(q):
            # -a is the additive inverse.
            neg[a] = int(np.flatnonzero(add[a] == 0)[0])
        self._neg = neg
        inv = np.zeros(q, dtype=np.int32)
        for a in range(1, q):
            inv[a] = int(np.flatnonzero(mul[a] == 1)[0])
        self._inv = inv
        self.primitive = self._find_primitive()
        # exp/log tables for fast pow.
        exp = np.empty(q - 1, dtype=np.int32)
        log = np.full(q, -1, dtype=np.int32)
        acc = 1
        for i in range(q - 1):
            exp[i] = acc
            log[acc] = i
            acc = int(mul[acc, self.primitive])
        self._exp, self._log = exp, log

    def _find_primitive(self) -> int:
        q = self.q
        for g in range(2 if q > 2 else 1, q):
            seen = 1
            acc = g
            order = 1
            while acc != 1:
                acc = int(self._mul[acc, g])
                order += 1
                if order > q:
                    raise RuntimeError("element order overflow; table bug")
            _ = seen
            if order == q - 1:
                return g
        if q == 2:
            return 1
        raise RuntimeError(f"no primitive element found in GF({q})")

    # -- arithmetic (scalar or numpy arrays of codes) ----------------------
    def add(self, a, b):
        """Field addition (elementwise on arrays)."""
        return self._add[a, b]

    def sub(self, a, b):
        """Field subtraction ``a - b``."""
        return self._add[a, self._neg[b]]

    def neg(self, a):
        """Additive inverse."""
        return self._neg[a]

    def mul(self, a, b):
        """Field multiplication."""
        return self._mul[a, b]

    def inv(self, a):
        """Multiplicative inverse; ``inv(0)`` raises."""
        if np.any(np.asarray(a) == 0):
            raise ZeroDivisionError("0 has no inverse in GF(q)")
        return self._inv[a]

    def pow(self, a: int, e: int) -> int:
        """Return ``a**e`` (scalar only)."""
        if a == 0:
            return 0 if e > 0 else 1
        if e == 0:
            return 1
        lg = int(self._log[a])
        return int(self._exp[(lg * e) % (self.q - 1)])

    def elements(self) -> np.ndarray:
        """All field elements as codes ``0 .. q-1``."""
        return np.arange(self.q, dtype=np.int32)

    def nonzero_squares(self) -> np.ndarray:
        """The set {x^2 : x in GF(q)*} as a sorted code array."""
        squares = np.unique(self._mul[np.arange(1, self.q), np.arange(1, self.q)])
        return squares

    def is_square(self, a: int) -> bool:
        """Return True iff ``a`` is a square in GF(q) (0 counts as square)."""
        if a == 0:
            return True
        if self.p == 2:
            return True  # Frobenius is bijective in characteristic 2.
        return int(self._log[a]) % 2 == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF({self.q})"
