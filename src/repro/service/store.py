"""Multi-tenant artifact store: the disk cache with a budget and metrics.

:class:`ArtifactStore` extends :class:`~repro.utils.diskcache.DiskCache`
into the shared store the experiment service runs many concurrent jobs
against:

* **byte budget + LRU eviction** — after every ``put`` the store evicts
  least-recently-used entries (hits refresh recency via ``mtime``) until
  the on-disk footprint fits ``budget_bytes``;
* **tmp reaping at startup** — orphaned ``*.tmp`` files stranded by
  interrupted writers are removed (age-guarded, so a live concurrent
  writer's tempfile survives);
* **metrics** — hits/misses/evictions/corrupt-drops/reaped-tmp counters,
  thread-safe, persisted to ``store_metrics.json`` under the cache root
  so ``repro cache stats`` and the service's ``/status`` endpoint report
  totals across service restarts, not just the current session.

Atomicity relies on the base class contract (tempfile + ``os.replace``),
so several *processes* may share one root; eviction and reaping tolerate
concurrent unlinks by treating every ``OSError`` as "someone else got
there first".
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.utils.diskcache import DiskCache

#: Sidecar file (directly under the store root, outside the ``<hh>/``
#: entry directories) accumulating counters across store lifetimes.
METRICS_FILE = "store_metrics.json"

_COUNTERS = ("hits", "misses", "evictions", "corrupt_dropped", "reaped_tmp")

#: Default grace period before an orphaned tempfile is considered stale.
DEFAULT_REAP_AGE_S = 3600.0


class ArtifactStore(DiskCache):
    """A :class:`DiskCache` with a byte budget, LRU eviction, and metrics."""

    def __init__(
        self,
        root: str | os.PathLike,
        enabled: bool = True,
        budget_bytes: int | None = None,
        reap_age_s: float = DEFAULT_REAP_AGE_S,
    ) -> None:
        super().__init__(root, enabled=enabled)
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.evictions = 0
        self.reaped_tmp = 0
        self._lock = threading.RLock()
        self._persisted = self._load_metrics()
        if enabled:
            self.root.mkdir(parents=True, exist_ok=True)
            self.reaped_tmp = self.reap_tmp(reap_age_s)
            if self.budget_bytes is not None:
                self._evict_to_budget()

    # -- recency / eviction -------------------------------------------------
    def _note_hit(self, path: Path) -> None:
        # mtime doubles as the LRU clock: hits refresh it so eviction order
        # is least-recently-*used*, not least-recently-written.
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _note_put(self, path: Path) -> None:
        if self.budget_bytes is not None:
            self._evict_to_budget()

    def _evict_to_budget(self) -> int:
        """Unlink LRU entries until the store fits its budget."""
        with self._lock:
            entries: list[tuple[float, int, Path]] = []
            total = 0
            for path in self.root.glob("*/*.pkl"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
                total += st.st_size
            if self.budget_bytes is None or total <= self.budget_bytes:
                return 0
            entries.sort(key=lambda e: (e[0], str(e[2])))
            evicted = 0
            for _mtime, size, path in entries:
                if total <= self.budget_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue  # a concurrent tenant evicted it first
                total -= size
                evicted += 1
            self.evictions += evicted
            return evicted

    # -- thread-safe counters ----------------------------------------------
    # DiskCache bumps plain ints; under the service many threads share one
    # store, so guard the read-modify-write with the lock.
    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            return super().get(key, default)

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            super().put(key, value)

    # -- metrics ------------------------------------------------------------
    def _metrics_path(self) -> Path:
        return self.root / METRICS_FILE

    def _load_metrics(self) -> dict[str, int]:
        try:
            data = json.loads(self._metrics_path().read_text())
            return {k: int(data.get(k, 0)) for k in _COUNTERS}
        except (OSError, ValueError, TypeError):
            return dict.fromkeys(_COUNTERS, 0)

    def _session_counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_dropped": self.corrupt_dropped,
            "reaped_tmp": self.reaped_tmp,
        }

    def flush_metrics(self) -> dict[str, int]:
        """Persist accumulated counters (startup totals + this session)."""
        with self._lock:
            totals = {
                k: self._persisted[k] + v
                for k, v in self._session_counters().items()
            }
            path = self._metrics_path()
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(".json.tmp")
                tmp.write_text(json.dumps(totals, indent=2) + "\n")
                os.replace(tmp, path)
            except OSError:
                pass
            return totals

    def stats(self) -> dict[str, Any]:
        """Base cache stats plus budget, eviction, and lifetime counters."""
        base = super().stats()
        with self._lock:
            session = self._session_counters()
            totals = {k: self._persisted[k] + v for k, v in session.items()}
            looked_up = totals["hits"] + totals["misses"]
            base.update(
                budget_bytes=self.budget_bytes,
                session_evictions=session["evictions"],
                session_reaped_tmp=session["reaped_tmp"],
                total_hits=totals["hits"],
                total_misses=totals["misses"],
                total_evictions=totals["evictions"],
                total_corrupt_dropped=totals["corrupt_dropped"],
                total_reaped_tmp=totals["reaped_tmp"],
                hit_rate=round(totals["hits"] / looked_up, 4) if looked_up else None,
            )
        return base

def parse_budget(text: str) -> int:
    """Parse a human byte budget: ``"500000"``, ``"64K"``, ``"256M"``, ``"2G"``."""
    text = text.strip()
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    scale = 1
    if text and text[-1].upper() in units:
        scale = units[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(float(text) * scale)
    except ValueError:
        raise ValueError(f"cannot parse byte budget {text!r}") from None
    if value <= 0:
        raise ValueError(f"byte budget must be positive, got {value}")
    return value
