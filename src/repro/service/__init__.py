"""The experiment service: async jobs, streaming results, shared store.

``repro serve`` turns the one-shot ``python -m repro run`` executor into
a long-lived job system for many overlapping sweeps on one machine:

* :mod:`repro.service.store` — :class:`ArtifactStore`, the
  content-addressed disk cache promoted to a multi-tenant artifact store
  (byte budget, LRU eviction, startup tmp reaping, persistent
  hit/miss/eviction metrics);
* :mod:`repro.service.jobs` — :class:`Job` lifecycle + per-job event
  logs, the streaming channel carrying per-cell results;
* :mod:`repro.service.queue` — :class:`JobQueue`, FIFO jobs across
  worker threads sharing one store (cell-level dedup across tenants),
  with eager submit-time validation and cooperative cancellation;
* :mod:`repro.service.api` — the stdlib HTTP server + client behind the
  ``serve``/``submit``/``status``/``cancel``/``stream`` CLI verbs.

See ``docs/service.md`` for the job lifecycle, the streaming protocol,
and the store's eviction/quota semantics.
"""

from repro.service.api import ServiceClient, ServiceError, make_server
from repro.service.jobs import Job, JobEvent, JobState
from repro.service.queue import JobQueue
from repro.service.store import ArtifactStore, parse_budget

__all__ = [
    "ArtifactStore",
    "Job",
    "JobEvent",
    "JobQueue",
    "JobState",
    "ServiceClient",
    "ServiceError",
    "make_server",
    "parse_budget",
]
