"""The experiment job queue: async submission, workers, cancellation.

:class:`JobQueue` turns ``run_experiment`` into a long-lived service
core: submissions validate eagerly (unknown experiment, bad preset, bad
override, unsupported backend — all rejected at submit time, before the
job queues), then run FIFO across a fixed pool of worker *threads*, each
of which may fan its job's cells across worker *processes*
(``jobs_per_run``).  Every job shares one
:class:`~repro.service.store.ArtifactStore`, so overlapping sweeps from
concurrent tenants deduplicate cell-by-cell through the content-addressed
cache; per-cell results stream out through each job's event log.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.errors import JobCancelledError
from repro.runner.executor import run_experiment
from repro.runner.registry import ExperimentDef, get_experiment
from repro.service.jobs import Job, JobState
from repro.service.store import ArtifactStore
from repro.utils.diskcache import DiskCache


class JobQueue:
    """FIFO experiment jobs over shared worker threads and one store."""

    def __init__(
        self,
        store: DiskCache | ArtifactStore,
        workers: int = 2,
        jobs_per_run: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.jobs_per_run = max(1, jobs_per_run)
        self._jobs: dict[str, Job] = {}
        self._pending: deque[Job] = deque()
        self._cond = threading.Condition()
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission / lookup ------------------------------------------------
    def submit(
        self,
        experiment: str | ExperimentDef,
        preset: str = "small",
        overrides: dict[str, Any] | None = None,
        force: bool = False,
    ) -> Job:
        """Validate and enqueue one experiment run; returns the Job.

        Validation happens *now*, in the submitter's thread: resolving the
        registry name, building the spec (which checks preset existence,
        override shapes, and backend capabilities) — so a bad submission
        fails the caller instead of failing a queued job minutes later.
        """
        exp = (
            get_experiment(experiment)
            if isinstance(experiment, str)
            else experiment
        )
        if exp.is_composite:
            # Mirror run_experiment's composite contract at submit time.
            parts = [get_experiment(p) for p in exp.parts]
            accepted = set().union(*(p.accepted_params() for p in parts))
            unknown = sorted(set(overrides or {}) - accepted)
            if unknown:
                raise KeyError(
                    f"composite {exp.name!r}: override key(s) "
                    f"{', '.join(unknown)} accepted by no part"
                )
            for part in parts:
                part.spec(
                    preset,
                    {
                        k: v
                        for k, v in (overrides or {}).items()
                        if k in part.accepted_params()
                    },
                )
        else:
            unknown = sorted(set(overrides or {}) - exp.accepted_params())
            if unknown:
                raise KeyError(
                    f"experiment {exp.name!r}: unknown override key(s) "
                    f"{', '.join(unknown)}; driver accepts "
                    f"{', '.join(sorted(exp.accepted_params()))}"
                )
            exp.spec(preset, overrides)
        job = Job(name=exp.name, preset=preset, overrides=overrides,
                  jobs=self.jobs_per_run, force=force)
        job._exp = exp  # resolved def travels with the job
        with self._cond:
            if self._shutdown:
                raise RuntimeError("job queue is shut down")
            self._jobs[job.id] = job
            self._pending.append(job)
            self._cond.notify()
        job.emit("submitted", {"experiment": exp.name, "preset": preset,
                               "overrides": overrides or {}})
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(
                f"unknown job {job_id!r}; known: {', '.join(self._jobs) or '(none)'}"
            ) from None

    def jobs(self) -> list[Job]:
        with self._cond:
            return list(self._jobs.values())

    # -- cancellation ---------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Request cancellation; pending jobs die now, running ones soon.

        A running job's executor honours the token at the next cell
        boundary, so completed cells stay cached and nothing partial is
        written (the no-poisoning contract of ``CancelToken``).
        """
        job = self.get(job_id)
        job.cancel_token.cancel()
        with self._cond:
            if job.state is JobState.PENDING:
                try:
                    self._pending.remove(job)
                except ValueError:
                    pass  # a worker grabbed it; the token will stop it
                else:
                    job.finish(JobState.CANCELLED, error="cancelled while queued")
                    job.emit("job-cancelled", {"reason": "cancelled while queued"})
                    return job
        if not job.is_terminal:
            job.emit("cancel-requested", {})
        return job

    # -- status ----------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Service-wide snapshot: every job plus the shared store's stats."""
        with self._cond:
            jobs = list(self._jobs.values())
            queued = len(self._pending)
        return {
            "workers": len(self._threads),
            "jobs_per_run": self.jobs_per_run,
            "queued": queued,
            "jobs": [j.snapshot() for j in jobs],
            "store": self.store.stats(),
        }

    # -- worker loop -------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(lambda: self._pending or self._shutdown)
                if self._shutdown and not self._pending:
                    return
                job = self._pending.popleft()
            if job.cancel_token.cancelled:
                job.finish(JobState.CANCELLED, error="cancelled while queued")
                job.emit("job-cancelled", {"reason": "cancelled while queued"})
                continue
            self._run(job)

    def _run(self, job: Job) -> None:
        job.mark_running()
        job.emit("job-start", {"experiment": job.name, "preset": job.preset})

        def sink(event: dict[str, Any]) -> None:
            payload = dict(event)
            job.emit(payload.pop("type"), payload)

        try:
            reports = run_experiment(
                job._exp,
                preset=job.preset,
                overrides=job.overrides,
                jobs=job.jobs,
                cache=self.store,
                force=job.force,
                events=sink,
                cancel=job.cancel_token,
            )
        except JobCancelledError as exc:
            job.finish(JobState.CANCELLED, error=str(exc))
            job.emit("job-cancelled", {"reason": str(exc)})
        except BaseException as exc:  # noqa: BLE001 — job isolation boundary
            job.finish(JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
            job.emit("job-failed", {"error": job.error})
        else:
            job.reports = reports
            job.finish(JobState.DONE)
            job.emit(
                "job-done",
                {
                    "reports": [
                        {
                            "name": r.name,
                            "rows": len(r.result.rows),
                            "seconds": round(r.seconds, 3),
                            "n_cells": r.n_cells,
                            "n_cached_cells": r.n_cached_cells,
                            "from_cache": r.from_cache,
                        }
                        for r in reports
                    ]
                },
            )

    # -- shutdown ------------------------------------------------------------
    def shutdown(self, cancel_running: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work; optionally cancel in-flight jobs; join."""
        with self._cond:
            self._shutdown = True
            pending = list(self._pending)
            self._pending.clear()
            self._cond.notify_all()
        for job in pending:
            job.finish(JobState.CANCELLED, error="service shut down")
            job.emit("job-cancelled", {"reason": "service shut down"})
        if cancel_running:
            for job in self.jobs():
                if not job.is_terminal:
                    job.cancel_token.cancel()
        for t in self._threads:
            t.join(timeout=timeout)
