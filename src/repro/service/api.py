"""HTTP facade for the experiment service (stdlib only).

The server wraps one :class:`~repro.service.queue.JobQueue` in a
threaded ``http.server`` speaking JSON:

========================  =====================================================
``POST /jobs``            submit ``{"experiment", "preset", "overrides",
                          "force"}`` → job snapshot (201)
``GET  /jobs``            all job snapshots
``GET  /jobs/<id>``       one job snapshot
``POST /jobs/<id>/cancel``request cancellation → snapshot
``GET  /jobs/<id>/events``long-poll: ``?since=N&timeout=S`` →
                          ``{"state", "events": [...]}``
``GET  /jobs/<id>/stream``newline-delimited JSON events from ``?since=N``
                          until the job is terminal (connection closes)
``GET  /status``          queue + shared-store metrics (hit rate, evictions,
                          reaped tempfiles, byte budget)
========================  =====================================================

Streaming uses plain NDJSON over a ``Connection: close`` response — each
line is one ``{"seq", "ts", "kind", "data"}`` event, written as it
happens — so any HTTP client (``curl`` included) can follow a job live.
:class:`ServiceClient` is the matching urllib client the CLI verbs use.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator
from urllib.parse import parse_qs, urlsplit

from repro.service.jobs import detuple, jsonable
from repro.service.queue import JobQueue

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


class ServiceError(RuntimeError):
    """An HTTP request to the service failed; carries the server message."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


def _json_bytes(obj: Any) -> bytes:
    return (json.dumps(jsonable(obj)) + "\n").encode()


class _Handler(BaseHTTPRequestHandler):
    queue: JobQueue  # bound by make_server
    quiet: bool = True

    # -- plumbing -----------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
        if not self.quiet:
            super().log_message(fmt, *args)

    def _send(self, obj: Any, code: int = 200) -> None:
        body = _json_bytes(obj)
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send({"error": message}, code=code)

    def _job(self, job_id: str):
        try:
            return self.queue.get(job_id)
        except KeyError as exc:
            self._error(404, str(exc))
            return None

    # -- GET ----------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            if parts == ["status"]:
                self._send(self.queue.status())
            elif parts == ["jobs"]:
                self._send([j.snapshot() for j in self.queue.jobs()])
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self._job(parts[1])
                if job is not None:
                    self._send(job.snapshot())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                job = self._job(parts[1])
                if job is not None:
                    since = int(query.get("since", 0))
                    timeout = min(float(query.get("timeout", 0.0)), 30.0)
                    events = job.events_since(
                        since, timeout=timeout if timeout > 0 else None
                    )
                    self._send(
                        {
                            "state": job.state.value,
                            "events": [e.as_dict() for e in events],
                        }
                    )
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stream":
                job = self._job(parts[1])
                if job is not None:
                    self._stream(job, since=int(query.get("since", 0)))
            else:
                self._error(404, f"no such endpoint: GET {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 — request isolation
            try:
                self._error(500, f"{type(exc).__name__}: {exc}")
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass

    def _stream(self, job, since: int = 0) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        seq = since
        while True:
            events = job.events_since(seq, timeout=0.5)
            for event in events:
                self.wfile.write(_json_bytes(event.as_dict()))
                seq = event.seq + 1
            self.wfile.flush()
            if job.is_terminal and seq >= job.n_events:
                return

    # -- POST ---------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except ValueError:
            self._error(400, "request body is not valid JSON")
            return
        try:
            if parts == ["jobs"]:
                experiment = body.get("experiment")
                if not experiment:
                    self._error(400, "missing 'experiment'")
                    return
                job = self.queue.submit(
                    experiment,
                    preset=body.get("preset", "small"),
                    overrides=detuple(body.get("overrides") or {}),
                    force=bool(body.get("force", False)),
                )
                self._send(job.snapshot(), code=201)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                job = self._job(parts[1])
                if job is not None:
                    self._send(self.queue.cancel(job.id).snapshot())
            else:
                self._error(404, f"no such endpoint: POST {self.path}")
        except (KeyError, ValueError) as exc:
            # Submit-time validation failures (unknown experiment/preset,
            # bad override) are client errors, not crashes.
            self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 — request isolation
            self._error(500, f"{type(exc).__name__}: {exc}")


def make_server(
    queue: JobQueue,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` picks a free one."""
    handler = type(
        "BoundServiceHandler", (_Handler,), {"queue": queue, "quiet": quiet}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def start_in_thread(server: ThreadingHTTPServer) -> threading.Thread:
    """Run ``serve_forever`` on a daemon thread (tests, embedded use)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return thread


# ---------------------------------------------------------------------------
class ServiceClient:
    """Thin urllib client for the service API (used by the CLI verbs)."""

    def __init__(self, url: str = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}") -> None:
        self.url = url.rstrip("/")

    def _request(
        self, method: str, path: str, body: dict | None = None,
        timeout: float = 60.0,
    ) -> Any:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return json.loads(resp.read() or b"null")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except Exception:  # noqa: BLE001 — error body is best-effort
                message = str(exc)
            raise ServiceError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from None

    # -- verbs -----------------------------------------------------------
    def submit(
        self,
        experiment: str,
        preset: str = "small",
        overrides: dict | None = None,
        force: bool = False,
    ) -> dict:
        return self._request(
            "POST",
            "/jobs",
            {
                "experiment": experiment,
                "preset": preset,
                "overrides": jsonable(overrides or {}),
                "force": force,
            },
        )

    def status(self) -> dict:
        return self._request("GET", "/status")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def events(self, job_id: str, since: int = 0, timeout: float = 0.0) -> dict:
        return self._request(
            "GET",
            f"/jobs/{job_id}/events?since={since}&timeout={timeout}",
            timeout=timeout + 30.0,
        )

    def stream(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Yield events as the server emits them, until the job finishes."""
        req = urllib.request.Request(f"{self.url}/jobs/{job_id}/stream?since={since}")
        try:
            resp = urllib.request.urlopen(req)
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except Exception:  # noqa: BLE001
                message = str(exc)
            raise ServiceError(message, status=exc.code) from None
        with resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def wait(self, job_id: str, poll_s: float = 0.2, timeout: float = 600.0) -> dict:
        """Poll until the job reaches a terminal state; returns the snapshot."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            snap = self.job(job_id)
            if snap["state"] in ("done", "failed", "cancelled"):
                return snap
            if _time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for {job_id} (state {snap['state']})"
                )
            _time.sleep(poll_s)
