"""Job objects for the experiment service.

A :class:`Job` is one submitted experiment run — a named registry spec
plus preset/overrides — with a lifecycle
(``pending → running → done | failed | cancelled``), a cooperative
:class:`~repro.runner.executor.CancelToken`, and an append-only event log
that doubles as the streaming channel: the executor's event sink feeds
per-cell results into :meth:`Job.emit`, and any number of consumers read
them back (blocking, from any offset) with :meth:`Job.events_since`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any

import numpy as np

from repro.runner.executor import CancelToken


class JobState(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


def jsonable(obj: Any) -> Any:
    """Best-effort reduction to JSON-encodable types (numpy included).

    Event payloads carry experiment rows, which mix numpy scalars into
    plain dicts; the HTTP layer and ``stream`` output need pure JSON.
    Unknown objects degrade to ``repr`` rather than failing the stream.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(x) for x in obj]
    if isinstance(obj, Enum):
        return obj.value
    return repr(obj)


def detuple(obj: Any) -> Any:
    """Recursively turn JSON lists back into tuples.

    Submissions arriving over HTTP decode overrides with lists where the
    CLI builds tuples; canonical hashing treats them identically, but the
    registry's one-element wrapping and axis splitting expect tuples, so
    normalise at the boundary.
    """
    if isinstance(obj, (list, tuple)):
        return tuple(detuple(x) for x in obj)
    if isinstance(obj, dict):
        return {k: detuple(v) for k, v in obj.items()}
    return obj


@dataclass(frozen=True)
class JobEvent:
    """One entry of a job's append-only event log."""

    seq: int
    ts: float
    kind: str
    data: dict[str, Any]

    def as_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "ts": self.ts, "kind": self.kind,
                "data": self.data}


class Job:
    """One submitted experiment run and its streaming event log."""

    _ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        preset: str = "small",
        overrides: dict[str, Any] | None = None,
        jobs: int = 1,
        force: bool = False,
    ) -> None:
        self.id = f"job-{next(Job._ids)}"
        self.name = name
        self.preset = preset
        self.overrides = dict(overrides or {})
        self.jobs = jobs
        self.force = force
        self.state = JobState.PENDING
        self.error: str | None = None
        self.reports: list[Any] = []  # RunReport, once done
        self.cancel_token = CancelToken()
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self._events: list[JobEvent] = []
        self._cond = threading.Condition()

    # -- events ---------------------------------------------------------
    def emit(self, kind: str, data: dict[str, Any] | None = None) -> JobEvent:
        """Append one event and wake every blocked consumer."""
        with self._cond:
            event = JobEvent(
                seq=len(self._events), ts=time.time(), kind=kind,
                data=jsonable(data or {}),
            )
            self._events.append(event)
            self._cond.notify_all()
        return event

    def events_since(
        self, seq: int = 0, timeout: float | None = None
    ) -> list[JobEvent]:
        """Events from offset ``seq`` on; optionally block until one exists.

        With a ``timeout``, waits until a new event arrives or the job is
        terminal (so stream consumers never hang on a finished job).
        """
        with self._cond:
            if timeout is not None:
                self._cond.wait_for(
                    lambda: len(self._events) > seq or self.is_terminal,
                    timeout,
                )
            return list(self._events[seq:])

    @property
    def n_events(self) -> int:
        with self._cond:
            return len(self._events)

    # -- lifecycle --------------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def mark_running(self) -> None:
        with self._cond:
            self.state = JobState.RUNNING
            self.started = time.time()
            self._cond.notify_all()

    def finish(self, state: JobState, error: str | None = None) -> None:
        with self._cond:
            self.state = state
            self.error = error
            self.finished = time.time()
            self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; returns whether it is."""
        with self._cond:
            self._cond.wait_for(lambda: self.is_terminal, timeout)
            return self.is_terminal

    # -- reporting --------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe status view (the service's per-job status payload)."""
        with self._cond:
            reports = [
                {
                    "name": r.name,
                    "rows": len(r.result.rows),
                    "seconds": round(r.seconds, 3),
                    "n_cells": r.n_cells,
                    "n_cached_cells": r.n_cached_cells,
                    "from_cache": r.from_cache,
                }
                for r in self.reports
            ]
            return {
                "id": self.id,
                "experiment": self.name,
                "preset": self.preset,
                "overrides": jsonable(self.overrides),
                "state": self.state.value,
                "error": self.error,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "n_events": len(self._events),
                "reports": reports,
            }
