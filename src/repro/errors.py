"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError, ValueError):
    """A topology/experiment parameter is invalid or infeasible."""


class ConstructionError(ReproError, RuntimeError):
    """A graph construction failed an internal consistency check."""


class SimulationError(ReproError, RuntimeError):
    """The network simulator reached an inconsistent state."""


class CellExecutionError(ReproError, RuntimeError):
    """A sweep cell's driver raised.

    Carries the failing cell's :class:`~repro.runner.spec.ExperimentSpec`
    as ``spec`` so callers can tell exactly which point of a sweep died;
    the original exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, spec=None) -> None:
        super().__init__(message)
        self.spec = spec
