"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError, ValueError):
    """A topology/experiment parameter is invalid or infeasible."""


class ConstructionError(ReproError, RuntimeError):
    """A graph construction failed an internal consistency check."""


class SimulationError(ReproError, RuntimeError):
    """The network simulator reached an inconsistent state."""


class BackendCapabilityError(SimulationError, ParameterError):
    """A simulation backend was asked for a feature it does not implement.

    The **single** error type every backend/feature mismatch funnels
    through — engine constructors, :func:`repro.sim.capabilities.require`,
    and registry/spec-time validation all raise this, so callers (and
    tests) match one type instead of scattered guards.  Subclasses both
    :class:`SimulationError` and :class:`ParameterError` because the
    mismatch is simultaneously a simulator refusal and a bad parameter
    choice; existing ``except`` sites of either kind keep working.

    ``backend`` and ``feature`` carry the offending pair;
    ``supported_backends`` names the engines that *do* implement the
    feature (also spelled out in the message).
    """

    def __init__(
        self,
        message: str,
        backend: str | None = None,
        feature: str | None = None,
        supported_backends: tuple = (),
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.feature = feature
        self.supported_backends = tuple(supported_backends)


class BufferDeadlockError(SimulationError):
    """A finite-buffer run wedged on a cyclic (edge, VC) dependency.

    Raised by both engines when the event queue (or batched waiting set)
    still holds packets but no port can make progress: every blocked head
    packet waits for credit in a downstream input buffer held by another
    blocked packet.  This is the *genuine* deadlock the virtual-channel
    scheme of Section V-A exists to prevent — reaching it means the run
    was configured with too few VCs (or a routing function whose channel
    dependency graph is cyclic; see ``repro.routing.vc``).

    ``cycle`` is a tuple of ``(edge_id, vc)`` pairs tracing one cyclic
    wait-for chain through the input buffers (empty when the wedge has no
    clean cycle witness, e.g. after mid-run faults); ``blocked`` counts
    the packets stuck in port queues; ``undelivered`` is the total
    shortfall (blocked plus in-flight); ``stats`` carries the partial
    :class:`~repro.sim.stats.SimStats` at the moment of the wedge, with
    ``deadlocked=True`` already set.
    """

    def __init__(
        self,
        message: str,
        cycle: tuple = (),
        blocked: int = 0,
        undelivered: int = 0,
        stats=None,
    ) -> None:
        super().__init__(message)
        self.cycle = tuple(cycle)
        self.blocked = blocked
        self.undelivered = undelivered
        self.stats = stats

    @classmethod
    def build(
        cls, cycle: tuple, blocked: int, undelivered: int, stats
    ) -> "BufferDeadlockError":
        """Construct the error with the canonical message both engines use."""
        chain = (
            " -> ".join(f"(edge {e}, vc {v})" for e, v in cycle)
            + f" -> (edge {cycle[0][0]}, vc {cycle[0][1]})"
            if cycle
            else "no clean single-cycle witness"
        )
        return cls(
            f"finite-buffer deadlock: {undelivered} packets undelivered "
            f"({blocked} blocked in port queues); cyclic (edge, VC) "
            f"dependency: {chain}. The VC budget is too small for this "
            "routing (see repro.routing.vc and docs/congestion.md).",
            cycle=cycle,
            blocked=blocked,
            undelivered=undelivered,
            stats=stats,
        )

    @staticmethod
    def find_cycle(waits_for: dict) -> tuple:
        """Extract one cycle from a wait-for map of (edge, vc) -> (edge, vc).

        ``waits_for[held] = wanted`` means the packet holding buffer
        ``held`` is blocked on credit in buffer ``wanted``.  Follows the
        chain from each start node until a node repeats; returns the
        repeating segment, or ``()`` when every chain dead-ends (the
        blocked packet at the front holds no buffer yet, or the wedge is
        not a clean single cycle).
        """
        for start in waits_for:
            seen: dict = {}
            node = start
            while node in waits_for and node not in seen:
                seen[node] = len(seen)
                node = waits_for[node]
            if node in seen:
                chain = list(seen)
                return tuple(chain[seen[node]:])
        return ()


class JobCancelledError(ReproError, RuntimeError):
    """An experiment run was cancelled through its :class:`CancelToken`.

    Raised by the executor at the next cell boundary after cancellation
    is requested (``repro.runner.executor``).  Cells that completed
    before the cancellation remain individually cached — they are valid
    results — but no merged result is written, so a re-run recomputes
    only the cells the cancelled run never finished.
    """


class CellExecutionError(ReproError, RuntimeError):
    """A sweep cell's driver raised.

    Carries the failing cell's :class:`~repro.runner.spec.ExperimentSpec`
    as ``spec`` so callers can tell exactly which point of a sweep died;
    the original exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, spec=None) -> None:
        super().__init__(message)
        self.spec = spec
