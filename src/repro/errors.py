"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError, ValueError):
    """A topology/experiment parameter is invalid or infeasible."""


class ConstructionError(ReproError, RuntimeError):
    """A graph construction failed an internal consistency check."""


class SimulationError(ReproError, RuntimeError):
    """The network simulator reached an inconsistent state."""


class BackendCapabilityError(SimulationError, ParameterError):
    """A simulation backend was asked for a feature it does not implement.

    The **single** error type every backend/feature mismatch funnels
    through — engine constructors, :func:`repro.sim.capabilities.require`,
    and registry/spec-time validation all raise this, so callers (and
    tests) match one type instead of scattered guards.  Subclasses both
    :class:`SimulationError` and :class:`ParameterError` because the
    mismatch is simultaneously a simulator refusal and a bad parameter
    choice; existing ``except`` sites of either kind keep working.

    ``backend`` and ``feature`` carry the offending pair;
    ``supported_backends`` names the engines that *do* implement the
    feature (also spelled out in the message).
    """

    def __init__(
        self,
        message: str,
        backend: str | None = None,
        feature: str | None = None,
        supported_backends: tuple = (),
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.feature = feature
        self.supported_backends = tuple(supported_backends)


class CellExecutionError(ReproError, RuntimeError):
    """A sweep cell's driver raised.

    Carries the failing cell's :class:`~repro.runner.spec.ExperimentSpec`
    as ``spec`` so callers can tell exactly which point of a sweep died;
    the original exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, spec=None) -> None:
        super().__init__(message)
        self.spec = spec
