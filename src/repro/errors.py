"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParameterError(ReproError, ValueError):
    """A topology/experiment parameter is invalid or infeasible."""


class ConstructionError(ReproError, RuntimeError):
    """A graph construction failed an internal consistency check."""


class SimulationError(ReproError, RuntimeError):
    """The network simulator reached an inconsistent state."""
