"""Level-synchronous BFS kernels.

Two implementations are provided:

* :func:`bfs_distances` — single-source frontier BFS using vectorised
  neighbour gathering (no per-vertex Python loop).
* :func:`distance_matrix` / :func:`distance_profile` — multi-source BFS as
  blocked sparse-matrix x dense-block products, the idiom that makes
  all-pairs statistics (diameter, average distance, Table I) feasible at the
  paper's 7K-vertex scale in pure Python.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

UNREACHED = np.iinfo(np.int32).max


def _gather_neighbors(g: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """Concatenate neighbour lists of all frontier vertices (vectorised)."""
    starts = g.indptr[frontier]
    counts = g.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # positions = starts[i] + (0..counts[i]-1) for each frontier vertex i,
    # computed without a Python loop via the repeat/cumsum ramp idiom.
    cum_before = np.cumsum(counts) - counts
    positions = np.repeat(starts - cum_before, counts) + np.arange(total)
    return g.indices[positions].astype(np.int64)


def bfs_distances(g: CSRGraph, source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable vertices get ``UNREACHED``."""
    dist = np.full(g.n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        nbrs = _gather_neighbors(g, frontier)
        nbrs = nbrs[dist[nbrs] == UNREACHED]
        if len(nbrs) == 0:
            break
        frontier = np.unique(nbrs)
        dist[frontier] = level
    return dist


def distance_matrix(
    g: CSRGraph,
    sources: np.ndarray | None = None,
    batch: int = 512,
    dtype=np.int16,
) -> np.ndarray:
    """All-(or some-)pairs hop distances via blocked sparse matmul BFS.

    Returns an array of shape ``(len(sources), n)``; unreachable pairs hold
    ``-1``.  Memory is ``O(n * batch)`` per block plus the output.
    """
    if sources is None:
        sources = np.arange(g.n, dtype=np.int64)
    sources = np.asarray(sources, dtype=np.int64)
    adj = g.adjacency(dtype=np.float32)
    out = np.full((len(sources), g.n), -1, dtype=dtype)
    for lo in range(0, len(sources), batch):
        block = sources[lo : lo + batch]
        width = len(block)
        dist = np.full((g.n, width), -1, dtype=dtype)
        frontier = np.zeros((g.n, width), dtype=np.float32)
        frontier[block, np.arange(width)] = 1.0
        visited = frontier > 0
        dist[visited] = 0
        level = 0
        while True:
            level += 1
            frontier = adj @ frontier
            new = (frontier > 0) & ~visited
            if not new.any():
                break
            dist[new] = level
            visited |= new
            frontier = new.astype(np.float32)
        out[lo : lo + width] = dist.T
    return out


def distance_profile(
    g: CSRGraph, sources: np.ndarray | None = None, batch: int = 512
) -> tuple[np.ndarray, int, float]:
    """Return (histogram of pairwise distances, diameter, mean distance).

    Streams over source blocks without materialising the full matrix, so it
    works at any size the BFS itself can handle.  Pairs (u, u) are excluded
    from the mean; disconnected pairs raise.
    """
    if sources is None:
        sources = np.arange(g.n, dtype=np.int64)
    hist = np.zeros(1, dtype=np.int64)
    for lo in range(0, len(sources), batch):
        block = sources[lo : lo + batch]
        dmat = distance_matrix(g, block, batch=batch)
        if np.any(dmat < 0):
            raise ValueError("graph is disconnected; distances undefined")
        top = int(dmat.max())
        if top + 1 > len(hist):
            hist = np.concatenate([hist, np.zeros(top + 1 - len(hist), np.int64)])
        hist += np.bincount(dmat.ravel(), minlength=len(hist))[: len(hist)]
    hist0 = hist.copy()
    hist0[0] = 0  # drop the (u, u) self pairs
    total_pairs = int(hist0.sum())
    mean = float((np.arange(len(hist0)) * hist0).sum() / total_pairs)
    diam = int(np.max(np.nonzero(hist0)[0]))
    return hist0, diam, mean
