"""Compact CSR graph representation on numpy arrays.

All topologies in this package are simple undirected graphs; ``CSRGraph``
stores both directions of every edge in sorted CSR form, which is what the
batched BFS, the partitioner, and the simulator's routing tables consume.
"""

from __future__ import annotations

import hashlib

import numpy as np
import scipy.sparse as sp

from repro.errors import ConstructionError


class CSRGraph:
    """Simple undirected graph in CSR form.

    Attributes
    ----------
    n:
        Number of vertices.
    indptr, indices:
        Standard CSR adjacency structure; ``indices[indptr[v]:indptr[v+1]]``
        are the (sorted) neighbours of ``v``.
    """

    __slots__ = ("n", "indptr", "indices", "_adj_cache")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.n = int(n)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int32)
        self._adj_cache: sp.csr_matrix | None = None
        if len(self.indptr) != self.n + 1:
            raise ConstructionError("indptr length must be n + 1")
        # Sorted neighbour rows are a structural invariant: port_of /
        # has_edge binary-search them and the routing fast path's
        # neighbour-row ordering relies on them.  Validate here so a direct
        # construction with unsorted rows fails loudly, not via silently
        # wrong searchsorted results deep in a simulation.
        m = len(self.indices)
        if m > 1:
            decreasing = self.indices[1:] < self.indices[:-1]
            row_starts = self.indptr[1:-1]
            row_starts = row_starts[(row_starts > 0) & (row_starts < m)]
            decreasing[row_starts - 1] = False  # pairs spanning two rows
            if decreasing.any():
                pos = int(np.flatnonzero(decreasing)[0])
                v = int(np.searchsorted(self.indptr, pos, side="right")) - 1
                raise ConstructionError(
                    f"CSR neighbour row of vertex {v} is not sorted "
                    f"(indices[{pos}]={int(self.indices[pos])} > "
                    f"indices[{pos + 1}]={int(self.indices[pos + 1])}); "
                    "build via CSRGraph.from_edges or sort each row"
                )

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: np.ndarray, allow_parallel: bool = False) -> "CSRGraph":
        """Build from an ``(m, 2)`` array of (possibly directed) edge pairs.

        Symmetrises, removes self-loops, and (unless ``allow_parallel``)
        deduplicates parallel edges.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        mask = edges[:, 0] != edges[:, 1]
        edges = edges[mask]
        if np.any(edges < 0) or np.any(edges >= n):
            raise ConstructionError("edge endpoint out of range")
        both = np.concatenate([edges, edges[:, ::-1]], axis=0)
        keys = both[:, 0] * n + both[:, 1]
        if not allow_parallel:
            keys = np.unique(keys)
        else:
            keys = np.sort(keys)
        heads = keys // n
        tails = keys % n
        counts = np.bincount(heads, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(n, indptr, tails.astype(np.int32))

    @classmethod
    def from_networkx(cls, g) -> "CSRGraph":
        """Build from a ``networkx`` graph with integer labels 0..n-1."""
        n = g.number_of_nodes()
        edges = np.array(list(g.edges()), dtype=np.int64).reshape(-1, 2)
        return cls.from_edges(n, edges)

    # -- basic accessors ----------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def degrees(self) -> np.ndarray:
        """Degree of every vertex."""
        return np.diff(self.indptr).astype(np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of vertex ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def is_regular(self) -> bool:
        """True iff all degrees are equal."""
        degs = self.degrees()
        return bool(len(degs) == 0 or np.all(degs == degs[0]))

    def degree(self) -> int:
        """The common degree of a regular graph (raises otherwise)."""
        degs = self.degrees()
        if not self.is_regular():
            raise ConstructionError("graph is not regular")
        return int(degs[0]) if len(degs) else 0

    def edge_array(self) -> np.ndarray:
        """Return each undirected edge once as an ``(m, 2)`` array (u < v)."""
        heads = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        tails = self.indices.astype(np.int64)
        mask = heads < tails
        return np.stack([heads[mask], tails[mask]], axis=1)

    def content_hash(self) -> str:
        """SHA-256 over the CSR arrays — a stable identity for this graph.

        Two graphs hash equal iff they have identical vertex numbering and
        edge sets, which is what the on-disk caches of derived artifacts
        (BFS distance matrices, routing tables) key on.
        """
        h = hashlib.sha256()
        h.update(str(self.n).encode())
        h.update(np.ascontiguousarray(self.indptr, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(self.indices, dtype=np.int32).tobytes())
        return h.hexdigest()

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search on the sorted neighbour row."""
        row = self.neighbors(u)
        i = np.searchsorted(row, v)
        return bool(i < len(row) and row[i] == v)

    # -- conversions ---------------------------------------------------------
    def adjacency(self, dtype=np.float64) -> sp.csr_matrix:
        """Scipy CSR adjacency matrix (cached for float64)."""
        if dtype == np.float64 and self._adj_cache is not None:
            return self._adj_cache
        data = np.ones(len(self.indices), dtype=dtype)
        mat = sp.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.n, self.n)
        )
        if dtype == np.float64:
            self._adj_cache = mat
        return mat

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (tests/interop only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self.edge_array()))
        return g

    # -- mutation-by-copy ------------------------------------------------------
    def without_edges(self, removed: np.ndarray) -> "CSRGraph":
        """Return a copy with the given undirected edges removed.

        ``removed`` is an ``(r, 2)`` array; orientation is ignored.
        """
        removed = np.asarray(removed, dtype=np.int64).reshape(-1, 2)
        lo = np.minimum(removed[:, 0], removed[:, 1])
        hi = np.maximum(removed[:, 0], removed[:, 1])
        kill_keys = lo * self.n + hi
        edges = self.edge_array()
        edge_keys = edges[:, 0] * self.n + edges[:, 1]
        keep = ~np.isin(edge_keys, kill_keys)
        return CSRGraph.from_edges(self.n, edges[keep])

    def subgraph(self, vertices: np.ndarray) -> "CSRGraph":
        """Induced subgraph; vertices are relabelled 0..len(vertices)-1."""
        vertices = np.asarray(vertices, dtype=np.int64)
        remap = np.full(self.n, -1, dtype=np.int64)
        remap[vertices] = np.arange(len(vertices))
        edges = self.edge_array()
        mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
        sub_edges = remap[edges[mask]]
        return CSRGraph.from_edges(len(vertices), sub_edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.n}, m={self.num_edges})"
