"""Structural graph metrics used throughout the paper's evaluation.

Diameter, average shortest-path distance, girth, connectivity and
bipartiteness — the columns of Table I.  All metrics operate on
:class:`~repro.graphs.csr.CSRGraph` and use the vectorised BFS kernels.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bfs import UNREACHED, bfs_distances, distance_profile
from repro.graphs.csr import CSRGraph


def is_connected(g: CSRGraph) -> bool:
    """True iff the graph is connected (single BFS)."""
    if g.n == 0:
        return True
    return bool(np.all(bfs_distances(g, 0) != UNREACHED))


def is_bipartite(g: CSRGraph) -> bool:
    """2-colourability test via BFS layering.

    For LPS graphs this is a Legendre-symbol check in disguise:
    LPS(p, q) is bipartite iff (p/q) = -1 (the PGL case).
    """
    color = np.full(g.n, -1, dtype=np.int8)
    for start in range(g.n):
        if color[start] != -1:
            continue
        color[start] = 0
        frontier = np.array([start], dtype=np.int64)
        while len(frontier):
            nxt = []
            for v in frontier:
                nbrs = g.neighbors(v)
                same = nbrs[color[nbrs] == color[v]]
                if len(same):
                    return False
                fresh = nbrs[color[nbrs] == -1]
                color[fresh] = 1 - color[v]
                nxt.append(fresh)
            frontier = np.unique(np.concatenate(nxt)) if nxt else np.empty(0, np.int64)
    return True


def diameter(g: CSRGraph, sample: int | None = None, seed: int = 0) -> int:
    """Maximum eccentricity.

    ``sample`` limits the number of BFS sources (exact when None); for
    vertex-transitive graphs a single source is exact, and callers that know
    transitivity pass ``sample=1``.
    """
    sources = _pick_sources(g.n, sample, seed)
    best = 0
    for s in sources:
        dist = bfs_distances(g, int(s))
        if np.any(dist == UNREACHED):
            raise ValueError("graph is disconnected; diameter undefined")
        best = max(best, int(dist.max()))
    return best


def average_distance(g: CSRGraph, sample: int | None = None, seed: int = 0) -> float:
    """Mean hop distance over ordered vertex pairs (excluding self-pairs)."""
    sources = _pick_sources(g.n, sample, seed)
    _, _, mean = distance_profile(g, sources)
    return mean


def _pick_sources(n: int, sample: int | None, seed: int) -> np.ndarray:
    if sample is None or sample >= n:
        return np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return rng.choice(n, size=sample, replace=False).astype(np.int64)


def girth(g: CSRGraph, assume_vertex_transitive: bool = False, sample: int | None = None) -> int:
    """Length of the shortest cycle (``0`` if the graph is a forest).

    BFS from each root; a non-tree edge between vertices at depths ``d(u)``
    and ``d(v)`` closes a cycle of length ``d(u) + d(v) + 1`` through the
    root.  The minimum over all roots is the girth; for vertex-transitive
    graphs (every Cayley graph, hence every LPS/SlimFly instance) one root
    suffices.
    """
    roots: np.ndarray
    if assume_vertex_transitive:
        roots = np.array([0], dtype=np.int64)
    elif sample is not None:
        roots = _pick_sources(g.n, sample, 0)
    else:
        roots = np.arange(g.n, dtype=np.int64)
    best = np.iinfo(np.int64).max
    for root in roots:
        best = min(best, _girth_from_root(g, int(root), best))
        if best == 3:
            break
    return 0 if best == np.iinfo(np.int64).max else int(best)


def _girth_from_root(g: CSRGraph, root: int, cutoff: int) -> int:
    """Shortest cycle through ``root``; stops exploring past ``cutoff``."""
    dist = np.full(g.n, UNREACHED, dtype=np.int64)
    parent = np.full(g.n, -1, dtype=np.int64)
    dist[root] = 0
    frontier = [root]
    best = cutoff
    level = 0
    while frontier and 2 * level + 1 < best:
        nxt = []
        for u in frontier:
            for v in g.neighbors(u):
                v = int(v)
                if dist[v] == UNREACHED:
                    dist[v] = level + 1
                    parent[v] = u
                    nxt.append(v)
                elif v != parent[u] and dist[v] >= level:
                    # Non-tree edge: cycle through the root of length
                    # dist[u] + dist[v] + 1 (paths may share a prefix, which
                    # only shortens the true cycle, so this is an upper bound
                    # that is tight for *some* root — taking the min over
                    # roots yields the exact girth).
                    best = min(best, int(dist[u] + dist[v] + 1))
        frontier = nxt
        level += 1
    return best


def edge_connectivity_lower_bound(g: CSRGraph) -> int:
    """Trivial lower bound: min degree (tight for LPS graphs, which have
    optimal edge connectivity by vertex-transitivity)."""
    return int(g.degrees().min())
