"""Graph kernel: CSR storage, batched BFS, structural metrics, generators."""

from repro.graphs.csr import CSRGraph
from repro.graphs.bfs import (
    bfs_distances,
    distance_matrix,
    distance_profile,
)
from repro.graphs.metrics import (
    average_distance,
    diameter,
    girth,
    is_bipartite,
    is_connected,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)
from repro.graphs.failures import delete_random_edges, resilience_trials

__all__ = [
    "CSRGraph",
    "bfs_distances",
    "distance_matrix",
    "distance_profile",
    "diameter",
    "average_distance",
    "girth",
    "is_connected",
    "is_bipartite",
    "complete_graph",
    "cycle_graph",
    "hypercube_graph",
    "torus_graph",
    "random_regular_graph",
    "delete_random_edges",
    "resilience_trials",
]
