"""Random link-failure machinery for the Section IV-A resilience study.

The paper deletes a proportion of edges uniformly at random and reports
structural metrics "averaged over sufficiently many trials", where the trial
count is grown until the coefficient of variation of batch means drops below
10% (footnote 1).  :func:`resilience_trials` reproduces that adaptive
protocol.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_rng


def sample_edge_failures(
    g: CSRGraph, proportion: float, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Draw the undirected edges that fail at ``proportion``, as an (r, 2) array.

    This is the single sampling primitive shared by the offline study
    (:func:`delete_random_edges`) and the dynamic fault schedules
    (:meth:`repro.sim.faults.FaultSchedule.random_link_faults`): at the same
    seed both damage the same links.
    """
    if not 0.0 <= proportion < 1.0:
        raise ValueError("proportion must be in [0, 1)")
    rng = as_rng(seed)
    edges = g.edge_array()
    m = len(edges)
    n_remove = int(round(proportion * m))
    if n_remove == 0:
        return np.empty((0, 2), dtype=np.int64)
    chosen = rng.choice(m, size=n_remove, replace=False)
    return edges[np.sort(chosen)]


def delete_random_edges(
    g: CSRGraph, proportion: float, seed: int | np.random.Generator | None = 0
) -> CSRGraph:
    """Return a copy of ``g`` with ``proportion`` of its edges removed."""
    removed = sample_edge_failures(g, proportion, seed)
    if len(removed) == 0:
        return g
    return g.without_edges(removed)


def resilience_trials(
    g: CSRGraph,
    proportion: float,
    metric: Callable[[CSRGraph], float],
    seed: int | np.random.Generator | None = 0,
    cv_target: float = 0.10,
    batches: int = 10,
    initial_trials: int = 1,
    max_trials_per_batch: int = 100,
    require_connected: bool = True,
) -> tuple[float, int]:
    """Average ``metric`` over random edge-failure trials, CV-stopped.

    Runs ``batches`` batches of ``x`` trials each, doubling... the paper
    grows x in powers of 10; we grow x by x*10 while the coefficient of
    variation of the batch means exceeds ``cv_target``.  Disconnected trial
    graphs are redrawn when ``require_connected`` (the paper only evaluates
    below the disconnection threshold, where this is rare).

    Returns ``(mean, total_trials_used)``.

    RNG contract
    ------------
    Every trial draws its failed-edge set from its **own spawned substream**
    of the seed, so a trial's draws depend only on (seed, call, trial
    index) — never on how many values an earlier trial consumed (e.g.
    disconnected-graph redraws) or on anything the metric does with a
    shared generator.  When ``seed`` is an existing ``Generator`` (the
    pattern ``fig5`` uses to decorrelate metrics), each call consumes
    exactly **one** spawn from it regardless of how many trials it runs, so
    adding a metric after existing ones — or a metric converging slower and
    escalating its trial count — cannot perturb any other call's trial
    draws (regression-tested in ``tests/test_graphs_failures.py``).
    """
    from repro.graphs.metrics import is_connected

    rng = as_rng(seed)
    if isinstance(seed, np.random.Generator):
        # One spawn per call, however many trials end up running.
        rng = rng.spawn(1)[0]
    x = initial_trials
    while True:
        batch_means = np.empty(batches)
        total = 0
        for b in range(batches):
            vals = np.empty(x)
            for t in range(x):
                trial_rng = rng.spawn(1)[0]
                for _redraw in range(50):
                    trial = delete_random_edges(g, proportion, trial_rng)
                    if not require_connected or is_connected(trial):
                        break
                else:
                    raise RuntimeError(
                        f"could not draw a connected graph at failure "
                        f"proportion {proportion}"
                    )
                vals[t] = metric(trial)
                total += 1
            batch_means[b] = vals.mean()
        mean = float(batch_means.mean())
        std = float(batch_means.std(ddof=1))
        cv = std / abs(mean) if mean != 0 else 0.0
        if cv <= cv_target or x >= max_trials_per_batch:
            return mean, total
        x = min(x * 10, max_trials_per_batch)
