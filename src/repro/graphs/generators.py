"""Reference graph generators.

These are not interconnect topologies from the paper; they exist to validate
the spectral and metric pipelines against closed-form answers (hypercube,
cycle, torus, complete graphs) and to provide the random-regular baseline
(Jellyfish-style) whose sub-Ramanujan spectral gap the paper contrasts with
LPS graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.utils.rng import as_rng


def complete_graph(n: int) -> CSRGraph:
    """K_n."""
    u, v = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(n, np.stack([u, v], axis=1))


def cycle_graph(n: int) -> CSRGraph:
    """C_n."""
    if n < 3:
        raise ParameterError("cycle needs n >= 3")
    u = np.arange(n)
    return CSRGraph.from_edges(n, np.stack([u, (u + 1) % n], axis=1))


def hypercube_graph(d: int) -> CSRGraph:
    """The d-dimensional hypercube Q_d on 2^d vertices."""
    n = 1 << d
    verts = np.arange(n)
    edges = [np.stack([verts, verts ^ (1 << b)], axis=1) for b in range(d)]
    return CSRGraph.from_edges(n, np.concatenate(edges))


def torus_graph(dims: tuple[int, ...]) -> CSRGraph:
    """k-ary n-dimensional torus (each dim >= 3 gives degree 2 per dim)."""
    dims = tuple(int(d) for d in dims)
    n = int(np.prod(dims))
    coords = np.stack(
        np.unravel_index(np.arange(n), dims), axis=1
    )
    edges = []
    for axis, size in enumerate(dims):
        shifted = coords.copy()
        shifted[:, axis] = (shifted[:, axis] + 1) % size
        nbr = np.ravel_multi_index(tuple(shifted.T), dims)
        edges.append(np.stack([np.arange(n), nbr], axis=1))
    return CSRGraph.from_edges(n, np.concatenate(edges))


def random_regular_graph(
    n: int, k: int, seed: int | np.random.Generator | None = 0, max_tries: int = 200
) -> CSRGraph:
    """Random k-regular simple graph via the configuration model with retries.

    Pair stubs uniformly at random; if the pairing creates self-loops or
    parallel edges, redraw (for the sparse regimes used here the acceptance
    probability is comfortably positive).  This is the Jellyfish substrate.
    """
    if n * k % 2 != 0:
        raise ParameterError("n * k must be even")
    if k >= n:
        raise ParameterError("need k < n")
    rng = as_rng(seed)
    stubs = np.repeat(np.arange(n), k)
    for _ in range(max_tries):
        perm = rng.permutation(len(stubs))
        pairs = stubs[perm].reshape(-1, 2)
        if np.any(pairs[:, 0] == pairs[:, 1]):
            continue
        keys = np.minimum(pairs[:, 0], pairs[:, 1]) * n + np.maximum(
            pairs[:, 0], pairs[:, 1]
        )
        if len(np.unique(keys)) != len(keys):
            continue
        g = CSRGraph.from_edges(n, pairs)
        return g
    # Fall back to pairing + edge-swap repair for awkward (n, k).
    return _repairing_configuration_model(n, k, rng)


def _repairing_configuration_model(
    n: int, k: int, rng: np.random.Generator
) -> CSRGraph:
    """Configuration model followed by double-edge swaps to remove defects."""
    stubs = rng.permutation(np.repeat(np.arange(n), k))
    pairs = [tuple(sorted(p)) for p in stubs.reshape(-1, 2)]
    edge_set: set[tuple[int, int]] = set()
    bad: list[tuple[int, int]] = []
    for u, v in pairs:
        if u == v or (u, v) in edge_set:
            bad.append((u, v))
        else:
            edge_set.add((u, v))
    guard = 0
    while bad:
        guard += 1
        if guard > 100_000:
            raise RuntimeError("edge-swap repair failed to converge")
        u, v = bad.pop()
        x, y = list(edge_set)[rng.integers(len(edge_set))]
        # Swap (u,v),(x,y) -> (u,x),(v,y) when that removes the defect.
        e1, e2 = tuple(sorted((u, x))), tuple(sorted((v, y)))
        if (
            u != x
            and v != y
            and e1 not in edge_set
            and e2 not in edge_set
            and e1 != e2
        ):
            edge_set.remove((x, y))
            edge_set.add(e1)
            edge_set.add(e2)
        else:
            bad.append((u, v))
    return CSRGraph.from_edges(n, np.array(sorted(edge_set)))
