"""Spectral bounds from Section II and IV of the paper.

Implements the Alon--Boppana lower bound, Cheeger-type expansion bounds,
Tanner's vertex-isoperimetric bound, the expander mixing (discrepancy)
inequality, and the Fiedler bisection-bandwidth lower bound the paper uses
to bracket METIS estimates in Fig. 4.
"""

from __future__ import annotations

import math

from repro.graphs.csr import CSRGraph
from repro.spectral.eigen import lambda_g, mu1


def ramanujan_bound(k: int) -> float:
    """``2 sqrt(k - 1)`` — the asymptotically optimal lambda for k-regular."""
    return 2.0 * math.sqrt(k - 1.0)


def alon_boppana_bound(k: int, diameter: int) -> float:
    """Alon--Boppana: lambda >= 2 sqrt(k-1) (1 - 2/D) - 2/D for diameter D."""
    if diameter < 1:
        raise ValueError("diameter must be >= 1")
    return 2.0 * math.sqrt(k - 1.0) * (1.0 - 2.0 / diameter) - 2.0 / diameter


def cheeger_bounds(g: CSRGraph) -> tuple[float, float]:
    """Edge-expansion (Cheeger) bounds from the spectral gap.

    For a k-regular graph with gap ``k - lambda_2``:
    ``(k - lambda_2)/2 <= h_E(G) <= sqrt(2 k (k - lambda_2))``.
    """
    from repro.spectral.eigen import spectral_gap

    k = g.degree()
    gap = spectral_gap(g)
    return gap / 2.0, math.sqrt(2.0 * k * gap)


def tanner_vertex_expansion_bound(g: CSRGraph, set_fraction: float = 0.5) -> float:
    """Tanner's bound on neighbourhood expansion |N(S)| / |S|.

    For S with |S| = a*n:  |N(S)|/|S| >= k^2 / (lambda^2 + (k^2 - lambda^2) a).
    With a = 1/2 this lower-bounds the vertex isoperimetric behaviour the
    paper discusses (larger is better; Ramanujan graphs maximise it).
    """
    if not 0.0 < set_fraction <= 1.0:
        raise ValueError("set_fraction must be in (0, 1]")
    k = g.degree()
    lam = lambda_g(g)
    return k * k / (lam * lam + (k * k - lam * lam) * set_fraction)


def expander_mixing_bound(g: CSRGraph, size_s: int, size_t: int) -> float:
    """Discrepancy bound: max deviation of e(S, T) from its expectation.

    |e(S,T) - k |S||T| / n| <= lambda sqrt(|S||T| (1-|S|/n)(1-|T|/n)).
    This is the paper's "bottleneck-free between any two subsets" property
    (Fig. 1b); the bound shrinks as lambda approaches the Ramanujan optimum.
    """
    n = g.n
    k = g.degree()
    lam = lambda_g(g)
    _ = k
    return lam * math.sqrt(
        size_s * size_t * (1.0 - size_s / n) * (1.0 - size_t / n)
    )


def bisection_lower_bound(g: CSRGraph) -> float:
    """Fiedler bound [33]: BW(G) >= a(G) * n / 4 for the algebraic
    connectivity ``a(G) = k - lambda_2`` of a k-regular graph.

    This is the bound the paper shades under the METIS points in Fig. 4
    (lower right).
    """
    from repro.spectral.eigen import spectral_gap

    return spectral_gap(g) * g.n / 4.0


def normalized_bisection_lower_bound(g: CSRGraph) -> float:
    """Fiedler bound normalised by total link count nk/2 (Fig. 4 upper right).

    Equals ``(k - lambda_2) / 2k``; for Ramanujan graphs this is at least
    ``(k - 2 sqrt(k-1)) / (2k)``, which exceeds SlimFly's asymptotic 1/3 for
    k >= 35 (Section IV d states 36, conservatively).
    """
    from repro.spectral.eigen import spectral_gap

    return spectral_gap(g) / (2.0 * g.degree())


def lps_normalized_bisection_guarantee(k: int) -> float:
    """Closed-form Ramanujan guarantee ``(k - 2 sqrt(k-1)) / (2k)``."""
    return (k - 2.0 * math.sqrt(k - 1.0)) / (2.0 * k)


def lps_mu1_guarantee(k: int) -> float:
    """Closed-form Ramanujan guarantee ``(k - 2 sqrt(k-1)) / k`` for mu1."""
    return (k - 2.0 * math.sqrt(k - 1.0)) / k
