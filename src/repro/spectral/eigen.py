"""Extremal adjacency eigenvalues, lambda(G), the spectral gap, and mu1.

Definitions follow Section II of the paper:

* ``lambda(G)`` — largest-magnitude adjacency eigenvalue not equal to +-k
  (k = degree of the regular graph).
* spectral gap — ``k - lambda_2`` where lambda_2 is the second largest
  adjacency eigenvalue.
* ``mu1`` — the normalized Laplacian spectral gap ``(k - lambda_2) / k``
  (the paper's Table I column; equals the second-smallest normalized
  Laplacian eigenvalue for regular graphs).
* Ramanujan property — ``lambda(G) <= 2 sqrt(k - 1)``.

Small graphs use dense LAPACK; larger graphs use Lanczos on both spectrum
ends (``scipy.sparse.linalg.eigsh``), which is exact for the extremes we
need and is the only feasible route at the paper's 7K-vertex scale.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from repro.graphs.csr import CSRGraph
from repro.graphs.metrics import is_bipartite
from repro.utils.rng import as_rng

_DENSE_THRESHOLD = 600
_EIG_TOL = 1e-8


def _lanczos_v0(n: int) -> np.ndarray:
    """Deterministic Lanczos start vector.

    ``eigsh`` otherwise seeds its iteration from numpy's *global* RNG,
    which makes every spectral quantity on graphs above the dense
    threshold depend on unrelated prior ``np.random`` calls.  A fixed
    start vector keeps ``lambda_g``/``spectral_gap`` bit-stable, which
    the search trajectory pins depend on.
    """
    return as_rng(0).standard_normal(n)


def adjacency_extremes(g: CSRGraph, k_each: int = 4) -> tuple[np.ndarray, np.ndarray]:
    """Return (lowest, highest) adjacency eigenvalues, ``k_each`` from each end.

    Both arrays are sorted ascending.  Dense solve below the size threshold;
    Lanczos otherwise.
    """
    n = g.n
    if n <= _DENSE_THRESHOLD:
        dense = g.adjacency().toarray()
        vals = np.linalg.eigvalsh(dense)
        k_each = min(k_each, n)
        return vals[:k_each], vals[-k_each:]
    adj = g.adjacency()
    k_each = min(k_each, n - 2)
    v0 = _lanczos_v0(n)
    high = np.sort(spla.eigsh(adj, k=k_each, which="LA", return_eigenvectors=False,
                              tol=_EIG_TOL, v0=v0))
    low = np.sort(spla.eigsh(adj, k=k_each, which="SA", return_eigenvectors=False,
                             tol=_EIG_TOL, v0=v0))
    return low, high


def lambda_g(g: CSRGraph, bipartite: bool | None = None) -> float:
    """The paper's lambda(G): largest |eigenvalue| not equal to +-k.

    For a connected k-regular graph the largest eigenvalue is k (excluded);
    -k is an eigenvalue iff the graph is bipartite (excluded then too).
    """
    k = g.degree()
    low, high = adjacency_extremes(g)
    if bipartite is None:
        bipartite = is_bipartite(g)
    # Second largest: drop the single Perron eigenvalue k.
    lam2 = float(high[-2])
    lam_min = float(low[0])
    if bipartite:
        # -k has multiplicity = number of connected components (1 here).
        lam_min = float(low[1])
    return max(abs(lam2), abs(lam_min))


def spectral_gap(g: CSRGraph) -> float:
    """``k - lambda_2`` — the (adjacency) spectral gap of a regular graph."""
    k = g.degree()
    _, high = adjacency_extremes(g)
    return float(k - high[-2])


def mu1(g: CSRGraph) -> float:
    """The paper's Table I column: ``(k - lambda(G)) / k``.

    ``lambda(G)`` is the largest-*magnitude* eigenvalue not equal to +-k.
    (The paper describes mu1 as the normalized Laplacian gap; its reported
    numbers use the magnitude convention — e.g. SF(7) = 0.62 comes from the
    MMS eigenvalue -(1+sqrt(2q-1))/... side, not the positive (q-1)/2.  When
    the positive side dominates the two definitions coincide; see
    :func:`normalized_laplacian_gap` for the strict Laplacian quantity.)
    """
    return (g.degree() - lambda_g(g)) / g.degree()


def normalized_laplacian_gap(g: CSRGraph) -> float:
    """General (possibly irregular) normalized Laplacian second eigenvalue.

    Computes the spectrum of ``I - D^{-1/2} A D^{-1/2}``; for regular graphs
    this equals :func:`mu1`.
    """
    import scipy.sparse as sp

    deg = g.degrees().astype(np.float64)
    if np.any(deg == 0):
        raise ValueError("isolated vertex; normalized Laplacian undefined")
    dinv = sp.diags(1.0 / np.sqrt(deg))
    norm_adj = dinv @ g.adjacency() @ dinv
    if g.n <= _DENSE_THRESHOLD:
        vals = np.linalg.eigvalsh(norm_adj.toarray())
        return float(1.0 - vals[-2])
    high = np.sort(
        spla.eigsh(norm_adj, k=2, which="LA", return_eigenvectors=False,
                   tol=_EIG_TOL, v0=_lanczos_v0(g.n))
    )
    return float(1.0 - high[-2])


def is_ramanujan(g: CSRGraph, tol: float = 1e-6) -> bool:
    """True iff ``lambda(G) <= 2 sqrt(k - 1) + tol`` (Definition 1)."""
    k = g.degree()
    return lambda_g(g) <= 2.0 * np.sqrt(k - 1.0) + tol
