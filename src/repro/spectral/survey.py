"""Spectral survey of classical supercomputing topologies.

Section II cites [10] (by the same authors): "many supercomputing
topologies are far from Ramanujan".  This module reproduces that survey for
the classical families we generate — hypercube, k-ary torus, complete
graph, cycle, random regular (Jellyfish) — reporting lambda(G) against the
Ramanujan bound 2 sqrt(k-1) and the resulting spectral-gap deficit.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)
from repro.spectral.bounds import ramanujan_bound
from repro.spectral.eigen import is_ramanujan, lambda_g, mu1


def survey_row(name: str, g: CSRGraph) -> dict:
    """One survey row: lambda(G), the bound, the ratio, and mu1."""
    k = g.degree()
    lam = lambda_g(g)
    bound = ramanujan_bound(k)
    return {
        "topology": name,
        "n": g.n,
        "radix": k,
        "lambda": round(lam, 3),
        "ramanujan_bound": round(bound, 3),
        "lambda_over_bound": round(lam / bound, 3),
        "mu1": round(mu1(g), 3),
        "ramanujan": is_ramanujan(g),
    }


def classical_survey(seed: int = 0) -> list[dict]:
    """Survey the classical families at comparable small sizes.

    Hypercubes and tori have lambda(G) = k - 2 and k - (2 - 2 cos(2 pi/m))
    respectively — far above 2 sqrt(k-1) as k grows, which is the [10]
    observation SpectralFly is designed to fix.
    """
    cases: list[tuple[str, Callable[[], CSRGraph]]] = [
        ("hypercube Q8", lambda: hypercube_graph(8)),
        ("torus 8x8x8", lambda: torus_graph((8, 8, 8))),
        ("cycle C256", lambda: cycle_graph(256)),
        ("complete K32", lambda: complete_graph(32)),
        ("random 8-regular (Jellyfish)", lambda: random_regular_graph(256, 8, seed=seed)),
    ]
    rows = [survey_row(name, build()) for name, build in cases]
    # And one LPS instance for contrast.
    from repro.topology.lps import build_lps

    lps = build_lps(11, 7)
    rows.append(survey_row("LPS(11,7) (SpectralFly)", lps.graph))
    return rows


def hypercube_gap_deficit(d: int) -> float:
    """Closed form: lambda(Q_d)/bound = (d-2) / (2 sqrt(d-1)).

    Exceeds 1 (not Ramanujan) for every d >= 8, and grows ~ sqrt(d)/2.
    """
    return (d - 2) / (2.0 * math.sqrt(d - 1.0))
