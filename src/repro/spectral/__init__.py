"""Spectral graph analysis: eigenvalues, expansion, and the Ramanujan test."""

from repro.spectral.eigen import (
    adjacency_extremes,
    lambda_g,
    mu1,
    normalized_laplacian_gap,
    is_ramanujan,
    spectral_gap,
)
from repro.spectral.bounds import (
    alon_boppana_bound,
    bisection_lower_bound,
    cheeger_bounds,
    expander_mixing_bound,
    lps_mu1_guarantee,
    normalized_bisection_lower_bound,
    ramanujan_bound,
    tanner_vertex_expansion_bound,
)
from repro.spectral.reference import (
    complete_graph_spectrum,
    cycle_graph_spectrum,
    hypercube_spectrum,
    torus_spectrum,
)

__all__ = [
    "adjacency_extremes",
    "lambda_g",
    "mu1",
    "normalized_laplacian_gap",
    "spectral_gap",
    "is_ramanujan",
    "ramanujan_bound",
    "alon_boppana_bound",
    "cheeger_bounds",
    "lps_mu1_guarantee",
    "tanner_vertex_expansion_bound",
    "expander_mixing_bound",
    "bisection_lower_bound",
    "normalized_bisection_lower_bound",
    "complete_graph_spectrum",
    "cycle_graph_spectrum",
    "hypercube_spectrum",
    "torus_spectrum",
]
