"""Closed-form spectra of reference topologies.

Used to validate the eigen pipeline (tests compare numerical extremes against
these exact spectra) and to reproduce the observation of [10] that many
classical supercomputing topologies are far from Ramanujan.
"""

from __future__ import annotations

import itertools

import numpy as np


def complete_graph_spectrum(n: int) -> np.ndarray:
    """K_n: eigenvalue n-1 once and -1 with multiplicity n-1."""
    return np.sort(np.concatenate([[-1.0] * (n - 1), [n - 1.0]]))


def cycle_graph_spectrum(n: int) -> np.ndarray:
    """C_n: 2 cos(2 pi j / n), j = 0..n-1."""
    j = np.arange(n)
    return np.sort(2.0 * np.cos(2.0 * np.pi * j / n))


def hypercube_spectrum(d: int) -> np.ndarray:
    """Q_d: eigenvalue d - 2i with multiplicity C(d, i)."""
    from math import comb

    vals = []
    for i in range(d + 1):
        vals.extend([float(d - 2 * i)] * comb(d, i))
    return np.sort(np.array(vals))


def torus_spectrum(dims: tuple[int, ...]) -> np.ndarray:
    """k-ary torus: sums of per-dimension cycle eigenvalues."""
    per_dim = [cycle_graph_spectrum(d) for d in dims]
    vals = [sum(combo) for combo in itertools.product(*per_dim)]
    return np.sort(np.array(vals))
