"""Paley graphs — the intra-group structure of BundleFly.

P(q) for a prime power ``q = 1 (mod 4)``: vertices are GF(q), with an edge
``x ~ y`` iff ``x - y`` is a nonzero square.  The congruence condition makes
-1 a square, so the relation is symmetric; the graph is
``(q-1)/2``-regular, vertex-transitive, and self-complementary.

Paper: Section IV — Paley graphs enter as the intra-bundle structure of
BundleFly (Lei et al. [2]), not as a standalone interconnect.
Constraints: ``q`` a prime power with ``q = 1 (mod 4)``; ``q`` vertices of
degree ``(q-1)/2``.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.gf import GF
from repro.errors import ConstructionError, ParameterError
from repro.graphs.csr import CSRGraph
from repro.topology.base import Topology


def build_paley(q: int, validate: bool = True) -> Topology:
    """Construct the Paley graph P(q); requires prime power q = 1 (mod 4)."""
    if q % 4 != 1:
        raise ParameterError(f"Paley graph needs q = 1 (mod 4), got q={q}")
    field = GF(q)
    squares = field.nonzero_squares()
    verts = np.arange(q, dtype=np.int64)
    edges = [
        np.stack([verts, field.add(verts, int(s)).astype(np.int64)], axis=1)
        for s in squares
    ]
    graph = CSRGraph.from_edges(q, np.concatenate(edges))
    topo = Topology(
        name=f"Paley({q})",
        family="Paley",
        graph=graph,
        params={"q": q},
        vertex_transitive=True,
    )
    if validate:
        want = (q - 1) // 2
        if not np.all(graph.degrees() == want):
            raise ConstructionError(f"Paley({q}) degree != {want}")
    return topo
