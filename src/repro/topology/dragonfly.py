"""DragonFly topologies: the canonical DF(a) and the general DF(a, h, g).

The canonical DragonFly of the paper's Section IV has ``a + 1`` fully
connected groups of ``a`` routers; each router has ``a - 1`` local links and
exactly one global link, so the radix is ``a`` and every pair of groups is
joined by exactly one global link.

The general variant (used for the paper's simulations: a=16, h=8, g=69
matching the recommended ``p = k/4, h = k/4, a = k/2`` balance) gives each
router ``h`` global links and distributes each group's ``a*h`` global links
over the other ``g - 1`` groups.  Both variants support the *absolute* and
*circulant* global link arrangements of Hastings et al. [36]; the paper uses
circulant for its better bisection bandwidth.

Paper: Section IV (Table I baseline) and Section VI (the a=16, h=8, g=69
simulation instance).  Constraints: canonical DF(a) has ``a (a + 1)``
routers of radix ``a`` (``a - 1`` local + 1 global), one feasible size per
radix; general DF(a, h, g) needs ``a h >= g - 1`` to connect all groups.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConstructionError, ParameterError
from repro.graphs.csr import CSRGraph
from repro.topology.base import Topology


def build_canonical_dragonfly(a: int, arrangement: str = "circulant") -> Topology:
    """Canonical DF(a): ``a(a+1)`` routers of radix ``a``."""
    if a < 2:
        raise ParameterError("DragonFly needs a >= 2")
    n_groups = a + 1
    n = a * n_groups
    edges = []
    # Local links: complete graph within each group.
    iu, iv = np.triu_indices(a, k=1)
    for g in range(n_groups):
        base = g * a
        edges.append(np.stack([base + iu, base + iv], axis=1))
    # Global links: one per router, one per group pair.
    glob = []
    for g in range(n_groups):
        for j in range(a):
            if arrangement == "circulant":
                tg = (g + j + 1) % n_groups
                tr = a - 1 - j
            elif arrangement == "absolute":
                tg = j if j < g else j + 1
                tr = g if g < tg else g - 1
            else:
                raise ParameterError(f"unknown arrangement {arrangement!r}")
            glob.append((g * a + j, tg * a + tr))
    edges.append(np.array(glob, dtype=np.int64))
    graph = CSRGraph.from_edges(n, np.concatenate(edges))
    topo = Topology(
        name=f"DF({a})",
        family="DragonFly",
        graph=graph,
        params={"a": a, "arrangement": arrangement},
        vertex_transitive=False,
    )
    degs = graph.degrees()
    if not np.all(degs == a):
        raise ConstructionError(
            f"DF({a}): degree range [{degs.min()},{degs.max()}], want {a}"
        )
    return topo


def build_dragonfly(
    a: int, h: int, g: int, arrangement: str = "circulant"
) -> Topology:
    """General DragonFly with ``g`` groups of ``a`` routers, ``h`` global
    links per router.

    Global links are distributed over group-pair distances as evenly as
    possible (circulant arrangement [36]); within a group, link endpoints
    are dealt to routers round-robin so every router ends up with exactly
    ``h`` global ports.
    """
    if g < 3 or a < 2 or h < 1:
        raise ParameterError("need g >= 3, a >= 2, h >= 1")
    per_group = a * h
    if arrangement != "circulant":
        raise ParameterError(
            "general DragonFly supports the circulant arrangement only "
            "(the one the paper simulates); canonical DF(a) offers both"
        )

    n = a * g
    edges = []
    iu, iv = np.triu_indices(a, k=1)
    for gi in range(g):
        base = gi * a
        edges.append(np.stack([base + iu, base + iv], axis=1))

    # Distribute each group's global links across circulant distances.
    # For odd g every unordered pair {G, G+d}, d <= (g-1)/2, gets m_d links;
    # for even g the antipodal distance g/2 pairs each group once per link.
    half = (g - 1) // 2
    budget = per_group // 2  # links counted once per unordered pair, per group
    m = np.zeros(half + 1, dtype=np.int64)
    if half > 0:
        base_links, extra = divmod(budget, half)
        m[1:] = base_links
        m[1 : extra + 1] += 1
    if 2 * m[1:].sum() != per_group and g % 2 == 1:
        raise ConstructionError("global link budget must be even per group")

    port_counter = np.zeros(n, dtype=np.int64)  # used global ports per router

    def next_router(group: int) -> int:
        base = group * a
        r = int(np.argmin(port_counter[base : base + a]))
        port_counter[base + r] += 1
        return base + r

    glob = []
    for d in range(1, half + 1):
        for _copy in range(int(m[d])):
            for gi in range(g):
                src = next_router(gi)
                dst = next_router((gi + d) % g)
                glob.append((src, dst))
    edges.append(np.array(glob, dtype=np.int64))
    graph = CSRGraph.from_edges(n, np.concatenate(edges), allow_parallel=False)
    topo = Topology(
        name=f"DF({a},{h},{g})",
        family="DragonFly",
        graph=graph,
        params={"a": a, "h": h, "g": g, "arrangement": arrangement},
        vertex_transitive=False,
    )
    want = (a - 1) + h
    degs = graph.degrees()
    if degs.max() > want:
        raise ConstructionError(f"DF({a},{h},{g}): max degree {degs.max()} > {want}")
    return topo
