"""Interconnection topologies: SpectralFly (LPS) and its competitors."""

from repro.topology.base import Topology
from repro.topology.lps import (
    build_lps,
    lps_design_space,
    lps_feasible,
    lps_num_vertices,
)
from repro.topology.mms import build_mms, build_slimfly
from repro.topology.paley import build_paley
from repro.topology.bundlefly import build_bundlefly
from repro.topology.dragonfly import build_canonical_dragonfly, build_dragonfly
from repro.topology.skywalk import build_skywalk
from repro.topology.jellyfish import build_jellyfish
from repro.topology.xpander import build_xpander
from repro.topology.searched import (
    SearchedTopology,
    lifted_topology,
    swap_searched_topology,
)
from repro.topology.catalog import (
    SEARCH_METHODS,
    SIZE_CLASSES,
    SIM_CONFIGS,
    build_searched,
    build_size_class,
    feasible_sizes_per_radix,
)

__all__ = [
    "SearchedTopology",
    "SEARCH_METHODS",
    "build_searched",
    "swap_searched_topology",
    "lifted_topology",
    "Topology",
    "build_lps",
    "lps_feasible",
    "lps_num_vertices",
    "lps_design_space",
    "build_mms",
    "build_slimfly",
    "build_paley",
    "build_bundlefly",
    "build_canonical_dragonfly",
    "build_dragonfly",
    "build_skywalk",
    "build_jellyfish",
    "build_xpander",
    "SIZE_CLASSES",
    "SIM_CONFIGS",
    "build_size_class",
    "feasible_sizes_per_radix",
]
