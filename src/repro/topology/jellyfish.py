"""Jellyfish — the random regular topology [6].

The paper uses Jellyfish as the canonical randomized baseline: its spectral
gap is strong but provably sub-Ramanujan (Friedman's theorem), which the
spectral test suite demonstrates empirically against LPS.

Paper: Section II (related work / spectral comparison only; not part of
Table I).  Constraints: any ``(n_routers, radix)`` with ``n_routers *
radix`` even and ``radix < n_routers``; exactly ``radix``-regular.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import random_regular_graph
from repro.topology.base import Topology


def build_jellyfish(
    n_routers: int, radix: int, seed: int | np.random.Generator | None = 0
) -> Topology:
    """Random ``radix``-regular graph on ``n_routers`` vertices."""
    graph = random_regular_graph(n_routers, radix, seed=seed)
    return Topology(
        name=f"Jellyfish({n_routers},{radix})",
        family="Jellyfish",
        graph=graph,
        params={"n": n_routers, "radix": radix},
        vertex_transitive=False,
    )
