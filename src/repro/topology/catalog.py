"""The paper's topology instances: Table I size classes, simulation configs,
and design-space feasibility sweeps (Fig. 4)."""

from __future__ import annotations

from typing import Callable

from repro.errors import ParameterError
from repro.nt.primes import is_prime_power, primes_below
from repro.topology.base import Topology
from repro.topology.bundlefly import build_bundlefly
from repro.topology.dragonfly import build_canonical_dragonfly, build_dragonfly
from repro.topology.lps import build_lps, lps_design_space
from repro.topology.mms import mms_delta, mms_radix, build_slimfly
from repro.topology.searched import (
    SearchedTopology,
    lifted_topology,
    swap_searched_topology,
)

#: Table I — five size classes of {LPS, SlimFly, BundleFly, DragonFly}
#: instances with matched radix/size (paper Section IV).
SIZE_CLASSES: list[dict] = [
    {
        "class": 1,
        "LPS": ("LPS", {"p": 11, "q": 7}),
        "SlimFly": ("SF", {"q": 7}),
        "BundleFly": ("BF", {"p": 13, "s": 3}),
        "DragonFly": ("DF", {"a": 12}),
    },
    {
        "class": 2,
        "LPS": ("LPS", {"p": 23, "q": 11}),
        "SlimFly": ("SF", {"q": 17}),
        "BundleFly": ("BF", {"p": 37, "s": 3}),
        "DragonFly": ("DF", {"a": 24}),
    },
    {
        "class": 3,
        "LPS": ("LPS", {"p": 53, "q": 17}),
        "SlimFly": ("SF", {"q": 37}),
        "BundleFly": ("BF", {"p": 97, "s": 4}),
        "DragonFly": ("DF", {"a": 53}),
    },
    {
        "class": 4,
        "LPS": ("LPS", {"p": 71, "q": 17}),
        "SlimFly": ("SF", {"q": 47}),
        "BundleFly": ("BF", {"p": 137, "s": 4}),
        "DragonFly": ("DF", {"a": 69}),
    },
    {
        "class": 5,
        "LPS": ("LPS", {"p": 89, "q": 19}),
        "SlimFly": ("SF", {"q": 59}),
        "BundleFly": ("BF", {"p": 157, "s": 5}),
        "DragonFly": ("DF", {"a": 85}),
    },
]

#: Section VI simulation configurations.  ``paper`` reproduces the ~8.7K
#: endpoint setup (1092-1458 routers); ``small`` is the laptop-scale default
#: used by the benchmark harness (same families, class-1/2 sizes, matched
#: endpoint counts — see DESIGN.md's scale substitution note).
SIM_CONFIGS: dict[str, dict] = {
    "paper": {
        "n_ranks": 8192,
        "topologies": {
            "SpectralFly": {
                "build": lambda: build_lps(23, 13),
                "concentration": 8,
            },
            "DragonFly": {
                "build": lambda: build_dragonfly(a=16, h=8, g=69),
                "concentration": 8,
            },
            "SlimFly": {
                "build": lambda: build_slimfly(27),
                "concentration": 8,
            },
            "BundleFly": {
                "build": lambda: build_bundlefly(9, 9),
                "concentration": 6,
            },
        },
    },
    "small": {
        "n_ranks": 512,
        "topologies": {
            "SpectralFly": {
                "build": lambda: build_lps(11, 7),  # 168 routers
                "concentration": 4,  # 672 endpoints
            },
            "DragonFly": {
                "build": lambda: build_canonical_dragonfly(12),  # 156 routers
                "concentration": 4,  # 624 endpoints
            },
            "SlimFly": {
                "build": lambda: build_slimfly(9),  # 162 routers
                "concentration": 4,  # 648 endpoints
            },
            "BundleFly": {
                "build": lambda: build_bundlefly(13, 3),  # 234 routers
                "concentration": 3,  # 702 endpoints
            },
        },
    },
}


def build_size_class(
    class_id: int, families: tuple[str, ...] | None = None
) -> dict[str, Topology]:
    """Build all (or the selected) Table I topologies of one size class."""
    spec = next(s for s in SIZE_CLASSES if s["class"] == class_id)
    if families is None:
        families = ("LPS", "SlimFly", "BundleFly", "DragonFly")
    out: dict[str, Topology] = {}
    for fam in families:
        kind, params = spec[fam]
        out[fam] = _build(kind, params)
    return out


def _build(kind: str, params: dict) -> Topology:
    if kind == "LPS":
        return build_lps(params["p"], params["q"])
    if kind == "SF":
        return build_slimfly(params["q"])
    if kind == "BF":
        return build_bundlefly(params["p"], params["s"])
    if kind == "DF":
        return build_canonical_dragonfly(params["a"])
    if kind == "SEARCHED":
        params = dict(params)
        return build_searched(params.pop("method"), **params)
    raise ValueError(f"unknown topology kind {kind}")


#: Search moves registered with the catalog (see :mod:`repro.search`).
SEARCH_METHODS: tuple[str, ...] = ("edge-swap", "two-lift")


def build_searched(method: str, **params) -> SearchedTopology:
    """Build a design-space-search candidate from its recipe.

    ``method="edge-swap"`` forwards to
    :func:`~repro.topology.searched.swap_searched_topology`
    (``n_routers, radix, budget, seed, schedule, objective``);
    ``method="two-lift"`` forwards to
    :func:`~repro.topology.searched.lifted_topology`, where ``base`` is
    either a built :class:`Topology` or a ``(kind, params)`` recipe
    resolved through the catalog (e.g. ``("SF", {"q": 5})``), so searched
    instances remain reconstructible from plain data.
    """
    if method == "edge-swap":
        return swap_searched_topology(**params)
    if method == "two-lift":
        params = dict(params)
        base = params.pop("base", None)
        if isinstance(base, (tuple, list)):
            kind, kind_params = base
            base = _build(kind, kind_params)
        if not isinstance(base, Topology):
            raise ParameterError(
                "two-lift needs base=<Topology> or base=(kind, params), "
                f"got {base!r}"
            )
        return lifted_topology(base, **params)
    raise ParameterError(
        f"unknown search method {method!r}; options: {', '.join(SEARCH_METHODS)}"
    )


def feasible_sizes_per_radix(
    max_vertices: int = 10_000, max_param: int = 300
) -> dict[str, list[tuple[int, int]]]:
    """Feasible (radix, n_vertices) pairs per family — Fig. 4 (lower left).

    Closed-form counting only; no graphs are built.
    """
    out: dict[str, list[tuple[int, int]]] = {
        "LPS": [],
        "SlimFly": [],
        "BundleFly": [],
        "DragonFly": [],
    }
    for row in lps_design_space(max_param, max_param):
        if row["vertices"] <= max_vertices:
            out["LPS"].append((row["radix"], row["vertices"]))
    for q in range(3, max_param):
        if q % 4 == 2 or not is_prime_power(q):
            continue
        n = 2 * q * q
        if n <= max_vertices:
            out["SlimFly"].append((mms_radix(q), n))
    for p in range(5, max_param):
        if p % 4 != 1 or not is_prime_power(p):
            continue
        for s in range(3, max_param):
            if s % 4 == 2 or not is_prime_power(s):
                continue
            n = 2 * p * s * s
            if n <= max_vertices:
                out["BundleFly"].append(((p - 1) // 2 + mms_radix(s), n))
    for a in range(2, max_param):
        n = a * (a + 1)
        if n <= max_vertices:
            out["DragonFly"].append((a, n))
    for fam in out:
        out[fam] = sorted(set(out[fam]))
    return out
