"""The Topology wrapper shared by every construction.

A topology is its router graph plus naming/parameter metadata and an
(optional) endpoint concentration.  Vertices are routers; edges are
bidirectional links, exactly as in the paper's Section I conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.csr import CSRGraph


@dataclass
class Topology:
    """A named router-level interconnect topology.

    Attributes
    ----------
    name:
        Human-readable instance name, e.g. ``"LPS(23,11)"``.
    family:
        Construction family: ``"LPS"``, ``"SlimFly"``, ``"BundleFly"``,
        ``"DragonFly"``, ``"SkyWalk"``, ``"Jellyfish"``.
    graph:
        The router graph (:class:`CSRGraph`).
    params:
        Construction parameters (e.g. ``{"p": 23, "q": 11}``).
    vertex_transitive:
        True when the construction guarantees vertex-transitivity (Cayley
        graphs: LPS; also MMS/SlimFly).  Metrics exploit this (girth from a
        single BFS root).
    gen_perms:
        For Cayley constructions, the right-multiplication permutations
        ``perms[j][v] = v * s_j`` as an ``(n_generators, n)`` array —
        the group structure the on-demand routing oracles
        (:mod:`repro.routing.oracles`) translate queries with.  ``None``
        for non-Cayley families (and for topology pickles that predate the
        field; the oracle layer recomputes from params in that case).
    """

    name: str
    family: str
    graph: CSRGraph
    params: dict[str, Any] = field(default_factory=dict)
    vertex_transitive: bool = False
    gen_perms: Any = None

    @property
    def n_routers(self) -> int:
        """Number of routers (graph vertices)."""
        return self.graph.n

    @property
    def n_links(self) -> int:
        """Number of bidirectional links (graph edges)."""
        return self.graph.num_edges

    @property
    def radix(self) -> int:
        """Router radix: the common degree of the router graph.

        For the rare near-regular instances (general DragonFly with awkward
        link budgets) this is the maximum degree — the number of ports a
        router must provide.
        """
        degs = self.graph.degrees()
        return int(degs.max()) if len(degs) else 0

    def endpoints(self, concentration: int) -> int:
        """Total endpoints when each router hosts ``concentration`` nodes."""
        return self.n_routers * concentration

    def describe(self) -> dict[str, Any]:
        """Summary dict used by experiment tables."""
        return {
            "name": self.name,
            "family": self.family,
            "routers": self.n_routers,
            "radix": self.radix,
            "links": self.n_links,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology({self.name}: n={self.n_routers}, k={self.radix})"
