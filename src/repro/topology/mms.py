"""McKay--Miller--Siran (MMS) graphs and the SlimFly topology.

SlimFly SF(q) [1] is the MMS graph on ``2 q^2`` vertices with radix
``(3q - delta)/2`` where ``q = 4k + delta`` is a prime power and
``delta in {-1, 0, 1}``.  Vertices live in two blocks indexed by
``F_q x F_q``:

* ``(0, x, y) ~ (0, x, y')``  iff  ``y - y' in X``
* ``(1, m, c) ~ (1, m, c')``  iff  ``c - c' in X'``
* ``(0, x, y) ~ (1, m, c)``   iff  ``y = m x + c``

Generator sets (xi = a primitive element of GF(q)):

* ``delta = +1``: X = nonzero squares (even powers of xi), X' = nonsquares.
* ``delta = -1`` (q = 4k - 1): X = even powers xi^0..xi^{2k-2} union odd
  powers xi^{2k-1}..xi^{4k-3}; X' = xi * X.  Both are symmetric because
  ``-1 = xi^{2k-1}`` maps the even half onto the odd half, and
  ``X union X' = F_q*`` as required for diameter 2.
* ``delta = 0`` (q = 2^m): characteristic 2 makes every set symmetric; we
  use consecutive power windows overlapping in one element so that
  ``X union X' = F_q*`` (a documented stand-in for the literature's
  construction — see DESIGN.md).

Construction-time verification asserts vertex count, radix, and diameter 2,
so any instance this module returns *is* an MMS-parameter graph.

Paper: Sections II and IV — SlimFly is the strongest competitor in Table I
and every evaluation figure (Figs. 4-11).  Constraints: ``q`` a prime power
with ``q = 4k + delta``, ``delta in {-1, 0, 1}`` (``q % 4 != 2``);
``2 q^2`` routers of radix ``(3q - delta)/2``; exactly one feasible size
per radix (the inflexibility Fig. 4 contrasts with LPS).
"""

from __future__ import annotations

import numpy as np

from repro.algebra.gf import GF
from repro.errors import ConstructionError, ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.metrics import diameter
from repro.topology.base import Topology


def mms_delta(q: int) -> int:
    """The delta in q = 4k + delta; raises for q = 2 (mod 4)."""
    r = q % 4
    if r == 1:
        return 1
    if r == 3:
        return -1
    if r == 0:
        return 0
    raise ParameterError(f"q={q} = 2 (mod 4) is not a valid MMS parameter")


def mms_radix(q: int) -> int:
    """Router radix (3q - delta) / 2."""
    return (3 * q - mms_delta(q)) // 2


def _generator_sets(field: GF) -> tuple[np.ndarray, np.ndarray]:
    """Return (X, X') as arrays of field codes for the three delta cases."""
    q = field.q
    delta = mms_delta(q)
    xi = field.primitive
    powers = np.empty(q - 1, dtype=np.int64)
    acc = 1
    for i in range(q - 1):
        powers[i] = acc
        acc = int(field.mul(acc, xi))
    if delta == 1:
        x_set = powers[0::2]  # even powers = nonzero squares
        xp_set = powers[1::2]
    elif delta == -1:
        k = (q + 1) // 4
        evens = powers[0 : 2 * k - 1 : 2]  # xi^0, xi^2, ..., xi^{2k-2}
        odds = powers[2 * k - 1 : 4 * k - 3 + 1 : 2]  # xi^{2k-1}, ..., xi^{4k-3}
        x_set = np.concatenate([evens, odds])
        xp_set = np.array([field.mul(int(v), xi) for v in x_set], dtype=np.int64)
    else:  # delta == 0, q = 2^m
        half = q // 2
        x_set = powers[:half]
        xp_set = powers[half - 1 :]
    return x_set.astype(np.int64), xp_set.astype(np.int64)


def build_mms(q: int, validate: bool = True) -> Topology:
    """Construct the MMS graph H_q on 2 q^2 vertices.

    Vertex ids: block 0 vertex ``(x, y)`` is ``x*q + y``; block 1 vertex
    ``(m, c)`` is ``q^2 + m*q + c``.
    """
    delta = mms_delta(q)
    field = GF(q)
    x_set, xp_set = _generator_sets(field)
    if validate:
        _check_symmetric(field, x_set, "X")
        _check_symmetric(field, xp_set, "X'")
        union = np.union1d(x_set, xp_set)
        if len(union) != q - 1 or 0 in union:
            raise ConstructionError(
                f"MMS({q}): X union X' must be exactly F_q* "
                f"(got {len(union)} elements)"
            )

    n = 2 * q * q
    edges = []
    all_xy = np.arange(q * q, dtype=np.int64)
    xs, ys = all_xy // q, all_xy % q
    # Block-0 intra-column edges: (x, y) ~ (x, y + d), d in X.
    for d in x_set.tolist():
        y2 = field.add(ys, d)
        edges.append(np.stack([all_xy, xs * q + y2], axis=1))
    # Block-1 intra-row edges.
    for d in xp_set.tolist():
        c2 = field.add(ys, d)
        edges.append(np.stack([q * q + all_xy, q * q + xs * q + c2], axis=1))
    # Cross edges: (0, x, y) ~ (1, m, c) iff y = m x + c, i.e. c = y - m x.
    for m in range(q):
        c = field.sub(ys, field.mul(m, xs))
        edges.append(np.stack([all_xy, q * q + m * q + c], axis=1))
    graph = CSRGraph.from_edges(n, np.concatenate(edges))
    topo = Topology(
        name=f"MMS({q})",
        family="MMS",
        graph=graph,
        params={"q": q, "delta": delta},
        vertex_transitive=True,
    )
    if validate:
        want = mms_radix(q)
        degs = graph.degrees()
        if not np.all(degs == want):
            raise ConstructionError(
                f"MMS({q}): degree range [{degs.min()},{degs.max()}], want {want}"
            )
        if diameter(graph, sample=1 if q > 11 else None) > 2:
            raise ConstructionError(f"MMS({q}): diameter exceeds 2")
    return topo


def _check_symmetric(field: GF, s: np.ndarray, label: str) -> None:
    negs = np.sort(np.array([field.neg(int(v)) for v in s]))
    if not np.array_equal(negs, np.sort(s)):
        raise ConstructionError(f"MMS generator set {label} is not symmetric")


def build_slimfly(q: int, validate: bool = True) -> Topology:
    """SlimFly SF(q): the MMS graph presented as an interconnect topology."""
    topo = build_mms(q, validate=validate)
    topo.name = f"SF({q})"
    topo.family = "SlimFly"
    return topo
