"""SkyWalk — a layout-aware randomized topology (Fujiwara et al. [40]).

SkyWalk targets low end-to-end latency under low-delay switches by keeping
cables short: routers are placed in the machine-room cabinet grid first and
links preferentially connect physically close routers.  The paper uses 20
random instantiations of SkyWalk in the same machine room as the
LPS/SlimFly layouts of Table II and Fig. 11.

This module implements the documented stand-in (see DESIGN.md): a random
near-regular graph drawn by scanning candidate pairs in a random (or
cable-length-biased) order and greedily consuming port budgets, with a
connectivity repair pass.

With the default ``tau=None`` the link selection is *uniformly random* —
which is what the paper's Table II SkyWalk numbers correspond to: its
reported average wire lengths (10.29 m and 21.09 m for the small and large
machine rooms) equal the mean random-pair cable length in those rooms, so
SkyWalk's latency advantage comes from its low hop count under low-delay
switches, not from short cables.  Pass a finite ``tau`` (metres of
exponential noise added to the cable length before ranking) to bias the
draw toward short cables.

Paper: Section VII — the wire-length/latency baseline of Table II and
Fig. 11.  Constraints: any ``(n_routers, radix)`` with ``radix <
n_routers`` (randomized near-regular construction; degree deviates by at
most one after the connectivity repair pass).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng


def build_skywalk(
    n_routers: int,
    radix: int,
    positions: np.ndarray | None = None,
    seed: int | np.random.Generator | None = 0,
    tau: float | None = None,
) -> Topology:
    """Construct a SkyWalk-style instance.

    Parameters
    ----------
    n_routers, radix:
        Size and port budget (matched to the topology being compared).
    positions:
        ``(n_routers, 2)`` physical router coordinates in metres.  When
        omitted, the default machine-room grid of
        :mod:`repro.layout.machine_room` is used.
    tau:
        ``None`` (default) draws links uniformly at random.  A finite value
        is the mean of the exponential noise added to cable lengths when
        ranking candidate links; smaller tau = stronger short-cable
        preference.
    """
    if radix >= n_routers:
        raise ParameterError("radix must be < n_routers")
    rng = as_rng(seed)
    if positions is None:
        from repro.layout.machine_room import MachineRoom

        room = MachineRoom(n_routers)
        positions = room.router_positions()
    positions = np.asarray(positions, dtype=np.float64)

    iu, iv = np.triu_indices(n_routers, k=1)
    if tau is None:
        order = rng.permutation(len(iu))
    else:
        # Rectilinear cable length (same metric as the layout cost model).
        d = np.abs(positions[iu] - positions[iv]).sum(axis=1)
        score = d + rng.exponential(tau, size=len(d))
        order = np.argsort(score)

    free = np.full(n_routers, radix, dtype=np.int64)
    chosen = []
    for idx in order:
        u, v = int(iu[idx]), int(iv[idx])
        if free[u] > 0 and free[v] > 0:
            free[u] -= 1
            free[v] -= 1
            chosen.append((u, v))
            if not free.any():
                break
    graph = CSRGraph.from_edges(n_routers, np.array(chosen, dtype=np.int64))
    graph = _repair_connectivity(graph, rng)
    return Topology(
        name=f"SkyWalk({n_routers},{radix})",
        family="SkyWalk",
        graph=graph,
        params={"n": n_routers, "radix": radix, "tau": tau},
        vertex_transitive=False,
    )


def _repair_connectivity(g: CSRGraph, rng: np.random.Generator) -> CSRGraph:
    """Join connected components with double-edge swaps (degree-preserving)."""
    from repro.graphs.bfs import UNREACHED, bfs_distances

    for _attempt in range(100):
        dist = bfs_distances(g, 0)
        if not np.any(dist == UNREACHED):
            return g
        inside = np.flatnonzero(dist != UNREACHED)
        outside = np.flatnonzero(dist == UNREACHED)
        edges = g.edge_array()
        in_mask = np.isin(edges[:, 0], inside) & np.isin(edges[:, 1], inside)
        out_mask = np.isin(edges[:, 0], outside) & np.isin(edges[:, 1], outside)
        in_ids = np.flatnonzero(in_mask)
        out_ids = np.flatnonzero(out_mask)
        if len(in_ids) == 0 or len(out_ids) == 0:
            raise RuntimeError("cannot repair connectivity: no swap candidates")
        e1 = edges[rng.choice(in_ids)]
        e2 = edges[rng.choice(out_ids)]
        # Swap (a,b),(c,d) -> (a,c),(b,d): joins the components.
        new = np.array([[e1[0], e2[0]], [e1[1], e2[1]]], dtype=np.int64)
        remaining = g.without_edges(np.stack([e1, e2]))
        g = CSRGraph.from_edges(
            g.n, np.concatenate([remaining.edge_array(), new])
        )
    raise RuntimeError("connectivity repair did not converge")
