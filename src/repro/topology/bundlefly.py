"""BundleFly BF(p, s) — multi-star product of an MMS graph and a Paley graph.

Following Lei et al. [2]: take the MMS graph on ``2 s^2`` "groups"; expand
every group into ``p`` routers forming a Paley graph P(p); every MMS edge
becomes a *bundle* of ``p`` parallel links (one multicore fibre), realised
as a perfect matching between the two groups.  The result has ``2 p s^2``
routers of radix ``(p-1)/2 + (3s - delta)/2``.

The matchings are the linear maps ``i -> alpha * i`` over GF(p) with
``alpha`` a fixed quadratic *non-residue*.  This is the star-product trick
that gives diameter 3: for routers (g1, i), (g2, j) with the groups at MMS
distance 2, the two candidate 3-hop shapes (bundle-bundle-Paley and
bundle-Paley-bundle) require ``j - alpha^2 i`` or ``(j - alpha^2 i)/alpha``
to be a square — and exactly one of them always is when ``alpha`` is a
non-residue.  Identity matchings would give diameter 4 (and a visibly
larger average distance than the paper's Table I).

Paper: Sections II and IV — BundleFly is the multicore-fibre competitor in
Table I and Figs. 4-10.  Constraints: ``p`` a prime power with ``p = 1
(mod 4)`` (Paley side), ``s`` an MMS parameter (``s % 4 != 2``, prime
power); ``2 p s^2`` routers of radix ``(p-1)/2 + (3s - delta)/2``.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.gf import GF
from repro.errors import ConstructionError
from repro.graphs.csr import CSRGraph
from repro.topology.base import Topology
from repro.topology.mms import build_mms, mms_radix
from repro.topology.paley import build_paley


def build_bundlefly(
    p: int, s: int, validate: bool = True, matching: str = "nonresidue"
) -> Topology:
    """Construct BundleFly BF(p, s).

    Parameters
    ----------
    p:
        Paley parameter: prime power with ``p = 1 (mod 4)``.
    s:
        MMS parameter: prime power, ``s != 2 (mod 4)``.
    matching:
        Bundle matching rule.  ``"nonresidue"`` (default) is the star
        product's diameter-3 construction; ``"identity"`` is the naive
        diameter-4 variant, kept as an ablation of this design choice
        (see benchmarks/test_ablations.py).
    """
    if matching not in ("nonresidue", "identity"):
        raise ConstructionError(f"unknown bundle matching {matching!r}")
    mms = build_mms(s, validate=validate)
    paley = build_paley(p, validate=validate)
    n_groups = mms.graph.n
    n = n_groups * p

    edges = []
    # Intra-group Paley edges, replicated per group.
    paley_edges = paley.graph.edge_array()
    group_base = np.arange(n_groups, dtype=np.int64)[:, None, None] * p
    intra = paley_edges[None, :, :] + group_base  # (groups, m_paley, 2)
    edges.append(intra.reshape(-1, 2))
    # Bundle edges: the non-residue linear matching i -> alpha * i per MMS
    # edge (see module docstring for why this yields diameter 3).
    field = GF(p)
    lanes = np.arange(p, dtype=np.int64)
    if matching == "nonresidue":
        alpha = _nonresidue(field)
        mapped = field.mul(lanes, alpha).astype(np.int64)
    else:
        mapped = lanes
    mms_edges = mms.graph.edge_array()
    src = mms_edges[:, 0][:, None] * p + lanes[None, :]
    dst = mms_edges[:, 1][:, None] * p + mapped[None, :]
    edges.append(np.stack([src.reshape(-1), dst.reshape(-1)], axis=1))

    graph = CSRGraph.from_edges(n, np.concatenate(edges))
    topo = Topology(
        name=f"BF({p},{s})",
        family="BundleFly",
        graph=graph,
        params={"p": p, "s": s, "matching": matching},
        vertex_transitive=True,
    )
    if validate:
        want = (p - 1) // 2 + mms_radix(s)
        degs = graph.degrees()
        if not np.all(degs == want):
            raise ConstructionError(
                f"BF({p},{s}): degree range [{degs.min()},{degs.max()}], "
                f"want {want}"
            )
        if graph.n != 2 * p * s * s:
            raise ConstructionError(f"BF({p},{s}): wrong vertex count {graph.n}")
    return topo


def _nonresidue(field: GF) -> int:
    """Smallest-code quadratic non-residue of GF(p), p = 1 (mod 4)."""
    for a in range(2, field.q):
        if not field.is_square(a):
            return a
    raise ConstructionError(f"no non-residue in GF({field.q})?")
