"""Xpander-style near-Ramanujan topologies via random 2-lifts.

Section II of the paper discusses Xpander [20], built on the Bilu--Linial
theory of graph lifts [21]: starting from a small d-regular (Ramanujan)
base graph, each 2-lift doubles the vertex count while, for a good choice
of edge signing, keeping every *new* eigenvalue below O(sqrt(d log^3 d)) —
and empirically close to the Ramanujan bound.  The paper excludes Xpander
from its comparison because computing the interlacing-polynomial signings
at scale is impractical; this module implements the practical randomized
variant (best-of-k random signings per lift, as the Xpander authors do),
so the comparison the paper skipped can actually be run here.

A 2-lift of G under signing s: every vertex v splits into (v, 0), (v, 1);
a +1 edge {u, v} becomes the parallel pair {(u,0),(v,0)}, {(u,1),(v,1)};
a -1 edge becomes the crossed pair {(u,0),(v,1)}, {(u,1),(v,0)}.  The lift
is d-regular on twice the vertices, and its spectrum is the base spectrum
plus the eigenvalues of the signed adjacency matrix.

Paper: Section II (related work; excluded from the paper's evaluation, run
here anyway — see ``examples/xpander_comparison.py``).  Constraints: base
graph K_{d+1}, so sizes are ``(d + 1) * 2^t`` for lift count ``t >= 0``;
degree ``d`` throughout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import complete_graph
from repro.graphs.metrics import is_connected
from repro.spectral.eigen import lambda_g
from repro.topology.base import Topology
from repro.utils.rng import as_rng


def two_lift(g: CSRGraph, signs: np.ndarray) -> CSRGraph:
    """The 2-lift of ``g`` under a +-1 signing of its edges.

    ``signs`` aligns with ``g.edge_array()`` (one per undirected edge).
    """
    edges = g.edge_array()
    if len(signs) != len(edges):
        raise ParameterError("one sign per undirected edge required")
    n = g.n
    u, v = edges[:, 0], edges[:, 1]
    plus = signs > 0
    lifted = np.concatenate(
        [
            # +1: straight pairs.
            np.stack([u[plus], v[plus]], axis=1),
            np.stack([u[plus] + n, v[plus] + n], axis=1),
            # -1: crossed pairs.
            np.stack([u[~plus], v[~plus] + n], axis=1),
            np.stack([u[~plus] + n, v[~plus]], axis=1),
        ]
    )
    return CSRGraph.from_edges(2 * n, lifted)


def signed_lambda(g: CSRGraph, signs: np.ndarray) -> float:
    """Largest |eigenvalue| of the signed adjacency matrix (the 'new'
    eigenvalues the lift introduces)."""
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    edges = g.edge_array()
    data = np.concatenate([signs, signs]).astype(np.float64)
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    mat = sp.csr_matrix((data, (rows, cols)), shape=(g.n, g.n))
    if g.n <= 400:
        vals = np.linalg.eigvalsh(mat.toarray())
        return float(max(abs(vals[0]), abs(vals[-1])))
    hi = spla.eigsh(mat, k=1, which="LA", return_eigenvectors=False)
    lo = spla.eigsh(mat, k=1, which="SA", return_eigenvectors=False)
    return float(max(abs(float(lo[0])), abs(float(hi[0]))))


def build_xpander(
    degree: int,
    target_routers: int,
    seed: int | np.random.Generator | None = 0,
    signings_per_lift: int = 16,
) -> Topology:
    """Grow a d-regular near-Ramanujan topology to >= ``target_routers``.

    Starts from K_{d+1} (which is Ramanujan) and repeatedly 2-lifts,
    choosing the best of ``signings_per_lift`` random signings per step
    (the smallest signed-adjacency spectral radius).
    """
    if degree < 3:
        raise ParameterError("xpander needs degree >= 3")
    rng = as_rng(seed)
    g = complete_graph(degree + 1)
    while g.n < target_routers:
        edges = g.edge_array()
        best_signs, best_val = None, None
        for _ in range(signings_per_lift):
            signs = rng.choice(np.array([-1, 1]), size=len(edges))
            val = signed_lambda(g, signs)
            if best_val is None or val < best_val:
                best_val, best_signs = val, signs
        lifted = two_lift(g, best_signs)
        if not is_connected(lifted):
            continue  # resample (disconnection is possible but rare)
        g = lifted
    topo = Topology(
        name=f"Xpander({degree},{g.n})",
        family="Xpander",
        graph=g,
        params={"degree": degree, "signings_per_lift": signings_per_lift},
        vertex_transitive=False,
    )
    return topo


def xpander_quality(topo: Topology) -> dict:
    """lambda(G) against the Ramanujan bound for a built Xpander."""
    from repro.spectral.bounds import ramanujan_bound

    lam = lambda_g(topo.graph)
    bound = ramanujan_bound(topo.radix)
    return {
        "name": topo.name,
        "routers": topo.n_routers,
        "lambda": round(lam, 3),
        "ramanujan_bound": round(bound, 3),
        "ratio": round(lam / bound, 3),
    }
