"""Xpander-style near-Ramanujan topologies via random 2-lifts.

Section II of the paper discusses Xpander [20], built on the Bilu--Linial
theory of graph lifts [21]: starting from a small d-regular (Ramanujan)
base graph, each 2-lift doubles the vertex count while, for a good choice
of edge signing, keeping every *new* eigenvalue below O(sqrt(d log^3 d)) —
and empirically close to the Ramanujan bound.  The paper excludes Xpander
from its comparison because computing the interlacing-polynomial signings
at scale is impractical; this module implements the practical randomized
variant (best-of-k random signings per lift, as the Xpander authors do),
so the comparison the paper skipped can actually be run here.

A 2-lift of G under signing s: every vertex v splits into (v, 0), (v, 1);
a +1 edge {u, v} becomes the parallel pair {(u,0),(v,0)}, {(u,1),(v,1)};
a -1 edge becomes the crossed pair {(u,0),(v,1)}, {(u,1),(v,0)}.  The lift
is d-regular on twice the vertices, and its spectrum is the base spectrum
plus the eigenvalues of the signed adjacency matrix.

Paper: Section II (related work; excluded from the paper's evaluation, run
here anyway — see ``examples/xpander_comparison.py``).  Constraints: base
graph K_{d+1}, so sizes are ``(d + 1) * 2^t`` for lift count ``t >= 0``;
degree ``d`` throughout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graphs.generators import complete_graph
from repro.graphs.metrics import is_connected
# The lift machinery is shared with the signing *search* subsystem
# (repro.search.lift) — two_lift and the signed-adjacency spectral radius
# are re-exported here under their historical names.
from repro.search.lift import signed_adjacency_extreme as signed_lambda
from repro.search.lift import two_lift
from repro.spectral.eigen import lambda_g
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["build_xpander", "signed_lambda", "two_lift", "xpander_quality"]


def build_xpander(
    degree: int,
    target_routers: int,
    seed: int | np.random.Generator | None = 0,
    signings_per_lift: int = 16,
) -> Topology:
    """Grow a d-regular near-Ramanujan topology to >= ``target_routers``.

    Starts from K_{d+1} (which is Ramanujan) and repeatedly 2-lifts,
    choosing the best of ``signings_per_lift`` random signings per step
    (the smallest signed-adjacency spectral radius).
    """
    if degree < 3:
        raise ParameterError("xpander needs degree >= 3")
    rng = as_rng(seed)
    g = complete_graph(degree + 1)
    while g.n < target_routers:
        edges = g.edge_array()
        best_signs, best_val = None, None
        for _ in range(signings_per_lift):
            signs = rng.choice(np.array([-1, 1]), size=len(edges))
            val = signed_lambda(g, signs)
            if best_val is None or val < best_val:
                best_val, best_signs = val, signs
        lifted = two_lift(g, best_signs)
        if not is_connected(lifted):
            continue  # resample (disconnection is possible but rare)
        g = lifted
    topo = Topology(
        name=f"Xpander({degree},{g.n})",
        family="Xpander",
        graph=g,
        params={"degree": degree, "signings_per_lift": signings_per_lift},
        vertex_transitive=False,
    )
    return topo


def xpander_quality(topo: Topology) -> dict:
    """lambda(G) against the Ramanujan bound for a built Xpander."""
    from repro.spectral.bounds import ramanujan_bound

    lam = lambda_g(topo.graph)
    bound = ramanujan_bound(topo.radix)
    return {
        "name": topo.name,
        "routers": topo.n_routers,
        "lambda": round(lam, 3),
        "ramanujan_bound": round(bound, 3),
        "ratio": round(lam / bound, 3),
    }
