"""Searched topologies: candidates discovered by :mod:`repro.search`.

A :class:`SearchedTopology` is an ordinary :class:`~repro.topology.base.
Topology` (family ``"Searched"``) carrying its full provenance — the
search method, seed, budget, schedule, and before/after fitness — so any
discovered candidate can be rebuilt bit-identically from its ``params``
alone.  Because it *is* a Topology, candidates flow unchanged into
routing-table construction, both simulator engines, and the fig4/fig6
experiment pipelines; the routing-oracle layer treats the family as
generic (dense tables at small sizes, landmark oracles beyond).

Two builders cover the two search moves:

* :func:`swap_searched_topology` — double-edge-swap refinement of a
  Jellyfish seed at fixed ``(n, radix)``.
* :func:`lifted_topology` — signing-searched 2-lift of *any* base
  topology, reaching ``2n`` sizes the algebraic families can't hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ParameterError
from repro.search.lift import search_signing
from repro.search.swap import SwapSearchResult, edge_swap_search
from repro.topology.base import Topology
from repro.topology.jellyfish import build_jellyfish


@dataclass
class SearchedTopology(Topology):
    """A topology produced by the spectral design-space search.

    ``params`` holds the complete recipe (method + seeds + budgets);
    ``provenance`` holds derived facts worth reporting but not needed to
    rebuild (seed/best fitness, acceptance counters, signing score).
    """

    provenance: dict[str, Any] | None = None

    def describe(self) -> dict[str, Any]:
        out = super().describe()
        out["method"] = self.params.get("method", "?")
        return out


def swap_searched_topology(
    n_routers: int,
    radix: int,
    budget: int = 200,
    seed: int = 0,
    schedule: str = "anneal",
    objective: str = "spectral_gap",
    seed_topology: Topology | None = None,
) -> SearchedTopology:
    """Edge-swap search from a Jellyfish seed at fixed ``(n, radix)``.

    ``seed_topology`` overrides the default ``build_jellyfish(n_routers,
    radix, seed)`` starting point (it must match ``n_routers``/``radix``).
    The returned candidate's fitness is never below the seed's.
    """
    if seed_topology is None:
        seed_topology = build_jellyfish(n_routers, radix, seed=seed)
    if seed_topology.n_routers != n_routers or seed_topology.radix != radix:
        raise ParameterError(
            f"seed topology {seed_topology.name} is "
            f"({seed_topology.n_routers}, {seed_topology.radix}), "
            f"expected ({n_routers}, {radix})"
        )
    result: SwapSearchResult = edge_swap_search(
        seed_topology.graph,
        budget=budget,
        seed=seed,
        schedule=schedule,
        objective=objective,
    )
    return SearchedTopology(
        name=f"Searched({n_routers},{radix};swap,b={budget},s={seed})",
        family="Searched",
        graph=result.graph,
        params={
            "method": "edge-swap",
            "n": n_routers,
            "radix": radix,
            "budget": budget,
            "seed": seed,
            "schedule": schedule,
            "objective": objective,
            "seed_name": seed_topology.name,
        },
        vertex_transitive=False,
        provenance={
            "seed_fitness": result.seed_fitness,
            "best_fitness": result.best_fitness,
            "accepted": result.counters["accepted"],
            "proposed": result.counters["proposed"],
        },
    )


def lifted_topology(
    base: Topology,
    seed: int = 0,
    restarts: int = 3,
    passes: int = 2,
) -> SearchedTopology:
    """Signing-searched 2-lift of ``base`` (``2n`` routers, equal radix)."""
    result = search_signing(base.graph, seed=seed, restarts=restarts, passes=passes)
    return SearchedTopology(
        name=f"Searched(2x{base.name};lift,s={seed})",
        family="Searched",
        graph=result.graph,
        params={
            "method": "two-lift",
            "base": base.name,
            "base_params": dict(base.params),
            "base_family": base.family,
            "seed": seed,
            "restarts": restarts,
            "passes": passes,
        },
        vertex_transitive=False,
        provenance={
            "signed_extreme": result.score,
            "restart_scores": [float(s) for s in result.restart_scores],
        },
    )
