"""Primality testing and prime enumeration.

The LPS construction (paper Definition 3) requires distinct odd primes
``p, q``; SlimFly/BundleFly additionally require prime *powers* (the paper's
SF(9), SF(27) and BF(97, 4) instances use GF(9), GF(27) and GF(4)).  The
deterministic Miller--Rabin witness set used here is exact for all inputs
below 3.3 * 10^24, far beyond any feasible topology parameter.
"""

from __future__ import annotations

import numpy as np

# Deterministic Miller-Rabin witnesses valid for n < 3,317,044,064,679,887,385,961,981.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Return ``True`` iff ``n`` is prime (deterministic for n < 3.3e24)."""
    if n < 2:
        return False
    for sp in _SMALL_PRIMES:
        if n == sp:
            return True
        if n % sp == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def primes_below(limit: int) -> np.ndarray:
    """Return all primes strictly below ``limit`` as an int64 array (sieve)."""
    if limit <= 2:
        return np.empty(0, dtype=np.int64)
    sieve = np.ones(limit, dtype=bool)
    sieve[:2] = False
    for i in range(2, int(limit**0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = False
    return np.flatnonzero(sieve).astype(np.int64)


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        if candidate == 2:
            return 2
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def prime_power_decomposition(n: int) -> tuple[int, int] | None:
    """Return ``(p, m)`` with ``n == p**m`` and ``p`` prime, or ``None``.

    Used to decide whether a SlimFly/BundleFly parameter ``q`` is a valid
    finite-field order.
    """
    if n < 2:
        return None
    if is_prime(n):
        return (n, 1)
    # n = p^m with m >= 2 implies p <= n^(1/2).
    for m in range(2, n.bit_length() + 1):
        root = round(n ** (1.0 / m))
        for p in (root - 1, root, root + 1):
            if p >= 2 and p**m == n and is_prime(p):
                return (p, m)
    return None


def is_prime_power(n: int) -> bool:
    """Return ``True`` iff ``n`` is a positive power of a single prime."""
    return prime_power_decomposition(n) is not None
