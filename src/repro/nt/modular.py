"""Modular arithmetic helpers for the LPS construction.

Provides the Legendre symbol (which decides whether LPS(p, q) lives in
PSL(2, q) or PGL(2, q)), modular square roots via Tonelli--Shanks, and the
solutions ``(x, y)`` of ``x^2 + y^2 + 1 = 0 (mod q)`` needed to embed the
quaternion generators into 2x2 matrices (paper Definition 3).
"""

from __future__ import annotations

from repro.nt.primes import is_prime


def mod_inverse(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``; raises if not invertible."""
    a %= m
    g, x = _extended_gcd(a, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x = gcd (mod b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol ``(a/p)`` in {-1, 0, 1} for odd prime p."""
    if p <= 2 or not is_prime(p):
        raise ValueError(f"p={p} must be an odd prime")
    a %= p
    if a == 0:
        return 0
    value = pow(a, (p - 1) // 2, p)
    return 1 if value == 1 else -1


def sqrt_mod(a: int, p: int) -> int | None:
    """Return a square root of ``a`` modulo odd prime ``p``, or ``None``.

    Tonelli--Shanks; deterministic non-residue search (2, 3, 4, ...) keeps
    the function reproducible.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if legendre_symbol(a, p) != 1:
        return None
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p = 1 (mod 4).
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        for i in range(1, m):
            t2 = t2 * t2 % p
            if t2 == 1:
                break
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r


def solve_sum_of_two_squares_plus_one(q: int) -> tuple[int, int]:
    """Return the lexicographically-least ``(x, y)`` with x^2+y^2+1=0 (mod q).

    A solution always exists for odd prime ``q`` (count the overlapping value
    sets of ``x^2`` and ``-1 - y^2``).  The paper's Example 1 uses
    ``(x, y) = (0, 2)`` for q = 5, which this function reproduces.
    """
    if q == 2:
        return (1, 0)
    if not is_prime(q) or q < 3:
        raise ValueError(f"q={q} must be an odd prime")
    # Fast path: if -1 is a QR, take y = 0 and x = sqrt(-1).
    for x in range(q):
        rhs = (-1 - x * x) % q
        y = sqrt_mod(rhs, q)
        if y is not None:
            y = min(y, q - y) if y else 0
            return (x, y)
    raise RuntimeError(f"no solution of x^2+y^2+1=0 mod {q}; q prime?")


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Return x (mod m1*m2) with x=r1 (mod m1) and x=r2 (mod m2), coprime moduli."""
    g, inv = _extended_gcd(m1 % m2, m2)
    if g != 1:
        raise ValueError(f"moduli {m1}, {m2} are not coprime")
    t = (r2 - r1) * inv % m2
    return (r1 + m1 * t) % (m1 * m2)
