"""Integral quaternions and four-square representations for LPS generators.

The generating set of LPS(p, q) is indexed by solutions
``(a0, a1, a2, a3)`` of ``a0^2 + a1^2 + a2^2 + a3^2 = p`` satisfying the
normalisation of paper Definition 3:

* ``p = 1 (mod 4)``: ``a0 > 0`` and odd (then a1, a2, a3 are even);
* ``p = 3 (mod 4)``: ``a0 > 0`` and even, **or** ``a0 = 0`` and ``a1 > 0``.

By Jacobi's four-square theorem a prime has ``8(p + 1)`` integer
representations; the normalisation selects exactly ``p + 1`` of them, one per
generator, and the resulting set is closed under quaternion conjugation
(inverse in the projective group), making the Cayley graph undirected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Quaternion:
    """Integral (Lipschitz) quaternion ``a + b i + c j + d k``."""

    a: int
    b: int
    c: int
    d: int

    def norm(self) -> int:
        """Return the reduced norm ``a^2 + b^2 + c^2 + d^2``."""
        return self.a * self.a + self.b * self.b + self.c * self.c + self.d * self.d

    def conjugate(self) -> "Quaternion":
        """Return ``a - b i - c j - d k``."""
        return Quaternion(self.a, -self.b, -self.c, -self.d)

    def __mul__(self, other: "Quaternion") -> "Quaternion":
        a1, b1, c1, d1 = self.a, self.b, self.c, self.d
        a2, b2, c2, d2 = other.a, other.b, other.c, other.d
        return Quaternion(
            a1 * a2 - b1 * b2 - c1 * c2 - d1 * d2,
            a1 * b2 + b1 * a2 + c1 * d2 - d1 * c2,
            a1 * c2 - b1 * d2 + c1 * a2 + d1 * b2,
            a1 * d2 + b1 * c2 - c1 * b2 + d1 * a2,
        )

    def __add__(self, other: "Quaternion") -> "Quaternion":
        return Quaternion(
            self.a + other.a, self.b + other.b, self.c + other.c, self.d + other.d
        )


def sum_of_four_squares_representations(n: int) -> list[tuple[int, int, int, int]]:
    """Return all signed integer 4-tuples with ``a0^2+a1^2+a2^2+a3^2 == n``.

    Exhaustive bounded enumeration; for primes the count is ``8(n + 1)``
    (Jacobi), which the tests assert.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    bound = math.isqrt(n)
    out: list[tuple[int, int, int, int]] = []
    for a0 in range(-bound, bound + 1):
        r0 = n - a0 * a0
        b1 = math.isqrt(r0)
        for a1 in range(-b1, b1 + 1):
            r1 = r0 - a1 * a1
            b2 = math.isqrt(r1)
            for a2 in range(-b2, b2 + 1):
                r2 = r1 - a2 * a2
                a3 = math.isqrt(r2)
                if a3 * a3 == r2:
                    out.append((a0, a1, a2, a3))
                    if a3 != 0:
                        out.append((a0, a1, a2, -a3))
    return out


def lps_generators_alpha(p: int) -> list[tuple[int, int, int, int]]:
    """Return the ``p + 1`` normalised four-square solutions for LPS(p, q).

    Applies the Definition 3 selection rules.  The returned list is sorted
    for reproducibility and is closed under the involution that realises
    generator inverses: conjugation ``(a0, -a1, -a2, -a3)`` for
    ``p = 1 (mod 4)`` / ``a0 > 0`` solutions, identity for the ``a0 = 0``
    involutive generators of the ``p = 3 (mod 4)`` case.
    """
    if p < 3 or p % 2 == 0:
        raise ValueError(f"p={p} must be an odd prime")
    sols = sum_of_four_squares_representations(p)
    selected: list[tuple[int, int, int, int]] = []
    if p % 4 == 1:
        for a0, a1, a2, a3 in sols:
            if a0 > 0 and a0 % 2 == 1:
                selected.append((a0, a1, a2, a3))
    else:
        for a0, a1, a2, a3 in sols:
            if (a0 > 0 and a0 % 2 == 0) or (a0 == 0 and a1 > 0):
                selected.append((a0, a1, a2, a3))
    selected.sort()
    if len(selected) != p + 1:
        raise RuntimeError(
            f"expected {p + 1} normalised four-square solutions for p={p}, "
            f"found {len(selected)}; is p an odd prime?"
        )
    return selected
