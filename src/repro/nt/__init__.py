"""Number-theoretic primitives underlying the LPS construction.

This subpackage provides everything Definition 3 of the paper needs:
primality testing and prime enumeration (:mod:`repro.nt.primes`),
modular arithmetic including the Legendre symbol, modular square roots,
and solutions of ``x^2 + y^2 + 1 = 0 (mod q)`` (:mod:`repro.nt.modular`),
and the enumeration of integral-quaternion four-square representations of a
prime ``p`` with the LPS normalisation (:mod:`repro.nt.quaternions`).
"""

from repro.nt.primes import (
    is_prime,
    is_prime_power,
    next_prime,
    primes_below,
    prime_power_decomposition,
)
from repro.nt.modular import (
    crt_pair,
    legendre_symbol,
    mod_inverse,
    solve_sum_of_two_squares_plus_one,
    sqrt_mod,
)
from repro.nt.quaternions import (
    Quaternion,
    lps_generators_alpha,
    sum_of_four_squares_representations,
)

__all__ = [
    "is_prime",
    "is_prime_power",
    "next_prime",
    "primes_below",
    "prime_power_decomposition",
    "legendre_symbol",
    "mod_inverse",
    "sqrt_mod",
    "crt_pair",
    "solve_sum_of_two_squares_plus_one",
    "Quaternion",
    "sum_of_four_squares_representations",
    "lps_generators_alpha",
]
