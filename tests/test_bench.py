"""Unit tests for the benchmark harness (``repro.runner.bench``).

Timing *numbers* are machine noise and are never asserted; what is pinned
here is the machinery: cells run the work they claim (delivered counts,
backends, workload labels), the scenario cells (motif, collective,
faulted, congested, searched) exist per backend, the summaries aggregate what they say they
aggregate, and
``compare_to_committed`` flags exactly the regressions it documents —
including the new per-scenario speedups.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import bench
from repro.runner.bench import (
    BENCH_PRESETS,
    compare_to_committed,
    run_bench,
    run_cell,
    run_collective_cell,
    run_congested_cell,
    run_faulted_cell,
    run_motif_cell,
    run_scenarios,
    summarize,
    summarize_scenarios,
)
from repro.topology import SIM_CONFIGS

#: A micro preset: same shape as the real ones, sized for unit tests.
_TINY = {
    "scale": "small",
    "topologies": ("SpectralFly",),
    "cells": (("minimal", "shuffle"),),
    "load": 0.5,
    "n_ranks": 16,
    "packets_per_rank": 2,
    "backends": ("event", "batched"),
    "scenarios": {
        "motif": {"topology": "SpectralFly", "routing": "minimal",
                  "motif": "sweep3d", "n_ranks": 16},
        "faulted": {"topology": "SpectralFly", "routing": "minimal",
                    "pattern": "random", "load": 0.5, "n_ranks": 16,
                    "packets_per_rank": 3, "fail_fraction": 0.05,
                    "recover": True},
        "collective": {"topology": "SpectralFly", "routing": "minimal",
                       "collective": "allreduce", "algorithm": "ring",
                       "n_ranks": 8, "total_bytes": 1 << 10},
        "congested": {"topology": "SpectralFly", "routing": "minimal",
                      "pattern": "random", "load": 0.5, "n_ranks": 16,
                      "packets_per_rank": 3, "buffer_packets": 1,
                      "loss_prob": 0.05, "max_attempts": 2},
        "searched": {"n_routers": 20, "radix": 4, "budget": 10,
                     "routing": "minimal", "pattern": "random", "load": 0.5,
                     "concentration": 2, "n_ranks": 16,
                     "packets_per_rank": 3},
    },
}


@pytest.fixture
def tiny_preset(monkeypatch):
    monkeypatch.setitem(BENCH_PRESETS, "tiny", _TINY)
    return "tiny"


@pytest.fixture(scope="module")
def topo():
    return SIM_CONFIGS["small"]["topologies"]["SpectralFly"]["build"]()


class TestCells:
    def test_run_cell_reports_work_done(self, topo):
        row = run_cell(topo, "minimal", "shuffle", 0.5, concentration=4,
                       n_ranks=16, packets_per_rank=2, backend="event")
        assert row["backend"] == "event"
        assert row["delivered"] > 0
        assert row["wall_s"] >= 0 and row["packets_per_s"] > 0

    def test_run_motif_cell_per_backend(self, topo):
        rows = {
            be: run_motif_cell(topo, "minimal", "sweep3d", 4, n_ranks=16,
                               backend=be)
            for be in ("event", "batched")
        }
        for be, row in rows.items():
            assert row["workload"] == "motif:sweep3d"
            assert row["backend"] == be
            assert row["delivered"] == row["messages"] > 0
        # Identical DAG on both engines.
        assert rows["event"]["messages"] == rows["batched"]["messages"]

    def test_run_motif_cell_unknown_kind(self, topo):
        with pytest.raises(ValueError, match="unknown bench motif"):
            run_motif_cell(topo, "minimal", "nope", 4, n_ranks=16)

    def test_run_faulted_cell_applies_the_schedule(self, topo):
        row = run_faulted_cell(
            topo, "minimal", "random", 0.5, concentration=4, n_ranks=16,
            packets_per_rank=3, fail_fraction=0.05, backend="batched",
        )
        assert row["workload"] == "faulted:0.05"
        assert row["backend"] == "batched"
        assert row["delivered"] > 0

    def test_run_collective_cell_per_backend(self, topo):
        rows = {
            be: run_collective_cell(
                topo, "minimal", "allreduce", "ring", 4, n_ranks=8,
                total_bytes=1 << 10, backend=be,
            )
            for be in ("event", "batched")
        }
        for be, row in rows.items():
            assert row["workload"] == "collective:allreduce-ring"
            assert row["backend"] == be
            assert row["delivered"] == row["messages"] > 0
            assert row["chunk_done_p99_ns"] <= row["makespan_ns"]
        # Identical schedule DAG on both engines.
        assert rows["event"]["messages"] == rows["batched"]["messages"]

    def test_run_congested_cell_per_backend(self, topo):
        rows = {
            be: run_congested_cell(
                topo, "minimal", "random", 0.5, concentration=4, n_ranks=16,
                packets_per_rank=3, buffer_packets=1, loss_prob=0.3,
                max_attempts=1, backend=be,
            )
            for be in ("event", "batched")
        }
        for be, row in rows.items():
            assert row["workload"] == "congested:b1-p0.3"
            assert row["backend"] == be
            assert row["delivered"] > 0
            assert row["delivered"] + row["dropped"] > row["delivered"]
        # Counter-hash channel: identical drop accounting on both engines.
        assert rows["event"]["dropped"] == rows["batched"]["dropped"] > 0
        assert rows["event"]["delivered"] == rows["batched"]["delivered"]

    def test_make_motif_kinds(self):
        for kind in ("fft-balanced", "fft-unbalanced", "halo3d", "sweep3d"):
            m = bench._make_motif(kind, 16)
            assert m.generate()


class TestScenarios:
    def test_run_scenarios_covers_workloads_and_backends(self, tiny_preset):
        rows = run_scenarios(tiny_preset)
        assert {r["workload"].split(":")[0] for r in rows} == {
            "motif", "faulted", "collective", "congested", "searched"
        }
        assert {r["backend"] for r in rows} == {"event", "batched"}
        assert len(rows) == 10

    def test_searched_scenario_runs_a_searched_topology(self, tiny_preset):
        rows = [r for r in run_scenarios(tiny_preset)
                if r["workload"].startswith("searched:")]
        assert len(rows) == 2  # one per backend
        for row in rows:
            assert row["workload"] == "searched:b10"
            assert row["topology"].startswith("Searched(")
            assert row["delivered"] > 0

    def test_run_scenarios_empty_without_section(self, monkeypatch):
        monkeypatch.setitem(
            BENCH_PRESETS, "bare", {k: v for k, v in _TINY.items()
                                    if k != "scenarios"}
        )
        assert run_scenarios("bare") == []

    def test_summarize_scenarios_speedups(self):
        rows = [
            {"workload": "motif:fft", "backend": "event", "wall_s": 3.0},
            {"workload": "motif:fft", "backend": "batched", "wall_s": 1.0},
            {"workload": "faulted:0.1", "backend": "event", "wall_s": 4.0},
            {"workload": "faulted:0.1", "backend": "batched", "wall_s": 2.0},
        ]
        out = summarize_scenarios(rows)
        assert out == {
            "motif_speedup_vs_event": 3.0,
            "faulted_speedup_vs_event": 2.0,
        }

    def test_summarize_scenarios_needs_both_backends(self):
        rows = [{"workload": "motif:fft", "backend": "event", "wall_s": 3.0}]
        assert summarize_scenarios(rows) == {}


class TestRunBench:
    def test_run_bench_writes_scenario_sections(self, tiny_preset, tmp_path):
        out = tmp_path / "bench.json"
        result = run_bench(preset=tiny_preset, out_path=out, micro=False,
                           progress=None)
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk["preset"] == tiny_preset
        for payload in (result, on_disk):
            assert payload["summary"]["backend"] == "event"
            assert "summary_batched" in payload
            assert "scenario_cells" in payload
            ss = payload["summary_scenarios"]
            assert set(ss) == {
                "motif_speedup_vs_event", "faulted_speedup_vs_event",
                "collective_speedup_vs_event", "congested_speedup_vs_event",
                "searched_speedup_vs_event",
            }

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown bench preset"):
            run_bench(preset="nope", out_path=None, progress=None)

    def test_summarize_aggregates(self):
        rows = [
            {"delivered": 10, "events": 100, "wall_s": 1.0,
             "packets_per_s": 10.0},
            {"delivered": 30, "events": 300, "wall_s": 1.0,
             "packets_per_s": 30.0},
        ]
        s = summarize(rows)
        assert s["total_packets"] == 40
        assert s["packets_per_s"] == 20.0
        assert s["median_cell_packets_per_s"] == 20.0


class TestCompareToCommitted:
    def _base(self):
        return {
            "summary": {"backend": "event", "packets_per_s": 100.0},
            "summary_batched": {"packets_per_s": 400.0,
                                "speedup_vs_event": 4.0},
            "summary_scenarios": {"motif_speedup_vs_event": 3.0,
                                  "faulted_speedup_vs_event": 4.0},
        }

    def test_healthy_within_tolerance(self):
        committed = self._base()
        fresh = self._base()
        fresh["summary"]["packets_per_s"] = 80.0  # -20% < 25% tolerance
        assert compare_to_committed(committed, fresh) == []

    def test_faster_never_fails(self):
        committed = self._base()
        fresh = self._base()
        fresh["summary_scenarios"]["motif_speedup_vs_event"] = 9.0
        assert compare_to_committed(committed, fresh) == []

    def test_scenario_speedup_regression_is_flagged(self):
        committed = self._base()
        fresh = self._base()
        fresh["summary_scenarios"]["motif_speedup_vs_event"] = 1.0
        problems = compare_to_committed(committed, fresh)
        assert any("motif_speedup_vs_event" in p for p in problems)

    def test_headline_regression_is_flagged(self):
        committed = self._base()
        fresh = self._base()
        fresh["summary"]["packets_per_s"] = 10.0
        problems = compare_to_committed(committed, fresh)
        assert any("packets/s" in p for p in problems)

    def test_mismatched_headline_backends_not_compared(self):
        committed = self._base()
        fresh = self._base()
        fresh["summary"] = {"backend": "batched", "packets_per_s": 1.0}
        problems = compare_to_committed(committed, fresh)
        assert not any(p.startswith("event packets/s") for p in problems)


#: A micro scale cell: the smallest LPS instance, forced through the
#: oracle + sharded path so unit tests exercise the real machinery.
_TINY_SCALE = {
    "name": "LPS(3,5)-sharded2-cayley", "p": 3, "q": 5,
    "oracle": "cayley", "routing": "minimal", "pattern": "random",
    "load": 0.3, "concentration": 2, "n_ranks": 64,
    "packets_per_rank": 2, "shard_workers": 2,
}


class TestScaleCells:
    def test_run_scale_cell_reports_the_work_done(self):
        from repro.runner.bench import run_scale_cell

        row = run_scale_cell(_TINY_SCALE)
        assert row["name"] == _TINY_SCALE["name"]
        assert row["backend"] == "sharded"
        assert row["oracle"] == "cayley"
        assert row["routers"] == 120
        assert row["delivered"] == 64 * 2
        assert row["packets_per_s"] > 0
        assert row["wall_s"] > 0 and row["setup_wall_s"] > 0
        assert row["dense_table_bytes_avoided"] == 120 * 120 * 2

    def test_run_scale_cells_respects_preset_section(self, monkeypatch):
        from repro.runner.bench import run_scale_cells

        monkeypatch.setitem(
            BENCH_PRESETS, "tiny-scale",
            {**_TINY, "scale_cells": (_TINY_SCALE,)},
        )
        lines = []
        rows = run_scale_cells("tiny-scale", progress=lines.append)
        assert [r["name"] for r in rows] == [_TINY_SCALE["name"]]
        assert lines and "pkt/s" in lines[0]
        # No section -> no rows (the tiny preset has none).
        monkeypatch.setitem(BENCH_PRESETS, "tiny", _TINY)
        assert run_scale_cells("tiny") == []

    def test_run_bench_writes_scale_section(self, monkeypatch, tmp_path):
        monkeypatch.setitem(
            BENCH_PRESETS, "tiny-scale",
            {**_TINY, "scale_cells": (_TINY_SCALE,)},
        )
        out = tmp_path / "bench.json"
        run_bench(preset="tiny-scale", out_path=out, micro=False,
                  progress=None)
        result = json.loads(out.read_text())
        assert result["schema"] == 3
        names = [r["name"] for r in result["scale_cells"]]
        assert names == [_TINY_SCALE["name"]]

    def test_scale_cell_regression_is_flagged(self):
        committed = {"scale_cells": [
            {"name": "LPS(5,23)-sharded2-cayley", "packets_per_s": 40000.0},
        ]}
        fresh = {"scale_cells": [
            {"name": "LPS(5,23)-sharded2-cayley", "packets_per_s": 10000.0},
        ]}
        problems = compare_to_committed(committed, fresh)
        assert any("scale cell" in p for p in problems)
        # Within tolerance (or faster) passes.
        fresh["scale_cells"][0]["packets_per_s"] = 38000.0
        assert compare_to_committed(committed, fresh) == []
        fresh["scale_cells"][0]["packets_per_s"] = 90000.0
        assert compare_to_committed(committed, fresh) == []

    def test_presets_with_scale_cells_use_the_sharded_oracle_path(self):
        for preset in ("smoke", "small", "full"):
            for sc in BENCH_PRESETS[preset].get("scale_cells", ()):
                assert sc["oracle"] in ("cayley", "landmark")
                assert sc["shard_workers"] >= 2
                # Past the smoke tier the instances sit beyond the dense
                # wall: the q=23/q=47 LPS cells must never densify.
                assert sc["q"] >= 23
