"""Unit contracts of the batch-synchronous backend (``repro.sim.batched``).

The statistical equivalence with the event engine lives in
``test_sim_differential.py``; this module pins the engine's own contracts:

* determinism per seed, and full delivery (open-loop runs always drain);
* **exact** uncongested latency: with no port contention the analytic
  pipeline assembly must equal the event engine's latencies to float
  rounding (1e-12 relative — the two accumulate the same terms in a
  different association order);
* self-sends are excluded from the stats exactly like the event engine;
* unsupported features fail loudly at construction/call time rather than
  silently falling back (finite buffers, pause/resume, send(), delivery
  callbacks, unknown policies, shared-endpoint sources) — the full
  backend x feature product lives in ``tests/test_sim_capabilities.py``;
* fault schedules are *supported* (epoch boundaries) but attach at most
  once and only before the run.
"""

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.routing import RoutingTables, make_routing
from repro.sim import BatchedSimulator, SimConfig
from repro.sim.faults import FaultSchedule
from repro.sim.traffic import OpenLoopSource, make_traffic
from repro.experiments.common import build_synthetic_sim
from repro.topology import build_lps


@pytest.fixture(scope="module")
def parts():
    topo = build_lps(3, 5)  # 120 routers, radix 4
    tables = RoutingTables(topo.graph)
    return topo, tables


def _net(parts, backend, routing="minimal", pattern="random", load=0.5,
         n_ranks=32, packets_per_rank=6, seed=5, concentration=2):
    topo, _tables = parts
    return build_synthetic_sim(
        topo,
        routing,
        pattern,
        load,
        concentration=concentration,
        n_ranks=n_ranks,
        packets_per_rank=packets_per_rank,
        seed=seed,
        backend=backend,
    )


class TestContracts:
    def test_full_delivery_and_injection_parity(self, parts):
        ev = _net(parts, "event", load=0.8).run()
        bt = _net(parts, "batched", load=0.8).run()
        assert bt.n_injected == ev.n_injected > 0
        assert len(bt.latencies_ns) == bt.n_injected
        assert len(ev.latencies_ns) == ev.n_injected
        assert bt.t_first_inject == ev.t_first_inject

    def test_deterministic_per_seed(self, parts):
        a = _net(parts, "batched").run()
        b = _net(parts, "batched").run()
        assert a.latencies_ns == b.latencies_ns
        assert a.hops == b.hops
        assert (a.valiant_choices, a.minimal_choices, a.n_events) == (
            b.valiant_choices, b.minimal_choices, b.n_events
        )

    def test_different_seed_differs(self, parts):
        a = _net(parts, "batched", seed=1).run()
        b = _net(parts, "batched", seed=2).run()
        assert a.latencies_ns != b.latencies_ns

    def test_stats_lists_stay_lists(self, parts):
        stats = _net(parts, "batched").run()
        assert type(stats.latencies_ns) is list
        assert type(stats.hops) is list

    def test_self_sends_excluded_like_event(self, parts):
        # Bit shuffle maps rank 0 (and the all-ones rank) to itself; both
        # engines must skip exactly those packets.
        ev = _net(parts, "event", pattern="shuffle").run()
        bt = _net(parts, "batched", pattern="shuffle").run()
        assert ev.n_injected == bt.n_injected
        assert ev.n_injected < 32 * 6  # some self-sends really occurred


def _assert_latencies_exact(bt, ev):
    """Multiset equality to float rounding (delivery order may differ)."""
    a = sorted(bt.latencies_ns)
    b = sorted(ev.latencies_ns)
    assert len(a) == len(b)
    assert a == pytest.approx(b, rel=1e-12)


class TestExactUncongestedLatency:
    def test_single_packet_latency_is_exact(self, parts):
        # One packet per source: no queueing anywhere, so the batched
        # engine's analytic pipeline must equal the event engine's
        # hop-by-hop accumulation (same terms, different association).
        ev = _net(parts, "event", n_ranks=2, packets_per_rank=1,
                  pattern="neighbor", load=0.5).run()
        bt = _net(parts, "batched", n_ranks=2, packets_per_rank=1,
                  pattern="neighbor", load=0.5).run()
        assert ev.n_injected == bt.n_injected == 2
        # All minimal candidates share the path length, so even different
        # tie-breaks give the same per-packet latency.
        _assert_latencies_exact(bt, ev)
        assert sorted(bt.hops) == sorted(ev.hops)
        assert bt.t_last_delivery == pytest.approx(
            ev.t_last_delivery, rel=1e-12
        )

    def test_sparse_open_loop_latencies_match_exactly(self, parts):
        # Two sources at very low load: packets are far apart, no
        # contention, and every latency must match the event engine to
        # float rounding.
        ev = _net(parts, "event", n_ranks=2, packets_per_rank=8,
                  pattern="neighbor", load=0.02, seed=9).run()
        bt = _net(parts, "batched", n_ranks=2, packets_per_rank=8,
                  pattern="neighbor", load=0.02, seed=9).run()
        _assert_latencies_exact(bt, ev)


class TestUnsupportedFeaturesFailLoudly:
    def _policy(self, parts, name="minimal"):
        topo, tables = parts
        return topo, tables, make_routing(name, tables, seed=0)

    def test_fault_schedule_accepted_but_only_once_and_before_run(self, parts):
        # Fault schedules are supported since the epoch-boundary port; what
        # must still fail loudly: double attachment, and attachment after
        # the run consumed the engine.
        topo, tables, routing = self._policy(parts)
        schedule = FaultSchedule([])
        net = BatchedSimulator(topo, routing, SimConfig(concentration=2),
                               tables=tables, faults=schedule)
        with pytest.raises(SimulationError, match="already attached"):
            net.set_fault_schedule(FaultSchedule([]))
        net2 = BatchedSimulator(topo, routing, SimConfig(concentration=2),
                                tables=tables)
        net2.set_fault_schedule(schedule)
        with pytest.raises(SimulationError, match="already attached"):
            net2.set_fault_schedule(FaultSchedule([]))

    def test_congestion_features_rejected_for_closed_loop(self, parts):
        # Finite buffers and lossy links are open-loop features on this
        # engine; combining either with the closed-loop motif runner must
        # refuse with the canonical error, not wedge or silently ignore.
        from repro.sim import ChannelConfig

        topo, tables, routing = self._policy(parts)
        net = BatchedSimulator(
            topo, routing,
            SimConfig(concentration=2, finite_buffers=True),
            tables=tables,
        )
        with pytest.raises(SimulationError, match="finite-buffers"):
            net.run_closed_loop([], np.arange(4, dtype=np.int64))
        net = BatchedSimulator(
            topo, routing,
            SimConfig(concentration=2, channel=ChannelConfig(loss_prob=0.1)),
            tables=tables,
        )
        with pytest.raises(SimulationError, match="lossy-links"):
            net.run_closed_loop([], np.arange(4, dtype=np.int64))

    def test_send_and_pause_rejected(self, parts):
        topo, tables, routing = self._policy(parts)
        net = BatchedSimulator(topo, routing, SimConfig(concentration=2),
                               tables=tables)
        with pytest.raises(SimulationError, match="adhoc-send"):
            net.send(0, 5)
        with pytest.raises(SimulationError, match="pause"):
            net.run(until=100.0)
        with pytest.raises(SimulationError, match="pause"):
            net.run(max_events=10)

    def test_delivery_callback_rejected(self, parts):
        net = _net(parts, "batched")
        net.on_delivery = lambda pkt, t: None
        with pytest.raises(SimulationError, match="callback"):
            net.run()

    def test_unknown_policy_rejected(self, parts):
        topo, tables, routing = self._policy(parts)
        routing.name = "custom-policy"
        with pytest.raises(SimulationError, match="vectorized"):
            BatchedSimulator(topo, routing, SimConfig(concentration=2),
                             tables=tables)

    def test_shared_endpoint_sources_rejected(self, parts):
        topo, tables, routing = self._policy(parts)
        net = BatchedSimulator(topo, routing, SimConfig(concentration=2),
                               tables=tables)
        pat = make_traffic("random", 4)
        r2e = np.arange(4, dtype=np.int64)
        for rank in (0, 1):
            net.add_open_loop_source(
                OpenLoopSource(rank, 3, pat, r2e, 0.5, 2, seed=rank)
            )
        with pytest.raises(SimulationError, match="one source per endpoint"):
            net.run()

    def test_unknown_backend_rejected(self, parts):
        with pytest.raises(ParameterError, match="unknown simulator backend"):
            _net(parts, "threaded")

    def test_config_backend_field_is_honoured(self, parts):
        topo, _ = parts
        net = build_synthetic_sim(
            topo, "minimal", "random", 0.5, concentration=2, n_ranks=16,
            packets_per_rank=2, seed=0,
            config=SimConfig(concentration=2, backend="batched"),
        )
        assert isinstance(net, BatchedSimulator)
