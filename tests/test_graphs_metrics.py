"""Tests for structural metrics (diameter, average distance, girth, ...)."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    torus_graph,
)
from repro.graphs.metrics import (
    average_distance,
    diameter,
    edge_connectivity_lower_bound,
    girth,
    is_bipartite,
    is_connected,
)


class TestDiameter:
    def test_complete(self):
        assert diameter(complete_graph(7)) == 1

    def test_cycle(self):
        assert diameter(cycle_graph(9)) == 4
        assert diameter(cycle_graph(10)) == 5

    def test_hypercube(self):
        assert diameter(hypercube_graph(5)) == 5

    def test_torus(self):
        assert diameter(torus_graph((5, 5))) == 4

    def test_disconnected_raises(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        with pytest.raises(ValueError):
            diameter(g)

    def test_sampled_lower_bounds_exact(self):
        g = torus_graph((6, 6))
        assert diameter(g, sample=10) <= diameter(g)


class TestAverageDistance:
    def test_complete(self):
        assert average_distance(complete_graph(10)) == pytest.approx(1.0)

    def test_cycle5(self):
        # C5: distances 1,1,2,2 from each vertex -> mean 1.5.
        assert average_distance(cycle_graph(5)) == pytest.approx(1.5)

    def test_hypercube(self):
        # Mean Hamming distance between distinct points of {0,1}^d:
        # d * 2^(d-1) / (2^d - 1) * ... = d/2 * 2^d/(2^d -1).
        d = 4
        n = 2**d
        expect = d / 2 * n / (n - 1)
        assert average_distance(hypercube_graph(d)) == pytest.approx(expect)


class TestGirth:
    def test_tree_has_none(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2], [1, 3]]))
        assert girth(g) == 0

    def test_cycles(self):
        for n in (3, 4, 5, 6, 7, 11):
            assert girth(cycle_graph(n)) == n

    def test_complete(self):
        assert girth(complete_graph(5)) == 3

    def test_hypercube(self):
        assert girth(hypercube_graph(4)) == 4

    def test_petersen(self):
        import networkx as nx

        g = CSRGraph.from_networkx(nx.petersen_graph())
        assert girth(g) == 5

    def test_vertex_transitive_shortcut(self):
        g = torus_graph((5, 5))
        assert girth(g, assume_vertex_transitive=True) == girth(g)


class TestConnectivity:
    def test_connected(self):
        assert is_connected(cycle_graph(5))

    def test_disconnected(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        assert not is_connected(g)

    def test_edge_connectivity_bound(self):
        assert edge_connectivity_lower_bound(cycle_graph(6)) == 2


class TestBipartite:
    def test_even_cycle(self):
        assert is_bipartite(cycle_graph(8))

    def test_odd_cycle(self):
        assert not is_bipartite(cycle_graph(7))

    def test_hypercube(self):
        assert is_bipartite(hypercube_graph(3))

    def test_complete(self):
        assert not is_bipartite(complete_graph(4))
