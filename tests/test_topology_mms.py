"""Tests for MMS graphs / SlimFly."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.metrics import diameter, girth, is_connected
from repro.topology.mms import build_mms, build_slimfly, mms_delta, mms_radix


class TestParameters:
    def test_delta(self):
        assert mms_delta(5) == 1
        assert mms_delta(7) == -1
        assert mms_delta(4) == 0
        assert mms_delta(9) == 1
        assert mms_delta(27) == -1

    def test_delta_rejects_2_mod_4(self):
        with pytest.raises(ParameterError):
            mms_delta(6)

    def test_radix(self):
        assert mms_radix(5) == 7
        assert mms_radix(7) == 11
        assert mms_radix(17) == 25
        assert mms_radix(4) == 6


class TestHoffmanSingleton:
    """MMS(5) must be the Hoffman-Singleton graph — the unique (7,5)-cage."""

    @pytest.fixture(scope="class")
    def hs(self):
        return build_mms(5)

    def test_order_and_degree(self, hs):
        assert hs.graph.n == 50
        assert hs.graph.degree() == 7

    def test_girth_five(self, hs):
        assert girth(hs.graph) == 5

    def test_diameter_two(self, hs):
        assert diameter(hs.graph) == 2

    def test_moore_spectrum(self, hs):
        vals = np.linalg.eigvalsh(hs.graph.adjacency().toarray())
        uniq = np.unique(np.round(vals, 8))
        assert np.allclose(uniq, [-3.0, 2.0, 7.0])


class TestConstruction:
    @pytest.mark.parametrize("q", [3, 4, 5, 7, 8, 9, 11, 13, 17])
    def test_defining_parameters(self, q):
        t = build_mms(q)
        assert t.graph.n == 2 * q * q
        assert t.graph.degree() == mms_radix(q)
        assert diameter(t.graph, sample=None if q <= 9 else 16) == 2
        assert is_connected(t.graph)

    def test_rejects_q2mod4(self):
        with pytest.raises(ParameterError):
            build_mms(6)

    def test_rejects_non_prime_power(self):
        with pytest.raises(ParameterError):
            build_mms(15)

    def test_prime_power_cases(self):
        # GF(9) (delta=1 extension) and GF(4) (delta=0, char 2).
        t9 = build_mms(9)
        assert t9.graph.n == 162 and t9.graph.degree() == 13
        t4 = build_mms(4)
        assert t4.graph.n == 32 and t4.graph.degree() == 6


class TestSlimFly:
    def test_naming(self, sf_7):
        assert sf_7.name == "SF(7)"
        assert sf_7.family == "SlimFly"

    def test_table1_instances(self, sf_7, sf_17):
        # Table I: SF(7) 98 routers radix 11; SF(17) 578 routers radix 25.
        assert (sf_7.n_routers, sf_7.radix) == (98, 11)
        assert (sf_17.n_routers, sf_17.radix) == (578, 25)

    def test_always_diameter_two(self, sf_7, sf_17):
        assert diameter(sf_7.graph) == 2
        assert diameter(sf_17.graph, sample=32) == 2

    def test_girth_three(self, sf_7):
        assert girth(sf_7.graph, assume_vertex_transitive=True) == 3
