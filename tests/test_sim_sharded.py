"""The process-sharded batched engine (``backend="sharded"``).

The sharded engine is the batched cycle loop fanned out over forked
workers that own contiguous router ranges and exchange boundary packets
per cycle (BSP over pipes; see ``docs/scaling.md``).  Pinned here:

* **Conservation** — every injected packet is delivered, exactly once,
  under any worker count.
* **Determinism** — a fixed ``(seed, shard_workers)`` gives identical
  stats across repeat runs.
* **Statistical agreement** — aggregate latency/hops match the
  single-process batched engine closely (the sharded loop makes the same
  routing decisions; only RNG streams differ per worker).
* **Honest refusals** — ugal (needs global queue state) and every
  unsupported capability raise canonically instead of silently running
  wrong.

``MIN_PACKETS_TO_SHARD`` is monkeypatched to 0 so these small runs take
the real forked path rather than the single-process fallback.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.sim.sharded as sharded_mod
from repro.errors import BackendCapabilityError, SimulationError
from repro.experiments.common import build_synthetic_sim
from repro.routing import RoutingTables, make_routing
from repro.sim import ShardedSimulator, SimConfig
from repro.sim.faults import FaultSchedule
from repro.topology import build_lps

from repro.partition import contiguous_ranges


@pytest.fixture(scope="module")
def topo():
    return build_lps(3, 5)


@pytest.fixture(autouse=True)
def always_fork(monkeypatch):
    monkeypatch.setattr(sharded_mod, "MIN_PACKETS_TO_SHARD", 0)


def _stats_dict(stats):
    d = dataclasses.asdict(stats)
    # n_events counts per-worker bookkeeping; max_queue_bytes is a local
    # peak — both are diagnostics, not simulation results.
    d.pop("n_events", None)
    d.pop("max_queue_bytes", None)
    return d


def _run(topo, workers, seed=0, routing="minimal", load=0.5, ppr=6,
         pattern="random"):
    net = build_synthetic_sim(
        topo, routing, pattern, load, concentration=2, n_ranks=32,
        packets_per_rank=ppr, seed=seed, backend="sharded",
        config=SimConfig(concentration=2, shard_workers=workers),
    )
    return net.run()


class TestContiguousRanges:
    def test_partitions_exactly_and_front_loads_the_remainder(self):
        spans = contiguous_ranges(10, 3)
        assert spans == [(0, 4), (4, 7), (7, 10)]
        for n, k in [(1, 1), (7, 7), (100, 3), (5, 8)]:
            spans = contiguous_ranges(n, k)
            assert spans[0][0] == 0 and spans[-1][1] == n
            for (a, b), (c, _) in zip(spans, spans[1:]):
                # Abutting, ordered; spans may be empty only when k > n
                # (the engine caps workers at n_routers, so it never
                # sees an empty span).
                assert b == c and b >= a
            if k <= n:
                assert all(b > a for a, b in spans)

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError, match="at least one part"):
            contiguous_ranges(5, 0)


class TestConservation:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_every_packet_delivers_exactly_once(self, topo, workers):
        stats = _run(topo, workers, seed=workers)
        assert stats.n_injected == 32 * 6
        assert len(stats.latencies_ns) == stats.n_injected
        assert len(stats.hops) == stats.n_injected
        # Zero hops is legal: both endpoints on the same router.
        assert min(stats.hops) >= 0
        assert min(stats.latencies_ns) > 0

    def test_valiant_also_conserves(self, topo):
        stats = _run(topo, 2, seed=5, routing="valiant")
        assert len(stats.latencies_ns) == stats.n_injected > 0
        # Valiant detours must show up as extra hops on average.
        minimal = _run(topo, 2, seed=5, routing="minimal")
        assert np.mean(stats.hops) > np.mean(minimal.hops)


class TestDeterminism:
    def test_identical_stats_across_repeat_runs(self, topo):
        a = _stats_dict(_run(topo, 2, seed=11))
        b = _stats_dict(_run(topo, 2, seed=11))
        assert a == b

    def test_seed_changes_the_run(self, topo):
        a = _run(topo, 2, seed=11)
        b = _run(topo, 2, seed=12)
        assert sorted(a.latencies_ns) != sorted(b.latencies_ns)


class TestAgreementWithBatched:
    @pytest.mark.parametrize("routing", ["minimal", "valiant"])
    def test_aggregates_match_single_process_engine(self, topo, routing):
        net = build_synthetic_sim(
            topo, routing, "random", 0.5, concentration=2, n_ranks=32,
            packets_per_rank=12, seed=3, backend="batched",
        )
        ref = net.run()
        got = _run(topo, 2, seed=3, routing=routing, ppr=12)
        assert got.n_injected == ref.n_injected
        assert len(got.latencies_ns) == len(ref.latencies_ns)
        # Worker RNG streams differ from the batched engine's single
        # stream, so runs are statistically — not bitwise — equivalent.
        assert np.mean(got.hops) == pytest.approx(np.mean(ref.hops), rel=0.05)
        assert np.mean(got.latencies_ns) == pytest.approx(
            np.mean(ref.latencies_ns), rel=0.10
        )

    def test_minimal_routing_hop_counts_are_exact_distances(self, topo):
        """Hops on minimal routing are distance-determined, so the sharded
        engine must reproduce the batched multiset exactly."""
        net = build_synthetic_sim(
            topo, "minimal", "transpose", 0.5, concentration=2, n_ranks=32,
            packets_per_rank=8, seed=9, backend="batched",
        )
        ref = net.run()
        got = _run(topo, 3, seed=9, ppr=8, pattern="transpose")
        # Same sources, same destinations, same minimal distances.
        assert sorted(got.hops) == sorted(ref.hops)


class TestRefusals:
    def test_ugal_needs_global_queue_state(self, topo):
        tables = RoutingTables(topo.graph)
        with pytest.raises(SimulationError, match="ugal"):
            ShardedSimulator(
                topo, make_routing("ugal", tables, seed=0),
                SimConfig(concentration=2), tables=tables,
            )

    def test_fault_schedules_are_refused_canonically(self, topo):
        schedule = FaultSchedule.random_link_faults(
            topo.graph, 0.05, t_fail=2000.0, seed=1
        )
        with pytest.raises(BackendCapabilityError):
            build_synthetic_sim(
                topo, "minimal", "random", 0.5, concentration=2, n_ranks=8,
                packets_per_rank=2, seed=0, faults=schedule,
                backend="sharded",
            )

    def test_closed_loop_is_refused_canonically(self, topo):
        tables = RoutingTables(topo.graph)
        net = ShardedSimulator(
            topo, make_routing("minimal", tables, seed=0),
            SimConfig(concentration=2), tables=tables,
        )
        with pytest.raises(BackendCapabilityError):
            net.run_closed_loop([], np.arange(4, dtype=np.int64))


class TestFallback:
    def test_below_threshold_runs_single_process(self, topo, monkeypatch):
        monkeypatch.setattr(sharded_mod, "MIN_PACKETS_TO_SHARD", 10**9)
        stats = _run(topo, 2, seed=1)
        assert len(stats.latencies_ns) == stats.n_injected > 0

    def test_one_worker_requested_runs_single_process(self, topo):
        a = _stats_dict(_run(topo, 1, seed=4))
        assert a["n_injected"] > 0


class TestOracleBackedSharding:
    def test_sharded_run_with_cayley_oracle_stays_lazy(self, topo):
        """The tentpole composition: oracle routing + sharded engine, no
        dense matrix anywhere."""
        net = build_synthetic_sim(
            topo, "minimal", "random", 0.4, concentration=2, n_ranks=32,
            packets_per_rank=4, seed=7, backend="sharded", oracle="cayley",
            config=SimConfig(concentration=2, shard_workers=2),
        )
        stats = net.run()
        assert len(stats.latencies_ns) == stats.n_injected > 0
        assert net.tables._dist is None
