"""Tests for the unified experiment runner: spec hashing, caching, CLI."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentResult
from repro.runner import (
    EXPERIMENTS,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.utils.diskcache import DiskCache, stable_hash

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture()
def cache(tmp_path):
    return DiskCache(tmp_path / "cache", enabled=True)


# ---------------------------------------------------------------------------
# stable_hash / spec hashing
def test_stable_hash_order_insensitive():
    assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})


def test_stable_hash_tuple_list_identified():
    assert stable_hash((1, 2, 3)) == stable_hash([1, 2, 3])


def test_stable_hash_distinguishes_values():
    assert stable_hash({"a": 1}) != stable_hash({"a": 2})
    assert stable_hash({"a": 1}) != stable_hash({"a": "1"})
    assert stable_hash(1.0) != stable_hash(1)


def test_stable_hash_known_value_pinned():
    # Guards against accidental canonicalization changes: this hash must be
    # identical across processes, platforms, and sessions, or every
    # previously cached result silently invalidates.
    assert stable_hash({"x": (1, 2)}) == stable_hash({"x": [1, 2]})
    assert (
        stable_hash("spectralfly")
        == "febaae38bd3674414c4b773bb432e8a0f450ed7e259b3f6fdfe3436bcb992446"
    )


def test_spec_hash_ignores_name_and_param_order():
    a = ExperimentSpec.make("x", "m:f", {"p": 1, "q": 2})
    b = ExperimentSpec.make("y", "m:f", {"q": 2, "p": 1})
    assert a.spec_hash() == b.spec_hash()
    c = ExperimentSpec.make("x", "m:f", {"p": 1, "q": 3})
    assert a.spec_hash() != c.spec_hash()


# ---------------------------------------------------------------------------
# disk cache behaviour
def test_diskcache_roundtrip_and_counters(cache):
    assert cache.get(("k", 1)) is None
    assert cache.misses == 1
    cache.put(("k", 1), {"rows": [1, 2]})
    assert cache.get(("k", 1)) == {"rows": [1, 2]}
    assert cache.hits == 1


def test_diskcache_memoize_builds_once(cache):
    calls = []

    def builder():
        calls.append(1)
        return 42

    assert cache.memoize("key", builder) == 42
    assert cache.memoize("key", builder) == 42
    assert len(calls) == 1


def test_diskcache_disabled_never_stores(tmp_path):
    cache = DiskCache(tmp_path / "c", enabled=False)
    cache.put("k", 1)
    assert cache.get("k") is None
    assert cache.stats()["entries"] == 0


def test_diskcache_clear(cache):
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.clear() == 2
    assert cache.get("a") is None


# ---------------------------------------------------------------------------
# registry consistency
def test_every_preset_binds_to_its_driver():
    import inspect

    for exp in list_experiments(include_composite=False):
        fn = exp.resolve()
        sig = inspect.signature(fn)
        for preset in exp.presets:
            sig.bind_partial(**exp.params(preset))  # raises on bad kwargs


def test_composite_parts_exist():
    for exp in EXPERIMENTS.values():
        for part in exp.parts:
            assert part in EXPERIMENTS


def test_scalar_override_for_tuple_param_is_wrapped():
    # `--set loads=0.5` (or one sweep-axis value) must not hand the driver
    # a bare float to iterate.
    exp = get_experiment("fig6")
    params = exp.params("small", {"loads": 0.5, "seed": 3})
    assert params["loads"] == (0.5,)
    assert params["seed"] == 3  # non-tuple preset params stay scalar
    assert exp.params("small", {"loads": (0.1, 0.3)})["loads"] == (0.1, 0.3)
    # nested tuple parameters wrap to the preset's nesting depth
    fig3 = get_experiment("fig3")
    assert fig3.params("small", {"instances": (3, 7)})["instances"] == ((3, 7),)
    fig11 = get_experiment("fig11")
    one_pair = ((11, 7), 9)
    assert fig11.params("small", {"pairs": one_pair})["pairs"] == (one_pair,)


def test_backend_overrides_validate_at_spec_time():
    # Regression: `--set backend=batched` on an experiment whose features
    # the backend lacks (or an unknown backend) used to surface a raw
    # engine/driver error deep inside the first sweep cell.  The registry
    # now consults the capability matrix in params()/spec(), so the error
    # is the canonical type, arrives before any topology is built, and
    # names the backends that would work.
    from repro.errors import BackendCapabilityError

    # Simulation experiments accept both general engines; the ones whose
    # sweeps stay on minimal/valiant routing (fig7, fig8) additionally
    # admit the process-sharded scale engine, while everything that
    # sweeps UGAL-family policies, faults, motifs, or congestion does
    # not (those couple state across shard boundaries — see the
    # "adaptive-routing" feature and docs/scaling.md).
    for name in ("fig6", "fig7", "fig8", "fig9", "fig10", "saturation",
                 "resilience-traffic", "saturation-congestion"):
        exp = get_experiment(name)
        for backend in exp.supported_backends:
            assert exp.params("small", {"backend": backend})[
                "backend"
            ] == backend
        expected = (
            {"event", "batched", "sharded"}
            if name in ("fig7", "fig8")
            else {"event", "batched"}
        )
        assert set(exp.supported_backends) == expected, name

    # ... an unknown backend is rejected by name, with the options listed.
    with pytest.raises(BackendCapabilityError, match="event, batched"):
        get_experiment("fig6").params("small", {"backend": "threaded"})
    with pytest.raises(BackendCapabilityError, match="unknown"):
        get_experiment("fig6").spec("small", {"backend": "threaded"})

    # ... and a non-simulation experiment refuses the override outright
    # instead of passing an unexpected kwarg to its driver.
    for name in ("table1", "table2", "fig3", "survey"):
        with pytest.raises(BackendCapabilityError, match="backend"):
            get_experiment(name).params("small", {"backend": "batched"})


def test_simulation_experiments_declare_features():
    # Every experiment with a backend parameter must declare its feature
    # needs, or the spec-time validation cannot protect it.
    for exp in list_experiments(include_composite=False):
        for preset in exp.presets:
            if "backend" in exp.presets[preset]:
                assert exp.features, (
                    f"{exp.name} has a backend preset but declares no "
                    "capability features"
                )


def test_cell_axes_are_preset_params():
    for exp in list_experiments(include_composite=False):
        for axis in exp.cell_axes:
            for preset, params in exp.presets.items():
                assert axis in params, (exp.name, preset, axis)


def test_cells_cover_cross_product():
    exp = get_experiment("fig6")
    spec = exp.spec("small")
    cells = exp.cells(spec)
    kwargs = spec.kwargs
    assert len(cells) == len(kwargs["patterns"]) * len(kwargs["loads"])
    # every cell pins each axis to a single value
    for cell in cells:
        ck = cell.kwargs
        assert len(ck["patterns"]) == 1 and len(ck["loads"]) == 1


# ---------------------------------------------------------------------------
# executor: cache hit/miss and merge correctness
def test_run_experiment_cache_miss_then_hit(cache):
    rep1 = run_experiment("fig3", cache=cache)[0]
    assert not rep1.from_cache
    assert rep1.n_cells == 2 and rep1.n_cached_cells == 0
    assert isinstance(rep1.result, ExperimentResult) and rep1.result.rows

    rep2 = run_experiment("fig3", cache=cache)[0]
    assert rep2.from_cache
    assert rep2.result.rows == rep1.result.rows
    assert rep2.seconds < rep1.seconds


def test_run_experiment_overlapping_sweep_reuses_cells(cache):
    run_experiment("fig3", overrides={"instances": ((3, 7),)}, cache=cache)
    rep = run_experiment("fig3", cache=cache)[0]  # (3,7) + (3,17)
    assert rep.n_cells == 2 and rep.n_cached_cells == 1


def test_run_experiment_merged_rows_match_direct(cache):
    from repro.experiments import fig3

    rep = run_experiment("fig3", cache=cache)[0]
    assert rep.result.rows == fig3.run().rows


def test_run_experiment_force_recomputes(cache):
    rep1 = run_experiment("fig3", cache=cache)[0]
    rep2 = run_experiment("fig3", cache=cache, force=True)[0]
    assert not rep2.from_cache and rep2.n_cached_cells == 0
    assert rep2.result.rows == rep1.result.rows


def test_run_experiment_composite(cache):
    reports = run_experiment("fig4.feasible_sizes", cache=cache)
    assert len(reports) == 1
    fig4 = get_experiment("fig4")
    assert fig4.is_composite and len(fig4.parts) == 4


def test_run_experiment_unknown_name():
    with pytest.raises(KeyError):
        run_experiment("fig99")


# ---------------------------------------------------------------------------
# CLI smoke tests (subprocess, isolated cache)
def _cli(tmp_path, *args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env={
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": SRC,
            "REPRO_CACHE_DIR": str(tmp_path / "cli-cache"),
        },
    )


def test_cli_list(tmp_path):
    proc = _cli(tmp_path, "list")
    assert proc.returncode == 0, proc.stderr
    for name in EXPERIMENTS:
        assert name in proc.stdout


def test_cli_run_fig4_small_completes(tmp_path):
    proc = _cli(tmp_path, "run", "fig4", "--small", "--quiet")
    assert proc.returncode == 0, proc.stderr
    # all four panels report completion
    for part in get_experiment("fig4").parts:
        assert part in proc.stdout
    # second invocation is served from the cache
    proc2 = _cli(tmp_path, "run", "fig4", "--small", "--quiet")
    assert proc2.returncode == 0, proc2.stderr
    assert proc2.stdout.count("cached") >= 4


def test_cli_bad_backend_fails_cleanly_before_running(tmp_path):
    # Regression for the late-raw-error bug: an unusable `--set backend=`
    # must exit nonzero at spec time with the supported backends named and
    # no traceback spilled (the canonical error is printed, not raised).
    proc = _cli(tmp_path, "run", "fig6", "--small", "--quiet",
                "--set", "backend=threaded")
    assert proc.returncode == 2
    assert "error:" in proc.stderr
    assert "event, batched" in proc.stderr
    assert "Traceback" not in proc.stderr

    proc = _cli(tmp_path, "run", "table1", "--small", "--quiet",
                "--set", "backend=batched")
    assert proc.returncode == 2
    assert "does not take a backend parameter" in proc.stderr
    assert "Traceback" not in proc.stderr


def test_cli_run_writes_output_dir(tmp_path):
    out = tmp_path / "results"
    proc = _cli(tmp_path, "run", "fig3", "--quiet", "-o", str(out))
    assert proc.returncode == 0, proc.stderr
    text = (out / "fig3.txt").read_text()
    assert "LPS(3,7)" in text


def test_cli_rejects_unknown_experiment(tmp_path):
    proc = _cli(tmp_path, "run", "fig99")
    assert proc.returncode != 0
    assert "unknown experiment" in proc.stderr


def test_cli_sweep_rejects_all(tmp_path):
    proc = _cli(tmp_path, "sweep", "all", "--seeds", "0,1")
    assert proc.returncode != 0
    assert "one experiment name" in proc.stderr


def test_cli_sweep_scalar_axis_over_tuple_param(tmp_path):
    # regression: sweep axes hand scalar values to tuple-typed parameters
    proc = _cli(
        tmp_path, "sweep", "fig3", "--set", "instances=(3,7),(3,13)", "--quiet"
    )
    assert proc.returncode == 0, proc.stderr
    assert "2 points" in proc.stdout
