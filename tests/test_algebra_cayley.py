"""Tests for the generic Cayley-graph closure builder."""

import numpy as np
import pytest

from repro.algebra.cayley import cayley_graph_closure
from repro.errors import ConstructionError
from repro.graphs.csr import CSRGraph


def _zn_setup(n: int, gens: list[int]):
    """Cayley graph of Z_n with integer 'vectors' of length 1."""

    def multiply(batch, g):
        return (batch + g) % n

    def canonicalize(batch):
        return np.atleast_2d(batch) % n

    def encode(batch):
        return np.atleast_2d(batch)[:, 0]

    identity = np.array([0])
    generators = np.array([[g] for g in gens])
    return identity, generators, multiply, canonicalize, encode


class TestCyclicGroups:
    def test_full_cycle(self):
        ident, gens, mul, canon, enc = _zn_setup(12, [1, 11])
        elements, keys, edges = cayley_graph_closure(ident, gens, mul, canon, enc)
        assert len(elements) == 12
        g = CSRGraph.from_edges(12, edges)
        assert g.degree() == 2  # the 12-cycle

    def test_proper_subgroup(self):
        # <2> inside Z_12 has order 6.
        ident, gens, mul, canon, enc = _zn_setup(12, [2, 10])
        elements, _, edges = cayley_graph_closure(ident, gens, mul, canon, enc)
        assert len(elements) == 6

    def test_identity_is_vertex_zero(self):
        ident, gens, mul, canon, enc = _zn_setup(10, [3, 7])
        elements, _, _ = cayley_graph_closure(ident, gens, mul, canon, enc)
        assert elements[0, 0] == 0

    def test_edge_count(self):
        ident, gens, mul, canon, enc = _zn_setup(9, [1, 8, 3, 6])
        _, _, edges = cayley_graph_closure(ident, gens, mul, canon, enc)
        # One directed edge per (vertex, generator).
        assert len(edges) == 9 * 4

    def test_empty_generators_rejected(self):
        ident, gens, mul, canon, enc = _zn_setup(5, [])
        with pytest.raises(ConstructionError):
            cayley_graph_closure(ident, np.empty((0, 1)), mul, canon, enc)

    def test_max_vertices_guard(self):
        ident, gens, mul, canon, enc = _zn_setup(1000, [1, 999])
        with pytest.raises(ConstructionError):
            cayley_graph_closure(
                ident, gens, mul, canon, enc, max_vertices=10
            )

    def test_circulant_structure(self):
        # Z_8 with generators {1,7,2,6} = circulant C8(1,2).
        ident, gens, mul, canon, enc = _zn_setup(8, [1, 7, 2, 6])
        elements, _, edges = cayley_graph_closure(ident, gens, mul, canon, enc)
        g = CSRGraph.from_edges(8, edges)
        assert g.degree() == 4
        # Vertex labels equal the group elements in BFS order; re-map to
        # group element values and check adjacency differences.
        label = elements[:, 0]
        for u, v in g.edge_array():
            diff = int((label[u] - label[v]) % 8)
            assert diff in (1, 2, 6, 7)
