"""Property-based tests (hypothesis) for edge failures and fault masks.

Three contracts, over randomly generated connected graphs and fault sets:

* :func:`delete_random_edges` — the survivor graph's degree sums match its
  surviving edges, survivors are a subset of the original edge set, and
  exactly ``round(p * m)`` edges disappear;
* :class:`FaultMask` — every masked next-hop candidate is a live directed
  edge (and a pristine-table candidate), and the non-minimal fallback only
  ever offers live links;
* recovery — restoring every fault (in any order) brings the mask back
  **bit-for-bit** to the pristine table for every (router, destination)
  pair.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.csr import CSRGraph
from repro.graphs.failures import delete_random_edges, sample_edge_failures
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    torus_graph,
)
from repro.graphs.metrics import is_connected
from repro.routing.tables import RoutingTables


# -- strategies --------------------------------------------------------------
#: Small connected graphs with real routing structure (path diversity,
#: diameter > 1) drawn from the package's own generators.
_GRAPH_BUILDERS = (
    lambda k: complete_graph(4 + k % 7),
    lambda k: cycle_graph(5 + k % 9),
    lambda k: hypercube_graph(2 + k % 3),
    lambda k: torus_graph((3 + k % 3, 3 + (k // 3) % 3)),
)


@st.composite
def connected_graphs(draw):
    which = draw(st.integers(min_value=0, max_value=len(_GRAPH_BUILDERS) - 1))
    k = draw(st.integers(min_value=0, max_value=8))
    return _GRAPH_BUILDERS[which](k)


@st.composite
def graphs_with_failures(draw):
    g = draw(connected_graphs())
    proportion = draw(st.floats(min_value=0.0, max_value=0.45))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return g, proportion, seed


# -- delete_random_edges -----------------------------------------------------
class TestDeleteRandomEdgesProperties:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_failures())
    def test_degree_sums_match_surviving_edges(self, case):
        g, proportion, seed = case
        h = delete_random_edges(g, proportion, seed=seed)
        # CSR stores both directions: total degree == 2 * undirected edges.
        assert int(h.degrees().sum()) == 2 * h.num_edges
        assert len(h.indices) == 2 * h.num_edges

    @settings(max_examples=40, deadline=None)
    @given(graphs_with_failures())
    def test_exact_count_and_subset(self, case):
        g, proportion, seed = case
        h = delete_random_edges(g, proportion, seed=seed)
        m = g.num_edges
        assert h.num_edges == m - int(round(proportion * m))
        original = {tuple(e) for e in g.edge_array()}
        assert all(tuple(e) in original for e in h.edge_array())

    @settings(max_examples=40, deadline=None)
    @given(graphs_with_failures())
    def test_matches_sampler(self, case):
        # delete_random_edges == "remove exactly what sample_edge_failures
        # draws" (the dynamic fault schedules rely on this equivalence).
        g, proportion, seed = case
        h = delete_random_edges(g, proportion, seed=seed)
        removed = {tuple(e) for e in sample_edge_failures(g, proportion, seed)}
        survivors = {tuple(e) for e in h.edge_array()}
        original = {tuple(e) for e in g.edge_array()}
        assert survivors == original - removed


# -- FaultMask ---------------------------------------------------------------
def _tables_for(g: CSRGraph) -> RoutingTables:
    t = RoutingTables(g, use_cache=False)
    t.build_fast_path()
    return t


class TestFaultMaskProperties:
    @settings(max_examples=25, deadline=None)
    @given(graphs_with_failures())
    def test_masked_candidates_are_live_table_candidates(self, case):
        g, proportion, seed = case
        tables = _tables_for(g)
        mask = tables.fault_mask()
        failed = [tuple(map(int, e))
                  for e in sample_edge_failures(g, proportion, seed)]
        for u, v in failed:
            mask.fail_link(u, v)
        dead = set(failed) | {(v, u) for u, v in failed}
        n = g.n
        for u in range(n):
            for d in range(n):
                if u == d:
                    continue
                live = mask.live_min_candidates(u, d)
                pristine = set(tables.table_next_hops(u, d).tolist())
                for v in live:
                    assert (u, v) not in dead  # always a live edge
                    assert v in pristine  # always a true minimal candidate
                for v in mask.fallback_candidates(u, d):
                    assert (u, v) not in dead
                    assert g.has_edge(u, v)

    @settings(max_examples=25, deadline=None)
    @given(graphs_with_failures(), st.randoms(use_true_random=False))
    def test_recovery_restores_table_bit_for_bit(self, case, shuffler):
        g, proportion, seed = case
        tables = _tables_for(g)
        mask = tables.fault_mask()
        failed = [tuple(map(int, e))
                  for e in sample_edge_failures(g, proportion, seed)]
        for u, v in failed:
            mask.fail_link(u, v)
        assert mask.pristine == (len(failed) == 0)
        # Restore in an arbitrary order: masking must be order-independent.
        shuffler.shuffle(failed)
        for u, v in failed:
            mask.restore_link(u, v)
        assert mask.pristine
        n = g.n
        for u in range(n):
            for d in range(n):
                assert (
                    mask.live_min_candidates(u, d)
                    == tables.table_next_hops(u, d).tolist()
                )

    @settings(max_examples=15, deadline=None)
    @given(connected_graphs(), st.integers(min_value=0, max_value=10**6))
    def test_router_failure_composes_with_link_failure(self, g, seed):
        # Independently failing a link incident to a failed router must
        # survive the router's restoration (multiplicity, not booleans).
        tables = _tables_for(g)
        mask = tables.fault_mask()
        rng = np.random.default_rng(seed)
        r = int(rng.integers(g.n))
        v = int(g.neighbors(r)[0])
        mask.fail_link(r, v)
        mask.fail_router(r)
        mask.restore_router(r)
        assert not mask.pristine
        assert not mask.edge_alive(r, v)
        assert not mask.edge_alive(v, r)
        mask.restore_link(r, v)
        assert mask.pristine
        assert mask.edge_alive(r, v)
