"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.gf import GF
from repro.algebra.mat2 import (
    mat_canonicalize,
    mat_determinant,
    mat_encode,
    mat_multiply,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.bfs import bfs_distances, UNREACHED
from repro.graphs.metrics import is_connected
from repro.nt.primes import is_prime
from repro.nt.quaternions import Quaternion
from repro.partition import bisect
from repro.partition.weighted import WeightedGraph

PRIMES = [3, 5, 7, 11, 13]


# -- strategies --------------------------------------------------------------
@st.composite
def edge_lists(draw, max_n=30):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=3 * n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return n, np.array(edges, dtype=np.int64)


# -- CSR graph invariants -----------------------------------------------------
class TestCSRProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_dedup(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges)
        # symmetry: u in N(v) iff v in N(u)
        for v in range(n):
            for u in g.neighbors(v):
                assert g.has_edge(int(u), v)
        # no self loops
        for v in range(n):
            assert not g.has_edge(v, v)
        # degree sum = 2m
        assert g.degrees().sum() == 2 * g.num_edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_without_edges_subset(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges)
        ea = g.edge_array()
        if len(ea) == 0:
            return
        h = g.without_edges(ea[: max(1, len(ea) // 2)])
        assert h.num_edges == g.num_edges - max(1, len(ea) // 2)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_bfs_triangle_inequality(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges)
        d0 = bfs_distances(g, 0)
        for v in range(n):
            for u in g.neighbors(v):
                if d0[v] != UNREACHED and d0[u] != UNREACHED:
                    assert abs(int(d0[v]) - int(d0[int(u)])) <= 1


# -- finite field properties ---------------------------------------------------
class TestGFProperties:
    @given(
        q=st.sampled_from([4, 5, 7, 8, 9, 13]),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_field_axioms_random_triples(self, q, data):
        f = GF(q)
        a = data.draw(st.integers(0, q - 1))
        b = data.draw(st.integers(0, q - 1))
        c = data.draw(st.integers(0, q - 1))
        assert f.add(a, b) == f.add(b, a)
        assert f.mul(a, f.mul(b, c)) == f.mul(f.mul(a, b), c)
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
        if a != 0:
            assert f.mul(a, f.inv(a)) == 1


# -- projective matrices -------------------------------------------------------
class TestMatrixProperties:
    @given(
        q=st.sampled_from(PRIMES),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_canonicalization_well_defined(self, q, data):
        entries = data.draw(
            st.lists(st.integers(0, q - 1), min_size=4, max_size=4)
        )
        m = np.array(entries, dtype=np.int64)
        if int(mat_determinant(m, q)) == 0:
            return
        scale = data.draw(st.integers(1, q - 1))
        assert np.array_equal(
            mat_canonicalize(m, q)[0], mat_canonicalize(m * scale % q, q)[0]
        )

    @given(q=st.sampled_from(PRIMES), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_encode_injective_on_canonical(self, q, data):
        a = np.array(data.draw(st.lists(st.integers(0, q - 1), min_size=4, max_size=4)))
        b = np.array(data.draw(st.lists(st.integers(0, q - 1), min_size=4, max_size=4)))
        if int(mat_determinant(a, q)) == 0 or int(mat_determinant(b, q)) == 0:
            return
        ca, cb = mat_canonicalize(a, q)[0], mat_canonicalize(b, q)[0]
        if int(mat_encode(ca, q)[0]) == int(mat_encode(cb, q)[0]):
            assert np.array_equal(ca, cb)


# -- quaternions ---------------------------------------------------------------
class TestQuaternionProperties:
    @given(
        st.tuples(*[st.integers(-10, 10)] * 4),
        st.tuples(*[st.integers(-10, 10)] * 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_norm_multiplicative(self, t1, t2):
        q1, q2 = Quaternion(*t1), Quaternion(*t2)
        assert (q1 * q2).norm() == q1.norm() * q2.norm()

    @given(st.tuples(*[st.integers(-10, 10)] * 4))
    @settings(max_examples=100, deadline=None)
    def test_conjugate_gives_norm(self, t):
        q = Quaternion(*t)
        prod = q * q.conjugate()
        assert (prod.a, prod.b, prod.c, prod.d) == (q.norm(), 0, 0, 0)


# -- partitioner invariants ------------------------------------------------------
class TestPartitionProperties:
    @given(edge_lists(max_n=24))
    @settings(max_examples=25, deadline=None)
    def test_bisect_always_balanced(self, ne):
        n, edges = ne
        g = CSRGraph.from_edges(n, edges)
        if g.num_edges == 0 or not is_connected(g):
            return
        labels, cut = bisect(g, seed=0)
        c0, c1 = int((labels == 0).sum()), int((labels == 1).sum())
        assert abs(c0 - c1) <= 1
        assert cut == WeightedGraph.from_csr(g).cut_value(labels)
        assert 0 <= cut <= g.num_edges


# -- primality ------------------------------------------------------------------
class TestPrimalityProperties:
    @given(st.integers(2, 10_000), st.integers(2, 10_000))
    @settings(max_examples=150, deadline=None)
    def test_products_never_prime(self, a, b):
        assert not is_prime(a * b)


# -- 2-lift spectra ---------------------------------------------------------------
class TestLiftProperties:
    @given(st.integers(4, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_lift_spectrum_is_union(self, n, seed):
        """eig(2-lift) = eig(base) ∪ eig(signed adjacency) for any signing."""
        from repro.graphs.generators import complete_graph
        from repro.topology.xpander import two_lift

        g = complete_graph(n)
        rng = np.random.default_rng(seed)
        signs = rng.choice(np.array([-1, 1]), size=g.num_edges)
        lifted = two_lift(g, signs)
        assert lifted.n == 2 * n
        assert lifted.degree() == n - 1
        lift_spec = np.sort(np.linalg.eigvalsh(lifted.adjacency().toarray()))
        base_spec = np.linalg.eigvalsh(g.adjacency().toarray())
        edges = g.edge_array()
        signed = np.zeros((n, n))
        signed[edges[:, 0], edges[:, 1]] = signs
        signed += signed.T
        signed_spec = np.linalg.eigvalsh(signed)
        expect = np.sort(np.concatenate([base_spec, signed_spec]))
        assert np.allclose(lift_spec, expect, atol=1e-8)


# -- traffic patterns ---------------------------------------------------------------
class TestTrafficProperties:
    @given(
        st.sampled_from(["shuffle", "reverse", "transpose", "complement",
                         "tornado", "neighbor"]),
        st.sampled_from([8, 16, 64, 128]),
    )
    @settings(max_examples=50, deadline=None)
    def test_deterministic_patterns_are_permutations(self, name, n):
        from repro.sim.traffic import make_traffic

        pat = make_traffic(name, n)
        rng = np.random.default_rng(0)
        dsts = [pat.destination(s, rng) for s in range(n)]
        assert sorted(dsts) == list(range(n))

    @given(st.sampled_from([4, 8, 32]), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_pattern_uniform_support(self, n, seed):
        from repro.sim.traffic import UniformRandomTraffic

        pat = UniformRandomTraffic(n)
        rng = np.random.default_rng(seed)
        for _ in range(50):
            s = int(rng.integers(n))
            d = pat.destination(s, rng)
            assert 0 <= d < n and d != s
