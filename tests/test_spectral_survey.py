"""Tests for the classical-topology spectral survey ([10] context)."""

import pytest

from repro.spectral.survey import classical_survey, hypercube_gap_deficit, survey_row
from repro.graphs.generators import hypercube_graph


class TestSurvey:
    @pytest.fixture(scope="class")
    def rows(self):
        return classical_survey(seed=0)

    def test_all_families_present(self, rows):
        names = {r["topology"] for r in rows}
        assert any("hypercube" in n for n in names)
        assert any("torus" in n for n in names)
        assert any("LPS" in n for n in names)

    def test_hypercube_far_from_ramanujan(self, rows):
        row = next(r for r in rows if "hypercube" in r["topology"])
        assert not row["ramanujan"]
        assert row["lambda_over_bound"] > 1.1

    def test_torus_far_from_ramanujan(self, rows):
        row = next(r for r in rows if "torus" in r["topology"])
        assert not row["ramanujan"]

    def test_lps_is_ramanujan(self, rows):
        row = next(r for r in rows if "LPS" in r["topology"])
        assert row["ramanujan"]
        assert row["lambda_over_bound"] <= 1.0 + 1e-9

    def test_jellyfish_close_but_above(self, rows):
        # Friedman: random regular is almost-Ramanujan.
        row = next(r for r in rows if "Jellyfish" in r["topology"])
        assert 0.8 < row["lambda_over_bound"] < 1.3

    def test_complete_is_ramanujan(self, rows):
        row = next(r for r in rows if "complete" in r["topology"])
        assert row["ramanujan"]


class TestClosedForm:
    def test_hypercube_deficit_formula(self):
        # lambda(Q_d) = d-2; check against the numeric survey value.
        row = survey_row("q6", hypercube_graph(6))
        assert row["lambda"] == pytest.approx(4.0, abs=1e-6)
        assert row["lambda_over_bound"] == pytest.approx(
            hypercube_gap_deficit(6), abs=1e-3
        )

    def test_deficit_grows_with_dimension(self):
        vals = [hypercube_gap_deficit(d) for d in range(4, 16)]
        assert all(a < b for a, b in zip(vals, vals[1:]))
        # (d-2) > 2 sqrt(d-1) first holds at d = 7: hypercubes stop being
        # Ramanujan from dimension 7 onward.
        assert hypercube_gap_deficit(7) > 1.0
        assert hypercube_gap_deficit(6) < 1.0