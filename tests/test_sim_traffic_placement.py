"""Tests for traffic patterns and rank placement."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.sim.placement import place_ranks
from repro.sim.traffic import (
    BitComplementTraffic,
    BitReverseTraffic,
    BitShuffleTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic,
)


RNG = np.random.default_rng(0)


class TestPatternsArePermutations:
    @pytest.mark.parametrize(
        "cls", [BitShuffleTraffic, BitReverseTraffic, TransposeTraffic,
                BitComplementTraffic]
    )
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_bijective(self, cls, n):
        pat = cls(n)
        dsts = {pat.destination(s, RNG) for s in range(n)}
        assert len(dsts) == n

    def test_shuffle_is_rotate_left(self):
        pat = BitShuffleTraffic(16)
        assert pat.destination(0b0001, RNG) == 0b0010
        assert pat.destination(0b1000, RNG) == 0b0001
        assert pat.destination(0b1010, RNG) == 0b0101

    def test_reverse(self):
        pat = BitReverseTraffic(16)
        assert pat.destination(0b0001, RNG) == 0b1000
        assert pat.destination(0b1100, RNG) == 0b0011

    def test_transpose_swaps_halves(self):
        pat = TransposeTraffic(16)
        assert pat.destination(0b0111, RNG) == 0b1101
        assert pat.destination(0b0011, RNG) == 0b1100

    def test_complement(self):
        pat = BitComplementTraffic(16)
        assert pat.destination(0b0101, RNG) == 0b1010

    def test_involutions(self):
        # reverse, transpose, complement are involutions; shuffle is not.
        for cls in (BitReverseTraffic, TransposeTraffic, BitComplementTraffic):
            pat = cls(64)
            for s in range(64):
                assert pat.destination(pat.destination(s, RNG), RNG) == s

    def test_pow2_required(self):
        with pytest.raises(ParameterError):
            BitShuffleTraffic(12)


class TestRandomPattern:
    def test_never_self(self):
        pat = UniformRandomTraffic(10)
        rng = np.random.default_rng(1)
        for _ in range(500):
            s = int(rng.integers(10))
            assert pat.destination(s, rng) != s

    def test_roughly_uniform(self):
        pat = UniformRandomTraffic(8)
        rng = np.random.default_rng(2)
        counts = np.zeros(8)
        for _ in range(8000):
            counts[pat.destination(0, rng)] += 1
        assert counts[0] == 0
        assert counts[1:].min() > 800  # ~1143 expected


class TestFactory:
    def test_known_names(self):
        for name in ("random", "shuffle", "reverse", "transpose", "complement"):
            assert make_traffic(name, 64).name == name

    def test_unknown(self):
        with pytest.raises(ParameterError):
            make_traffic("zigzag", 64)


class TestPlacement:
    def test_sequential(self):
        assert place_ranks(5, 10, strategy="sequential").tolist() == [0, 1, 2, 3, 4]

    def test_full_subscription_is_identity(self):
        assert np.array_equal(place_ranks(8, 8), np.arange(8))

    def test_random_nodes_sorted_subset(self):
        m = place_ranks(50, 200, seed=3)
        assert len(m) == 50
        assert len(np.unique(m)) == 50
        assert np.all(np.diff(m) > 0)  # ranks fill chosen nodes in order
        assert m.max() < 200

    def test_over_subscription_rejected(self):
        with pytest.raises(ParameterError):
            place_ranks(11, 10)

    def test_seeded(self):
        assert np.array_equal(place_ranks(20, 100, seed=7), place_ranks(20, 100, seed=7))
        assert not np.array_equal(place_ranks(20, 100, seed=7), place_ranks(20, 100, seed=8))
