"""Golden-stats regression corpus for the event-engine simulator.

``tests/golden/sim_small.json`` pins the **exact** :class:`SimStats` of a
handful of seeded small-preset cells — every per-packet latency and hop
count, every counter, bit for bit.  The differential harness
(``test_sim_differential.py``) and the throughput benchmarks only watch
aggregate numbers; this corpus is what catches *silent behaviour drift*
— a reordered RNG draw, an off-by-one in queue accounting, a changed
tie-break — that leaves the means within tolerance but changes the
simulation.

The corpus covers every small-size-class topology family and every
routing policy at least once.  Floats survive the JSON round-trip exactly
(``json`` serialises via ``repr``), so equality here is equality of the
simulated trajectories.

If a change *intentionally* alters event-engine behaviour (a new RNG
batching scheme, a semantic fix), regenerate with::

    python scripts/make_golden_sim.py

and explain the regeneration in the commit message — the diff of the
corpus is the reviewable record of what moved.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.common import build_synthetic_sim, cached_tables
from repro.routing import make_routing
from repro.sim import ChannelConfig, SimConfig
from repro.sim.faults import FaultSchedule
from repro.topology import SIM_CONFIGS
from repro.workloads import (
    CollectiveMotif,
    FFTMotif,
    Halo3D26Motif,
    Sweep3DMotif,
    run_collective,
    run_motif,
)

# Runs in the dedicated differential/golden CI matrix job (see ci.yml).
pytestmark = pytest.mark.differential

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "sim_small.json"

#: The corpus cells: (family, routing, pattern, load, seed).  Small-preset
#: topologies at reduced rank/packet counts so the corpus stays compact
#: and the regression test stays fast.
CELLS = [
    ("SpectralFly", "minimal", "shuffle", 0.4, 7),
    ("SpectralFly", "ugal", "random", 0.5, 7),
    ("DragonFly", "valiant", "shuffle", 0.4, 7),
    ("DragonFly", "ugal-g", "transpose", 0.3, 7),
    ("SlimFly", "ugal", "shuffle", 0.6, 7),
    ("BundleFly", "minimal", "random", 0.4, 7),
]
N_RANKS = 64
PACKETS_PER_RANK = 5

#: Every SimStats field the event engine fills for a fault-free open-loop
#: run (fault counters included deliberately: they must stay zero).
FIELDS = (
    "latencies_ns",
    "hops",
    "bytes_delivered",
    "t_first_inject",
    "t_last_delivery",
    "n_injected",
    "max_queue_bytes",
    "valiant_choices",
    "minimal_choices",
    "deadlocked",
    "undelivered",
    "n_events",
    "n_dropped",
    "n_requeued",
    "nonminimal_hops",
)


#: Motif corpus cells: (family, routing, motif-kind, placement_seed).
#: The oracle for the batched engine's closed-loop mode is the event
#: engine's DAG runner, so the runner itself is pinned bit-for-bit here
#: *before* the differential harness compares the batched engine to it.
MOTIF_CELLS = [
    ("SpectralFly", "minimal", "fft", 7),
    ("DragonFly", "ugal", "halo3d", 7),
    ("SlimFly", "valiant", "sweep3d", 7),
]

#: Faulted corpus cells: (family, routing, fail_fraction, recover, seed).
#: Pins the event engine's degraded path — drops by cause, requeues,
#: non-minimal hops, and the full epoch ledger — bit-for-bit.
FAULT_CELLS = [
    ("SpectralFly", "ugal", 0.1, True, 7),
    ("BundleFly", "minimal", 0.15, False, 7),
    ("DragonFly", "ugal-g", 0.05, True, 7),
]

#: Collective corpus cells (schema 3):
#: (family, routing, collective, algorithm, n_ranks, seed).  Pins the
#: chunk-level schedules end to end on the event engine — the full
#: ``run_collective`` summary including every per-chunk completion time
#: (``chunk_done_ns``), bit for bit.  Covers all four algorithms and a
#: non-power-of-two rank count (the fold path).
COLLECTIVE_CELLS = [
    ("SpectralFly", "minimal", "allreduce", "ring", 12, 7),
    ("DragonFly", "ugal", "reduce-scatter", "rabenseifner", 11, 7),
    ("SlimFly", "valiant", "allgather", "binary-tree", 16, 7),
    ("BundleFly", "minimal", "allreduce", "recursive-doubling", 16, 7),
]
COLLECTIVE_BYTES = 1 << 13

#: Congestion corpus cells (schema 4):
#: (family, routing, buffer_packets, loss_prob, max_attempts, seed).
#: ``buffer_packets=0`` means unbounded buffers, ``loss_prob=0.0`` means no
#: channel — so the list covers finite-only, lossy-only, and the stacked
#: finite+lossy paths the congestion work added to the event engine.  Drop
#: and retransmit ledgers are pinned alongside the usual per-packet fields.
CONGESTION_CELLS = [
    ("SpectralFly", "minimal", 2, 0.0, 1, 7),
    ("DragonFly", "ugal", 1, 0.0, 1, 7),
    ("SlimFly", "minimal", 0, 0.08, 1, 7),
    ("BundleFly", "minimal", 0, 0.05, 3, 7),
    ("SpectralFly", "valiant", 2, 0.04, 2, 7),
]


#: Oracle corpus cells (schema 5):
#: (family, oracle, routing, pattern, load, seed).  The same event engine,
#: but routed through an on-demand oracle instead of the dense distance
#: matrix (PR 8's scaling seam).  Oracle answers are bit-identical to
#: dense answers, so these cells pin that the *lazy* path — Cayley ball
#: lookups on SpectralFly, landmark rows on DragonFly — reproduces the
#: exact trajectories the dense tables would.
ORACLE_CELLS = [
    ("SpectralFly", "cayley", "minimal", "tornado", 0.5, 11),
    ("DragonFly", "landmark", "valiant", "random", 0.4, 11),
]

#: Searched-topology corpus cells (schema 6):
#: (n_routers, radix, budget, routing, pattern, load, seed).  The topology
#: itself is the product of a seeded edge-swap search
#: (:mod:`repro.search`), so alongside the usual event-engine stats the
#: cell pins the candidate's graph ``content_hash`` — the search
#: *trajectory* is part of the pinned behaviour, exactly as the
#: determinism contract in docs/search.md promises.
SEARCHED_CELLS = [
    (48, 4, 60, "minimal", "random", 0.5, 7),
]


def make_motif(kind: str, n_ranks: int):
    """The corpus motif instances (small and fixed, like the cells)."""
    if kind == "fft":
        return FFTMotif.balanced(n_ranks)
    if kind == "halo3d":
        return Halo3D26Motif((4, 4, 4), iterations=1)
    if kind == "sweep3d":
        return Sweep3DMotif((8, 8), sweeps=1)
    raise ValueError(kind)


def cell_id(cell) -> str:
    family, routing, pattern, load, seed = cell
    return f"{family}-{routing}-{pattern}-l{load}-s{seed}"


def motif_cell_id(cell) -> str:
    family, routing, kind, seed = cell
    return f"{family}-{routing}-{kind}-s{seed}"


def fault_cell_id(cell) -> str:
    family, routing, fraction, recover, seed = cell
    return (
        f"{family}-{routing}-f{fraction}"
        f"-{'rec' if recover else 'norec'}-s{seed}"
    )


def collective_cell_id(cell) -> str:
    family, routing, coll, algo, p, seed = cell
    return f"{family}-{routing}-{coll}-{algo}-p{p}-s{seed}"


def oracle_cell_id(cell) -> str:
    family, oracle, routing, pattern, load, seed = cell
    return f"{family}-{oracle}-{routing}-{pattern}-l{load}-s{seed}"


def congestion_cell_id(cell) -> str:
    family, routing, bufp, loss, attempts, seed = cell
    return f"{family}-{routing}-b{bufp}-p{loss}-a{attempts}-s{seed}"


def searched_cell_id(cell) -> str:
    n, radix, budget, routing, pattern, load, seed = cell
    return f"searched-n{n}-k{radix}-b{budget}-{routing}-{pattern}-l{load}-s{seed}"


def collect_cell(cell) -> dict:
    """Run one corpus cell on the event backend; return its stats dict."""
    family, routing, pattern, load, seed = cell
    spec = SIM_CONFIGS["small"]["topologies"][family]
    net = build_synthetic_sim(
        spec["build"](),
        routing,
        pattern,
        load,
        concentration=spec["concentration"],
        n_ranks=N_RANKS,
        packets_per_rank=PACKETS_PER_RANK,
        seed=seed,
        backend="event",
    )
    stats = net.run()
    return {field: getattr(stats, field) for field in FIELDS}


def collect_motif_cell(cell) -> dict:
    """Run one motif cell on the event engine; pin its full summary.

    ``run_motif``'s summary already carries every per-run observable a
    motif produces (latency percentiles, hops, makespan, counters); the
    floats round-trip JSON exactly, so equality pins the trajectory.
    """
    family, routing, kind, seed = cell
    spec = SIM_CONFIGS["small"]["topologies"][family]
    topo = spec["build"]()
    tables = cached_tables(topo)
    policy = make_routing(routing, tables, seed=seed)
    out = run_motif(
        topo, policy, make_motif(kind, N_RANKS),
        SimConfig(concentration=spec["concentration"]),
        placement_seed=seed + 1, backend="event",
    )
    return out


def collect_fault_cell(cell) -> dict:
    """Run one faulted open-loop cell on the event engine; pin SimStats.

    Includes the fault-specific observables on top of :data:`FIELDS`:
    drops by cause and the complete epoch ledger.
    """
    family, routing, fraction, recover, seed = cell
    spec = SIM_CONFIGS["small"]["topologies"][family]
    topo = spec["build"]()
    cfg = SimConfig(concentration=spec["concentration"])
    load = 0.5
    horizon = (
        PACKETS_PER_RANK * cfg.packet_bytes / (load * cfg.bytes_per_ns)
    )
    schedule = FaultSchedule.random_link_faults(
        topo.graph,
        fraction,
        t_fail=0.25 * horizon,
        seed=seed * 13 + 1,
        t_recover=0.75 * horizon if recover else None,
    )
    net = build_synthetic_sim(
        topo, routing, "random", load,
        concentration=spec["concentration"], n_ranks=N_RANKS,
        packets_per_rank=PACKETS_PER_RANK, seed=seed,
        faults=schedule, backend="event",
    )
    stats = net.run()
    out = {field: getattr(stats, field) for field in FIELDS}
    out["drops"] = dict(stats.drops)
    out["epochs"] = list(stats.epochs)
    return out


def collect_collective_cell(cell) -> dict:
    """Run one collective cell on the event engine; pin its full summary.

    ``run_collective``'s output carries the whole observable surface of a
    chunk-level schedule — delivery counters, makespan, final ownership,
    and the per-chunk completion instants (``chunk_done_ns``), so equality
    pins each chunk's trajectory, not just the aggregate.
    """
    family, routing, coll, algo, p, seed = cell
    spec = SIM_CONFIGS["small"]["topologies"][family]
    topo = spec["build"]()
    tables = cached_tables(topo)
    policy = make_routing(routing, tables, seed=seed)
    return run_collective(
        topo, policy,
        CollectiveMotif(coll, algo, p, total_bytes=COLLECTIVE_BYTES),
        SimConfig(concentration=spec["concentration"]),
        placement_seed=seed + 1, backend="event",
    )


def collect_congestion_cell(cell) -> dict:
    """Run one congested open-loop cell on the event engine; pin SimStats.

    On top of :data:`FIELDS` this pins the congestion-specific ledgers:
    drops itemized by cause and the retransmit counter — the exact
    accounting the batched engine must reproduce.
    """
    family, routing, bufp, loss, attempts, seed = cell
    spec = SIM_CONFIGS["small"]["topologies"][family]
    channel = None
    if loss > 0.0:
        channel = ChannelConfig(
            loss_prob=loss, jitter_ns=12.0, extra_latency_ns=3.0,
            max_attempts=attempts, backoff_ns=30.0, seed=seed,
        )
    cfg = SimConfig(
        concentration=spec["concentration"],
        finite_buffers=bufp > 0,
        buffer_bytes=max(bufp, 1) * 4096,
        channel=channel,
    )
    net = build_synthetic_sim(
        spec["build"](), routing, "random", 0.5,
        concentration=spec["concentration"], n_ranks=N_RANKS,
        packets_per_rank=PACKETS_PER_RANK, seed=seed,
        config=cfg, backend="event",
    )
    stats = net.run()
    out = {field: getattr(stats, field) for field in FIELDS}
    out["drops"] = dict(stats.drops)
    out["n_retransmits"] = stats.n_retransmits
    return out


def collect_oracle_cell(cell) -> dict:
    """Run one oracle-routed open-loop cell on the event engine.

    The run must stay lazy end to end (no dense matrix materialised);
    the pinned stats are the same :data:`FIELDS` as the dense cells.
    """
    family, oracle, routing, pattern, load, seed = cell
    spec = SIM_CONFIGS["small"]["topologies"][family]
    net = build_synthetic_sim(
        spec["build"](),
        routing,
        pattern,
        load,
        concentration=spec["concentration"],
        n_ranks=N_RANKS,
        packets_per_rank=PACKETS_PER_RANK,
        seed=seed,
        backend="event",
        oracle=oracle,
    )
    assert net.tables.is_lazy and net.tables._dist is None
    stats = net.run()
    assert net.tables._dist is None, "oracle cell densified mid-run"
    return {field: getattr(stats, field) for field in FIELDS}


def collect_searched_cell(cell) -> dict:
    """Build a searched topology and run it on the event engine.

    Pins the search output (the candidate's ``content_hash`` plus its
    seed/best fitness to full float precision) *and* the resulting
    simulation trajectory, so either a drifted search RNG or a drifted
    engine fails this cell.
    """
    from repro.topology.searched import swap_searched_topology

    n, radix, budget, routing, pattern, load, seed = cell
    topo = swap_searched_topology(n, radix, budget=budget, seed=seed)
    net = build_synthetic_sim(
        topo, routing, pattern, load,
        concentration=2, n_ranks=N_RANKS,
        packets_per_rank=PACKETS_PER_RANK, seed=seed, backend="event",
    )
    stats = net.run()
    out = {field: getattr(stats, field) for field in FIELDS}
    out["graph_hash"] = topo.graph.content_hash()
    out["seed_fitness"] = topo.provenance["seed_fitness"]
    out["best_fitness"] = topo.provenance["best_fitness"]
    return out


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate it with "
        "`python scripts/make_golden_sim.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenCorpus:
    def test_corpus_matches_cell_list(self, golden):
        assert list(golden["cells"]) == [cell_id(c) for c in CELLS]
        assert list(golden["motif_cells"]) == [
            motif_cell_id(c) for c in MOTIF_CELLS
        ]
        assert list(golden["fault_cells"]) == [
            fault_cell_id(c) for c in FAULT_CELLS
        ]
        assert list(golden["collective_cells"]) == [
            collective_cell_id(c) for c in COLLECTIVE_CELLS
        ]
        assert list(golden["congestion_cells"]) == [
            congestion_cell_id(c) for c in CONGESTION_CELLS
        ]
        assert list(golden["oracle_cells"]) == [
            oracle_cell_id(c) for c in ORACLE_CELLS
        ]
        assert list(golden["searched_cells"]) == [
            searched_cell_id(c) for c in SEARCHED_CELLS
        ]
        assert golden["schema"] == 6
        assert golden["n_ranks"] == N_RANKS
        assert golden["packets_per_rank"] == PACKETS_PER_RANK

    @pytest.mark.parametrize("cell", CELLS, ids=cell_id)
    def test_event_backend_bit_for_bit(self, golden, cell):
        expected = golden["cells"][cell_id(cell)]
        actual = collect_cell(cell)
        for field in FIELDS:
            assert actual[field] == expected[field], (
                f"SimStats.{field} drifted in {cell_id(cell)} — if the "
                "change is intentional, regenerate the corpus with "
                "scripts/make_golden_sim.py and say so in the commit"
            )

    @pytest.mark.parametrize("cell", MOTIF_CELLS, ids=motif_cell_id)
    def test_event_motif_bit_for_bit(self, golden, cell):
        expected = golden["motif_cells"][motif_cell_id(cell)]
        actual = collect_motif_cell(cell)
        assert set(actual) == set(expected)
        for key in expected:
            assert actual[key] == expected[key], (
                f"motif summary {key!r} drifted in {motif_cell_id(cell)} — "
                "the event DAG runner is the batched engine's oracle; if "
                "the change is intentional, regenerate with "
                "scripts/make_golden_sim.py and say so in the commit"
            )

    @pytest.mark.parametrize("cell", FAULT_CELLS, ids=fault_cell_id)
    def test_event_faulted_bit_for_bit(self, golden, cell):
        expected = golden["fault_cells"][fault_cell_id(cell)]
        actual = collect_fault_cell(cell)
        assert set(actual) == set(expected)
        for key in expected:
            assert actual[key] == expected[key], (
                f"faulted SimStats {key!r} drifted in "
                f"{fault_cell_id(cell)} — the degraded event path is the "
                "batched engine's oracle; if the change is intentional, "
                "regenerate with scripts/make_golden_sim.py and say so in "
                "the commit"
            )

    @pytest.mark.parametrize("cell", COLLECTIVE_CELLS, ids=collective_cell_id)
    def test_event_collective_bit_for_bit(self, golden, cell):
        expected = golden["collective_cells"][collective_cell_id(cell)]
        actual = collect_collective_cell(cell)
        assert set(actual) == set(expected)
        for key in expected:
            assert actual[key] == expected[key], (
                f"collective summary {key!r} drifted in "
                f"{collective_cell_id(cell)} — per-chunk completion times "
                "are pinned bit for bit; if the change is intentional, "
                "regenerate with scripts/make_golden_sim.py and say so in "
                "the commit"
            )

    @pytest.mark.parametrize("cell", CONGESTION_CELLS, ids=congestion_cell_id)
    def test_event_congested_bit_for_bit(self, golden, cell):
        expected = golden["congestion_cells"][congestion_cell_id(cell)]
        actual = collect_congestion_cell(cell)
        assert set(actual) == set(expected)
        for key in expected:
            assert actual[key] == expected[key], (
                f"congested SimStats {key!r} drifted in "
                f"{congestion_cell_id(cell)} — the finite-buffer/lossy "
                "event path is the batched engine's oracle; if the change "
                "is intentional, regenerate with scripts/make_golden_sim.py "
                "and say so in the commit"
            )

    @pytest.mark.parametrize("cell", ORACLE_CELLS, ids=oracle_cell_id)
    def test_event_oracle_bit_for_bit(self, golden, cell):
        expected = golden["oracle_cells"][oracle_cell_id(cell)]
        actual = collect_oracle_cell(cell)
        for field in FIELDS:
            assert actual[field] == expected[field], (
                f"oracle-routed SimStats.{field} drifted in "
                f"{oracle_cell_id(cell)} — lazy routing must reproduce the "
                "dense trajectories exactly; if the change is intentional, "
                "regenerate with scripts/make_golden_sim.py and say so in "
                "the commit"
            )

    @pytest.mark.parametrize("cell", SEARCHED_CELLS, ids=searched_cell_id)
    def test_event_searched_bit_for_bit(self, golden, cell):
        expected = golden["searched_cells"][searched_cell_id(cell)]
        actual = collect_searched_cell(cell)
        assert set(actual) == set(expected)
        for key in expected:
            assert actual[key] == expected[key], (
                f"searched-topology cell {key!r} drifted in "
                f"{searched_cell_id(cell)} — the cell pins the search "
                "trajectory (graph_hash, fitness) AND the simulation; if "
                "the change is intentional, regenerate with "
                "scripts/make_golden_sim.py and say so in the commit"
            )

    def test_searched_cell_actually_searched(self, golden):
        # A searched cell whose candidate equals its seed pins nothing
        # about the search; the fitness gain must be strictly positive.
        for c in golden["searched_cells"].values():
            assert c["best_fitness"] > c["seed_fitness"]
            assert c["n_injected"] > 0

    def test_oracle_cells_cover_both_lazy_kinds(self, golden):
        assert {c[1] for c in ORACLE_CELLS} == {"cayley", "landmark"}
        # The cells must have genuinely simulated something.
        for c in golden["oracle_cells"].values():
            assert c["n_injected"] > 0
            assert len(c["latencies_ns"]) == c["n_injected"]

    def test_congestion_cells_actually_exercise_the_features(self, golden):
        # A congestion corpus where the channel never drops, never
        # retransmits, or the buffers never matter pins nothing.
        cells = golden["congestion_cells"].values()
        assert any(c["n_dropped"] > 0 for c in cells)
        assert any(c["n_retransmits"] > 0 for c in cells)
        for c in cells:
            assert sum(c["drops"].values()) == c["n_dropped"]
            assert len(c["latencies_ns"]) + c["n_dropped"] == c["n_injected"]

    def test_collective_cells_pin_per_chunk_times(self, golden):
        # Every collective cell carries one completion instant per chunk,
        # the last of which *is* the makespan (the exact-boundary drain
        # invariant), and a complete ownership end state.
        for c in golden["collective_cells"].values():
            assert len(c["chunk_done_ns"]) == c["n_chunks"] == c["n_ranks"]
            assert max(c["chunk_done_ns"]) == c["makespan_ns"]
            assert c["ownership_complete"] is True

    def test_fault_cells_actually_exercise_faults(self, golden):
        # A faulted corpus that never drops or reroutes pins nothing.
        cells = golden["fault_cells"].values()
        assert any(c["n_dropped"] > 0 for c in cells)
        assert any(c["nonminimal_hops"] > 0 for c in cells)
        assert all(len(c["epochs"]) > 0 for c in cells)

    def test_corpus_spans_families_and_routings(self):
        assert {c[0] for c in CELLS} == set(
            SIM_CONFIGS["small"]["topologies"]
        )
        assert {c[1] for c in CELLS} == {
            "minimal", "valiant", "ugal", "ugal-g"
        }
        # The scenario cells keep their own axes covered too.
        assert {c[2] for c in MOTIF_CELLS} == {"fft", "halo3d", "sweep3d"}
        assert {c[3] for c in FAULT_CELLS} == {True, False}
        # Collective cells span all four algorithms and include the
        # non-power-of-two fold path.
        assert {c[3] for c in COLLECTIVE_CELLS} == {
            "ring", "recursive-doubling", "binary-tree", "rabenseifner"
        }
        assert any(c[4] & (c[4] - 1) for c in COLLECTIVE_CELLS)
