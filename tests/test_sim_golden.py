"""Golden-stats regression corpus for the event-engine simulator.

``tests/golden/sim_small.json`` pins the **exact** :class:`SimStats` of a
handful of seeded small-preset cells — every per-packet latency and hop
count, every counter, bit for bit.  The differential harness
(``test_sim_differential.py``) and the throughput benchmarks only watch
aggregate numbers; this corpus is what catches *silent behaviour drift*
— a reordered RNG draw, an off-by-one in queue accounting, a changed
tie-break — that leaves the means within tolerance but changes the
simulation.

The corpus covers every small-size-class topology family and every
routing policy at least once.  Floats survive the JSON round-trip exactly
(``json`` serialises via ``repr``), so equality here is equality of the
simulated trajectories.

If a change *intentionally* alters event-engine behaviour (a new RNG
batching scheme, a semantic fix), regenerate with::

    python scripts/make_golden_sim.py

and explain the regeneration in the commit message — the diff of the
corpus is the reviewable record of what moved.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.common import build_synthetic_sim
from repro.topology import SIM_CONFIGS

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "sim_small.json"

#: The corpus cells: (family, routing, pattern, load, seed).  Small-preset
#: topologies at reduced rank/packet counts so the corpus stays compact
#: and the regression test stays fast.
CELLS = [
    ("SpectralFly", "minimal", "shuffle", 0.4, 7),
    ("SpectralFly", "ugal", "random", 0.5, 7),
    ("DragonFly", "valiant", "shuffle", 0.4, 7),
    ("DragonFly", "ugal-g", "transpose", 0.3, 7),
    ("SlimFly", "ugal", "shuffle", 0.6, 7),
    ("BundleFly", "minimal", "random", 0.4, 7),
]
N_RANKS = 64
PACKETS_PER_RANK = 5

#: Every SimStats field the event engine fills for a fault-free open-loop
#: run (fault counters included deliberately: they must stay zero).
FIELDS = (
    "latencies_ns",
    "hops",
    "bytes_delivered",
    "t_first_inject",
    "t_last_delivery",
    "n_injected",
    "max_queue_bytes",
    "valiant_choices",
    "minimal_choices",
    "deadlocked",
    "undelivered",
    "n_events",
    "n_dropped",
    "n_requeued",
    "nonminimal_hops",
)


def cell_id(cell) -> str:
    family, routing, pattern, load, seed = cell
    return f"{family}-{routing}-{pattern}-l{load}-s{seed}"


def collect_cell(cell) -> dict:
    """Run one corpus cell on the event backend; return its stats dict."""
    family, routing, pattern, load, seed = cell
    spec = SIM_CONFIGS["small"]["topologies"][family]
    net = build_synthetic_sim(
        spec["build"](),
        routing,
        pattern,
        load,
        concentration=spec["concentration"],
        n_ranks=N_RANKS,
        packets_per_rank=PACKETS_PER_RANK,
        seed=seed,
        backend="event",
    )
    stats = net.run()
    return {field: getattr(stats, field) for field in FIELDS}


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate it with "
        "`python scripts/make_golden_sim.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenCorpus:
    def test_corpus_matches_cell_list(self, golden):
        assert list(golden["cells"]) == [cell_id(c) for c in CELLS]
        assert golden["n_ranks"] == N_RANKS
        assert golden["packets_per_rank"] == PACKETS_PER_RANK

    @pytest.mark.parametrize("cell", CELLS, ids=cell_id)
    def test_event_backend_bit_for_bit(self, golden, cell):
        expected = golden["cells"][cell_id(cell)]
        actual = collect_cell(cell)
        for field in FIELDS:
            assert actual[field] == expected[field], (
                f"SimStats.{field} drifted in {cell_id(cell)} — if the "
                "change is intentional, regenerate the corpus with "
                "scripts/make_golden_sim.py and say so in the commit"
            )

    def test_corpus_spans_families_and_routings(self):
        assert {c[0] for c in CELLS} == set(
            SIM_CONFIGS["small"]["topologies"]
        )
        assert {c[1] for c in CELLS} == {
            "minimal", "valiant", "ugal", "ugal-g"
        }
