"""Smoke + shape tests for the experiment drivers (tiny configurations).

Full-scale runs live in benchmarks/; here we check that every driver
produces the right rows and that the paper's qualitative shapes hold at
reduced scale where they are stable.
"""

import pytest

from repro.experiments import fig4, fig5, fig6, fig7, fig8, fig9, fig10, table1, table2, fig11
from repro.experiments.common import ExperimentResult


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(classes=(1,))

    def test_rows(self, result):
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 4

    def test_matches_paper_exactly(self, result):
        for row in result.rows:
            assert row["diameter"] == row["paper_diam"]
            assert abs(row["avg_distance"] - row["paper_avg"]) <= 0.01

    def test_renders(self, result):
        text = result.to_text()
        assert "LPS(11,7)" in text and "DF(12)" in text


class TestFig4:
    def test_design_space(self):
        res = fig4.run_design_space(60)
        assert all(r["radix"] == r["p"] + 1 for r in res.rows)
        assert any(r["vertices"] == 120 for r in res.rows)

    def test_normalized_bisection(self):
        res = fig4.run_normalized_bisection(max_p=6, max_q=14, repeats=2)
        for r in res.rows:
            assert 0 < r["normalized"] <= 1
            assert r["fiedler_lower_norm"] <= r["normalized"] + 1e-9

    def test_feasible_sizes(self):
        res = fig4.run_feasible_sizes(max_vertices=2000)
        fams = {r["family"] for r in res.rows}
        assert fams == {"LPS", "SlimFly", "BundleFly", "DragonFly"}

    def test_bisection_comparison_lps_beats_df(self):
        res = fig4.run_bisection_comparison(classes=(1,), repeats=2)
        by_name = {r["topology"]: r for r in res.rows}
        assert by_name["LPS(11,7)"]["normalized"] > by_name["DF(12)"]["normalized"]


class TestFig5:
    def test_shape(self):
        res = fig5.run(
            class_id=1,
            proportions=(0.0, 0.1),
            max_trials_per_batch=1,
            families=("LPS", "SlimFly"),
        )
        assert len(res.rows) == 4
        by = {(r["topology"], r["failed"]): r for r in res.rows}
        # Failures cannot shrink diameter or average distance.
        assert by[("LPS(11,7)", 0.1)]["avg_hops"] >= by[("LPS(11,7)", 0.0)]["avg_hops"]
        # SlimFly's diameter must grow from 2 under 10% failures.
        assert by[("SF(7)", 0.1)]["diameter"] > 2


class TestSimFigures:
    def test_fig6_rows_and_baseline(self):
        res = fig6.run(patterns=("random",), loads=(0.3,), packets_per_rank=5)
        assert len(res.rows) == 4
        df = [r for r in res.rows if r["topology"] == "DragonFly"][0]
        assert df["speedup_vs_df"] == 1.0

    def test_fig7_minimal(self):
        res = fig7.run(loads=(0.3,), packets_per_rank=5)
        assert all(r["routing"] == "minimal" for r in res.rows)

    def test_fig8_ratio_definition(self):
        res = fig8.run(patterns=("shuffle",), loads=(0.3,), packets_per_rank=5)
        row = res.rows[0]
        assert row["valiant_speedup_vs_minimal"] == pytest.approx(
            row["minimal_max_ns"] / row["valiant_max_ns"], abs=0.01
        )


class TestMotifFigures:
    def test_fig9_rows(self):
        res = fig9.run(motif_names=("Sweep3D",))
        assert len(res.rows) == 4
        df = [r for r in res.rows if r["topology"] == "DragonFly"][0]
        assert df["speedup_vs_df"] == 1.0

    def test_fig10_uses_ugal(self):
        res = fig10.run(motif_names=("Sweep3D",))
        assert all(r["routing"] == "ugal" for r in res.rows)


class TestLayoutArtifacts:
    def test_table2_row_fields(self):
        res = table2.run(pairs=[((11, 7), 9)], skywalk_instances=1,
                         bisection_repeats=1)
        assert len(res.rows) == 2
        for r in res.rows:
            assert r["electrical_links"] + r["optical_links"] > 0
            assert r["mw_per_gbps"] > 0
        # Paper: LPS(11,7) and SF(9) wire lengths within ~10%.
        a, b = res.rows[0]["avg_wire_m"], res.rows[1]["avg_wire_m"]
        assert abs(a - b) / max(a, b) < 0.15

    def test_fig11_ratios(self):
        res = fig11.run(
            pairs=[((11, 7), 9)],
            switch_latencies=(0.0, 200.0),
            skywalk_instances=1,
        )
        assert len(res.rows) == 4
        for r in res.rows:
            assert r["avg_ratio_vs_skywalk"] > 0
