"""Tests for the LPS / SpectralFly construction (paper Definition 3)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.metrics import diameter, girth, is_bipartite, is_connected
from repro.nt.modular import legendre_symbol
from repro.spectral import is_ramanujan, lambda_g, ramanujan_bound
from repro.topology.lps import (
    build_lps,
    lps_design_space,
    lps_feasible,
    lps_generator_matrices,
    lps_num_vertices,
)


class TestFeasibility:
    def test_valid_inputs(self):
        assert lps_feasible(3, 5)
        assert lps_feasible(11, 7)
        assert lps_feasible(23, 13)

    def test_q_too_small_fails_ramanujan_guarantee(self):
        assert not lps_feasible(11, 5)  # 5 < 2 sqrt(11)
        # ... but the construction itself is still admissible.
        assert lps_feasible(11, 5, require_ramanujan=False)

    def test_paper_table2_instance_outside_guarantee(self):
        # LPS(19,7) appears in the paper's Table II despite 7 < 2 sqrt(19).
        assert not lps_feasible(19, 7)
        t = build_lps(19, 7)
        assert t.n_routers == 336 and t.radix == 20

    def test_equal_primes(self):
        assert not lps_feasible(7, 7)
        assert not lps_feasible(7, 7, require_ramanujan=False)

    def test_composite(self):
        assert not lps_feasible(9, 7)
        assert not lps_feasible(7, 9)

    def test_even(self):
        assert not lps_feasible(2, 7)

    def test_build_rejects_composite(self):
        with pytest.raises(ParameterError):
            build_lps(9, 7)


class TestVertexCounts:
    @pytest.mark.parametrize(
        "p,q,n",
        [
            (3, 5, 120),
            (11, 7, 168),
            (19, 7, 336),
            (23, 11, 660),
            (23, 13, 1092),
            (29, 13, 1092),
            (53, 17, 2448),
            (71, 17, 4896),
            (89, 19, 6840),
        ],
    )
    def test_closed_form(self, p, q, n):
        assert lps_num_vertices(p, q) == n

    def test_smallest_lps_graph_is_120(self):
        # Paper Section IV: "the smallest possible LPS graph is on 120
        # vertices".
        sizes = [r["vertices"] for r in lps_design_space(50, 50)]
        assert min(sizes) == 120


class TestGenerators:
    @pytest.mark.parametrize("p,q", [(3, 5), (5, 13), (11, 7), (13, 17)])
    def test_count_and_determinant(self, p, q):
        gens = lps_generator_matrices(p, q)
        assert len(gens) == p + 1
        dets = (gens[:, 0] * gens[:, 3] - gens[:, 1] * gens[:, 2]) % q
        # det = p (up to projective scaling by squares).
        assert np.all(dets != 0)

    def test_distinct(self):
        from repro.algebra.mat2 import mat_encode

        gens = lps_generator_matrices(11, 7)
        assert len(np.unique(mat_encode(gens, 7))) == 12

    def test_symmetric_set(self):
        # Generator set closed under projective inverse.
        from repro.algebra.mat2 import mat_canonicalize, mat_encode, mat_multiply

        for p, q in [(3, 5), (13, 17), (11, 7)]:
            gens = lps_generator_matrices(p, q)
            keys = set(np.unique(mat_encode(gens, q)).tolist())
            # g^-1 projectively = adjugate [[d,-b],[-c,a]].
            adj = np.stack(
                [gens[:, 3], -gens[:, 1] % q, -gens[:, 2] % q, gens[:, 0]],
                axis=1,
            )
            inv_keys = set(mat_encode(mat_canonicalize(adj, q), q).tolist())
            assert keys == inv_keys


class TestBuiltGraphs:
    def test_example1_lps_3_5(self, lps_3_5):
        # Example 1: PGL(2,5), 120 vertices, 4-regular, bipartite.
        assert lps_3_5.n_routers == 120
        assert lps_3_5.radix == 4
        assert is_bipartite(lps_3_5.graph)
        assert is_connected(lps_3_5.graph)

    def test_psl_case_not_bipartite(self, lps_11_7):
        assert legendre_symbol(11, 7) == 1
        assert not is_bipartite(lps_11_7.graph)

    def test_pgl_case_bipartite(self):
        t = build_lps(19, 7)  # legendre(19,7) = -1
        assert t.n_routers == 336
        assert is_bipartite(t.graph)

    @pytest.mark.parametrize("p,q", [(3, 5), (3, 7), (11, 7), (23, 11)])
    def test_ramanujan_property(self, p, q):
        t = build_lps(p, q)
        assert is_ramanujan(t.graph)
        assert lambda_g(t.graph) <= ramanujan_bound(p + 1) + 1e-6

    def test_regularity(self, lps_23_11):
        assert np.all(lps_23_11.graph.degrees() == 24)

    def test_vertex_transitive_flag(self, lps_11_7):
        assert lps_11_7.vertex_transitive

    def test_lps_3_17_girth(self):
        # Fig. 3: a shortest cycle in LPS(3,17) uses vertices at distance 6
        # from the centre -> girth > 6 (large-girth regime of LPS).
        t = build_lps(3, 17)
        assert girth(t.graph, assume_vertex_transitive=True) >= 7

    def test_deterministic(self):
        a = build_lps(11, 7).graph.edge_array()
        b = build_lps(11, 7).graph.edge_array()
        assert np.array_equal(a, b)


class TestDesignSpace:
    def test_rows_feasible(self):
        rows = lps_design_space(60, 60)
        for r in rows:
            assert lps_feasible(r["p"], r["q"])
            assert r["radix"] == r["p"] + 1

    def test_multiple_sizes_per_radix(self):
        # Paper: arbitrarily large LPS graphs exist for a fixed radix.
        rows = lps_design_space(20, 200)
        sizes_for_radix_12 = {r["vertices"] for r in rows if r["radix"] == 12}
        assert len(sizes_for_radix_12) > 10
