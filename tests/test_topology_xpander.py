"""Tests for the Xpander 2-lift construction."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.metrics import is_connected
from repro.spectral import lambda_g, ramanujan_bound
from repro.topology.xpander import (
    build_xpander,
    signed_lambda,
    two_lift,
    xpander_quality,
)


class TestTwoLift:
    def test_doubles_vertices_keeps_degree(self):
        g = complete_graph(6)
        signs = np.ones(g.num_edges, dtype=np.int64)
        lifted = two_lift(g, signs)
        assert lifted.n == 12
        assert lifted.degree() == 5

    def test_all_plus_gives_two_copies(self):
        g = cycle_graph(5)
        lifted = two_lift(g, np.ones(5, dtype=np.int64))
        # Two disjoint C5 copies -> disconnected.
        assert not is_connected(lifted)

    def test_all_minus_on_odd_cycle_gives_double_cycle(self):
        g = cycle_graph(5)
        lifted = two_lift(g, -np.ones(5, dtype=np.int64))
        # All-crossed lift of C5 = C10 (connected, bipartite double cover).
        assert is_connected(lifted)
        assert lifted.degree() == 2
        from repro.graphs.metrics import girth

        assert girth(lifted) == 10

    def test_spectrum_is_union(self):
        # eig(lift) = eig(base) UNION eig(signed adjacency).
        g = complete_graph(5)
        rng = np.random.default_rng(0)
        signs = rng.choice(np.array([-1, 1]), size=g.num_edges)
        lifted = two_lift(g, signs)
        lift_spec = np.sort(np.linalg.eigvalsh(lifted.adjacency().toarray()))
        base_spec = np.linalg.eigvalsh(g.adjacency().toarray())
        import scipy.sparse as sp

        edges = g.edge_array()
        signed = np.zeros((5, 5))
        for (u, v), s in zip(edges, signs):
            signed[u, v] = signed[v, u] = s
        signed_spec = np.linalg.eigvalsh(signed)
        expect = np.sort(np.concatenate([base_spec, signed_spec]))
        assert np.allclose(lift_spec, expect, atol=1e-8)

    def test_sign_count_mismatch_rejected(self):
        g = cycle_graph(4)
        with pytest.raises(ParameterError):
            two_lift(g, np.ones(3))


class TestSignedLambda:
    def test_matches_dense(self):
        g = complete_graph(7)
        rng = np.random.default_rng(1)
        signs = rng.choice(np.array([-1, 1]), size=g.num_edges)
        edges = g.edge_array()
        dense = np.zeros((7, 7))
        for (u, v), s in zip(edges, signs):
            dense[u, v] = dense[v, u] = s
        expect = max(abs(np.linalg.eigvalsh(dense)[0]),
                     abs(np.linalg.eigvalsh(dense)[-1]))
        assert signed_lambda(g, signs) == pytest.approx(expect, abs=1e-8)


class TestBuildXpander:
    def test_reaches_target_size(self):
        t = build_xpander(degree=6, target_routers=100, seed=0)
        assert t.n_routers >= 100
        assert t.radix == 6
        assert is_connected(t.graph)

    def test_near_ramanujan(self):
        # Best-of-16 random signings keeps lambda close to the bound
        # (Bilu-Linial); allow 35% slack at this small scale.
        t = build_xpander(degree=8, target_routers=144, seed=1)
        assert lambda_g(t.graph) <= 1.35 * ramanujan_bound(8)

    def test_quality_report(self):
        t = build_xpander(degree=6, target_routers=56, seed=2)
        q = xpander_quality(t)
        assert q["routers"] == t.n_routers
        assert q["ratio"] > 0

    def test_deterministic(self):
        a = build_xpander(degree=6, target_routers=56, seed=3)
        b = build_xpander(degree=6, target_routers=56, seed=3)
        assert np.array_equal(a.graph.edge_array(), b.graph.edge_array())

    def test_rejects_small_degree(self):
        with pytest.raises(ParameterError):
            build_xpander(degree=2, target_routers=100)


class TestXpanderVsLPS:
    def test_lps_spectrally_at_least_as_good(self):
        # The paper's Section II point: explicit LPS is Ramanujan; lifted
        # constructions are *almost*-Ramanujan.  Compare matched instances.
        from repro.topology import build_lps

        lps = build_lps(11, 7)  # 168 routers, degree 12
        xp = build_xpander(degree=12, target_routers=168, seed=0)
        lam_lps = lambda_g(lps.graph) / ramanujan_bound(12)
        lam_xp = lambda_g(xp.graph) / ramanujan_bound(12)
        assert lam_lps <= 1.0 + 1e-9
        assert lam_lps <= lam_xp + 0.05
