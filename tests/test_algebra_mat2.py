"""Tests for repro.algebra.mat2 — projective 2x2 matrix arithmetic."""

import numpy as np
import pytest

from repro.algebra.mat2 import (
    mat_canonicalize,
    mat_decode,
    mat_determinant,
    mat_encode,
    mat_identity,
    mat_multiply,
    pgl2_elements,
    pgl2_order,
    psl2_order,
)


class TestMultiply:
    def test_identity(self):
        q = 7
        rng = np.random.default_rng(0)
        mats = rng.integers(0, q, size=(20, 4))
        ident = mat_identity(q)
        assert np.array_equal(mat_multiply(mats, ident[None, :], q), mats % q)

    def test_associative(self):
        q = 11
        rng = np.random.default_rng(1)
        a, b, c = rng.integers(0, q, size=(3, 4))
        lhs = mat_multiply(mat_multiply(a, b, q), c, q)
        rhs = mat_multiply(a, mat_multiply(b, c, q), q)
        assert np.array_equal(lhs, rhs)

    def test_matches_numpy_matmul(self):
        q = 13
        rng = np.random.default_rng(2)
        a = rng.integers(0, q, size=4)
        b = rng.integers(0, q, size=4)
        am = a.reshape(2, 2)
        bm = b.reshape(2, 2)
        expect = (am @ bm) % q
        got = mat_multiply(a, b, q).reshape(2, 2)
        assert np.array_equal(got, expect)

    def test_determinant_multiplicative(self):
        q = 17
        rng = np.random.default_rng(3)
        a = rng.integers(0, q, size=(50, 4))
        b = rng.integers(0, q, size=(50, 4))
        det_prod = mat_determinant(mat_multiply(a, b, q), q)
        prod_det = mat_determinant(a, q) * mat_determinant(b, q) % q
        assert np.array_equal(det_prod, prod_det)


class TestCanonicalize:
    def test_scalar_multiples_identified(self):
        q = 7
        m = np.array([1, 2, 3, 4])
        for s in range(1, q):
            scaled = (m * s) % q
            assert np.array_equal(
                mat_canonicalize(m, q)[0], mat_canonicalize(scaled, q)[0]
            )

    def test_leading_entry_is_one(self):
        q = 11
        rng = np.random.default_rng(4)
        mats = rng.integers(0, q, size=(100, 4))
        mats = mats[mat_determinant(mats, q) != 0]
        canon = mat_canonicalize(mats, q)
        lead = canon[np.arange(len(canon)), np.argmax(canon != 0, axis=1)]
        assert np.all(lead == 1)

    def test_rejects_zero_matrix(self):
        with pytest.raises(ValueError):
            mat_canonicalize(np.zeros(4, dtype=np.int64), 5)

    def test_idempotent(self):
        q = 13
        rng = np.random.default_rng(5)
        mats = rng.integers(0, q, size=(50, 4))
        mats = mats[mat_determinant(mats, q) != 0]
        once = mat_canonicalize(mats, q)
        assert np.array_equal(once, mat_canonicalize(once, q))


class TestEncode:
    def test_roundtrip(self):
        q = 19
        rng = np.random.default_rng(6)
        mats = rng.integers(0, q, size=(200, 4))
        keys = mat_encode(mats, q)
        assert np.array_equal(mat_decode(keys, q), mats)

    def test_injective(self):
        q = 5
        grid = np.stack(
            np.meshgrid(*(np.arange(q),) * 4, indexing="ij"), axis=-1
        ).reshape(-1, 4)
        keys = mat_encode(grid, q)
        assert len(np.unique(keys)) == q**4


class TestGroupOrders:
    def test_orders(self):
        assert pgl2_order(5) == 120
        assert psl2_order(5) == 60
        assert pgl2_order(7) == 336
        assert psl2_order(11) == 660

    @pytest.mark.parametrize("q", [3, 5, 7])
    def test_enumeration_matches_order(self, q):
        els = pgl2_elements(q)
        assert len(els) == pgl2_order(q)

    def test_pgl_elements_invertible_and_canonical(self):
        q = 5
        els = pgl2_elements(q)
        assert np.all(mat_determinant(els, q) != 0)
        assert np.array_equal(els, mat_canonicalize(els, q))
