"""Tests for the Topology wrapper itself."""

import pytest

from repro.graphs.generators import cycle_graph, hypercube_graph
from repro.topology.base import Topology


@pytest.fixture
def topo():
    return Topology(
        name="T", family="test", graph=hypercube_graph(3),
        params={"d": 3}, vertex_transitive=True,
    )


class TestTopology:
    def test_counts(self, topo):
        assert topo.n_routers == 8
        assert topo.n_links == 12
        assert topo.radix == 3

    def test_endpoints(self, topo):
        assert topo.endpoints(4) == 32

    def test_describe(self, topo):
        d = topo.describe()
        assert d["name"] == "T"
        assert d["routers"] == 8
        assert d["radix"] == 3
        assert d["links"] == 12

    def test_radix_of_irregular_is_max_degree(self):
        import numpy as np

        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2], [1, 3]]))
        t = Topology(name="star-ish", family="test", graph=g)
        assert t.radix == 3

    def test_empty_graph_radix(self):
        from repro.graphs.csr import CSRGraph
        import numpy as np

        g = CSRGraph(0, np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int32))
        t = Topology(name="empty", family="test", graph=g)
        assert t.radix == 0

    def test_params_preserved(self, topo):
        assert topo.params == {"d": 3}

    def test_vertex_transitive_default_false(self):
        t = Topology(name="c", family="test", graph=cycle_graph(5))
        assert not t.vertex_transitive
