"""Shared fixtures: small topology instances, cached per test session."""

from __future__ import annotations

import pytest

from repro.topology import (
    build_bundlefly,
    build_canonical_dragonfly,
    build_lps,
    build_slimfly,
)


@pytest.fixture(scope="session")
def lps_3_5():
    return build_lps(3, 5)


@pytest.fixture(scope="session")
def lps_11_7():
    return build_lps(11, 7)


@pytest.fixture(scope="session")
def lps_23_11():
    return build_lps(23, 11)


@pytest.fixture(scope="session")
def sf_7():
    return build_slimfly(7)


@pytest.fixture(scope="session")
def sf_9():
    return build_slimfly(9)


@pytest.fixture(scope="session")
def sf_17():
    return build_slimfly(17)


@pytest.fixture(scope="session")
def bf_13_3():
    return build_bundlefly(13, 3)


@pytest.fixture(scope="session")
def df_12():
    return build_canonical_dragonfly(12)
