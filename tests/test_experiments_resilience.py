"""The resilience-traffic experiment family: driver, registry, determinism."""

import pytest

from repro.experiments.resilience_traffic import run
from repro.runner.registry import get_experiment


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")


def _mini(**overrides):
    kwargs = dict(
        scale="small",
        families=("SpectralFly",),
        routings=("minimal",),
        fail_fractions=(0.0, 0.15),
        packets_per_rank=4,
        seed=0,
    )
    kwargs.update(overrides)
    return run(**kwargs)


class TestDriver:
    def test_rows_and_columns(self):
        res = _mini()
        assert len(res.rows) == 2  # 1 family x 1 routing x 2 fractions
        row = res.rows[1]
        assert row["failed"] == 0.15
        assert 0.0 < row["delivered_frac"] <= 1.0
        assert row["fault_epochs"] > 0
        assert row["nonminimal_hops"] >= 0
        # The pristine baseline row is self-normalised.
        assert res.rows[0]["max_vs_pristine"] == 1.0
        assert res.rows[0]["delivered_frac"] == 1.0

    def test_deterministic_per_seed(self):
        assert _mini().rows == _mini().rows
        assert _mini().rows != _mini(seed=1).rows

    def test_recovery_toggle(self):
        with_rec = _mini(recover=True)
        without = _mini(recover=False)
        # Recovery schedules a link-up per link-down: twice the epochs.
        assert (
            with_rec.rows[1]["fault_epochs"]
            == 2 * without.rows[1]["fault_epochs"]
        )


class TestRegistryEntry:
    def test_registered_with_presets(self):
        exp = get_experiment("resilience-traffic")
        assert set(exp.presets) == {"small", "full"}
        assert "resilience" in exp.tags
        # fail_fractions must NOT be a cell axis: the driver normalises
        # each (family, routing) group against its first fraction.
        assert "fail_fractions" not in exp.cell_axes
        assert exp.cell_axes == ("families", "routings")

    def test_small_preset_cells(self):
        exp = get_experiment("resilience-traffic")
        spec = exp.spec("small")
        cells = exp.cells(spec)
        # families x routings from the small preset.
        assert len(cells) == 4 * 2
        for cell in cells:
            assert cell.kwargs["fail_fractions"] == (0.0, 0.05, 0.15)
