"""Tests for repro.algebra.gf — prime and extension field arithmetic."""

import numpy as np
import pytest

from repro.algebra.gf import GF
from repro.errors import ParameterError

FIELDS = [2, 3, 4, 5, 7, 8, 9, 13, 16, 25, 27]


@pytest.fixture(scope="module", params=FIELDS)
def field(request):
    return GF(request.param)


class TestFieldAxioms:
    def test_additive_identity(self, field):
        a = field.elements()
        assert np.all(field.add(a, 0) == a)

    def test_multiplicative_identity(self, field):
        a = field.elements()
        assert np.all(field.mul(a, 1) == a)

    def test_additive_inverse(self, field):
        a = field.elements()
        assert np.all(field.add(a, field.neg(a)) == 0)

    def test_multiplicative_inverse(self, field):
        a = np.arange(1, field.q)
        assert np.all(field.mul(a, field.inv(a)) == 1)

    def test_commutativity(self, field):
        q = field.q
        a, b = np.meshgrid(np.arange(q), np.arange(q))
        assert np.all(field.add(a, b) == field.add(b, a))
        assert np.all(field.mul(a, b) == field.mul(b, a))

    def test_distributivity(self, field):
        q = field.q
        rng = np.random.default_rng(0)
        a, b, c = rng.integers(0, q, size=(3, 200))
        lhs = field.mul(a, field.add(b, c))
        rhs = field.add(field.mul(a, b), field.mul(a, c))
        assert np.all(lhs == rhs)

    def test_associativity_mul(self, field):
        q = field.q
        rng = np.random.default_rng(1)
        a, b, c = rng.integers(0, q, size=(3, 200))
        assert np.all(
            field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
        )

    def test_no_zero_divisors(self, field):
        q = field.q
        a, b = np.meshgrid(np.arange(1, q), np.arange(1, q))
        assert np.all(field.mul(a, b) != 0)


class TestPrimitiveElement:
    def test_generates_multiplicative_group(self, field):
        xi = field.primitive
        seen = set()
        acc = 1
        for _ in range(field.q - 1):
            seen.add(acc)
            acc = int(field.mul(acc, xi))
        assert len(seen) == field.q - 1
        assert acc == 1  # order divides q-1 and the orbit has full size


class TestSquares:
    def test_square_count_odd_char(self):
        f = GF(13)
        assert len(f.nonzero_squares()) == 6  # (q-1)/2

    def test_square_count_gf9(self):
        f = GF(9)
        assert len(f.nonzero_squares()) == 4

    def test_char2_everything_square(self):
        f = GF(8)
        assert len(f.nonzero_squares()) == 7
        assert all(f.is_square(a) for a in range(8))

    def test_is_square_matches_set(self):
        f = GF(25)
        squares = set(f.nonzero_squares().tolist())
        for a in range(1, 25):
            assert f.is_square(a) == (a in squares)


class TestPow:
    def test_pow_matches_repeated_mul(self):
        f = GF(27)
        for a in (1, 2, 5, 26):
            acc = 1
            for e in range(10):
                assert f.pow(a, e) == acc
                acc = int(f.mul(acc, a))

    def test_zero_cases(self):
        f = GF(7)
        assert f.pow(0, 5) == 0
        assert f.pow(0, 0) == 1
        assert f.pow(3, 0) == 1


class TestConstruction:
    def test_rejects_non_prime_power(self):
        with pytest.raises(ParameterError):
            GF(6)
        with pytest.raises(ParameterError):
            GF(12)

    def test_characteristic(self):
        assert GF(9).p == 3 and GF(9).m == 2
        assert GF(16).p == 2 and GF(16).m == 4
        assert GF(13).p == 13 and GF(13).m == 1

    def test_prime_field_is_mod_arithmetic(self):
        f = GF(11)
        a, b = np.meshgrid(np.arange(11), np.arange(11))
        assert np.all(f.add(a, b) == (a + b) % 11)
        assert np.all(f.mul(a, b) == (a * b) % 11)

    def test_frobenius_additive_char_p(self):
        # (a + b)^p = a^p + b^p in characteristic p.
        f = GF(9)
        for a in range(9):
            for b in range(9):
                lhs = f.pow(int(f.add(a, b)), 3)
                rhs = int(f.add(f.pow(a, 3), f.pow(b, 3)))
                assert lhs == rhs
