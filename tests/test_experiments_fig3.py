"""Tests for the Fig. 3 neighbourhood-structure experiment."""

import pytest

from repro.experiments import fig3


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(instances=((3, 7), (3, 17)))

    def test_rows(self, result):
        assert [r["topology"] for r in result.rows] == ["LPS(3,7)", "LPS(3,17)"]

    def test_lps_3_17_tree_depth(self, result):
        # Fig 3: the shortest cycle of LPS(3,17) uses vertices at distance 6
        # -> BFS layers are exactly tree-like to depth >= 5.
        row = next(r for r in result.rows if r["topology"] == "LPS(3,17)")
        assert row["girth"] >= 11  # cycle through distance-6 vertices
        assert row["tree_like_depth"] >= 5

    def test_layer_sizes_sum_to_n(self, result):
        # Both are PGL cases ((3/7) = (3/17) = -1): q^3 - q vertices.
        for row in result.rows:
            total = sum(int(s) for s in row["layer_sizes"].split("/"))
            n = 336 if row["topology"] == "LPS(3,7)" else 4896
            assert total == n

    def test_few_vertices_at_eccentricity(self, result):
        # Fig 3 / Sardari [31]: far fewer vertices sit at the last distance
        # than one layer earlier, and for larger q the tail is tiny.
        for row in result.rows:
            sizes = [int(s) for s in row["layer_sizes"].split("/")]
            assert sizes[-1] < sizes[-2]
        large = next(r for r in result.rows if r["topology"] == "LPS(3,17)")
        sizes = [int(s) for s in large["layer_sizes"].split("/")]
        assert sizes[-1] < 0.01 * sum(sizes)
