"""Simulator fast-path guarantees: determinism, resume, loop equivalence.

Properties the perf work must never regress:

* fixed seed => byte-identical :class:`SimStats` across fresh runs, for
  every routing policy;
* ``run(until=...)`` then ``run()`` == one uninterrupted ``run()`` (the
  paused run must not lose the event it popped past ``until``);
* the inlined hot loop (``_run_fast``) and the handler-dispatch loop
  produce identical results — pinned by a *differential harness* that
  samples ~30 random configurations across topology family × routing
  policy × VC budget × traffic shape × seed, plus fixed regression cases
  (every new event-loop feature must keep the two paths event-for-event
  equal over the whole sampled space, not one hand-picked cell);
* the hot-path data structures stay allocation-lean (no ``Packet.__dict__``,
  plain-tuple events).
"""

import numpy as np
import pytest

from repro.routing import RoutingTables, make_routing
from repro.sim import NetworkSimulator, Packet, SimConfig
from repro.topology import (
    build_canonical_dragonfly,
    build_lps,
    build_paley,
    build_slimfly,
)

ROUTINGS = ["minimal", "valiant", "ugal", "ugal-g"]


@pytest.fixture(scope="module")
def parts():
    topo = build_lps(3, 5)  # 120 routers, radix 4
    tables = RoutingTables(topo.graph)
    return topo, tables


def _loaded_net(topo, tables, routing, seed=0, n_msgs=250):
    cfg = SimConfig(concentration=2)
    net = NetworkSimulator(topo, make_routing(routing, tables, seed=seed),
                           cfg, tables=tables)
    rng = np.random.default_rng(seed + 99)
    for _ in range(n_msgs):
        s, d = rng.integers(0, net.n_endpoints, 2)
        if s != d:
            net.send(int(s), int(d))
    return net


def _stats_tuple(stats):
    """Every per-packet observable, for byte-identical comparison."""
    return (
        stats.latencies_ns,
        stats.hops,
        stats.bytes_delivered,
        stats.n_injected,
        stats.max_queue_bytes,
        stats.valiant_choices,
        stats.minimal_choices,
        stats.t_first_inject,
        stats.t_last_delivery,
        stats.n_events,
    )


class TestDeterminism:
    @pytest.mark.parametrize("routing", ROUTINGS)
    def test_same_seed_byte_identical(self, parts, routing):
        topo, tables = parts
        a = _loaded_net(topo, tables, routing).run()
        b = _loaded_net(topo, tables, routing).run()
        assert _stats_tuple(a) == _stats_tuple(b)

    @pytest.mark.parametrize("routing", ["minimal", "ugal"])
    def test_different_seed_differs(self, parts, routing):
        # Sanity: the determinism above is not vacuous.
        topo, tables = parts
        a = _loaded_net(topo, tables, routing, seed=0).run()
        b = _loaded_net(topo, tables, routing, seed=1).run()
        assert a.latencies_ns != b.latencies_ns


class TestRunUntilResume:
    @pytest.mark.parametrize("routing", ["minimal", "ugal"])
    def test_pause_and_drain_matches_uninterrupted(self, parts, routing):
        topo, tables = parts
        reference = _loaded_net(topo, tables, routing).run()
        paused = _loaded_net(topo, tables, routing)
        # Pause mid-simulation: several events remain past the cut.
        t_cut = reference.t_last_delivery / 2.0
        paused.run(until=t_cut)
        assert len(paused.stats.latencies_ns) < len(reference.latencies_ns)
        paused.run()  # drain the rest
        assert _stats_tuple(paused.stats) == _stats_tuple(reference)

    def test_pause_resume_with_open_loop_sources(self, parts):
        # Regression: run() must not re-start() already-started sources on
        # resume (that would schedule a duplicate injection chain).
        from repro.sim import make_traffic, place_ranks
        from repro.sim.traffic import OpenLoopSource

        topo, tables = parts

        def build():
            cfg = SimConfig(concentration=2)
            net = NetworkSimulator(topo, make_routing("minimal", tables),
                                   cfg, tables=tables)
            n_ranks = 64
            r2e = place_ranks(n_ranks, net.n_endpoints, seed=5)
            pat = make_traffic("random", n_ranks)
            for rank in range(n_ranks):
                net.add_open_loop_source(
                    OpenLoopSource(rank, int(r2e[rank]), pat, r2e, 0.4, 6,
                                   seed=rank)
                )
            return net

        reference = build().run()
        paused = build()
        paused.run(until=reference.t_last_delivery / 2.0)
        paused.run()
        assert _stats_tuple(paused.stats) == _stats_tuple(reference)
        assert paused.stats.n_injected == 64 * 6

    def test_until_does_not_lose_the_boundary_event(self, parts):
        # Regression for the popped-then-dropped event: pausing exactly
        # between two events and resuming must still deliver everything.
        topo, tables = parts
        net = _loaded_net(topo, tables, "minimal", n_msgs=40)
        net.run(until=1.0)  # before any packet clears its NIC
        n_before = len(net._events)
        assert n_before > 0
        net.run()
        assert len(net.stats.latencies_ns) == net.stats.n_injected


# ---------------------------------------------------------------------------
# Differential harness: the inlined hot loop vs. the handler-dispatch loop.
#
# run() uses _run_fast; run(until=inf) dispatches through the handler
# tuple.  The two implementations must stay event-for-event identical as
# the event loop grows features, so instead of one hand-picked cell we
# sample the configuration space (topology family x routing policy x VC
# budget x concentration x traffic shape x seed) from a fixed generator
# seed and assert equality on every per-packet observable for each sample.

_FAMILIES = {
    "lps": lambda: build_lps(3, 5),  # 120 routers, radix 4
    "slimfly": lambda: build_slimfly(5),  # 50 routers, radix 7
    "dragonfly": lambda: build_canonical_dragonfly(6),  # 42 routers
    "paley": lambda: build_paley(29),  # 29 routers, radix 14
}
_POW2_PATTERNS = ("shuffle", "reverse", "transpose")


def _sample_diff_configs(n=30, seed=20240731):
    """Deterministically sample ``n`` fast-vs-handler configurations."""
    rng = np.random.default_rng(seed)
    families = sorted(_FAMILIES)
    configs = []
    for i in range(n):
        traffic = ("sends", "open-loop")[int(rng.integers(2))]
        cfg = {
            "family": families[int(rng.integers(len(families)))],
            "routing": ROUTINGS[int(rng.integers(len(ROUTINGS)))],
            # 0 = the policy's own VC budget; small caps stress the
            # round-robin scan and the hop-capped VC assignment.
            "vc_cap": int(rng.integers(5)),
            "concentration": int((1, 2, 4)[int(rng.integers(3))]),
            "traffic": traffic,
            "seed": int(rng.integers(10_000)),
        }
        if traffic == "sends":
            cfg["n_msgs"] = int(rng.integers(40, 260))
            cfg["size"] = int((512, 4096, 9000)[int(rng.integers(3))])
        else:
            if rng.random() < 0.4:
                cfg["pattern"] = "random"
            else:
                cfg["pattern"] = _POW2_PATTERNS[
                    int(rng.integers(len(_POW2_PATTERNS)))
                ]
            cfg["load"] = float(np.round(0.2 + 0.7 * rng.random(), 2))
            cfg["packets_per_rank"] = int(rng.integers(3, 9))
        configs.append(cfg)
    return configs


# Fixed regression cases: the original hand-picked cell plus corner VC/
# concentration settings that once had dedicated code paths.
_FIXED_CASES = [
    {"family": "lps", "routing": r, "vc_cap": 0, "concentration": 2,
     "traffic": "sends", "n_msgs": 250, "size": 4096, "seed": 0}
    for r in ROUTINGS
] + [
    {"family": "slimfly", "routing": "minimal", "vc_cap": 1,
     "concentration": 1, "traffic": "sends", "n_msgs": 120, "size": 4096,
     "seed": 7},
    {"family": "dragonfly", "routing": "ugal", "vc_cap": 2,
     "concentration": 4, "traffic": "open-loop", "pattern": "shuffle",
     "load": 0.6, "packets_per_rank": 5, "seed": 11},
]


def _config_id(cfg):
    parts = [cfg["family"], cfg["routing"], f"vc{cfg['vc_cap']}",
             f"c{cfg['concentration']}", cfg["traffic"], f"s{cfg['seed']}"]
    return "-".join(parts)


@pytest.fixture(scope="module")
def family_parts():
    built = {}
    for name, build in _FAMILIES.items():
        topo = build()
        built[name] = (topo, RoutingTables(topo.graph))
    return built


def _build_diff_net(family_parts, cfg):
    from repro.sim import make_traffic, place_ranks
    from repro.sim.traffic import OpenLoopSource

    topo, tables = family_parts[cfg["family"]]
    routing = make_routing(cfg["routing"], tables, seed=cfg["seed"])
    if cfg["vc_cap"]:
        # Shadow the bound method: a small VC budget stresses the RR scan.
        base = routing.required_vcs()
        routing.required_vcs = lambda k=min(cfg["vc_cap"], base): k
    net = NetworkSimulator(
        topo, routing, SimConfig(concentration=cfg["concentration"]),
        tables=tables,
    )
    if cfg["traffic"] == "sends":
        rng = np.random.default_rng(cfg["seed"] + 99)
        for _ in range(cfg["n_msgs"]):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d), size=cfg["size"])
    else:
        # Largest power of two that fits (bit-permutation patterns need
        # 2^b ranks), capped at 64 to bound runtime.
        n_ranks = min(64, 1 << (net.n_endpoints.bit_length() - 1))
        r2e = place_ranks(n_ranks, net.n_endpoints, seed=cfg["seed"] + 1)
        pattern = make_traffic(cfg["pattern"], n_ranks)
        for rank in range(n_ranks):
            net.add_open_loop_source(
                OpenLoopSource(rank, int(r2e[rank]), pattern, r2e,
                               cfg["load"], cfg["packets_per_rank"],
                               seed=cfg["seed"] * 1_000_003 + rank)
            )
    return net


class TestDifferentialHarness:
    @pytest.mark.parametrize(
        "cfg", _FIXED_CASES + _sample_diff_configs(30),
        ids=_config_id,
    )
    def test_fast_loop_matches_handler_loop(self, family_parts, cfg):
        fast = _build_diff_net(family_parts, cfg).run()
        general = _build_diff_net(family_parts, cfg).run(until=float("inf"))
        assert len(fast.latencies_ns) > 0, "degenerate sample: nothing ran"
        assert _stats_tuple(fast) == _stats_tuple(general)

    def test_sampler_is_stable(self):
        # The sampled space must not drift run-to-run (that would make a
        # divergence unreproducible); same seed => same configs.
        assert _sample_diff_configs(30) == _sample_diff_configs(30)
        # ... and it genuinely covers the axes.
        cfgs = _sample_diff_configs(30)
        assert {c["family"] for c in cfgs} == set(_FAMILIES)
        assert {c["routing"] for c in cfgs} == set(ROUTINGS)
        assert {c["traffic"] for c in cfgs} == {"sends", "open-loop"}


class TestTrafficPatternContract:
    def test_stochastic_subclass_keeps_per_packet_destinations(self, parts):
        # A pattern written against the old contract (per-packet randomness
        # in destination(), no stochastic/destination_from_u declarations)
        # must NOT get its destination frozen by the fast path.
        from repro.sim import make_traffic, place_ranks
        from repro.sim.traffic import OpenLoopSource, TrafficPattern

        class TwoHotspots(TrafficPattern):
            name = "two-hotspots"

            def destination(self, src, rng):  # noqa: ARG002
                return int(rng.integers(2))  # rank 0 or 1, per packet

        topo, tables = parts
        cfg = SimConfig(concentration=2)
        net = NetworkSimulator(topo, make_routing("minimal", tables), cfg,
                               tables=tables)
        r2e = place_ranks(8, net.n_endpoints, seed=11)
        seen = set()
        net.on_delivery = lambda pkt, t: seen.add(pkt.dst_ep)
        net.add_open_loop_source(
            OpenLoopSource(5, int(r2e[5]), TwoHotspots(8), r2e, 0.5, 40,
                           seed=13)
        )
        net.run()
        assert len(net.stats.latencies_ns) == 40
        assert seen == {int(r2e[0]), int(r2e[1])}  # both hotspots reached


class TestAllocationLean:
    def test_packet_has_no_dict(self):
        pkt = Packet(0, 1, 2, 4096, 0.0, 1)
        assert not hasattr(pkt, "__dict__")
        assert not hasattr(Packet, "__dict__") or "__slots__" in vars(Packet)
        with pytest.raises(AttributeError):
            pkt.some_new_attribute = 1

    def test_event_tuples_are_plain_tuples(self, parts):
        topo, tables = parts
        net = _loaded_net(topo, tables, "minimal", n_msgs=300)
        net.run(until=500.0)  # pause early: events still in flight
        assert net._events, "expected in-flight events"
        for item in net._events:
            assert type(item) is tuple
            assert type(item[0]) is float and type(item[2]) is int

    def test_port_state_is_plain_lists(self, parts):
        # numpy scalar indexing on these would silently reintroduce the
        # slow path; pin the types.
        topo, tables = parts
        net = _loaded_net(topo, tables, "minimal", n_msgs=10)
        for attr in ("_port_busy", "_port_bytes", "_port_rr", "_port_queued",
                     "_nic_busy", "_ej_busy"):
            assert type(getattr(net, attr)) is list, attr
