"""Tests for the BFS kernels, including agreement between implementations."""

import numpy as np
import pytest

from repro.graphs.bfs import (
    UNREACHED,
    bfs_distances,
    distance_matrix,
    distance_profile,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)


class TestSingleSource:
    def test_path_graph(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2], [2, 3]]))
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3]

    def test_cycle(self):
        g = cycle_graph(8)
        d = bfs_distances(g, 0)
        assert d.tolist() == [0, 1, 2, 3, 4, 3, 2, 1]

    def test_disconnected(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        d = bfs_distances(g, 0)
        assert d[2] == UNREACHED and d[3] == UNREACHED

    def test_hypercube_is_hamming(self):
        g = hypercube_graph(6)
        d = bfs_distances(g, 0)
        expect = np.array([bin(v).count("1") for v in range(64)])
        assert np.array_equal(d, expect)


class TestDistanceMatrix:
    @pytest.mark.parametrize("batch", [1, 3, 64, 512])
    def test_agrees_with_single_source(self, batch):
        g = random_regular_graph(60, 4, seed=7)
        dm = distance_matrix(g, batch=batch)
        for s in (0, 17, 59):
            assert np.array_equal(dm[s], bfs_distances(g, s).astype(dm.dtype))

    def test_symmetric(self):
        g = random_regular_graph(50, 3, seed=3)
        dm = distance_matrix(g)
        assert np.array_equal(dm, dm.T)

    def test_subset_of_sources(self):
        g = cycle_graph(10)
        dm = distance_matrix(g, sources=np.array([2, 5]))
        assert dm.shape == (2, 10)
        assert dm[0, 2] == 0 and dm[1, 5] == 0

    def test_disconnected_marked(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        dm = distance_matrix(g)
        assert dm[0, 2] == -1


class TestDistanceProfile:
    def test_cycle_profile(self):
        hist, diam, mean = distance_profile(cycle_graph(6))
        # C6: each vertex has 2 at dist 1, 2 at dist 2, 1 at dist 3.
        assert diam == 3
        assert hist[1] == 12 and hist[2] == 12 and hist[3] == 6
        assert mean == pytest.approx((12 + 24 + 18) / 30)

    def test_torus_diameter(self):
        g = torus_graph((4, 4))
        _, diam, _ = distance_profile(g)
        assert diam == 4  # 2 + 2

    def test_raises_on_disconnected(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        with pytest.raises(ValueError):
            distance_profile(g)

    def test_small_batch_streams_correctly(self):
        g = hypercube_graph(5)
        h1, d1, m1 = distance_profile(g, batch=7)
        h2, d2, m2 = distance_profile(g, batch=512)
        assert np.array_equal(h1, h2) and d1 == d2 and m1 == pytest.approx(m2)
