"""Dynamic fault injection under live traffic (sim.faults + FaultMask).

Covers the contract in docs/resilience.md: mid-run link/router failures
reroute or drop in-flight traffic, recovery heals the mask exactly,
accounting conserves packets, runs stay deterministic per seed, and the
inlined fast loop bails out whenever a schedule is attached.
"""

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.routing import RoutingTables, make_routing
from repro.sim import FaultEvent, FaultSchedule, NetworkSimulator, SimConfig
from repro.sim.faults import LINK_DOWN, LINK_UP, ROUTER_DOWN
from repro.topology import build_lps

ROUTINGS = ["minimal", "valiant", "ugal", "ugal-g"]


@pytest.fixture(scope="module")
def parts():
    topo = build_lps(3, 5)  # 120 routers, radix 4, 240 links
    tables = RoutingTables(topo.graph)
    tables.build_fast_path()
    return topo, tables


def _loaded_net(topo, tables, routing="minimal", faults=None, seed=0,
                n_msgs=300):
    net = NetworkSimulator(
        topo, make_routing(routing, tables, seed=seed),
        SimConfig(concentration=2), tables=tables, faults=faults,
    )
    rng = np.random.default_rng(seed + 99)
    for _ in range(n_msgs):
        s, d = rng.integers(0, net.n_endpoints, 2)
        if s != d:
            net.send(int(s), int(d))
    return net


def _conserved(stats) -> bool:
    return stats.n_injected == len(stats.latencies_ns) + stats.n_dropped


class TestFaultSchedule:
    def test_sorted_and_normalised(self):
        s = FaultSchedule([(500.0, LINK_DOWN, 3, 7), (100.0, ROUTER_DOWN, 2)])
        assert [ev.t for ev in s] == [100.0, 500.0]
        assert isinstance(s[0], FaultEvent)

    def test_rejects_bad_events(self):
        with pytest.raises(ParameterError):
            FaultSchedule([(10.0, "meteor-strike", 1, 2)])
        with pytest.raises(ParameterError):
            FaultSchedule([(10.0, LINK_DOWN, 1)])  # missing endpoint
        with pytest.raises(ParameterError):
            FaultSchedule([(-1.0, ROUTER_DOWN, 1)])

    def test_random_link_faults_match_offline_sampler(self, parts):
        # Dynamic schedules damage the same links the Fig. 5 offline study
        # deletes at the same seed.
        from repro.graphs.failures import sample_edge_failures

        topo, _ = parts
        sched = FaultSchedule.random_link_faults(topo.graph, 0.1, 1000.0,
                                                 seed=5)
        offline = {tuple(e) for e in sample_edge_failures(topo.graph, 0.1, 5)}
        assert {(ev.a, ev.b) for ev in sched} == offline
        assert all(ev.kind == LINK_DOWN for ev in sched)

    def test_recover_must_follow_failure(self, parts):
        topo, _ = parts
        with pytest.raises(ParameterError):
            FaultSchedule.random_link_faults(topo.graph, 0.1, 1000.0,
                                             t_recover=1000.0)


class TestFaultInjection:
    @pytest.mark.parametrize("routing", ROUTINGS)
    def test_conservation_under_link_faults(self, parts, routing):
        # Every injected packet is eventually delivered or counted dropped,
        # for every routing policy.
        topo, tables = parts
        sched = FaultSchedule.random_link_faults(topo.graph, 0.2, 2000.0,
                                                 seed=3)
        stats = _loaded_net(topo, tables, routing, faults=sched).run()
        assert _conserved(stats)
        assert len(stats.latencies_ns) > 0

    def test_mild_fault_reroutes_everything(self, parts):
        # One failed link on a radix-4 expander: rerouting (not dropping)
        # should deliver every packet that wasn't mid-flight on the link.
        topo, tables = parts
        u = 0
        v = int(topo.graph.neighbors(0)[0])
        sched = FaultSchedule([(1500.0, LINK_DOWN, u, v)])
        stats = _loaded_net(topo, tables, faults=sched).run()
        assert _conserved(stats)
        # At most the single in-flight packet can be lost.
        assert stats.n_dropped <= 1

    def test_severed_minimal_set_uses_fallback(self, parts):
        # Kill every link of router 0 except one: traffic through 0 must
        # take non-minimal hops (or drop), never raise.
        topo, tables = parts
        nbrs = topo.graph.neighbors(0)
        events = [(1000.0, LINK_DOWN, 0, int(v)) for v in nbrs[:-1]]
        stats = _loaded_net(topo, tables, faults=FaultSchedule(events)).run()
        assert _conserved(stats)
        assert stats.nonminimal_hops > 0

    def test_isolated_router_drops_unreachable(self, parts):
        # Sever router 0 completely via link faults: packets for its
        # endpoints can never be delivered and must drop (unreachable at
        # the last live router, or ttl while wandering).
        topo, tables = parts
        nbrs = topo.graph.neighbors(0)
        events = [(0.0, LINK_DOWN, 0, int(v)) for v in nbrs]
        net = _loaded_net(topo, tables, faults=FaultSchedule(events))
        stats = net.run()
        assert _conserved(stats)
        assert stats.n_dropped > 0
        assert set(stats.drops) <= {"ttl", "unreachable", "link-down"}

    def test_refailed_link_does_not_kill_later_traffic(self, parts):
        # Regression: down/up/down/up while ONE transmission is in flight
        # must mint only one kill token — a stale second token used to
        # drop the next healthy transmission over the recovered link.
        topo, tables = parts
        u = 0
        v = int(topo.graph.neighbors(0)[0])
        # ep 2*u -> ep 2*v is a one-hop route pinned to link u-v (the only
        # minimal candidate of a distance-1 pair is the neighbour itself).
        sched = FaultSchedule([
            (500.0, LINK_DOWN, u, v), (520.0, LINK_UP, u, v),
            (540.0, LINK_DOWN, u, v), (560.0, LINK_UP, u, v),
        ])
        net = NetworkSimulator(
            topo, make_routing("minimal", tables), SimConfig(concentration=2),
            tables=tables, faults=sched,
        )
        net.send(2 * u, 2 * v, t=0.0)  # in flight on u-v during the faults
        net.send(2 * u, 2 * v, t=1200.0)  # link long recovered: must arrive
        stats = net.run()
        assert stats.drops == {"link-down": 1}
        assert len(stats.latencies_ns) == 1
        assert _conserved(stats)

    def test_total_loss_summary_has_fault_keys(self, parts):
        # Regression: a run delivering zero packets must still expose the
        # fault-accounting keys (a total-loss resilience cell produces a
        # row, not a KeyError).
        topo, tables = parts
        nbrs = topo.graph.neighbors(0)
        events = [(0.0, LINK_DOWN, 0, int(v)) for v in nbrs]
        net = NetworkSimulator(
            topo, make_routing("minimal", tables), SimConfig(concentration=2),
            tables=tables, faults=FaultSchedule(events),
        )
        net.send(2, 0, t=10.0)  # into the isolated router: can never arrive
        s = net.run().summary()
        assert s["delivered"] == 0
        assert s["delivered_fraction"] == 0.0
        assert s["dropped"] == 1
        assert s["requeued"] >= 0
        assert s["nonminimal_hops"] >= 0

    def test_router_failure_drops_and_recovers(self, parts):
        topo, tables = parts
        sched = FaultSchedule.router_faults([0, 7], 1000.0, t_recover=8000.0)
        net = _loaded_net(topo, tables, "ugal", faults=sched)
        stats = net.run()
        assert _conserved(stats)
        assert stats.drops.get("router-down", 0) > 0
        assert net._fault_mask.pristine  # both routers fully restored

    def test_link_recovery_restores_pristine_mask(self, parts):
        topo, tables = parts
        sched = FaultSchedule.random_link_faults(
            topo.graph, 0.3, t_fail=1500.0, seed=3, t_recover=5000.0
        )
        net = _loaded_net(topo, tables, faults=sched)
        stats = net.run()
        assert _conserved(stats)
        assert net._fault_mask.pristine

    def test_requeued_packets_counted(self, parts):
        topo, tables = parts
        sched = FaultSchedule.random_link_faults(topo.graph, 0.25, 2000.0,
                                                 seed=1)
        stats = _loaded_net(topo, tables, n_msgs=500, faults=sched).run()
        assert stats.n_requeued > 0
        assert _conserved(stats)

    @pytest.mark.parametrize("routing", ["minimal", "ugal"])
    def test_deterministic_per_seed(self, parts, routing):
        topo, tables = parts

        def once():
            sched = FaultSchedule.random_link_faults(topo.graph, 0.2,
                                                     2000.0, seed=3)
            return _loaded_net(topo, tables, routing, faults=sched).run()

        a, b = once(), once()
        assert a.latencies_ns == b.latencies_ns
        assert a.hops == b.hops
        assert a.drops == b.drops
        assert a.n_requeued == b.n_requeued
        assert a.epochs == b.epochs

    def test_empty_schedule_delivers_everything(self, parts):
        # An empty schedule still runs the degraded machinery: it must be
        # lossless and semantically complete on a pristine network.
        topo, tables = parts
        stats = _loaded_net(topo, tables, faults=FaultSchedule()).run()
        assert _conserved(stats)
        assert stats.n_dropped == 0


class TestFastPathBailout:
    def test_run_fast_bypassed_with_schedule(self, parts, monkeypatch):
        topo, tables = parts
        net = _loaded_net(topo, tables, faults=FaultSchedule())
        monkeypatch.setattr(
            NetworkSimulator, "_run_fast",
            lambda self: (_ for _ in ()).throw(AssertionError("fast loop ran")),
        )
        stats = net.run()  # must take the handler path
        assert _conserved(stats)

    def test_run_fast_used_without_schedule(self, parts, monkeypatch):
        topo, tables = parts
        net = _loaded_net(topo, tables)
        called = []
        orig = NetworkSimulator._run_fast
        monkeypatch.setattr(
            NetworkSimulator, "_run_fast",
            lambda self: called.append(1) or orig(self),
        )
        net.run()
        assert called

    def test_schedule_must_attach_before_traffic(self, parts):
        topo, tables = parts
        net = _loaded_net(topo, tables)  # already has queued sends
        with pytest.raises(SimulationError):
            net.set_fault_schedule(FaultSchedule())

    def test_schedule_attaches_only_once(self, parts):
        topo, tables = parts
        net = NetworkSimulator(
            topo, make_routing("minimal", tables), SimConfig(),
            tables=tables, faults=FaultSchedule(),
        )
        with pytest.raises(SimulationError):
            net.set_fault_schedule(FaultSchedule())


class TestEpochStats:
    def test_epoch_per_fault_event(self, parts):
        topo, tables = parts
        sched = FaultSchedule.random_link_faults(
            topo.graph, 0.1, t_fail=2000.0, seed=2, t_recover=6000.0
        )
        stats = _loaded_net(topo, tables, faults=sched).run()
        assert len(stats.epochs) == len(sched)
        rows = stats.epoch_rows()
        assert len(rows) == len(sched)
        # Deltas reconcile with the cumulative totals.
        pre_delivered = stats.epochs[0]["delivered"]
        assert pre_delivered + sum(r["delivered"] for r in rows) == len(
            stats.latencies_ns
        )
        assert all(r["t_end"] >= r["t_start"] for r in rows)

    def test_no_epochs_without_schedule(self, parts):
        topo, tables = parts
        stats = _loaded_net(topo, tables).run()
        assert stats.epochs == []
        assert stats.epoch_rows() == []

    def test_summary_reports_fault_metrics(self, parts):
        topo, tables = parts
        sched = FaultSchedule.random_link_faults(topo.graph, 0.2, 2000.0,
                                                 seed=3)
        s = _loaded_net(topo, tables, faults=sched).run().summary()
        assert s["dropped"] > 0
        assert 0.0 < s["delivered_fraction"] < 1.0
        assert s["nonminimal_hops"] > 0
        assert s["requeued"] >= 0


class TestFiniteBuffersWithFaults:
    def test_conservation_with_finite_buffers(self, parts):
        # Drops must release held buffers; otherwise the run deadlocks on
        # buffer space that dead packets still occupy.
        topo, tables = parts
        sched = FaultSchedule.random_link_faults(topo.graph, 0.15, 2000.0,
                                                 seed=4)
        net = NetworkSimulator(
            topo, make_routing("minimal", tables, seed=0),
            SimConfig(concentration=2, finite_buffers=True),
            tables=tables, faults=sched,
        )
        rng = np.random.default_rng(99)
        for _ in range(300):
            s, d = rng.integers(0, net.n_endpoints, 2)
            if s != d:
                net.send(int(s), int(d))
        stats = net.run()
        assert not stats.deadlocked
        assert _conserved(stats)
