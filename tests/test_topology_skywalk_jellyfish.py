"""Tests for the SkyWalk stand-in and Jellyfish."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.metrics import is_connected
from repro.spectral import lambda_g, ramanujan_bound
from repro.topology import build_jellyfish, build_lps, build_skywalk


class TestSkyWalk:
    def test_port_budget_respected(self):
        t = build_skywalk(100, 8, seed=0)
        assert t.graph.degrees().max() <= 8

    def test_connected(self):
        for seed in range(3):
            t = build_skywalk(80, 6, seed=seed)
            assert is_connected(t.graph)

    def test_seeded_reproducible(self):
        a = build_skywalk(60, 5, seed=7)
        b = build_skywalk(60, 5, seed=7)
        assert np.array_equal(a.graph.edge_array(), b.graph.edge_array())

    def test_short_cable_preference(self):
        # Lower tau -> shorter total native wire length.
        from repro.layout import native_layout

        short = native_layout(build_skywalk(100, 8, seed=1, tau=2.0))
        rand = native_layout(build_skywalk(100, 8, seed=1, tau=500.0))
        assert short.total_wire_m < rand.total_wire_m

    def test_rejects_radix_ge_n(self):
        with pytest.raises(ParameterError):
            build_skywalk(10, 10)


class TestJellyfish:
    def test_regular(self):
        t = build_jellyfish(90, 6, seed=1)
        assert np.all(t.graph.degrees() == 6)

    def test_sub_ramanujan_vs_lps(self):
        # Section II: Jellyfish (random regular) has good but sub-optimal
        # expansion; LPS of the same size/degree is Ramanujan.  With high
        # probability lambda(Jellyfish) > lambda(LPS) won't always hold at
        # tiny sizes, but the Ramanujan *bound* comparison is deterministic.
        lps = build_lps(11, 7)
        jf = build_jellyfish(lps.n_routers, lps.radix, seed=3)
        assert lambda_g(lps.graph) <= ramanujan_bound(12) + 1e-6
        # Jellyfish is usually close to (and above) the bound; allow slack.
        assert lambda_g(jf.graph) > 0
