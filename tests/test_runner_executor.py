"""Executor failure paths: a raising cell must fail loud, clean, and cheap.

Contract (enforced in ``repro.runner.executor._run_cells``):

* the error surfaces as :class:`CellExecutionError` with the failing
  cell's :class:`ExperimentSpec` attached (and the original exception
  chained as ``__cause__``);
* the disk cache is never poisoned — no entry is written for the failed
  cell, and the cells that did complete remain individually cached;
* the process pool shuts down instead of hanging (pending cells are
  cancelled; the run returns promptly).
"""

from __future__ import annotations

import pytest

from repro.errors import CellExecutionError
from repro.runner import run_experiment
from repro.runner.registry import ExperimentDef
from repro.utils.diskcache import DiskCache

# A registry-shaped experiment whose driver raises for one cell: fig5's
# driver looks families up in the size-class dict, so an unknown family
# KeyErrors.  Dotted-path drivers keep the pool workers importable.
_BROKEN = ExperimentDef(
    name="broken-sweep",
    title="sweep with one poisoned cell",
    fn="repro.experiments.fig5:run",
    presets={
        "small": {
            "class_id": 1,
            "proportions": (0.0,),
            "max_trials_per_batch": 1,
            "families": ("LPS", "NOT-A-FAMILY"),
        }
    },
    cell_axes=("families",),
)

_OK = ExperimentDef(
    name="ok-sweep",
    title="the same sweep without the poisoned cell",
    fn="repro.experiments.fig5:run",
    presets={
        "small": {
            "class_id": 1,
            "proportions": (0.0,),
            "max_trials_per_batch": 1,
            "families": ("LPS",),
        }
    },
    cell_axes=("families",),
)


def _deadlocking_cell(families=("ring",)):  # noqa: ARG001 (cell-axis shape)
    """A driver that genuinely deadlocks: C8 ring, one VC, 1-packet buffers.

    Offset-3 minimal traffic on a single-VC ring wedges solid (the
    Section V-A scenario, see ``tests/test_sim_deadlock.py``); the run
    raises :class:`BufferDeadlockError` instead of returning a result.
    """
    from repro.graphs.generators import cycle_graph
    from repro.routing import RoutingTables, make_routing
    from repro.sim import NetworkSimulator, SimConfig
    from repro.topology.base import Topology

    topo = Topology(name="ring8", family="test", graph=cycle_graph(8))
    tables = RoutingTables(topo.graph)
    routing = make_routing("minimal", tables, seed=0)
    routing.required_vcs = lambda: 1
    cfg = SimConfig(concentration=1, finite_buffers=True,
                    buffer_bytes=4096, packet_bytes=4096)
    net = NetworkSimulator(topo, routing, cfg, tables=tables)
    for src in range(8):
        for _ in range(6):
            net.send(src, (src + 3) % 8)
    return net.run()


#: Resolvable in-process only (jobs=1): the tests directory is on
#: ``sys.path`` under pytest's default import mode.
_DEADLOCK = ExperimentDef(
    name="deadlock-sweep",
    title="congested sweep whose only cell genuinely deadlocks",
    fn="test_runner_executor:_deadlocking_cell",
    presets={"small": {"families": ("ring",)}},
    cell_axes=("families",),
)


@pytest.fixture()
def cache(tmp_path):
    return DiskCache(tmp_path / "cache", enabled=True)


def _entries(cache: DiskCache) -> int:
    return sum(1 for p in cache.root.rglob("*") if p.is_file())


@pytest.mark.parametrize("jobs", [1, 2])
def test_raising_cell_surfaces_with_spec(cache, jobs):
    with pytest.raises(CellExecutionError) as exc_info:
        run_experiment(_BROKEN, preset="small", jobs=jobs, cache=cache)
    err = exc_info.value
    assert err.spec is not None
    assert "NOT-A-FAMILY" in err.spec.name
    assert err.spec.kwargs["families"] == ("NOT-A-FAMILY",)
    assert err.spec.fn == "repro.experiments.fig5:run"
    if jobs == 1:
        # In-process execution chains the original exception; pool
        # execution reconstructs it across the process boundary.
        assert isinstance(err.__cause__, KeyError)


def test_failed_cell_does_not_poison_cache(cache):
    from repro.runner.executor import _result_key

    with pytest.raises(CellExecutionError) as exc_info:
        run_experiment(_BROKEN, preset="small", jobs=1, cache=cache)
    failing_spec = exc_info.value.spec
    # Nothing was stored under the failing cell's key...
    assert cache.get(_result_key(failing_spec)) is None
    # ...and retrying still fails (no stale poisoned entry served).
    with pytest.raises(CellExecutionError):
        run_experiment(_BROKEN, preset="small", jobs=1, cache=cache)


def test_surviving_cells_stay_cached_after_failure(cache):
    with pytest.raises(CellExecutionError):
        run_experiment(_BROKEN, preset="small", jobs=1, cache=cache)
    # The healthy LPS cell completed before the poisoned one and was
    # cached: running the healthy subset is a pure cache hit.
    reports = run_experiment(_OK, preset="small", jobs=1, cache=cache)
    assert reports[0].n_cached_cells == reports[0].n_cells


def test_buffer_deadlock_surfaces_as_cell_error_and_is_not_cached(cache):
    # A finite-buffer deadlock inside a cell is a *diagnosis*, not a
    # result: it must surface as CellExecutionError with the structured
    # BufferDeadlockError (witness cycle included) chained underneath,
    # and nothing may reach the disk cache — a poisoned entry would
    # replay the deadlock's partial stats as a legitimate result forever.
    from repro.errors import BufferDeadlockError
    from repro.runner.executor import _result_key

    with pytest.raises(CellExecutionError) as exc_info:
        run_experiment(_DEADLOCK, preset="small", jobs=1, cache=cache)
    err = exc_info.value
    assert isinstance(err.__cause__, BufferDeadlockError)
    assert err.__cause__.cycle  # the (edge, VC) witness travels along
    assert "finite-buffer deadlock" in str(err)
    assert cache.get(_result_key(err.spec)) is None
    # Retrying really deadlocks again — no stale entry was served.
    with pytest.raises(CellExecutionError):
        run_experiment(_DEADLOCK, preset="small", jobs=1, cache=cache)


def test_pool_failure_returns_promptly_and_cleans_up(cache):
    # jobs=2 with the failure in the sweep: the run must terminate (no
    # hung pool) and leave the cache no bigger than the successful cells.
    before = _entries(cache)
    with pytest.raises(CellExecutionError):
        run_experiment(_BROKEN, preset="small", jobs=2, cache=cache)
    after = _entries(cache)
    # At most the healthy cell (plus its derived topology artifacts) was
    # written; the failing cell added nothing.
    assert after >= before
    ok = run_experiment(_OK, preset="small", jobs=1, cache=cache)
    assert ok[0].result.rows


# ---------------------------------------------------------------------------
# Merge semantics: notes and columns across cells.


def _notes_cell(families=("a",)):
    """One row per family; families starting with 's' share one note."""
    from repro.experiments.common import ExperimentResult

    fam = families[0]
    note = "" if fam == "quiet" else (
        "shared note" if fam.startswith("s") else f"note-{fam}"
    )
    return ExperimentResult(
        experiment="notes-sweep", rows=[{"family": fam}], notes=note
    )


_NOTES = ExperimentDef(
    name="notes-sweep",
    title="sweep whose cells carry (partly duplicated) notes",
    fn="test_runner_executor:_notes_cell",
    presets={"small": {"families": ("a", "s1", "quiet", "s2", "b")}},
    cell_axes=("families",),
)


def _columns_cell(families=("a",)):
    """Cells disagree on column order — the merge must refuse to guess."""
    from repro.experiments.common import ExperimentResult

    fam = families[0]
    columns = ["family", "x"] if fam == "a" else ["x", "family"]
    return ExperimentResult(
        experiment="cols-sweep",
        rows=[{"family": fam, "x": 1}],
        columns=columns,
    )


_COLS = ExperimentDef(
    name="cols-sweep",
    title="sweep whose cells disagree on columns",
    fn="test_runner_executor:_columns_cell",
    presets={"small": {"families": ("a", "b")}},
    cell_axes=("families",),
)


def test_notes_merged_deduplicated_in_cell_order(cache):
    # Every cell's notes survive the merge (not just cell 0's), empties
    # are dropped, duplicates collapse, and cell order is preserved.
    reports = run_experiment(_NOTES, preset="small", jobs=1, cache=cache)
    assert reports[0].result.notes == "note-a\nshared note\nnote-b"


def test_notes_merge_stable_through_cache(cache):
    run_experiment(_NOTES, preset="small", jobs=1, cache=cache)
    rerun = run_experiment(_NOTES, preset="small", jobs=1, cache=cache)
    assert rerun[0].result.notes == "note-a\nshared note\nnote-b"


def test_column_disagreement_raises(cache):
    with pytest.raises(ValueError, match="column disagreement"):
        run_experiment(_COLS, preset="small", jobs=1, cache=cache)


# ---------------------------------------------------------------------------
# Composite override forwarding: typos fail loud, valid keys route.

_MINI_COMPOSITE = ExperimentDef(
    name="mini-composite",
    title="two cheap fig4 panels under one name",
    parts=("fig4.design_space", "fig4.feasible_sizes"),
)


def test_composite_rejects_override_no_part_accepts(cache):
    from repro.errors import ParameterError

    with pytest.raises(ParameterError) as exc_info:
        run_experiment(
            _MINI_COMPOSITE, preset="small", overrides={"nope": 1}, cache=cache
        )
    message = str(exc_info.value)
    assert "nope" in message
    # The error names the parts and the keys that *would* be accepted.
    assert "fig4.design_space" in message
    assert "max_pq" in message


def test_composite_rejects_before_running_anything(cache):
    with pytest.raises(Exception):
        run_experiment(
            _MINI_COMPOSITE, preset="small", overrides={"nope": 1}, cache=cache
        )
    assert _entries(cache) == 0


def test_composite_forwards_valid_override_to_accepting_part(cache):
    # max_pq is a design_space parameter; feasible_sizes must still run.
    reports = run_experiment(
        _MINI_COMPOSITE, preset="small", overrides={"max_pq": 20}, cache=cache
    )
    assert [r.name.split("[")[0] for r in reports] == [
        "fig4.design_space",
        "fig4.feasible_sizes",
    ]
    assert all(r.result.rows for r in reports)


# ---------------------------------------------------------------------------
# Cooperative cancellation: stop at cell boundaries, never poison the cache.


def _slow_cell(families=("a",), delay=0.05):
    import time as _time

    from repro.experiments.common import ExperimentResult

    _time.sleep(delay)
    return ExperimentResult(
        experiment="slow-sweep", rows=[{"family": families[0]}]
    )


_SLOW = ExperimentDef(
    name="slow-sweep",
    title="four cells that each take a beat",
    fn="test_runner_executor:_slow_cell",
    presets={"small": {"families": ("a", "b", "c", "d"), "delay": 0.05}},
    cell_axes=("families",),
)


def _tmp_files(cache):
    return list(cache.root.glob("**/*.tmp"))


def test_precancelled_token_runs_nothing(cache):
    from repro.errors import JobCancelledError
    from repro.runner import CancelToken

    token = CancelToken()
    token.cancel()
    with pytest.raises(JobCancelledError, match=r"0/4 cells"):
        run_experiment(_SLOW, preset="small", jobs=1, cache=cache, cancel=token)
    assert _entries(cache) == 0


@pytest.mark.parametrize("jobs", [1, 2])
def test_cancel_mid_run_keeps_completed_cells_only(cache, jobs):
    from repro.errors import JobCancelledError
    from repro.runner import CancelToken

    token = CancelToken()
    kinds = []

    def sink(event):
        kinds.append(event["type"])
        if event["type"] == "cell-result":
            token.cancel()

    with pytest.raises(JobCancelledError) as exc_info:
        run_experiment(
            _SLOW, preset="small", jobs=jobs, cache=cache,
            events=sink, cancel=token,
        )
    assert "cells complete" in str(exc_info.value)
    assert "cell-result" in kinds
    # The no-poisoning contract: no half-written tempfiles, and every
    # entry on disk is a complete cell result — so a rerun reuses the
    # finished cells and computes only the remainder.
    assert _tmp_files(cache) == []
    reports = run_experiment(_SLOW, preset="small", jobs=1, cache=cache)
    assert reports[0].n_cells == 4
    assert reports[0].n_cached_cells >= 1
    assert len(reports[0].result.rows) == 4


def test_event_sink_sees_cell_lifecycle_and_cache_hits(cache):
    events = []
    run_experiment(
        _SLOW, preset="small", jobs=1, cache=cache, events=events.append
    )
    kinds = [e["type"] for e in events]
    assert kinds == ["cell-start", "cell-result"] * 4
    first_result = events[1]
    assert first_result["rows"] == [{"family": "a"}]
    assert first_result["from_cache"] is False
    assert first_result["total"] == 4

    # Rerun: per-cell hits stream as cell-result events with from_cache
    # set — except a full-spec hit, which short-circuits to one event.
    rerun_events = []
    run_experiment(
        _SLOW, preset="small", jobs=1, cache=cache, events=rerun_events.append
    )
    assert [e["type"] for e in rerun_events] == ["experiment-cached"]
