"""Tests for reference generators."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    random_regular_graph,
    torus_graph,
)
from repro.graphs.metrics import is_connected


class TestDeterministicGenerators:
    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15 and g.degree() == 5

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.num_edges == 7 and g.degree() == 2

    def test_cycle_too_small(self):
        with pytest.raises(ParameterError):
            cycle_graph(2)

    def test_hypercube(self):
        g = hypercube_graph(5)
        assert g.n == 32 and g.degree() == 5

    def test_torus_3d(self):
        g = torus_graph((3, 4, 5))
        assert g.n == 60 and g.degree() == 6

    def test_torus_dim2_collapses_parallel(self):
        # A dimension of size 2 yields a single edge (not a double edge).
        g = torus_graph((2, 5))
        assert g.degrees().max() == 3


class TestRandomRegular:
    @pytest.mark.parametrize("n,k", [(20, 3), (50, 4), (101, 6), (64, 7)])
    def test_regular(self, n, k):
        if n * k % 2:
            n += 1
        g = random_regular_graph(n, k, seed=5)
        assert g.n == n
        assert np.all(g.degrees() == k)

    def test_odd_product_rejected(self):
        with pytest.raises(ParameterError):
            random_regular_graph(5, 3)

    def test_k_too_large_rejected(self):
        with pytest.raises(ParameterError):
            random_regular_graph(4, 4)

    def test_deterministic_per_seed(self):
        a = random_regular_graph(40, 4, seed=9)
        b = random_regular_graph(40, 4, seed=9)
        assert np.array_equal(a.edge_array(), b.edge_array())

    def test_different_seeds_differ(self):
        a = random_regular_graph(40, 4, seed=1)
        b = random_regular_graph(40, 4, seed=2)
        assert not np.array_equal(a.edge_array(), b.edge_array())

    def test_usually_connected(self):
        # k >= 3 random regular graphs are a.a.s. connected.
        g = random_regular_graph(100, 4, seed=11)
        assert is_connected(g)
