"""Hypothesis properties of the collective schedule generators.

Every (collective, algorithm, rank count) combination must produce a
chunk-level policy whose lowered DAG is executable and whose symbolic
replay conserves chunks:

* **Conservation** — every rank the collective promises a chunk to ends
  owning the complete version: fully reduced (all p contributions,
  exactly once) for allreduce/reduce-scatter, the origin contribution
  for allgather.  ``required_ownership`` replays the schedule and raises
  on any violation, including double-counted contributions.
* **Executability** — message ids are ``0..n-1`` in list order (the
  batched engine's closed-loop contract), dependencies point strictly
  backwards, and the DAG is acyclic, so both engines can drain it.
* **Trigger locality** — an entry's dependency trigger is ownership at
  its source: every dep must be an earlier entry that delivered the
  *same chunk to the sender*.
* **Round counts** — ring allreduce takes 2(p−1) steps, recursive
  doubling log₂p rounds, Rabenseifner a reduce-scatter phase plus an
  allgather phase, with the non-power-of-two fold adding exactly one
  pre- and one post-step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.workloads.collectives import (
    ALGORITHMS,
    COLLECTIVES,
    CollectiveMotif,
    chunk_sizes,
)

ranks = st.integers(min_value=2, max_value=17)
collectives = st.sampled_from(COLLECTIVES)
algorithms = st.sampled_from(ALGORITHMS)
payloads = st.integers(min_value=1, max_value=1 << 20)


def _dag_is_acyclic(messages):
    indeg = {m.mid: len(m.deps) for m in messages}
    dependents = {}
    for m in messages:
        for d in m.deps:
            dependents.setdefault(d, []).append(m.mid)
    stack = [m.mid for m in messages if not m.deps]
    seen = 0
    while stack:
        v = stack.pop()
        seen += 1
        for w in dependents.get(v, ()):
            indeg[w] -= 1
            if indeg[w] == 0:
                stack.append(w)
    return seen == len(messages)


@settings(max_examples=60, deadline=None)
@given(coll=collectives, algo=algorithms, p=ranks, total=payloads)
def test_conservation_and_executability(coll, algo, p, total):
    motif = CollectiveMotif(coll, algo, p, total_bytes=total)
    msgs = motif.generate()
    # Conservation: the replay raises on incomplete or double-counted
    # ownership; the id map must cover every chunk.
    required = motif.required_ownership()
    assert {c for (_, c) in required} == set(range(p))
    # Executability on both engines.
    assert [m.mid for m in msgs] == list(range(len(msgs)))
    assert all(d < m.mid for m in msgs for d in m.deps)
    assert all(m.src_rank != m.dst_rank for m in msgs)
    assert _dag_is_acyclic(msgs)


@settings(max_examples=60, deadline=None)
@given(coll=collectives, algo=algorithms, p=ranks)
def test_dependency_triggers_are_ownership_at_source(coll, algo, p):
    # CCL policy semantics: an entry keyed (chunk_id, src) fires when src
    # owns the chunk, so its deps may only be earlier deliveries of that
    # same chunk *to* src.
    entries = CollectiveMotif(coll, algo, p).schedule()
    for e in entries:
        assert e.key == (e.chunk_id, e.src)
        for d in e.deps:
            assert entries[d].chunk_id == e.chunk_id
            assert entries[d].dst == e.src


@settings(max_examples=60, deadline=None)
@given(coll=collectives, p=ranks)
def test_ring_round_counts(coll, p):
    motif = CollectiveMotif(coll, "ring", p)
    expected = 2 * (p - 1) if coll == "allreduce" else p - 1
    assert motif.n_steps == expected


@settings(max_examples=60, deadline=None)
@given(coll=collectives, p=ranks)
def test_recursive_doubling_round_counts(coll, p):
    # log2(core) pairwise-exchange rounds; the non-power-of-two fold adds
    # one pre-step and one post-step.
    motif = CollectiveMotif(coll, "recursive-doubling", p)
    core_rounds = (p.bit_length() - 1)
    folded = p & (p - 1) != 0
    assert motif.n_steps == core_rounds + (2 if folded else 0)


@settings(max_examples=60, deadline=None)
@given(p=ranks)
def test_rabenseifner_phase_structure(p):
    # Allreduce = reduce-scatter phase + allgather phase.  The halving
    # phase shrinks per-step traffic, the doubling phase mirrors it.
    motif = CollectiveMotif("allreduce", "rabenseifner", p)
    core_rounds = p.bit_length() - 1
    folded = p & (p - 1) != 0
    assert motif.n_steps == 2 * core_rounds + (2 if folded else 0)
    if not folded:
        # The standalone halves compose exactly (when folded, each half
        # re-pays the fold's pre/post steps, which allreduce shares).
        rs = CollectiveMotif("reduce-scatter", "rabenseifner", p)
        ag = CollectiveMotif("allgather", "rabenseifner", p)
        assert rs.n_steps + ag.n_steps == motif.n_steps
        # The reduce-scatter phase's per-step traffic shrinks as it
        # converges onto per-rank blocks.
        per_step_rs = [
            sum(e.size for e in motif.schedule() if e.step == s)
            for s in range(core_rounds)
        ]
        assert per_step_rs == sorted(per_step_rs, reverse=True)


@settings(max_examples=40, deadline=None)
@given(coll=collectives, algo=algorithms,
       p=st.integers(min_value=3, max_value=17).filter(
           lambda v: v & (v - 1) != 0))
def test_non_power_of_two_fallback(coll, algo, p):
    # Odd rank counts must still generate, conserve, and drain: the fold
    # (or the any-p ring/tree structure) absorbs the extras gracefully.
    motif = CollectiveMotif(coll, algo, p)
    motif.required_ownership()
    assert _dag_is_acyclic(motif.generate())
    if algo in ("recursive-doubling", "rabenseifner"):
        entries = motif.schedule()
        extras = set(range(1 << (p.bit_length() - 1), p))
        # Pre-step: every extra rank ships its contribution inward;
        # post-step: every extra rank receives its result back.
        assert {e.src for e in entries if e.step == 0} == extras
        last = motif.n_steps - 1
        assert {e.dst for e in entries if e.step == last} == extras


@settings(max_examples=40, deadline=None)
@given(total=payloads, p=ranks)
def test_chunk_sizes_tile_the_payload(total, p):
    sizes = chunk_sizes(total, p)
    assert len(sizes) == p
    assert all(s >= 1 for s in sizes)
    assert max(sizes) - min(sizes) <= 1
    if total >= p:
        assert sum(sizes) == total


def test_parameters_validated():
    with pytest.raises(ParameterError):
        CollectiveMotif("alltoall", "ring", 4)
    with pytest.raises(ParameterError):
        CollectiveMotif("allreduce", "butterfly", 4)
    with pytest.raises(ParameterError):
        CollectiveMotif("allreduce", "ring", 1)
    with pytest.raises(ParameterError):
        CollectiveMotif("allreduce", "ring", 4, total_bytes=0)
