"""Exact reproduction of the paper's worked Example 1 and Figure 2.

Example 1 constructs LPS(3, 5) by hand: the group is PGL(2, F5), the
normalised four-square solutions are (0,1,±1,±1), (x, y) = (0, 2), and the
generator for (0,1,1,1) has canonical coset representative [[1,2],[1,4]].
Figure 2 shows the vertex {[[0,1],[1,2]], ...} with its four neighbours
[[1,1],[2,4]], [[1,4],[3,4]], [[1,2],[1,4]], [[1,3],[4,4]].

These tests pin every number in that walkthrough.
"""

import numpy as np

from repro.algebra.mat2 import mat_canonicalize, mat_encode, mat_multiply
from repro.nt.modular import legendre_symbol, solve_sum_of_two_squares_plus_one
from repro.nt.quaternions import lps_generators_alpha
from repro.topology.lps import build_lps, lps_generator_matrices

Q = 5


class TestExample1:
    def test_group_is_pgl(self):
        # "Since x^2 != 3 (mod 5) for any x, the Legendre symbol (3/5) = -1
        # and hence the group is PGL(2, F5)."
        assert legendre_symbol(3, 5) == -1
        assert build_lps(3, 5).n_routers == 120  # |PGL(2,5)|

    def test_four_square_solutions(self):
        assert set(lps_generators_alpha(3)) == {
            (0, 1, 1, 1),
            (0, 1, -1, -1),
            (0, 1, -1, 1),
            (0, 1, 1, -1),
        }

    def test_xy_solution(self):
        # "using (x, y) = (0, 2) as a solution to x^2 + y^2 + 1 = 0 (mod 5)"
        assert solve_sum_of_two_squares_plus_one(5) == (0, 2)

    def test_generator_for_0111(self):
        # "the coset for the generator corresponding to (0,1,1,1) is
        # {[[1,2],[1,4]], ...}".
        gens = lps_generator_matrices(3, 5)
        keys = set(mat_encode(gens, Q).tolist())
        expected = mat_canonicalize(np.array([1, 2, 1, 4]), Q)
        assert int(mat_encode(expected, Q)[0]) in keys

    def test_figure2_edge_labels_are_the_generators(self):
        # Figure 2 labels the four edges out of [[0,1],[1,2]] by the
        # generating elements u^-1 v: [[1,1],[2,4]], [[1,4],[3,4]],
        # [[1,2],[1,4]], [[1,3],[4,4]] — exactly the generator set S.
        gens = lps_generator_matrices(3, 5)
        got = set(mat_encode(gens, Q).tolist())
        figure2 = [
            [1, 1, 2, 4],
            [1, 4, 3, 4],
            [1, 2, 1, 4],
            [1, 3, 4, 4],
        ]
        want = set(
            mat_encode(mat_canonicalize(np.array(figure2), Q), Q).tolist()
        )
        assert got == want

    def test_figure2_neighborhood_degree(self):
        # The centre vertex [[0,1],[1,2]] has exactly 4 distinct neighbours
        # v*s, none equal to the centre itself.
        center = mat_canonicalize(np.array([0, 1, 1, 2]), Q)[0]
        gens = lps_generator_matrices(3, 5)
        nbrs = mat_canonicalize(mat_multiply(center[None, :], gens, Q), Q)
        keys = set(mat_encode(nbrs, Q).tolist())
        assert len(keys) == 4
        assert int(mat_encode(center[None, :], Q)[0]) not in keys

    def test_figure2_scalar_coset_members(self):
        # The example lists {[[0,1],[1,2]], [[0,2],[2,4]], [[0,3],[3,1]],
        # [[0,4],[4,3]]} as ONE projective vertex.
        reps = np.array(
            [
                [0, 1, 1, 2],
                [0, 2, 2, 4],
                [0, 3, 3, 1],
                [0, 4, 4, 3],
            ]
        )
        canon = mat_canonicalize(reps, Q)
        keys = mat_encode(canon, Q)
        assert len(np.unique(keys)) == 1

    def test_generators_are_involutions(self):
        # p = 3 = 3 (mod 4) with a0 = 0: every generator squares to a
        # scalar, i.e. is an involution in PGL(2,5) — which is why the
        # generator set is symmetric despite conjugation leaving it.
        gens = lps_generator_matrices(3, 5)
        squares = mat_multiply(gens, gens, Q)
        for s in squares:
            m = s.reshape(2, 2)
            assert m[0, 1] == 0 and m[1, 0] == 0 and m[0, 0] == m[1, 1]
