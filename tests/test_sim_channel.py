"""Unit contracts of the shared lossy-link channel (``repro.sim.channel``).

The channel's whole reason to exist is cross-engine determinism: every
loss/jitter decision is a pure counter-hash of ``(seed, packet key, hop,
attempt, lane)``, so the event and batched engines — which evaluate
crossings in completely different orders — compute identical outcomes.
This module pins that purity, the statistical sanity of the draws, the
config validation, and the total-loss stats row (a run where *everything*
drops must still produce a complete, NaN-latency summary with the losses
itemized by cause).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments.common import build_synthetic_sim
from repro.sim import ChannelConfig, SimConfig
from repro.sim.channel import ChannelModel, channel_uniforms, packet_key
from repro.topology import build_lps


class TestCounterHash:
    def test_pure_and_stable(self):
        keys = np.arange(100, dtype=np.uint64)
        hops = np.arange(100, dtype=np.uint64) % 5
        a = channel_uniforms(42, keys, hops, 0, 0)
        b = channel_uniforms(42, keys, hops, 0, 0)
        assert np.array_equal(a, b)

    def test_scalar_matches_array(self):
        # The event engine hashes one packet at a time; the batched engine
        # hashes thousands.  Same coordinates, same uniform — exactly.
        keys = np.asarray([7, 900, 123456], dtype=np.uint64)
        hops = np.asarray([0, 3, 1], dtype=np.uint64)
        batch = channel_uniforms(5, keys, hops, 1, 0)
        for i in range(3):
            one = channel_uniforms(
                5, keys[i : i + 1], hops[i : i + 1], 1, 0
            )
            assert one[0] == batch[i]

    def test_coordinates_are_independent(self):
        keys = np.arange(256, dtype=np.uint64)
        hops = np.zeros(256, dtype=np.uint64)
        base = channel_uniforms(1, keys, hops, 0, 0)
        for variant in (
            channel_uniforms(2, keys, hops, 0, 0),  # seed
            channel_uniforms(1, keys, hops + np.uint64(1), 0, 0),  # hop
            channel_uniforms(1, keys, hops, 1, 0),  # attempt
            channel_uniforms(1, keys, hops, 0, 1),  # lane
        ):
            assert not np.array_equal(base, variant)

    def test_uniforms_in_range_and_roughly_uniform(self):
        keys = np.arange(20_000, dtype=np.uint64)
        hops = np.zeros(20_000, dtype=np.uint64)
        u = channel_uniforms(9, keys, hops, 0, 0)
        assert (u >= 0.0).all() and (u < 1.0).all()
        assert abs(u.mean() - 0.5) < 0.01

    def test_packet_key_is_injective_over_the_declared_range(self):
        # src endpoints and per-source sequence numbers live in disjoint
        # bit fields, so (src, seq) -> key is collision-free.
        assert packet_key(3, 5) != packet_key(5, 3)
        assert packet_key(1, 0) != packet_key(0, 1 << 23)
        seq = np.arange(16, dtype=np.int64)
        keys = packet_key(np.int64(7), seq)
        assert len(set(keys.tolist())) == 16


class TestChannelModel:
    def test_empirical_loss_rate_matches_loss_prob(self):
        cfg = ChannelConfig(loss_prob=0.2, seed=3)
        model = ChannelModel(cfg, link_latency_ns=50.0)
        keys = np.arange(50_000, dtype=np.uint64)
        hops = np.zeros(50_000, dtype=np.uint64)
        delivered, _, _ = model.crossings(keys, hops)
        lost = 1.0 - delivered.mean()
        assert lost == pytest.approx(0.2, abs=0.01)

    def test_retransmits_recover_most_losses(self):
        lossy = ChannelConfig(loss_prob=0.2, max_attempts=3, seed=3)
        model = ChannelModel(lossy, link_latency_ns=50.0)
        keys = np.arange(50_000, dtype=np.uint64)
        hops = np.zeros(50_000, dtype=np.uint64)
        delivered, extra, retrans = model.crossings(keys, hops)
        # P(3 losses) = 0.2^3 = 0.8%; retried attempts are counted and the
        # survivors pay the wasted wire time.
        assert 1.0 - delivered.mean() == pytest.approx(0.2**3, abs=0.005)
        assert retrans.sum() > 0
        assert (extra[retrans > 0] >= model.link_ns).all()

    def test_noop_channel_is_free(self):
        model = ChannelModel(ChannelConfig(), link_latency_ns=50.0)
        keys = np.arange(100, dtype=np.uint64)
        hops = np.zeros(100, dtype=np.uint64)
        delivered, extra, retrans = model.crossings(keys, hops)
        assert delivered.all()
        assert not extra.any()
        assert not retrans.any()

    def test_drop_cause_names_the_regime(self):
        assert ChannelConfig(loss_prob=0.1).drop_cause == "channel-loss"
        assert (
            ChannelConfig(loss_prob=0.1, max_attempts=4).drop_cause
            == "retransmit-exhausted"
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_prob": -0.1},
            {"loss_prob": 1.5},
            {"max_attempts": 0},
            {"jitter_ns": -1.0},
            {"extra_latency_ns": -1.0},
            {"backoff_ns": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            ChannelConfig(**kwargs)


def _lossy_net(backend, loss_prob, seed=11, max_attempts=1):
    # Concentration 1: endpoints never share a router, so every packet
    # crosses at least one router-to-router link and the channel sees it
    # (intra-router deliveries are channel-exempt by design).
    topo = build_lps(3, 5)
    channel = ChannelConfig(loss_prob=loss_prob, jitter_ns=8.0,
                            max_attempts=max_attempts, backoff_ns=25.0,
                            seed=seed)
    return build_synthetic_sim(
        topo, "minimal", "random", 0.5, concentration=1, n_ranks=16,
        packets_per_rank=4, seed=seed,
        config=SimConfig(concentration=1, channel=channel), backend=backend,
    )


class TestTotalLossRow:
    """loss_prob=1.0: every packet drops, and the stats row stays whole."""

    @pytest.mark.parametrize("backend", ["event", "batched"])
    def test_summary_is_complete_with_nan_latencies(self, backend):
        stats = _lossy_net(backend, loss_prob=1.0).run()
        assert stats.n_injected > 0
        assert stats.n_dropped == stats.n_injected
        assert not stats.latencies_ns
        s = stats.summary()
        # Every key of a delivered run's summary is present (downstream
        # tables index the same columns either way); the only extras are
        # the drop itemization that makes the row self-explaining.
        delivered = _lossy_net(backend, loss_prob=0.0).run().summary()
        assert set(s) >= set(delivered)
        assert set(s) - set(delivered) == {"drops", "retransmits"}
        assert s["delivered"] == 0
        assert s["delivered_fraction"] == 0.0
        for key in ("mean_latency_ns", "p50_latency_ns", "p99_latency_ns",
                    "mean_hops"):
            assert math.isnan(s[key]), key
        # The losses are itemized by cause, not silently vanished.
        assert dict(stats.drops) == {"channel-loss": stats.n_injected}

    def test_total_loss_rows_agree_across_engines(self):
        ev = _lossy_net("event", loss_prob=1.0).run()
        bt = _lossy_net("batched", loss_prob=1.0).run()
        assert bt.n_injected == ev.n_injected
        assert dict(bt.drops) == dict(ev.drops)
        assert bt.n_retransmits == ev.n_retransmits


class TestCrossEngineAccounting:
    def test_minimal_routing_drop_accounting_is_identical(self):
        # The headline guarantee, in miniature (the full sweep lives in
        # the differential harness): minimal routing gives both engines
        # the same (key, hop) draw sequences, so the drop ledger and the
        # retransmit counter must be *equal*, not close.
        ev = _lossy_net("event", loss_prob=0.1, max_attempts=2).run()
        bt = _lossy_net("batched", loss_prob=0.1, max_attempts=2).run()
        assert ev.n_dropped > 0  # the channel really bit
        assert dict(bt.drops) == dict(ev.drops)
        assert bt.n_retransmits == ev.n_retransmits > 0
        assert len(bt.latencies_ns) == len(ev.latencies_ns)
        assert sorted(bt.hops) == sorted(ev.hops)
