"""Tests for random edge-failure machinery."""

import numpy as np
import pytest

from repro.graphs.failures import delete_random_edges, resilience_trials
from repro.graphs.generators import complete_graph, hypercube_graph
from repro.graphs.metrics import average_distance, diameter, is_connected


class TestDeleteRandomEdges:
    def test_exact_count(self):
        g = complete_graph(10)  # 45 edges
        h = delete_random_edges(g, 0.2, seed=0)
        assert h.num_edges == 45 - 9

    def test_zero_proportion_identity(self):
        g = complete_graph(6)
        assert delete_random_edges(g, 0.0, seed=0) is g

    def test_subset_of_original(self):
        g = hypercube_graph(4)
        h = delete_random_edges(g, 0.3, seed=1)
        orig = {tuple(e) for e in g.edge_array()}
        assert all(tuple(e) in orig for e in h.edge_array())

    def test_seeded_reproducible(self):
        g = complete_graph(12)
        a = delete_random_edges(g, 0.4, seed=5)
        b = delete_random_edges(g, 0.4, seed=5)
        assert np.array_equal(a.edge_array(), b.edge_array())

    def test_invalid_proportion(self):
        g = complete_graph(4)
        with pytest.raises(ValueError):
            delete_random_edges(g, 1.0)
        with pytest.raises(ValueError):
            delete_random_edges(g, -0.1)


class TestResilienceTrials:
    def test_mean_and_count(self):
        g = complete_graph(16)
        mean, total = resilience_trials(
            g, 0.1, lambda h: float(diameter(h)), seed=0,
            max_trials_per_batch=2,
        )
        assert mean >= 1.0
        assert total >= 10  # at least `batches` trials ran

    def test_metric_monotone_under_failures(self):
        # Average distance should not decrease when edges fail.
        g = hypercube_graph(4)
        base = average_distance(g)
        mean, _ = resilience_trials(
            g, 0.25, average_distance, seed=3, max_trials_per_batch=2
        )
        assert mean >= base - 1e-9

    def test_connectivity_enforced(self):
        g = complete_graph(8)
        mean, _ = resilience_trials(
            g,
            0.5,
            lambda h: 1.0 if is_connected(h) else 0.0,
            seed=4,
            max_trials_per_batch=2,
        )
        assert mean == 1.0


class TestResilienceTrialsRngStreams:
    """Regression: per-trial substreams (see the RNG contract docstring).

    Historically every trial drew straight from the one shared stream, so a
    preceding ``resilience_trials`` call consuming a different number of
    draws (more trials after CV escalation, disconnected-graph redraws)
    perturbed every later call's trial graphs.  Each call now consumes
    exactly one spawn from a shared generator and each trial gets its own
    spawned substream.
    """

    @staticmethod
    def _trial_hashes_after(first_call_kwargs):
        """Run a first metric with the given kwargs, then record the trial
        graphs of an identical second metric off the same shared generator."""
        from repro.graphs.metrics import average_distance

        g = hypercube_graph(4)
        rng = np.random.default_rng(7)
        resilience_trials(
            g, 0.3, average_distance, seed=rng, **first_call_kwargs
        )
        hashes = []

        def capture(h):
            hashes.append(h.content_hash())
            return float(h.num_edges)

        resilience_trials(g, 0.2, capture, seed=rng, max_trials_per_batch=1)
        return hashes

    def test_first_call_trial_count_does_not_perturb_second(self):
        # cv_target=0.0 forces the first call to escalate to its trial cap,
        # so the two scenarios consume very different numbers of trials
        # (and redraws); the second call's trial graphs must not move.
        few = self._trial_hashes_after(dict(max_trials_per_batch=1))
        many = self._trial_hashes_after(
            dict(max_trials_per_batch=5, cv_target=0.0)
        )
        assert few == many

    def test_same_integer_seed_reproduces_trials(self):
        g = hypercube_graph(4)
        seen: list[list[str]] = []
        for _ in range(2):
            hashes = []

            def capture(h):
                hashes.append(h.content_hash())
                return float(h.num_edges)

            resilience_trials(g, 0.25, capture, seed=9,
                              max_trials_per_batch=2)
            seen.append(hashes)
        assert seen[0] == seen[1]

    def test_shared_generator_decorrelates_metrics(self):
        # The fig5 pattern: consecutive calls on one generator must see
        # *different* trial graphs (that is the point of sharing it).
        g = hypercube_graph(4)
        rng = np.random.default_rng(3)
        first, second = [], []

        def cap(store):
            def metric(h):
                store.append(h.content_hash())
                return float(h.num_edges)
            return metric

        resilience_trials(g, 0.25, cap(first), seed=rng,
                          max_trials_per_batch=1)
        resilience_trials(g, 0.25, cap(second), seed=rng,
                          max_trials_per_batch=1)
        assert first != second
