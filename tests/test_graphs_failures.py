"""Tests for random edge-failure machinery."""

import numpy as np
import pytest

from repro.graphs.failures import delete_random_edges, resilience_trials
from repro.graphs.generators import complete_graph, hypercube_graph
from repro.graphs.metrics import average_distance, diameter, is_connected


class TestDeleteRandomEdges:
    def test_exact_count(self):
        g = complete_graph(10)  # 45 edges
        h = delete_random_edges(g, 0.2, seed=0)
        assert h.num_edges == 45 - 9

    def test_zero_proportion_identity(self):
        g = complete_graph(6)
        assert delete_random_edges(g, 0.0, seed=0) is g

    def test_subset_of_original(self):
        g = hypercube_graph(4)
        h = delete_random_edges(g, 0.3, seed=1)
        orig = {tuple(e) for e in g.edge_array()}
        assert all(tuple(e) in orig for e in h.edge_array())

    def test_seeded_reproducible(self):
        g = complete_graph(12)
        a = delete_random_edges(g, 0.4, seed=5)
        b = delete_random_edges(g, 0.4, seed=5)
        assert np.array_equal(a.edge_array(), b.edge_array())

    def test_invalid_proportion(self):
        g = complete_graph(4)
        with pytest.raises(ValueError):
            delete_random_edges(g, 1.0)
        with pytest.raises(ValueError):
            delete_random_edges(g, -0.1)


class TestResilienceTrials:
    def test_mean_and_count(self):
        g = complete_graph(16)
        mean, total = resilience_trials(
            g, 0.1, lambda h: float(diameter(h)), seed=0,
            max_trials_per_batch=2,
        )
        assert mean >= 1.0
        assert total >= 10  # at least `batches` trials ran

    def test_metric_monotone_under_failures(self):
        # Average distance should not decrease when edges fail.
        g = hypercube_graph(4)
        base = average_distance(g)
        mean, _ = resilience_trials(
            g, 0.25, average_distance, seed=3, max_trials_per_batch=2
        )
        assert mean >= base - 1e-9

    def test_connectivity_enforced(self):
        g = complete_graph(8)
        mean, _ = resilience_trials(
            g,
            0.5,
            lambda h: 1.0 if is_connected(h) else 0.0,
            seed=4,
            max_trials_per_batch=2,
        )
        assert mean == 1.0
