"""The experiment service: JobQueue, streaming events, HTTP API.

End-to-end coverage of ``repro serve``'s moving parts:

* job lifecycle (pending → running → done/failed/cancelled) and the
  per-job event log that streams per-cell results;
* cross-job cell dedup through the shared :class:`ArtifactStore` —
  overlapping sweeps recompute only their new cells;
* submit-time validation (unknown experiment / preset / override keys
  fail the submitter, not a queued job);
* cooperative cancellation: a cancelled job leaves no tempfiles and no
  partial entries, and a resubmission reuses its completed cells;
* the stdlib HTTP server + :class:`ServiceClient` (submit, status,
  events long-poll, NDJSON stream, cancel, error mapping).

Drivers use dotted test-module paths (``test_service:_tiny_run``),
resolvable because pytest puts this directory on ``sys.path``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments.common import ExperimentResult
from repro.runner.registry import EXPERIMENTS, ExperimentDef
from repro.service import (
    ArtifactStore,
    JobQueue,
    JobState,
    ServiceClient,
    ServiceError,
    make_server,
)
from repro.service.api import start_in_thread
from repro.service.jobs import detuple, jsonable


def _tiny_run(values=(1, 2, 3), delay=0.0):
    """One row per value; ``delay`` stretches each cell for cancel tests."""
    if delay:
        time.sleep(delay * len(values))
    return ExperimentResult(
        experiment="svc-tiny",
        rows=[{"v": v, "sq": v * v} for v in values],
    )


_TINY = ExperimentDef(
    name="svc-tiny",
    title="tiny sweep for service tests",
    fn="test_service:_tiny_run",
    presets={"small": {"values": (1, 2, 3), "delay": 0.0}},
    cell_axes=("values",),
)

_SLOW = ExperimentDef(
    name="svc-slow",
    title="slow sweep for cancellation tests",
    fn="test_service:_tiny_run",
    presets={"small": {"values": (1, 2, 3, 4, 5, 6), "delay": 0.08}},
    cell_axes=("values",),
)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture()
def queue(store):
    q = JobQueue(store, workers=2)
    yield q
    q.shutdown(timeout=10.0)


def _kinds(job):
    return [e.kind for e in job.events_since(0)]


# ---------------------------------------------------------------------------
# Queue + job lifecycle


class TestJobLifecycle:
    def test_submit_runs_to_done(self, queue):
        job = queue.submit(_TINY)
        assert job.wait(timeout=30.0)
        assert job.state is JobState.DONE
        assert job.error is None
        report = job.reports[0]
        assert report.n_cells == 3
        assert [r["v"] for r in report.result.rows] == [1, 2, 3]

    def test_event_log_streams_per_cell_results(self, queue):
        job = queue.submit(_TINY)
        job.wait(timeout=30.0)
        kinds = _kinds(job)
        assert kinds[0] == "submitted"
        assert kinds[1] == "job-start"
        assert kinds[-1] == "job-done"
        assert kinds.count("cell-result") == 3
        cell_rows = [
            e.data["rows"]
            for e in job.events_since(0)
            if e.kind == "cell-result"
        ]
        assert [rows[0]["v"] for rows in cell_rows] == [1, 2, 3]

    def test_snapshot_shape(self, queue):
        job = queue.submit(_TINY, overrides={"values": (5,)})
        job.wait(timeout=30.0)
        snap = job.snapshot()
        assert snap["state"] == "done"
        assert snap["experiment"] == "svc-tiny"
        assert snap["overrides"] == {"values": [5]}  # JSON-safe
        assert snap["reports"][0]["rows"] == 1
        assert snap["started"] is not None and snap["finished"] is not None

    def test_failed_job_isolated(self, queue):
        # values=() → zero cells → the driver never runs, but the merge
        # has nothing to do; use a bad preset param shape instead: a
        # string value makes the driver's arithmetic raise inside a cell.
        job = queue.submit(_TINY, overrides={"values": ("boom",)})
        job.wait(timeout=30.0)
        assert job.state is JobState.FAILED
        assert "CellExecutionError" in (job.error or "")
        assert _kinds(job)[-1] == "job-failed"
        # The queue survives a failed job: the next one runs fine.
        ok = queue.submit(_TINY)
        ok.wait(timeout=30.0)
        assert ok.state is JobState.DONE

    def test_concurrent_submissions_all_complete(self, store):
        # ISSUE acceptance: ≥8 concurrent submissions with cell dedup.
        q = JobQueue(store, workers=4)
        try:
            jobs = [
                q.submit(_TINY, overrides={"values": (i, i + 1)})
                for i in range(8)
            ]
            for job in jobs:
                assert job.wait(timeout=60.0), job.id
                assert job.state is JobState.DONE, job.error
            # Overlapping cells ((1,2)∩(2,3)={2}, …) deduplicate through
            # the shared store: 8 jobs × 2 cells over 9 distinct values.
            cached = sum(j.reports[0].n_cached_cells for j in jobs)
            computed = sum(
                j.reports[0].n_cells - j.reports[0].n_cached_cells
                for j in jobs
            )
            assert computed + cached == 16
            assert computed >= 9  # every distinct cell computed somewhere
        finally:
            q.shutdown(timeout=10.0)


class TestDedup:
    def test_overlapping_sweep_reuses_shared_cells(self, queue, store):
        first = queue.submit(_TINY, overrides={"values": (1, 2, 3)})
        first.wait(timeout=30.0)
        assert first.state is JobState.DONE
        second = queue.submit(_TINY, overrides={"values": (2, 3, 4)})
        second.wait(timeout=30.0)
        report = second.reports[0]
        assert report.n_cells == 3
        assert report.n_cached_cells == 2  # cells 2 and 3 reused
        assert store.stats()["session_hits"] >= 2

    def test_identical_resubmission_is_full_hit(self, queue):
        queue.submit(_TINY).wait(timeout=30.0)
        again = queue.submit(_TINY)
        again.wait(timeout=30.0)
        assert again.reports[0].from_cache
        assert "experiment-cached" in _kinds(again)


class TestValidation:
    def test_unknown_experiment(self, queue):
        with pytest.raises(KeyError, match="no-such-exp"):
            queue.submit("no-such-exp")

    def test_unknown_preset(self, queue):
        with pytest.raises(KeyError, match="huge"):
            queue.submit(_TINY, preset="huge")

    def test_unknown_override_key(self, queue):
        with pytest.raises(KeyError) as exc_info:
            queue.submit(_TINY, overrides={"vlaues": (1,)})
        message = str(exc_info.value)
        assert "vlaues" in message
        assert "values" in message  # the accepted keys are listed
        assert queue.status()["queued"] == 0  # nothing was enqueued


class TestCancellation:
    def test_cancel_pending_job(self, store):
        q = JobQueue(store, workers=1)
        try:
            running = q.submit(_SLOW)
            queued = q.submit(_TINY)
            q.cancel(queued.id)
            assert queued.wait(timeout=5.0)
            assert queued.state is JobState.CANCELLED
            assert "queued" in (queued.error or "")
            running.wait(timeout=60.0)
            assert running.state is JobState.DONE
        finally:
            q.shutdown(timeout=10.0)

    def test_cancel_running_job_no_poisoning(self, queue, store):
        job = queue.submit(_SLOW)
        # Wait for the first streamed cell result, then cancel mid-job.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if any(e.kind == "cell-result" for e in job.events_since(0)):
                break
            time.sleep(0.01)
        queue.cancel(job.id)
        assert job.wait(timeout=30.0)
        assert job.state is JobState.CANCELLED
        assert "cells complete" in (job.error or "")
        assert _kinds(job)[-1] == "job-cancelled"
        # No tempfiles, no partial entries...
        assert list(store.root.glob("**/*.tmp")) == []
        # ...and a resubmission reuses the cells that did complete.
        redo = queue.submit(_SLOW)
        redo.wait(timeout=60.0)
        assert redo.state is JobState.DONE
        assert redo.reports[0].n_cached_cells >= 1
        assert len(redo.reports[0].result.rows) == 6

    def test_cancel_unknown_job(self, queue):
        with pytest.raises(KeyError):
            queue.cancel("job-999999")


def test_status_includes_store_metrics(queue):
    queue.submit(_TINY).wait(timeout=30.0)
    status = queue.status()
    assert status["workers"] == 2
    assert status["jobs"][0]["state"] == "done"
    store_stats = status["store"]
    for key in ("bytes", "entries", "session_hits", "session_misses",
                "session_evictions", "tmp_files", "hit_rate"):
        assert key in store_stats, key


# ---------------------------------------------------------------------------
# JSON helpers


def test_jsonable_flattens_numpy_and_enums():
    import numpy as np

    payload = {
        "i": np.int64(3),
        "f": np.float32(0.5),
        "arr": np.arange(3),
        "state": JobState.DONE,
        "nested": [(1, 2), {3, }],
    }
    out = jsonable(payload)
    assert out == {
        "i": 3, "f": 0.5, "arr": [0, 1, 2],
        "state": "done", "nested": [[1, 2], [3]],
    }


def test_detuple_restores_registry_shapes():
    assert detuple({"values": [1, 2], "pair": [[3, 7]]}) == {
        "values": (1, 2), "pair": ((3, 7),),
    }


# ---------------------------------------------------------------------------
# HTTP API — a real server on an ephemeral port, the real urllib client.


@pytest.fixture()
def client(queue, monkeypatch):
    # Registry-name submission over HTTP needs the test defs registered.
    monkeypatch.setitem(EXPERIMENTS, "svc-tiny", _TINY)
    monkeypatch.setitem(EXPERIMENTS, "svc-slow", _SLOW)
    server = make_server(queue, port=0)
    start_in_thread(server)
    yield ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    server.shutdown()
    server.server_close()


class TestHTTPAPI:
    def test_submit_wait_and_fetch(self, client):
        snap = client.submit("svc-tiny", overrides={"values": [4, 5]})
        assert snap["state"] in ("pending", "running", "done")
        done = client.wait(snap["id"], timeout=60.0)
        assert done["state"] == "done"
        assert done["reports"][0]["rows"] == 2
        assert client.job(snap["id"])["id"] == snap["id"]
        assert any(j["id"] == snap["id"] for j in client.jobs())

    def test_stream_carries_cell_rows(self, client):
        snap = client.submit("svc-tiny")
        events = list(client.stream(snap["id"]))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "job-done"
        rows = [
            e["data"]["rows"][0]["v"]
            for e in events
            if e["kind"] == "cell-result"
        ]
        assert rows == [1, 2, 3]

    def test_events_long_poll(self, client):
        snap = client.submit("svc-tiny")
        client.wait(snap["id"], timeout=60.0)
        page = client.events(snap["id"], since=0)
        assert page["state"] == "done"
        seqs = [e["seq"] for e in page["events"]]
        assert seqs == list(range(len(seqs)))
        rest = client.events(snap["id"], since=seqs[-1] + 1)
        assert rest["events"] == []

    def test_cancel_over_http(self, client):
        snap = client.submit("svc-slow", force=True)
        # Let it get going, then cancel; terminal state must be cancelled.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.job(snap["id"])["state"] != "pending":
                break
            time.sleep(0.01)
        client.cancel(snap["id"])
        done = client.wait(snap["id"], timeout=60.0)
        assert done["state"] == "cancelled"

    def test_submit_errors_map_to_400(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.submit("no-such-exp")
        assert exc_info.value.status == 400
        assert "no-such-exp" in str(exc_info.value)
        with pytest.raises(ServiceError) as exc_info:
            client.submit("svc-tiny", overrides={"bogus": 1})
        assert exc_info.value.status == 400
        assert "bogus" in str(exc_info.value)

    def test_unknown_job_maps_to_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.job("job-424242")
        assert exc_info.value.status == 404

    def test_status_endpoint(self, client):
        client.wait(client.submit("svc-tiny")["id"], timeout=60.0)
        status = client.status()
        assert status["workers"] == 2
        assert "hit_rate" in status["store"]

    def test_http_overrides_arrive_as_tuples(self, client):
        # JSON has no tuples; the server detuples so registry axis
        # splitting sees the shapes the CLI would have built.
        snap = client.submit("svc-tiny", overrides={"values": [7, 8, 9]})
        done = client.wait(snap["id"], timeout=60.0)
        assert done["state"] == "done"
        assert done["reports"][0]["n_cells"] == 3


def test_queue_shutdown_cancels_pending(store):
    q = JobQueue(store, workers=1)
    running = q.submit(_SLOW)
    queued = q.submit(_TINY)
    q.shutdown(cancel_running=True, timeout=30.0)
    assert queued.state is JobState.CANCELLED
    assert running.is_terminal


def test_submit_after_shutdown_rejected(store):
    q = JobQueue(store, workers=1)
    q.shutdown(timeout=10.0)
    with pytest.raises(RuntimeError, match="shut down"):
        q.submit(_TINY)
